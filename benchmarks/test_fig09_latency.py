"""Benchmark: regenerate Figure 9 (TCP RR latency, §5.1.2)."""


def test_fig09_latency(run_experiment):
    result = run_experiment("fig09")
    for row in result.as_dicts():
        assert 1.03 <= row["rr_over_ll"] <= 1.30
        assert 1.0 <= row["llnd_over_ll"] < row["rr_over_ll"]
