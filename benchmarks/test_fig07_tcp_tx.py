"""Benchmark: regenerate Figure 7 (single-core TCP Tx with TSO, §5.1.1)."""


def test_fig07_tcp_tx(run_experiment):
    result = run_experiment("fig07")
    for ratio in result.column("ratio_local_over_remote"):
        assert 0.95 <= ratio <= 1.10
    row = result.as_dicts()[-1]
    assert 0.85 <= row["remote_membw_over_tput"] <= 1.2
