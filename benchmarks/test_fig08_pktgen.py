"""Benchmark: regenerate Figure 8 (single-core pktgen, §5.1.1)."""


def test_fig08_pktgen(run_experiment):
    result = run_experiment("fig08")
    for row in result.as_dicts():
        assert 1.25 <= row["ratio"] <= 1.45     # paper: 1.30-1.39
        assert 3.9 <= row["ioct_mpps"] <= 4.3   # paper: 4.1 Mpps
        assert 2.9 <= row["remote_mpps"] <= 3.2  # paper: 3.08 Mpps
