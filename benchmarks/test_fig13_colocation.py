"""Benchmark: regenerate Figure 13 (PageRank co-location, §5.2)."""


def test_fig13_colocation(run_experiment):
    result = run_experiment("fig13")
    for row in result.as_dicts():
        assert row["pr_slowdown_remote"] > 1.02
