"""Benchmark: regenerate Figure 6 (single-core TCP Rx, §5.1.1)."""


def test_fig06_tcp_rx(run_experiment):
    result = run_experiment("fig06")
    ratios = result.column("ratio_local_over_remote")
    assert all(r > 1.05 for r in ratios)
    assert ratios[-1] > ratios[0]
    for row in result.as_dicts():
        assert abs(row["ioct_gbps"] - row["local_gbps"]) < 0.5
