"""Benchmark: regenerate Figure 15 (NVMe under UPI congestion, §5.4)."""


def test_fig15_nvme(run_experiment):
    result = run_experiment("fig15")
    norm = result.column("fio_normalized")
    assert norm[0] == 1.0
    assert 0.70 <= min(norm) <= 0.85   # paper: degrades by up to ~24%
