"""Benchmark: regenerate Figure 2 (NIC vs CPU bandwidth trend, §2.6)."""


def test_fig02_trends(run_experiment):
    result = run_experiment("fig02")
    # One NIC covers the cloud-rate consumption of a CPU in every year.
    assert all(x >= 1 for x in result.column("nic_covers_cloud_cpus"))
