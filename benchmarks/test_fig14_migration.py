"""Benchmark: regenerate Figure 14 (thread migration steering, §5.3)."""


def test_fig14_migration(run_experiment):
    result = run_experiment("fig14")
    rows = result.as_dicts()
    octo = [r for r in rows if r["config"] == "octoNIC"]
    std = [r for r in rows if r["config"] == "ethNIC"]
    assert octo[-1]["pf1_gbps"] > 20 and octo[-1]["pf0_gbps"] == 0
    assert std[-1]["pf0_gbps"] < std[0]["pf0_gbps"] * 0.85
