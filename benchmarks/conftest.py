"""Benchmark harness support.

Each benchmark runs one paper experiment end-to-end at ``normal``
fidelity, prints the regenerated table (the same rows/series the paper's
figure reports), and asserts the paper's qualitative claims.  Experiments
are deterministic, so a single round per benchmark is meaningful.
"""

import pytest

from repro.experiments import get_experiment

FIDELITY = "normal"


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment once under the benchmark timer and print it."""

    def runner(name):
        result = benchmark.pedantic(
            lambda: get_experiment(name).run(fidelity=FIDELITY),
            rounds=1, iterations=1)
        print()
        print(result.table())
        return result

    return runner
