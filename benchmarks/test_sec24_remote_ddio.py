"""Benchmark: regenerate the §2.4 remote-DDIO micro-experiment."""


def test_sec24_remote_ddio(run_experiment):
    result = run_experiment("sec24")
    improvement = result.as_dicts()[1]["vs_default_remote"]
    assert 0.95 <= improvement <= 1.05   # paper: marginal, up to 2%
