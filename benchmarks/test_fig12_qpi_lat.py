"""Benchmark: regenerate Figure 12 (UDP latency under congestion, §5.2)."""


def test_fig12_qpi_lat(run_experiment):
    result = run_experiment("fig12")
    remote = result.column("remote_us")
    ioct = result.column("ioct_us")
    assert remote[-1] > remote[0]
    assert abs(ioct[-1] - ioct[0]) < 0.2
    assert min(result.column("ioct_over_remote")) <= 0.80  # up to 22% lower
