"""Perf-regression harness package (see harness.py and tools/bench.py)."""
