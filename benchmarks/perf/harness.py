"""Perf-regression harness: events/sec and wall-clock per figure.

Two layers of measurement:

* **Engine benches** run one simulation point in-process with direct
  access to the event loop, reporting the processed-event count (which is
  deterministic — same seed, same code, same count) and the resulting
  events/sec.  This is the simulator-throughput figure of merit the
  kernel fast paths optimise.
* **Figure benches** time whole experiment sweeps (fig06/fig08) through
  the sweep executor, serial and with ``--jobs N`` workers, reporting the
  wall-clock and the parallel speedup.

:func:`run_bench` produces a JSON-serialisable report; ``tools/bench.py``
writes it as ``BENCH_<date>.json`` and :func:`check_regression` gates a
report against a committed baseline, failing on a >20% drop in events/sec
or growth in serial figure wall-clock.
"""

from __future__ import annotations

import os
import platform
import time
from typing import Dict, List

from repro.core.configurations import Testbed
from repro.experiments import get_experiment, sweep
from repro.experiments.runners import warmup_of
from repro.nic.packet import Flow
from repro.workloads.netperf import TcpStream
from repro.workloads.pktgen import Pktgen

#: Figures whose sweep wall-clock the harness tracks.
FIGURES = ("fig06", "fig08")

#: Regression gate: fail when events/sec drops, or serial wall-clock
#: grows, by more than this fraction vs the baseline.
THRESHOLD = 0.20

#: Simulated ns per engine bench point.  Fixed (not fidelity-scaled): the
#: quick figure sweeps already give a fast smoke signal, while the engine
#: events/sec number needs a long enough run to be stable under a
#: regression threshold.
ENGINE_DURATION_NS = 200_000_000


def bench_engine_point(kind: str, config: str, duration_ns: int,
                       repeats: int = 3) -> Dict:
    """One single-process point with direct event-loop access.

    The event count is deterministic (same seed, same code); the wall
    clock is best-of-``repeats`` to damp scheduler noise.
    """
    events = 0
    wall = float("inf")
    for _ in range(repeats):
        testbed = Testbed(config, seed=0)
        warmup = warmup_of(duration_ns)
        if kind == "pktgen":
            Pktgen(testbed.server, testbed.server_core(0), 256,
                   duration_ns, warmup)
        elif kind == "tcp_rx":
            TcpStream(testbed.server, testbed.server_core(0),
                      Flow.make(0), 4096, "rx", duration_ns, warmup)
        else:
            raise ValueError(f"unknown engine bench kind {kind!r}")
        start = time.perf_counter()
        testbed.run(duration_ns + duration_ns // 5)
        elapsed = time.perf_counter() - start
        events = testbed.env.events_processed
        if elapsed < wall:
            wall = elapsed
    return {
        "events": events,
        "wall_s": round(wall, 4),
        "events_per_sec": int(events / wall) if wall else 0,
    }


def bench_figure(name: str, fidelity: str, jobs: int) -> float:
    """Wall-clock seconds of one full figure sweep at ``jobs`` workers."""
    previous = sweep.current_jobs()
    sweep.configure(jobs=jobs)
    try:
        start = time.perf_counter()
        get_experiment(name).run(fidelity)
        return time.perf_counter() - start
    finally:
        sweep.configure(jobs=previous)


def run_bench(fidelity: str = "quick", jobs: int = 4) -> Dict:
    """The full harness: engine benches plus serial/parallel figure
    sweeps.  Returns the JSON-serialisable report."""
    engine = {
        "pktgen_remote": bench_engine_point("pktgen", "remote",
                                            ENGINE_DURATION_NS),
        "tcp_rx_ioctopus": bench_engine_point("tcp_rx", "ioctopus",
                                              ENGINE_DURATION_NS),
    }
    figures = {}
    for name in FIGURES:
        serial = bench_figure(name, fidelity, 1)
        parallel = bench_figure(name, fidelity, jobs)
        figures[name] = {
            "serial_s": round(serial, 4),
            "parallel_s": round(parallel, 4),
            "speedup": round(serial / parallel, 2) if parallel else 0.0,
        }
    sweep.shutdown_pool()
    return {
        "date": time.strftime("%Y-%m-%d"),
        "fidelity": fidelity,
        "jobs": jobs,
        "host": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
        },
        "engine": engine,
        "figures": figures,
    }


def check_regression(current: Dict, baseline: Dict,
                     threshold: float = THRESHOLD) -> List[str]:
    """Compare a report against a baseline; returns failure messages
    (empty list = no regression beyond ``threshold``)."""
    failures = []
    for name, base in baseline.get("engine", {}).items():
        now = current.get("engine", {}).get(name)
        if now is None:
            failures.append(f"engine bench {name!r} missing from report")
            continue
        floor = base["events_per_sec"] * (1.0 - threshold)
        if now["events_per_sec"] < floor:
            failures.append(
                f"engine {name}: {now['events_per_sec']} events/s < "
                f"{floor:.0f} (baseline {base['events_per_sec']} "
                f"- {threshold:.0%})")
    for name, base in baseline.get("figures", {}).items():
        now = current.get("figures", {}).get(name)
        if now is None:
            failures.append(f"figure bench {name!r} missing from report")
            continue
        ceiling = base["serial_s"] * (1.0 + threshold)
        if now["serial_s"] > ceiling:
            failures.append(
                f"figure {name}: serial {now['serial_s']}s > "
                f"{ceiling:.3f}s (baseline {base['serial_s']}s "
                f"+ {threshold:.0%})")
    return failures


def format_report(report: Dict) -> str:
    lines = [f"bench {report['date']}  fidelity={report['fidelity']}  "
             f"jobs={report['jobs']}  cpus={report['host']['cpus']}"]
    for name, point in report["engine"].items():
        lines.append(f"  engine {name:18s} {point['events']:>9d} events  "
                     f"{point['wall_s']:>7.3f}s  "
                     f"{point['events_per_sec']:>8d} ev/s")
    for name, fig in report["figures"].items():
        lines.append(f"  figure {name:18s} serial {fig['serial_s']:.3f}s  "
                     f"jobs={report['jobs']} {fig['parallel_s']:.3f}s  "
                     f"speedup {fig['speedup']:.2f}x")
    return "\n".join(lines)
