"""Perf-regression harness: events/sec and wall-clock per figure.

Two layers of measurement:

* **Engine benches** run one simulation point in-process with direct
  access to the event loop, reporting the processed-event count (which is
  deterministic — same seed, same code, same count) and the resulting
  events/sec.  This is the simulator-throughput figure of merit the
  kernel fast paths optimise.
* **Figure benches** time whole experiment sweeps (fig06/fig08) through
  the sweep executor, serial and with ``--jobs N`` workers, reporting the
  wall-clock and the parallel speedup.

:func:`run_bench` produces a JSON-serialisable report; ``tools/bench.py``
writes it as ``BENCH_<date>.json`` and :func:`check_regression` gates a
report against a committed baseline, failing on a >20% drop in events/sec
or growth in serial figure wall-clock.  Absolute gates ride along: the
fluid accuracy tier must advance the fig08 pktgen quick point at least
:data:`FLUID_SPEEDUP_FLOOR` times faster than exact (simulated packets
per wall-second), no figure sweep's parallel leg may lose to serial
(:data:`FIGURE_SPEEDUP_FLOOR`), and the fleet bench must keep the
process-sharded fingerprint identical to the inline run while scaling
at :data:`FLEET_EFFICIENCY_FLOOR` efficiency on multi-CPU hosts.
"""

from __future__ import annotations

import os
import platform
import tempfile
import time
from typing import Dict, List

from repro.core.configurations import Testbed
from repro.experiments import get_experiment, sweep
from repro.experiments.runners import run_until_converged, warmup_of
from repro.nic.packet import Flow, packets_for
from repro.os_model.netstack import MSS
from repro.workloads.netperf import TcpStream
from repro.workloads.pktgen import Pktgen

#: Figures whose sweep wall-clock the harness tracks.  fig15 exercises
#: the NVMe leg of the octo-device core (fio batches through the shared
#: doorbell/completion paths) alongside the two network figures.
FIGURES = ("fig06", "fig08", "fig15")

#: Regression gate: fail when events/sec drops, or serial wall-clock
#: grows, by more than this fraction vs the baseline.
THRESHOLD = 0.20

#: Floor on the adaptive train fast path: coalescing must cut simulated
#: events per packet by at least this factor on the fig08 pktgen point.
ADAPTIVE_REDUCTION_FLOOR = 3.0

#: Floor on the fluid tier: simulated packets per wall-second on the
#: fig08 pktgen quick point must be at least this many times the exact
#: baseline's (the tentpole claim of the fluid accuracy mode).
FLUID_SPEEDUP_FLOOR = 10.0

#: Floor on every figure sweep's parallel speedup: the parallel leg must
#: never lose to serial.  Structural serial fallbacks (see
#: ``sweep.would_parallelize``) report exactly 1.0 rather than timing
#: noise, so the floor is tight.
FIGURE_SPEEDUP_FLOOR = 1.0

#: Simulated ns per engine bench point.  Fixed (not fidelity-scaled): the
#: quick figure sweeps already give a fast smoke signal, while the engine
#: events/sec number needs a long enough run to be stable under a
#: regression threshold.
ENGINE_DURATION_NS = 200_000_000

#: Simulated ns of the adaptive-vs-exact pair: the fig08 pktgen point at
#: quick fidelity, where the adaptive mode is the default.
ADAPTIVE_PAIR_DURATION_NS = 10_000_000

#: Ceiling on the events/sec cost of carrying a *disabled* ObsSession —
#: the "observability is free unless you ask for it" contract.
OBS_OVERHEAD_CEILING = 0.02

#: Floor on the fleet executor's parallel scaling efficiency
#: (speedup / workers) when the host can genuinely run worker processes
#: side by side.  Single-CPU hosts time-share the same core, so they
#: mark ``serial_fallback`` and report 1.0 (the fingerprint cross-check
#: still runs — it is machine-independent).
FLEET_EFFICIENCY_FLOOR = 0.7

#: The fleet bench point: a full rack at quick scale — big enough that
#: one server is real work, small enough to keep the harness fast.
FLEET_BENCH_SERVERS = 8
FLEET_BENCH_CONNECTIONS = 32768
FLEET_BENCH_DURATION_NS = 4_000_000

#: Simulated ns per ablation-matrix row in the cache bench (short: the
#: bench measures the cache contract, not the simulator).
ABLATION_BENCH_DURATION_NS = 2_000_000


def _engine_workload(kind: str, testbed: Testbed, duration_ns: int):
    warmup = warmup_of(duration_ns)
    if kind == "pktgen":
        return Pktgen(testbed.server, testbed.server_core(0), 256,
                      duration_ns, warmup)
    if kind == "tcp_rx":
        return TcpStream(testbed.server, testbed.server_core(0),
                         Flow.make(0), 4096, "rx", duration_ns, warmup)
    raise ValueError(f"unknown engine bench kind {kind!r}")


def _measured_packets(kind: str, workload) -> int:
    """Simulated packets behind the workload's measured messages."""
    if kind == "pktgen":
        return workload.meter.messages_total
    return workload.meter.messages_total * packets_for(
        workload.message_bytes, MSS)


def bench_engine_point(kind: str, config: str, duration_ns: int,
                       repeats: int = 3,
                       accuracy: str = "exact") -> Dict:
    """One single-process point with direct event-loop access.

    The event and packet counts are deterministic (same seed, same code);
    the wall clock is best-of-``repeats`` to damp scheduler noise.
    ``events_per_packet`` is the simulator-efficiency figure of merit the
    packet-train fast path optimises: events/sec measures the kernel,
    events/packet measures how few events the model needs at all.
    """
    events = packets = 0
    wall = float("inf")
    for _ in range(repeats):
        testbed = Testbed(config, seed=0, accuracy=accuracy)
        workload = _engine_workload(kind, testbed, duration_ns)
        start = time.perf_counter()
        testbed.run(duration_ns + duration_ns // 5)
        elapsed = time.perf_counter() - start
        events = testbed.env.events_processed
        packets = _measured_packets(kind, workload)
        if elapsed < wall:
            wall = elapsed
    return {
        "events": events,
        "packets": packets,
        "wall_s": round(wall, 4),
        "events_per_sec": int(events / wall) if wall else 0,
        "events_per_packet": round(events / packets, 6) if packets else 0.0,
    }


def bench_adaptive_pair(kind: str = "pktgen", config: str = "remote",
                        duration_ns: int = ADAPTIVE_PAIR_DURATION_NS) -> Dict:
    """Exact vs adaptive on the fig08 pktgen quick point.

    Runs the same seeded point in both accuracy modes — the adaptive leg
    through the convergence loop, as the quick sweeps run it — and
    reports the events-per-packet reduction plus the primary-metric
    (mpps) relative deviation the speedup costs.
    """
    pair = {"kind": kind, "config": config}
    rates = {}
    for accuracy in ("exact", "adaptive"):
        testbed = Testbed(config, seed=0, accuracy=accuracy)
        workload = _engine_workload(kind, testbed, duration_ns)
        start = time.perf_counter()
        if testbed.env.adaptive:
            run_until_converged(testbed, duration_ns, workload.meter.mpps)
        else:
            testbed.run(duration_ns + duration_ns // 5)
        elapsed = time.perf_counter() - start
        events = testbed.env.events_processed
        packets = _measured_packets(kind, workload)
        rates[accuracy] = workload.meter.mpps()
        pair[accuracy] = {
            "events": events,
            "packets": packets,
            "wall_s": round(elapsed, 4),
            "events_per_sec": int(events / elapsed) if elapsed else 0,
            "events_per_packet": (round(events / packets, 6)
                                  if packets else 0.0),
        }
    exact_epp = pair["exact"]["events_per_packet"]
    adaptive_epp = pair["adaptive"]["events_per_packet"]
    pair["events_per_packet_reduction"] = (
        round(exact_epp / adaptive_epp, 2) if adaptive_epp else 0.0)
    exact_rate = rates["exact"]
    pair["metric_rel_error"] = (
        round(abs(rates["adaptive"] - exact_rate) / exact_rate, 5)
        if exact_rate else 0.0)
    return pair


def bench_accuracy_triple(kind: str = "pktgen", config: str = "remote",
                          duration_ns: int = ADAPTIVE_PAIR_DURATION_NS,
                          repeats: int = 5) -> Dict:
    """Exact vs adaptive vs fluid on the fig08 pktgen quick point.

    Each accuracy leg runs the same seeded point over the full
    measurement window (no convergence early-stop, so the legs cover
    identical simulated time) and reports simulated packets per
    wall-second — the end-to-end simulator-throughput number the fluid
    tier's closed-form steady intervals optimise — plus the primary
    metric's relative deviation from the exact leg.  Event and packet
    counts are deterministic; walls are best-of-``repeats`` because the
    fluid leg finishes in around a millisecond, where single-shot
    timings are all scheduler noise.
    """
    triple: Dict = {"kind": kind, "config": config}
    rates = {}
    for accuracy in ("exact", "adaptive", "fluid"):
        events = packets = 0
        elapsed = float("inf")
        for _ in range(repeats):
            testbed = Testbed(config, seed=0, accuracy=accuracy)
            workload = _engine_workload(kind, testbed, duration_ns)
            start = time.perf_counter()
            testbed.run(duration_ns + duration_ns // 5)
            elapsed = min(elapsed, time.perf_counter() - start)
            events = testbed.env.events_processed
            packets = _measured_packets(kind, workload)
            rates[accuracy] = workload.meter.mpps()
        triple[accuracy] = {
            "events": events,
            "packets": packets,
            "wall_s": round(elapsed, 4),
            "events_per_packet": (round(events / packets, 6)
                                  if packets else 0.0),
            "packets_per_wall_s": int(packets / elapsed) if elapsed else 0,
        }
    exact = triple["exact"]["packets_per_wall_s"]
    for accuracy in ("adaptive", "fluid"):
        leg = triple[accuracy]
        leg["speedup"] = (round(leg["packets_per_wall_s"] / exact, 2)
                          if exact else 0.0)
        leg["metric_rel_error"] = (
            round(abs(rates[accuracy] - rates["exact"]) / rates["exact"], 5)
            if rates["exact"] else 0.0)
    return triple


def bench_obs_pair(kind: str = "pktgen", config: str = "remote",
                   duration_ns: int = ENGINE_DURATION_NS,
                   repeats: int = 5) -> Dict:
    """Cost of observability on one seeded engine point, three legs:

    * ``off``      — no ObsSession at all (the historical baseline).
    * ``disabled`` — ``ObsSession(enabled=False)`` attached, as library
      users carrying an optional ``obs=`` hook run it.  Same event
      stream as ``off``; the gate holds its events/sec within
      :data:`OBS_OVERHEAD_CEILING`.
    * ``enabled``  — full registry + sampler (informational: this leg
      adds sampler timeout events by design).

    Two measurements feed the gate:

    * **Deterministic** (:func:`_disabled_leg_obs_work`): the disabled
      leg must process the identical event count and execute *zero*
      Python calls into ``repro/obs`` code during the run.  When both
      hold, the disabled overhead is structurally 0% — no timing needed.
    * **Timing**: shared/throttled hosts drift by more than the 2%
      ceiling between runs, so absolute best-of times per leg are not
      comparable.  Each round runs the three legs back-to-back
      (rotating the order so no leg always gets the freshest slot) and
      the overheads are *paired ratios within a round*; the reported
      overhead is the median across rounds.  :func:`check_regression`
      consults it only when the deterministic check found real obs work
      on the hot path.
    """
    from statistics import median

    from repro.obs import ObsSession

    names = ("off", "disabled", "enabled")
    legs = {leg: {"events": 0, "wall_s": float("inf")}
            for leg in names}
    ratios = {"disabled": [], "enabled": []}
    for round_no in range(repeats):
        elapsed = {}
        order = names[round_no % 3:] + names[:round_no % 3]
        for leg in order:
            testbed = Testbed(config, seed=0, accuracy="exact")
            _engine_workload(kind, testbed, duration_ns)
            if leg != "off":
                ObsSession(enabled=(leg == "enabled")).attach(
                    testbed, horizon_ns=duration_ns)
            start = time.perf_counter()
            testbed.run(duration_ns + duration_ns // 5)
            elapsed[leg] = time.perf_counter() - start
            cell = legs[leg]
            cell["events"] = testbed.env.events_processed
            if elapsed[leg] < cell["wall_s"]:
                cell["wall_s"] = elapsed[leg]
        for leg in ("disabled", "enabled"):
            ratios[leg].append(elapsed[leg] / elapsed["off"] - 1.0)
    for cell in legs.values():
        wall = cell["wall_s"]
        cell["wall_s"] = round(wall, 4)
        cell["events_per_sec"] = int(cell["events"] / wall) if wall else 0
    pair = {"kind": kind, "config": config}
    pair.update(legs)
    pair["disabled_overhead"] = round(median(ratios["disabled"]), 5)
    pair["enabled_overhead"] = round(median(ratios["enabled"]), 5)
    pair.update(_disabled_leg_obs_work(kind, config))
    return pair


def bench_blame_pair(kind: str = "pktgen", config: str = "remote",
                     duration_ns: int = ENGINE_DURATION_NS,
                     repeats: int = 5) -> Dict:
    """Cost of latency-blame attribution on one seeded engine point.

    Two legs per round, paired like :func:`bench_obs_pair`: ``off`` (no
    ObsSession) and ``blame`` (``ObsSession(enabled=True, blame=True)``
    attached — stage charges and conservation checks on sealed flows,
    but no trace records).  The gate follows the obs-pair split between
    deterministic and timing measurements:

    * **Deterministic**: the event stream must be bit-identical (blame
      reads, never schedules), every sealed flow must conserve, and the
      burst-path sampling contract must hold — ``Tracer.begin_blame``
      admits at most ``ceil(candidates / blame_stride)`` flows, which
      is what structurally bounds per-burst attribution cost.
    * **Timing**: the median paired wall ratio, informational while the
      sampling contract holds (shared hosts drift more than the 2%
      ceiling between rounds); :func:`check_regression` enforces
      :data:`OBS_OVERHEAD_CEILING` against it when the deterministic
      check shows *unsampled* blame work on the hot path.
    """
    from statistics import median

    from repro.obs import ObsSession

    legs = {"off": {"events": 0, "wall_s": float("inf")},
            "blame": {"events": 0, "wall_s": float("inf")}}
    ratios = []
    conservation_ok = True
    flows = candidates = stride = 0
    for round_no in range(repeats):
        elapsed = {}
        order = (("off", "blame") if round_no % 2 == 0
                 else ("blame", "off"))
        for leg in order:
            testbed = Testbed(config, seed=0, accuracy="exact")
            _engine_workload(kind, testbed, duration_ns)
            obs = None
            if leg == "blame":
                # No horizon => no sampler: the blame leg must keep the
                # event stream identical to ``off`` for events_match.
                obs = ObsSession(enabled=True, blame=True)
                obs.attach(testbed)
            start = time.perf_counter()
            testbed.run(duration_ns + duration_ns // 5)
            elapsed[leg] = time.perf_counter() - start
            cell = legs[leg]
            cell["events"] = testbed.env.events_processed
            if elapsed[leg] < cell["wall_s"]:
                cell["wall_s"] = elapsed[leg]
            if obs is not None:
                conservation_ok = (conservation_ok
                                   and obs.blame.conservation_ok)
                flows = obs.blame.domain("flow").flows
                candidates = obs.tracer._blame_seen
                stride = obs.tracer.blame_stride
        ratios.append(elapsed["blame"] / elapsed["off"] - 1.0)
    for cell in legs.values():
        wall = cell["wall_s"]
        cell["wall_s"] = round(wall, 4)
        cell["events_per_sec"] = int(cell["events"] / wall) if wall else 0
    return {
        "kind": kind,
        "config": config,
        "off": legs["off"],
        "blame": legs["blame"],
        "blame_overhead": round(median(ratios), 5),
        "events_match": legs["off"]["events"] == legs["blame"]["events"],
        "conservation_ok": conservation_ok,
        "flows": flows,
        "candidates": candidates,
        "stride": stride,
        "sampling_ok": flows <= -(-candidates // max(1, stride)),
    }


def _disabled_leg_obs_work(kind: str, config: str,
                           duration_ns: int = 20_000_000) -> Dict:
    """Deterministic half of the obs gate: does a disabled ObsSession do
    *any* work during a run?

    Compares the processed-event count of an off vs disabled leg (must
    match exactly — both are seeded and the disabled session schedules
    nothing) and counts Python calls landing in ``repro/obs`` modules
    while the disabled leg runs, via ``sys.setprofile``.  An accidental
    inline instrument call on a hot path (even a no-op one) shows up
    here as a nonzero call count, machine-independently.
    """
    import sys

    from repro.obs import ObsSession

    needle = os.sep + os.path.join("repro", "obs") + os.sep
    events = {}
    obs_calls = 0
    for leg in ("off", "disabled"):
        testbed = Testbed(config, seed=0, accuracy="exact")
        _engine_workload(kind, testbed, duration_ns)
        if leg == "disabled":
            ObsSession(enabled=False).attach(testbed,
                                             horizon_ns=duration_ns)
            counter = [0]

            def profile(frame, event, arg, _counter=counter):
                if event == "call" and needle in frame.f_code.co_filename:
                    _counter[0] += 1

            sys.setprofile(profile)
            try:
                testbed.run(duration_ns + duration_ns // 5)
            finally:
                sys.setprofile(None)
            obs_calls = counter[0]
        else:
            testbed.run(duration_ns + duration_ns // 5)
        events[leg] = testbed.env.events_processed
    return {
        "events_match": events["off"] == events["disabled"],
        "disabled_obs_calls": obs_calls,
    }


def bench_fleet(servers: int = FLEET_BENCH_SERVERS,
                connections: int = FLEET_BENCH_CONNECTIONS,
                jobs: int = 4, repeats: int = 2) -> Dict:
    """Inline vs process-sharded fleet run on one seeded rack point.

    Two gates feed :func:`check_regression`:

    * ``fingerprint_match`` — machine-independent, always enforced: the
      merged fleet fingerprint must be bit-identical between the inline
      run and the worker-process fan-out (the fleet's headline
      determinism claim).
    * ``efficiency`` — speedup divided by the workers that could
      actually run concurrently, gated against
      :data:`FLEET_EFFICIENCY_FLOOR` only on hosts with more than one
      CPU; a single-CPU host fans out but time-shares one core, so it
      reports 1.0 with a ``serial_fallback`` marker instead of noise.

    The sweep cache is disabled for the timing legs — a cache hit would
    measure JSON loading, not the simulator.
    """
    from repro.cluster import FleetSpec, run_fleet

    spec = FleetSpec(servers=servers, connections=connections,
                     duration_ns=FLEET_BENCH_DURATION_NS, epochs=4)
    workers = max(2, min(jobs, servers))
    previous_cache = sweep._cache_dir
    sweep.configure(cache_dir="")
    try:
        serial = parallel = float("inf")
        serial_fp = parallel_fp = ""
        for _ in range(repeats):
            start = time.perf_counter()
            result = run_fleet(spec, master_seed=0, accuracy="fluid",
                               jobs=1)
            serial = min(serial, time.perf_counter() - start)
            serial_fp = result.fingerprint()
        for _ in range(repeats):
            start = time.perf_counter()
            result = run_fleet(spec, master_seed=0, accuracy="fluid",
                               jobs=workers)
            parallel = min(parallel, time.perf_counter() - start)
            parallel_fp = result.fingerprint()
        sweep.shutdown_pool()
    finally:
        sweep.configure(cache_dir=previous_cache or "")
    cell = {
        "servers": servers,
        "connections": connections,
        "jobs": workers,
        "serial_s": round(serial, 4),
        "parallel_s": round(parallel, 4),
        "fingerprint": serial_fp[:16],
        "fingerprint_match": serial_fp == parallel_fp,
    }
    cpus = os.cpu_count() or 1
    if cpus >= 2:
        speedup = serial / parallel if parallel else 0.0
        cell["speedup"] = round(speedup, 2)
        cell["efficiency"] = round(speedup / min(workers, cpus), 3)
    else:
        cell["speedup"] = 1.0
        cell["efficiency"] = 1.0
        cell["serial_fallback"] = True
    return cell


def bench_ablation_cache(
        duration_ns: int = ABLATION_BENCH_DURATION_NS) -> Dict:
    """Two passes of the fig08 leave-one-out ablation matrix through a
    throwaway sweep cache.  The second pass must be pure cache hits:
    stable content-hash run IDs are what make ablation matrices
    resumable across processes, and a single miss means a config or
    cache key picked up process-dependent state."""
    from repro.experiments.ablate import run_ablation
    previous_cache = sweep._cache_dir
    with tempfile.TemporaryDirectory() as cache_dir:
        sweep.configure(cache_dir=cache_dir)
        try:
            start = time.perf_counter()
            first = run_ablation("fig08", fidelity="quick",
                                 accuracy="fluid",
                                 duration_ns=duration_ns)
            cold = time.perf_counter() - start
            start = time.perf_counter()
            second = run_ablation("fig08", fidelity="quick",
                                  accuracy="fluid",
                                  duration_ns=duration_ns)
            warm = time.perf_counter() - start
        finally:
            sweep.configure(cache_dir=previous_cache or "")
    return {
        "rows": first["cache"]["lookups"],
        "cold_s": round(cold, 4),
        "warm_s": round(warm, 4),
        "cold_hit_rate": round(first["cache"]["hit_rate"], 4),
        "warm_hit_rate": round(second["cache"]["hit_rate"], 4),
    }


def bench_figure(name: str, fidelity: str, jobs: int,
                 repeats: int = 3) -> float:
    """Wall-clock seconds of one full figure sweep at ``jobs`` workers.

    Best-of-``repeats``, like the engine benches: quick sweeps finish in
    tens of milliseconds, where single-shot timings are dominated by
    scheduler noise (enough to flip the serial-vs-parallel speedup on
    hosts where both legs take the serial-fallback path)."""
    previous = sweep.current_jobs()
    sweep.configure(jobs=jobs)
    try:
        wall = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            get_experiment(name).run(fidelity)
            wall = min(wall, time.perf_counter() - start)
        return wall
    finally:
        sweep.configure(jobs=previous)


def _figure_bench(name: str, fidelity: str, jobs: int) -> Dict:
    """Serial and parallel walls for one figure, with the speedup.

    When the executor would structurally take the serial fallback for
    the parallel leg (single-CPU host, jobs=1), both legs run the
    identical inline code and the wall-clock ratio is pure scheduler
    noise — report a speedup of exactly 1.0 with a ``serial_fallback``
    marker instead of letting noise trip the >= 1.0 gate."""
    serial = bench_figure(name, fidelity, 1)
    parallel = bench_figure(name, fidelity, jobs)
    cell = {
        "serial_s": round(serial, 4),
        "parallel_s": round(parallel, 4),
    }
    if sweep.would_parallelize(sweep.MIN_PARALLEL_POINTS, jobs):
        cell["speedup"] = round(serial / parallel, 2) if parallel else 0.0
    else:
        cell["speedup"] = 1.0
        cell["serial_fallback"] = True
    return cell


def run_bench(fidelity: str = "quick", jobs: int = 4) -> Dict:
    """The full harness: engine benches plus serial/parallel figure
    sweeps.  Returns the JSON-serialisable report."""
    engine = {
        "pktgen_remote": bench_engine_point("pktgen", "remote",
                                            ENGINE_DURATION_NS),
        "tcp_rx_ioctopus": bench_engine_point("tcp_rx", "ioctopus",
                                              ENGINE_DURATION_NS),
    }
    adaptive = bench_adaptive_pair()
    accuracy = bench_accuracy_triple()
    obs = bench_obs_pair()
    blame = bench_blame_pair()
    fleet = bench_fleet(jobs=jobs)
    ablation = bench_ablation_cache()
    figures = {name: _figure_bench(name, fidelity, jobs)
               for name in FIGURES}
    sweep.shutdown_pool()
    return {
        "date": time.strftime("%Y-%m-%d"),
        "fidelity": fidelity,
        "jobs": jobs,
        "host": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
        },
        "engine": engine,
        "adaptive": adaptive,
        "accuracy": accuracy,
        "obs": obs,
        "blame": blame,
        "fleet": fleet,
        "ablation": ablation,
        "figures": figures,
    }


def check_regression(current: Dict, baseline: Dict,
                     threshold: float = THRESHOLD) -> List[str]:
    """Compare a report against a baseline; returns failure messages
    (empty list = no regression beyond ``threshold``)."""
    failures = []
    for name, base in baseline.get("engine", {}).items():
        now = current.get("engine", {}).get(name)
        if now is None:
            failures.append(f"engine bench {name!r} missing from report")
            continue
        floor = base["events_per_sec"] * (1.0 - threshold)
        if now["events_per_sec"] < floor:
            failures.append(
                f"engine {name}: {now['events_per_sec']} events/s < "
                f"{floor:.0f} (baseline {base['events_per_sec']} "
                f"- {threshold:.0%})")
        base_epp = base.get("events_per_packet")
        now_epp = now.get("events_per_packet")
        if base_epp and now_epp:
            ceiling = base_epp * (1.0 + threshold)
            if now_epp > ceiling:
                failures.append(
                    f"engine {name}: {now_epp} events/packet > "
                    f"{ceiling:.6f} (baseline {base_epp} "
                    f"+ {threshold:.0%})")
    base_pair = baseline.get("adaptive")
    now_pair = current.get("adaptive")
    if base_pair is not None:
        if now_pair is None:
            failures.append("adaptive pair missing from report")
        else:
            reduction = now_pair.get("events_per_packet_reduction", 0.0)
            floor = max(ADAPTIVE_REDUCTION_FLOOR,
                        base_pair.get("events_per_packet_reduction", 0.0)
                        * (1.0 - threshold))
            if reduction < floor:
                failures.append(
                    f"adaptive: events/packet reduction {reduction}x < "
                    f"{floor:.2f}x floor")
    # Absolute gate, read from the current report (works against
    # baselines predating the fluid tier): the fluid leg of the fig08
    # pktgen quick point must advance simulated packets at least
    # FLUID_SPEEDUP_FLOOR times faster than the exact leg.
    triple = current.get("accuracy")
    if triple is not None:
        speedup = triple.get("fluid", {}).get("speedup", 0.0)
        if speedup < FLUID_SPEEDUP_FLOOR:
            failures.append(
                f"accuracy: fluid packets/wall-s speedup {speedup}x < "
                f"{FLUID_SPEEDUP_FLOOR:.0f}x floor "
                f"({triple['fluid'].get('packets_per_wall_s')} vs exact "
                f"{triple['exact'].get('packets_per_wall_s')} pkts/s)")
    # Absolute gate, read from the current report (a baseline predating
    # the obs pair still gates new reports): a disabled ObsSession must
    # stay within OBS_OVERHEAD_CEILING of the no-obs events/sec.  When
    # the deterministic leg proves the disabled session did zero work
    # (identical event stream, zero obs calls) the overhead is
    # structurally 0% and the noisy wall-clock ratio is ignored.
    obs = current.get("obs")
    if obs is not None:
        if not obs.get("events_match", True):
            failures.append(
                "obs: a disabled ObsSession changed the simulated "
                "event stream (off vs disabled event counts differ)")
        calls = obs.get("disabled_obs_calls", 0)
        overhead = obs.get("disabled_overhead", 0.0)
        if calls and overhead > OBS_OVERHEAD_CEILING:
            failures.append(
                f"obs: {calls} obs calls on the disabled hot path cost "
                f"{overhead:.2%} > {OBS_OVERHEAD_CEILING:.0%} ceiling "
                f"({obs['disabled']['events_per_sec']} vs "
                f"{obs['off']['events_per_sec']} ev/s)")
    # Absolute gate, read from the current report: blame-enabled runs
    # must keep the event stream bit-identical (blame is read-only) and
    # conserve stage charges on every sealed flow.  Attribution cost is
    # bounded structurally by the begin_blame stride-sampling contract;
    # like the disabled-obs gate, the noisy wall-clock ratio is only
    # enforced against OBS_OVERHEAD_CEILING when the deterministic
    # check shows unsampled blame work on the hot path.
    blame = current.get("blame")
    if blame is not None:
        if not blame.get("events_match", True):
            failures.append(
                "blame: attaching a blame session changed the simulated "
                "event stream (off vs blame event counts differ)")
        if not blame.get("conservation_ok", True):
            failures.append(
                "blame: stage charges failed the stage-sum == "
                "end-to-end conservation check")
        overhead = blame.get("blame_overhead", 0.0)
        if not blame.get("sampling_ok", True) \
                and overhead > OBS_OVERHEAD_CEILING:
            failures.append(
                f"blame: burst sampling broken ({blame['flows']} flows "
                f"from {blame['candidates']} candidates at stride "
                f"{blame['stride']}) and attribution costs "
                f"{overhead:.2%} > {OBS_OVERHEAD_CEILING:.0%} ceiling "
                f"({blame['blame']['events_per_sec']} vs "
                f"{blame['off']['events_per_sec']} ev/s)")
    # Fleet gates.  The fingerprint cross-check and the efficiency floor
    # read only the current report (machine-independent / host-gated);
    # the serial wall regresses against the baseline like the figures.
    fleet = current.get("fleet")
    if fleet is not None:
        if not fleet.get("fingerprint_match", True):
            failures.append(
                "fleet: merged fingerprint differs between the inline "
                "run and the process-sharded run (determinism broken)")
        if (not fleet.get("serial_fallback")
                and fleet.get("efficiency", 1.0) < FLEET_EFFICIENCY_FLOOR):
            failures.append(
                f"fleet: parallel scaling efficiency "
                f"{fleet['efficiency']} < {FLEET_EFFICIENCY_FLOOR} floor "
                f"(serial {fleet['serial_s']}s, parallel "
                f"{fleet['parallel_s']}s at jobs={fleet['jobs']})")
    base_fleet = baseline.get("fleet")
    if base_fleet is not None:
        if fleet is None:
            failures.append("fleet bench missing from report")
        else:
            ceiling = base_fleet["serial_s"] * (1.0 + threshold)
            if fleet["serial_s"] > ceiling:
                failures.append(
                    f"fleet: serial {fleet['serial_s']}s > "
                    f"{ceiling:.3f}s (baseline "
                    f"{base_fleet['serial_s']}s + {threshold:.0%})")
    # Absolute gate, read from the current report: re-running an
    # identical ablation matrix must be pure cache hits (run-ID
    # stability across processes is the ablation engine's contract).
    ablation = current.get("ablation")
    if ablation is not None and ablation.get("warm_hit_rate", 1.0) < 1.0:
        failures.append(
            f"ablation: second-pass matrix hit rate "
            f"{ablation['warm_hit_rate']:.0%} < 100% "
            f"({ablation['rows']} rows; a miss means an unstable "
            f"cache key)")
    for name, base in baseline.get("figures", {}).items():
        now = current.get("figures", {}).get(name)
        if now is None:
            failures.append(f"figure bench {name!r} missing from report")
            continue
        ceiling = base["serial_s"] * (1.0 + threshold)
        if now["serial_s"] > ceiling:
            failures.append(
                f"figure {name}: serial {now['serial_s']}s > "
                f"{ceiling:.3f}s (baseline {base['serial_s']}s "
                f"+ {threshold:.0%})")
    # Absolute floor from the current report: a parallel sweep must
    # never lose to serial (structural fallbacks report exactly 1.0).
    for name, now in current.get("figures", {}).items():
        if now.get("speedup", 1.0) < FIGURE_SPEEDUP_FLOOR:
            failures.append(
                f"figure {name}: parallel speedup {now['speedup']}x < "
                f"{FIGURE_SPEEDUP_FLOOR}x floor (serial "
                f"{now['serial_s']}s, parallel {now['parallel_s']}s)")
    return failures


def format_report(report: Dict) -> str:
    lines = [f"bench {report['date']}  fidelity={report['fidelity']}  "
             f"jobs={report['jobs']}  cpus={report['host']['cpus']}"]
    for name, point in report["engine"].items():
        lines.append(f"  engine {name:18s} {point['events']:>9d} events  "
                     f"{point['wall_s']:>7.3f}s  "
                     f"{point['events_per_sec']:>8d} ev/s  "
                     f"{point.get('events_per_packet', 0.0):>8.5f} ev/pkt")
    pair = report.get("adaptive")
    if pair:
        lines.append(
            f"  adaptive pktgen_remote    "
            f"{pair['exact']['events_per_packet']:.5f} -> "
            f"{pair['adaptive']['events_per_packet']:.5f} ev/pkt  "
            f"({pair['events_per_packet_reduction']:.1f}x fewer, "
            f"metric off by {pair['metric_rel_error']:.2%})")
    triple = report.get("accuracy")
    if triple:
        for accuracy in ("adaptive", "fluid"):
            leg = triple.get(accuracy)
            if not leg:
                continue
            lines.append(
                f"  accuracy {accuracy:8s} pktgen_remote  "
                f"{leg['packets_per_wall_s']:>9d} pkts/wall-s  "
                f"({leg['speedup']:.1f}x exact, metric off by "
                f"{leg['metric_rel_error']:.2%})")
    obs = report.get("obs")
    if obs:
        lines.append(
            f"  obs    {obs['kind']}_{obs['config']}    "
            f"disabled {obs['disabled_overhead']:+.2%} "
            f"({obs.get('disabled_obs_calls', 0)} obs calls, events "
            f"{'match' if obs.get('events_match') else 'DIFFER'})  "
            f"enabled {obs['enabled_overhead']:+.2%}  "
            f"(off {obs['off']['events_per_sec']} ev/s)")
    blame = report.get("blame")
    if blame:
        lines.append(
            f"  blame  {blame['kind']}_{blame['config']}    "
            f"overhead {blame['blame_overhead']:+.2%}  "
            f"({blame['flows']}/{blame['candidates']} flows sampled "
            f"at stride {blame['stride']}, conservation "
            f"{'ok' if blame.get('conservation_ok') else 'VIOLATED'}, "
            f"events "
            f"{'match' if blame.get('events_match') else 'DIFFER'})")
    fleet = report.get("fleet")
    if fleet:
        marker = ("  (serial fallback)" if fleet.get("serial_fallback")
                  else "")
        lines.append(
            f"  fleet  {fleet['servers']}srv/"
            f"{fleet['connections']}conn     "
            f"serial {fleet['serial_s']:.3f}s  jobs={fleet['jobs']} "
            f"{fleet['parallel_s']:.3f}s  efficiency "
            f"{fleet['efficiency']:.2f}  fingerprint "
            f"{'match' if fleet['fingerprint_match'] else 'DIFFERS'}"
            f"{marker}")
    ablation = report.get("ablation")
    if ablation:
        lines.append(
            f"  ablate fig08 matrix       {ablation['rows']} rows  "
            f"cold {ablation['cold_s']:.3f}s "
            f"({ablation['cold_hit_rate']:.0%} hits)  warm "
            f"{ablation['warm_s']:.3f}s "
            f"({ablation['warm_hit_rate']:.0%} hits)")
    for name, fig in report["figures"].items():
        marker = "  (serial fallback)" if fig.get("serial_fallback") else ""
        lines.append(f"  figure {name:18s} serial {fig['serial_s']:.3f}s  "
                     f"jobs={report['jobs']} {fig['parallel_s']:.3f}s  "
                     f"speedup {fig['speedup']:.2f}x{marker}")
    return "\n".join(lines)
