"""Benchmark: regenerate Figure 10 (memcached vs SET ratio, §5.1.3)."""


def test_fig10_memcached(run_experiment):
    result = run_experiment("fig10")
    ratios = result.column("ratio")
    assert ratios[-1] > ratios[0]
    assert ratios[-1] >= 1.10   # paper: up to ~1.16x
