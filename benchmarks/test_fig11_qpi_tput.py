"""Benchmark: regenerate Figure 11 (TCP Rx under QPI congestion, §5.2)."""


def test_fig11_qpi_tput(run_experiment):
    result = run_experiment("fig11")
    ratios = result.column("ratio")
    assert max(ratios) >= 1.7   # paper: 1.82x-2.67x
    assert ratios[-1] > ratios[0]
