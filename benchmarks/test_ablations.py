"""Benchmarks: the design-choice ablations DESIGN.md calls out."""


def test_abl_wiring(run_experiment):
    result = run_experiment("abl_wiring")
    rows = {r["wiring"]: r for r in result.as_dicts()}
    # The switch costs per-operation latency, lanes and power, but only a
    # little throughput (§3.2's drawbacks list).
    assert rows["switch"]["doorbell_ns"] > rows["bifurcation"]["doorbell_ns"]
    assert rows["switch"]["lanes"] > rows["bifurcation"]["lanes"]
    assert rows["switch"]["pktgen_mpps"] > 0.95 * rows["bifurcation"]["pktgen_mpps"]


def test_abl_sg(run_experiment):
    result = run_experiment("abl_sg")
    for row in result.as_dicts():
        assert row["speedup"] > 1.5
        assert row["interconnect_bytes_fixed"] > 0


def test_abl_octossd(run_experiment):
    result = run_experiment("abl_octossd")
    for row in result.as_dicts():
        assert row["octossd_norm"] >= 0.98   # storage NUDMA eliminated
    assert min(result.column("single_port_norm")) < 0.85


def test_abl_ddio(run_experiment):
    result = run_experiment("abl_ddio")
    per_gbit = result.column("membw_per_gbit")
    assert per_gbit[-1] > per_gbit[0] * 1.5  # smaller LLC -> more traffic


def test_abl_window(run_experiment):
    result = run_experiment("abl_window")
    rates = result.column("remote_rx_gbps")
    # Monotone in window depth up to plateau noise once saturated.
    assert all(b >= a * 0.98 for a, b in zip(rates, rates[1:]))
    assert rates[-1] > rates[0] * 2


def test_abl_scale(run_experiment):
    result = run_experiment("abl_scale")
    for row in result.as_dicts():
        assert row["octo_gbps"] >= row["standard_pf0_gbps"]
    # Remote nodes pay with the standard NIC, never with the octoNIC.
    remote_rows = [r for r in result.as_dicts() if r["workload_node"] != 0]
    assert all(r["standard_pf0_gbps"] < r["octo_gbps"] * 0.85
               for r in remote_rows)
