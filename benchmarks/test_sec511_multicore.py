"""Benchmark: regenerate the §5.1.1 multi-core throughput experiment."""


def test_sec511_multicore(run_experiment):
    result = run_experiment("sec511")
    rows = {r["config"]: r for r in result.as_dicts()}
    assert rows["ioctopus"]["total_gbps"] > 85   # line rate via both PFs
    assert rows["ioctopus"]["membw_gbps"] > 10   # memory traffic appears
