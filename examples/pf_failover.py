#!/usr/bin/env python3
"""Surprise-remove a PF mid-run and watch the octoNIC degrade, not die.

A netperf TCP Rx process runs on socket 1, served by PF1 (its local
PF).  At 200 ms PF1 is hot-unplugged: the team driver re-homes socket
1's queues onto PF0, re-points the live ARFS/IOctoRFS rules after the
dead queues drain, and throughput settles at the nonuniform-DMA
(`remote`) level.  At 400 ms PF1 returns and full-speed local DMA
resumes.  The whole episode is driven by a declarative FaultPlan and is
reproducible from the seed.

Run:  python examples/pf_failover.py
"""

from repro.experiments.fig_failover import run_failover

DURATION_NS = 600_000_000
FAIL_AT_NS = 200_000_000
RECOVER_AT_NS = 400_000_000


def main() -> None:
    print("TCP Rx throughput per physical function, sampled every 50 ms")
    print(f"(PF1 removed at {FAIL_AT_NS / 1e6:.0f} ms, recovered at "
          f"{RECOVER_AT_NS / 1e6:.0f} ms)\n")
    run = run_failover(DURATION_NS, FAIL_AT_NS, RECOVER_AT_NS, seed=0)
    for t, pf0, pf1 in zip(run.series["pf0"].times_ns,
                           run.series["pf0"].values,
                           run.series["pf1"].values):
        marker = ""
        if t == FAIL_AT_NS + 50_000_000:
            marker = "   <- PF1 gone: failover to PF0 (remote DMA)"
        elif t == RECOVER_AT_NS + 50_000_000:
            marker = "   <- PF1 back: local DMA again"
        print(f"    t={t / 1e6:5.0f} ms  pf0={pf0:6.2f} Gb/s  "
              f"pf1={pf1:6.2f} Gb/s{marker}")

    print("\nFault/recovery trace (deterministic for a given seed):")
    for line in run.trace:
        print(f"    {line}")

    pre = run.series["pf1"].mean(0, FAIL_AT_NS)
    during = run.series["pf0"].mean(FAIL_AT_NS + 50_000_000, RECOVER_AT_NS)
    after = run.series["pf1"].mean(RECOVER_AT_NS + 50_000_000)
    print(f"\npre-fault {pre:.2f} Gb/s -> degraded {during:.2f} Gb/s "
          f"-> recovered {after:.2f} Gb/s")
    print("The octoNIC loses its locality advantage while PF1 is out — "
          "but never the netdev.")


if __name__ == "__main__":
    main()
