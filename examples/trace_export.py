#!/usr/bin/env python3
"""Export a simulation trace for chrome://tracing / Perfetto.

Runs the octoNIC PF-failover scenario with tracing enabled, then writes
the collected device/driver/fault events as Chrome trace-event JSON.
Open the output in chrome://tracing or https://ui.perfetto.dev — each
trace source (the NIC, the team driver, the fault injector) appears as
its own row of instant events.

Run:  python examples/trace_export.py [out.json]
"""

import sys

from repro.experiments.fig_failover import run_failover

DURATION_NS = 600_000_000
FAIL_AT_NS = 200_000_000
RECOVER_AT_NS = 400_000_000


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "failover_trace.json"
    run = run_failover(DURATION_NS, FAIL_AT_NS, RECOVER_AT_NS)
    tracer = run.workload.host.machine.tracer

    print(f"collected {len(tracer.records)} trace records:")
    for event, count in sorted(tracer.counts().items()):
        print(f"  {count:6d}  {event}")

    with open(out_path, "w") as handle:
        handle.write(tracer.to_chrome_trace(process_name="octoNIC-failover"))
    print(f"\nwrote {out_path} — load it in chrome://tracing or "
          "https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
