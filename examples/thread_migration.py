#!/usr/bin/env python3
"""The Figure 14 scenario: migrate a busy receiver across sockets.

A netperf TCP Rx process starts on socket 0 (local to PF0) and is moved
to socket 1 with ``sched_setaffinity`` mid-run.  With the octoNIC, the
ARFS migration callback triggers an IOctoRFS update and traffic moves to
PF1 at full speed; with the standard firmware the flow is pinned to PF0's
netdev and throughput falls to the remote level.

Run:  python examples/thread_migration.py
"""

from repro.core import Testbed
from repro.nic.packet import Flow
from repro.units import KB
from repro.workloads import TcpStream

DURATION_NS = 400_000_000
MIGRATE_AT_NS = 200_000_000
SAMPLE_NS = 50_000_000


def run(config: str) -> None:
    testbed = Testbed(config)
    host = testbed.server
    label = "octoNIC" if config == "ioctopus" else "ethNIC (standard)"
    start = host.machine.cores_on_node(0)[0]
    target = host.machine.cores_on_node(1)[0]
    workload = TcpStream(host, start, Flow.make(0), 64 * KB, "rx",
                         DURATION_NS)

    def migrator():
        yield testbed.env.timeout(MIGRATE_AT_NS)
        host.scheduler.set_affinity(workload.thread, target)
        print(f"    -> sched_setaffinity: core {start.core_id} "
              f"(node 0) => core {target.core_id} (node 1)")

    def sampler():
        while testbed.env.now < DURATION_NS:
            host.nic.reset_pf_windows()
            yield testbed.env.timeout(SAMPLE_NS)
            t_ms = testbed.env.now / 1e6
            pf0 = host.nic.pf_window_rx_gbps(0)
            pf1 = host.nic.pf_window_rx_gbps(1)
            print(f"    t={t_ms:5.0f} ms  pf0={pf0:6.2f} Gb/s  "
                  f"pf1={pf1:6.2f} Gb/s")

    testbed.env.process(migrator(), name="migrator")
    testbed.env.process(sampler(), name="sampler")
    print(f"\n{label}:")
    testbed.run(DURATION_NS + SAMPLE_NS)


def main() -> None:
    print("TCP Rx throughput per physical function, sampled every 50 ms "
          f"(migration at {MIGRATE_AT_NS / 1e6:.0f} ms)")
    for config in ("ioctopus", "local"):
        run(config)
    print("\nThe octoNIC hands the flow to the newly-local PF without "
          "losing throughput;\nthe standard NIC cannot — its flow is "
          "chained to PF0's MAC, so it runs remote forever.")


if __name__ == "__main__":
    main()
