#!/usr/bin/env python3
"""Key-value serving under interconnect pressure (Figures 10-12 themes).

Runs a memcached server (14 memslap clients, 512 KB values, 50% SETs)
while STREAM pairs hammer the QPI from the remaining cores — the noisy-
neighbour situation a data-center operator actually faces.  Compares the
remote placement against the octoNIC.

Run:  python examples/keyvalue_colocation.py
"""

from repro.core import Testbed
from repro.workloads import MemcachedServer, spawn_stream_pairs

DURATION_NS = 60_000_000
WARMUP_NS = 10_000_000
WORKER_CORES = 2
STREAM_PAIRS = 4
SET_FRACTION = 0.5


def run(config: str, antagonists: bool) -> float:
    testbed = Testbed(config)
    host = testbed.server
    cores = host.machine.cores_on_node(
        testbed.server_workload_node)[:WORKER_CORES]
    server = MemcachedServer(host, cores, SET_FRACTION, DURATION_NS,
                             WARMUP_NS)
    if antagonists:
        spawn_stream_pairs(host, STREAM_PAIRS, DURATION_NS, WARMUP_NS,
                           skip_cores=cores)
    testbed.run(DURATION_NS + DURATION_NS // 5)
    return server.transactions_ktps()


def main() -> None:
    print("memcached, 512 KB values, 50% SETs, 14 memslap clients\n")
    print(f"{'placement':12s} {'quiet':>12s} {'QPI-loaded':>12s} "
          f"{'loss':>8s}")
    for config in ("ioctopus", "remote"):
        quiet = run(config, antagonists=False)
        loaded = run(config, antagonists=True)
        loss = 1 - loaded / quiet
        print(f"{config:12s} {quiet:8.2f} KT/s {loaded:8.2f} KT/s "
              f"{loss:7.1%}")
    print("\nThe remote placement loses both baseline throughput (NUDMA "
          "on the SET path)\nand more again under interconnect load; the "
          "octoNIC serves from the local PF\nregardless of where the "
          "operator's scheduler put the threads.")


if __name__ == "__main__":
    main()
