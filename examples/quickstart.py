#!/usr/bin/env python3
"""Quickstart: measure NUDMA, then eliminate it with the octoNIC.

Builds the paper's testbed (a dual-socket Dell R730 wired back-to-back to
a client at 100 GbE), runs a single-core netperf TCP receive on the
socket *far* from the NIC's primary PCIe function under all three
configurations, and prints what the paper's Figure 6 distils: `remote`
loses ~25% of its throughput and burns ~3x the memory bandwidth, while
`ioctopus` is indistinguishable from `local`.

Run:  python examples/quickstart.py
"""

from repro.core import Testbed
from repro.experiments.runners import MembwProbe, warmup_of
from repro.nic.packet import Flow
from repro.units import KB
from repro.workloads import TcpStream

DURATION_NS = 40_000_000   # 40 ms of simulated traffic
MESSAGE = 64 * KB


def run_one(config: str) -> dict:
    testbed = Testbed(config)
    workload = TcpStream(testbed.server, testbed.server_core(0),
                         Flow.make(0), MESSAGE, "rx", DURATION_NS,
                         warmup_of(DURATION_NS))
    probe = MembwProbe(testbed, DURATION_NS)
    testbed.run(DURATION_NS + DURATION_NS // 5)
    return {
        "throughput": workload.throughput_gbps(),
        "membw": probe.gbps,
        "cpu": probe.cpu(workload.thread.core),
    }


def main() -> None:
    print(f"single-core netperf TCP Rx, {MESSAGE // KB} KB messages\n")
    print(f"{'config':10s} {'throughput':>12s} {'memory bw':>12s} "
          f"{'cpu':>6s}")
    results = {}
    for config in ("local", "remote", "ioctopus"):
        r = run_one(config)
        results[config] = r
        print(f"{config:10s} {r['throughput']:9.2f} Gb/s "
              f"{r['membw']:9.2f} Gb/s {r['cpu']:6.2f}")

    gap = results["local"]["throughput"] / results["remote"]["throughput"]
    print(f"\nNUDMA cost: remote is {gap:.2f}x slower than local "
          f"(paper: ~1.25x at this size).")
    print("ioctopus equals local even though its thread runs on the "
          "'wrong' socket: the octoNIC steered every DMA to the PF local "
          "to the thread.")


if __name__ == "__main__":
    main()
