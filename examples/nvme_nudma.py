#!/usr/bin/env python3
"""Storage NUDMA and the octoSSD (§5.4, Figure 15 + future work).

Four NVMe SSDs attached to socket 0 serve 8 fio threads pinned to socket
1, while STREAM antagonists congest the same UPI direction as the SSD
DMA.  Then the same drives are rebuilt as dual-port "octoSSDs" — the
IOctopus principle applied to storage — and the sensitivity disappears.

Run:  python examples/nvme_nudma.py
"""

from repro.core.configurations import Host
from repro.nic.device import NicDevice
from repro.nic.firmware import StandardFirmware
from repro.nvme import NvmeController, NvmeDriver
from repro.os_model.driver import StandardDriver
from repro.pcie.fabric import bifurcate
from repro.topology import dell_skylake
from repro.workloads import spawn_fio_fleet
from repro.workloads.stream_bench import StreamThread

DURATION_NS = 100_000_000
WARMUP_NS = 20_000_000
N_SSDS = 4
FIO_THREADS = 8


def run(octo: bool, n_streams: int) -> float:
    machine = dell_skylake()
    nic = NicDevice(machine, bifurcate(machine, 16, [0], name="mgmt"),
                    StandardFirmware(1))
    host = Host(machine, nic, StandardDriver(machine, nic, 0))
    attach = [0, 1] if octo else [0]
    ssds = [NvmeController(machine,
                           bifurcate(machine, 8 * len(attach), attach,
                                     name=f"ssd{i}"), name=f"ssd{i}")
            for i in range(N_SSDS)]
    drivers = [NvmeDriver(machine, ssd, octo_mode=octo) for ssd in ssds]
    fio_cores = machine.cores_on_node(1)[:FIO_THREADS]
    fleet = spawn_fio_fleet(host, fio_cores, drivers, DURATION_NS,
                            WARMUP_NS)
    for i in range(n_streams):
        StreamThread(host, machine.cores_on_node(0)[i], target_node=1,
                     kind="write", duration_ns=DURATION_NS,
                     warmup_ns=WARMUP_NS)
    machine.env.run(until=DURATION_NS + DURATION_NS // 5)
    return sum(f.throughput_gbps() for f in fleet) / 8  # Gb/s -> GB/s


def main() -> None:
    print("8 fio threads (async direct 128 KB reads, iodepth 32) on the "
          "socket remote\nfrom 4 NVMe SSDs, with UPI-congesting STREAM "
          "instances:\n")
    print(f"{'streams':>8s} {'single-port SSD':>18s} "
          f"{'dual-port octoSSD':>18s}")
    base_std = run(False, 0)
    base_octo = run(True, 0)
    for streams in (0, 2, 5, 10):
        std = run(False, streams)
        octo = run(True, streams)
        print(f"{streams:8d} {std:10.2f} GB/s ({std / base_std:4.0%}) "
              f"{octo:10.2f} GB/s ({octo / base_octo:4.0%})")
    print("\nSingle-port drives lose up to ~24% behind the saturated "
          "UPI; the octoSSD's\ncommands and data never cross it, so its "
          "throughput does not move.")


if __name__ == "__main__":
    main()
