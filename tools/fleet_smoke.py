#!/usr/bin/env python3
"""Fleet determinism smoke: run a small rack and verify the headline
claim — the merged fleet fingerprint is identical across repeats and
across ``--jobs`` values (process sharding is invisible).

Usage::

    python tools/fleet_smoke.py                      # 2-server smoke
    python tools/fleet_smoke.py --servers 4 --jobs 4
    python tools/fleet_smoke.py --print-fingerprint  # golden-spec hash

``--print-fingerprint`` runs the pinned golden spec of
``tests/cluster/test_fleet.py`` and prints its fingerprint — the one
deliberate way to regenerate ``GOLDEN_FINGERPRINT`` after a behaviour
change.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.cluster import FleetSpec, run_fleet  # noqa: E402
from repro.experiments import sweep  # noqa: E402

#: Mirror of tests/cluster/test_fleet.py's pinned golden fleet.
GOLDEN_SPEC = dict(servers=4, connections=8192, duration_ns=4_000_000,
                   epochs=4)
GOLDEN_SEED = 7


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--servers", type=int, default=2)
    parser.add_argument("--connections", type=int, default=4096)
    parser.add_argument("--duration-ns", type=int, default=2_000_000)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=2,
                        help="workers for the cross-process leg")
    parser.add_argument("--print-fingerprint", action="store_true",
                        help="print the golden spec's fleet fingerprint "
                             "and exit")
    args = parser.parse_args(argv)

    if args.print_fingerprint:
        fleet = run_fleet(FleetSpec(**GOLDEN_SPEC),
                          master_seed=GOLDEN_SEED, accuracy="fluid",
                          jobs=1)
        print(fleet.fingerprint())
        return 0

    spec = FleetSpec(servers=args.servers, connections=args.connections,
                     duration_ns=args.duration_ns, epochs=args.epochs)
    inline = run_fleet(spec, master_seed=args.seed, accuracy="fluid",
                       jobs=1)
    again = run_fleet(spec, master_seed=args.seed, accuracy="fluid",
                      jobs=1)
    try:
        sharded = run_fleet(spec, master_seed=args.seed,
                            accuracy="fluid", jobs=args.jobs)
    finally:
        sweep.shutdown_pool()

    summary = inline.summary()
    print(f"fleet {spec.servers} servers x {spec.connections} conns: "
          f"served {summary['served']}, lost {summary['lost']}, "
          f"p99 {summary.get('p99_ns', 0) / 1000:.1f}us")
    print(f"  inline fingerprint  {inline.fingerprint()}")
    print(f"  repeat fingerprint  {again.fingerprint()}")
    print(f"  jobs={args.jobs} fingerprint  {sharded.fingerprint()}")

    ok = (inline.fingerprint() == again.fingerprint()
          == sharded.fingerprint())
    conserved = summary["planned"] == summary["served"] + summary["lost"]
    if not ok:
        print("FAIL: fleet fingerprint is not deterministic",
              file=sys.stderr)
    if not conserved:
        print("FAIL: planned != served + lost", file=sys.stderr)
    if ok and conserved:
        print("fleet smoke OK: deterministic across repeats and jobs")
    return 0 if ok and conserved else 1


if __name__ == "__main__":
    sys.exit(main())
