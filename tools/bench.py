#!/usr/bin/env python3
"""Run the perf-regression harness and write ``BENCH_<date>.json``.

Usage::

    python tools/bench.py                          # quick fidelity, 4 jobs
    python tools/bench.py --fidelity normal --jobs 8
    python tools/bench.py --check benchmarks/perf/BENCH_2026-08-05.json

With ``--check BASELINE`` the exit status is 1 when events/sec drops,
events-per-packet grows, serial figure wall-clock grows by more than
``--threshold`` (default 20%) against the baseline report, or the
adaptive train fast path no longer cuts events-per-packet by at least
its floor (see ``perf.harness.ADAPTIVE_REDUCTION_FLOOR``) on the fig08
pktgen point, or carrying a disabled ObsSession costs more than
``perf.harness.OBS_OVERHEAD_CEILING`` of events/sec, or the fleet
bench's process-sharded fingerprint diverges from the inline run (or
its scaling efficiency drops below ``FLEET_EFFICIENCY_FLOOR`` on
multi-CPU hosts).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

from perf.harness import (THRESHOLD, check_regression, format_report,
                          run_bench)  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fidelity", default="quick",
                        choices=["quick", "normal", "long"])
    parser.add_argument("--jobs", type=int, default=4,
                        help="workers for the parallel figure pass")
    parser.add_argument("--output", default=None,
                        help="report path (default: "
                             "benchmarks/perf/BENCH_<date>.json)")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="baseline JSON to gate against")
    parser.add_argument("--threshold", type=float, default=THRESHOLD,
                        help="allowed fractional regression "
                             "(default %(default)s)")
    args = parser.parse_args(argv)

    report = run_bench(fidelity=args.fidelity, jobs=args.jobs)
    print(format_report(report))

    output = args.output or str(
        REPO / "benchmarks" / "perf"
        / f"BENCH_{time.strftime('%Y-%m-%d')}.json")
    Path(output).parent.mkdir(parents=True, exist_ok=True)
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check_regression(report, baseline, args.threshold)
        if failures:
            print(f"PERF REGRESSION vs {args.check}:", file=sys.stderr)
            for message in failures:
                print(f"  - {message}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.check} "
              f"(threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
