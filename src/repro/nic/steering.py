"""NIC-side steering tables: RSS, ARFS, and the multi-PF switch (MPFS).

The paper's prototype composes two existing NIC features (§4.1):

* **ARFS** tables map a flow 5-tuple to an Rx queue, *per PF*.
* The **MPFS** — an integrated multi-PF Ethernet switch — steers arriving
  packets to a PF.  Standard firmware keys it by destination MAC; the
  octoNIC firmware keys it by flow 5-tuple instead (IOctoRFS).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.nic.packet import Flow


#: Memoised CRC32 of each flow's 5-tuple repr (the hash is pure, and the
#: same handful of flows is hashed once per delivered batch on the hot
#: receive path).
_RSS_CRC_CACHE: Dict[Flow, int] = {}


def rss_hash(flow: Flow, buckets: int) -> int:
    """Deterministic stand-in for the Toeplitz RSS hash."""
    if buckets < 1:
        raise ValueError(f"need >= 1 bucket, got {buckets}")
    crc = _RSS_CRC_CACHE.get(flow)
    if crc is None:
        crc = zlib.crc32(repr(flow.as_tuple()).encode())
        _RSS_CRC_CACHE[flow] = crc
    return crc % buckets


@dataclass
class SteeringRule:
    """One ARFS/IOctoRFS table entry."""

    flow: Flow
    target: object           # an RxQueue (ARFS) or a PF id (IOctoRFS)
    updated_at: int = 0
    last_hit_at: int = 0


class ArfsTable:
    """Per-PF flow -> Rx queue map (Accelerated Receive Flow Steering)."""

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rules: Dict[Flow, SteeringRule] = {}
        #: Bumped on every structural change; steering caches key on it.
        self.version = 0

    def __len__(self) -> int:
        return len(self._rules)

    def update(self, flow: Flow, queue, now: int = 0) -> None:
        """Insert or re-point a rule (the OS's ARFS callback path)."""
        self.version += 1
        rule = self._rules.get(flow)
        if rule is None:
            if len(self._rules) >= self.capacity:
                self._expire_one()
            self._rules[flow] = SteeringRule(flow, queue, updated_at=now,
                                             last_hit_at=now)
        else:
            rule.target = queue
            rule.updated_at = now

    def lookup(self, flow: Flow, now: int = 0):
        rule = self._rules.get(flow)
        if rule is None:
            return None
        rule.last_hit_at = now
        return rule.target

    def lookup_rule(self, flow: Flow) -> Optional[SteeringRule]:
        """The live rule object (no recency side effect); cache helper."""
        return self._rules.get(flow)

    def remove(self, flow: Flow) -> bool:
        if self._rules.pop(flow, None) is None:
            return False
        self.version += 1
        return True

    def snapshot(self) -> List[tuple]:
        """Stable (flow, queue) pairs — safe to iterate while mutating
        the table (used by the failover path to migrate rules)."""
        return [(flow, rule.target) for flow, rule in self._rules.items()]

    def expire_idle(self, now: int, idle_ns: int) -> List[Flow]:
        """Drop rules idle longer than ``idle_ns`` (the periodic kernel
        worker the driver runs, §4.2).  Returns expired flows."""
        expired = [flow for flow, rule in self._rules.items()
                   if now - rule.last_hit_at > idle_ns]
        for flow in expired:
            del self._rules[flow]
        if expired:
            self.version += 1
        return expired

    def _expire_one(self) -> None:
        oldest = min(self._rules.values(), key=lambda r: r.last_hit_at)
        del self._rules[oldest.flow]
        self.version += 1


class Mpfs:
    """The multi-PF Ethernet switch.

    ``mode="mac"`` reproduces standard firmware: the destination MAC
    uniquely picks a PF, so a flow's PF can never change — the root cause
    of NUDMA (§3.3).  ``mode="flow"`` is the octoNIC modification: a
    5-tuple table picks the PF, with a default for unmapped flows.
    """

    def __init__(self, mode: str, default_pf_id: int = 0):
        if mode not in ("mac", "flow"):
            raise ValueError(f"unknown MPFS mode {mode!r}")
        self.mode = mode
        self.default_pf_id = default_pf_id
        self._mac_table: Dict[str, int] = {}
        self._flow_table: Dict[Flow, SteeringRule] = {}
        #: Bumped on every structural change; steering caches key on it.
        self.version = 0

    # ----------------------------------------------------------- mac mode

    def bind_mac(self, mac: str, pf_id: int) -> None:
        self._mac_table[mac] = pf_id
        self.version += 1

    # ---------------------------------------------------------- flow mode

    def update_flow(self, flow: Flow, pf_id: int, now: int = 0) -> None:
        if self.mode != "flow":
            raise ValueError("flow rules need an IOctoRFS-mode MPFS")
        self.version += 1
        rule = self._flow_table.get(flow)
        if rule is None:
            self._flow_table[flow] = SteeringRule(flow, pf_id,
                                                  updated_at=now,
                                                  last_hit_at=now)
        else:
            rule.target = pf_id
            rule.updated_at = now

    def remove_flow(self, flow: Flow) -> bool:
        if self._flow_table.pop(flow, None) is None:
            return False
        self.version += 1
        return True

    def expire_idle(self, now: int, idle_ns: int) -> List[Flow]:
        expired = [flow for flow, rule in self._flow_table.items()
                   if now - rule.last_hit_at > idle_ns]
        for flow in expired:
            del self._flow_table[flow]
        if expired:
            self.version += 1
        return expired

    def steer_rule(self, flow: Flow) -> Optional[SteeringRule]:
        """The live flow rule object (no recency side effect); cache
        helper for the firmware's memoised steering path."""
        return self._flow_table.get(flow)

    def flow_rule_count(self) -> int:
        return len(self._flow_table)

    def current_pf(self, flow: Flow) -> Optional[int]:
        """The PF a flow is currently steered to, or None if unmapped."""
        rule = self._flow_table.get(flow)
        return None if rule is None else rule.target

    def flows_on_pf(self, pf_id: int) -> List[Flow]:
        """All flows currently steered to ``pf_id`` (failover re-steer)."""
        return [flow for flow, rule in self._flow_table.items()
                if rule.target == pf_id]

    # ------------------------------------------------------------- lookup

    def steer(self, flow: Flow, dst_mac: str, now: int = 0) -> int:
        """Pick the PF for an arriving packet."""
        if self.mode == "mac":
            return self._mac_table.get(dst_mac, self.default_pf_id)
        rule = self._flow_table.get(flow)
        if rule is None:
            return self.default_pf_id
        rule.last_hit_at = now
        return rule.target
