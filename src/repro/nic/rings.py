"""Per-core NIC queues and their descriptor rings.

Each queue owns two memory regions, allocated on the node of the core it
serves (the XPS/ARFS locality policy, §2.3):

* a **ring** region holding request + completion descriptors, and
* a **buffer** region holding packet payloads (Rx only; Tx reads payload
  from whatever region the sender provides).
"""

from __future__ import annotations

from typing import Optional

from repro.memory.region import Region
from repro.nic.moderation import AdaptiveCoalescing
from repro.units import CACHELINE, KB

#: Descriptors per ring (100 GbE drivers default to deep rings).
RING_ENTRIES = 4096
#: Rx buffer slot size: one MTU packet rounded to 2 KB pages.
RX_BUFFER_SLOT = 2 * KB


class NicQueue:
    """Base class for Tx/Rx queues."""

    direction = "?"

    def __init__(self, queue_id: int, core, machine, pf=None):
        self.queue_id = queue_id
        self.core = core
        self.machine = machine
        #: The PF this queue is currently served by (set by the driver).
        self.pf = pf
        self.ring = machine.alloc_region(
            f"{self.direction}ring{queue_id}", core.node_id,
            RING_ENTRIES * CACHELINE)
        #: Per-queue adaptive interrupt moderation (§5: enabled for the
        #: throughput experiments, disabled for latency).
        self.moderation = AdaptiveCoalescing()
        #: Outstanding descriptors not yet consumed (for drain tracking).
        self.outstanding = 0
        self.bytes_total = 0
        self.packets_total = 0

    @property
    def node_id(self) -> int:
        return self.core.node_id

    def is_drained(self) -> bool:
        """True when no descriptors are outstanding — the precondition
        both XPS and ARFS wait for before re-steering a socket, to avoid
        out-of-order delivery (§2.3)."""
        return self.outstanding == 0

    def account(self, npackets: int, nbytes: int) -> None:
        self.packets_total += npackets
        self.bytes_total += nbytes

    def descriptors_until_wrap(self) -> int:
        """Descriptors left before the producer index wraps the ring.

        A coalesced packet train must not cross a queue wrap: the wrap is
        where real drivers re-arm doorbells and recycle completions, so
        the train planner caps a train at this many descriptors.
        """
        return RING_ENTRIES - (self.packets_total % RING_ENTRIES)

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.queue_id} "
                f"core={self.core.core_id} pf={getattr(self.pf, 'name', None)}>")


class RxQueue(NicQueue):
    """A receive queue: NIC DMA-writes payloads + completions here."""

    direction = "rx"

    def __init__(self, queue_id: int, core, machine, pf=None):
        super().__init__(queue_id, core, machine, pf)
        self.buffers = machine.alloc_region(
            f"rxbuf{queue_id}", core.node_id, RING_ENTRIES * RX_BUFFER_SLOT)


class TxQueue(NicQueue):
    """A transmit queue: the OS posts descriptors, the NIC DMA-reads."""

    direction = "tx"

    def __init__(self, queue_id: int, core, machine, pf=None,
                 ooo_okay: bool = True):
        super().__init__(queue_id, core, machine, pf)
        #: Mirror of Linux XPS's per-packet ooo_okay flag: whether the
        #: socket may switch to another Tx queue right now (§4.2).
        self.ooo_okay = ooo_okay
        #: Kernel socket buffers staged for transmit DMA, allocated on the
        #: queue's node like the ring (XPS locality, §2.3).
        self.skbs = machine.alloc_region(
            f"txskb{queue_id}", core.node_id, RING_ENTRIES * RX_BUFFER_SLOT)


class QueueSet:
    """One queue pair per core, as the evaluated drivers configure (§5)."""

    def __init__(self, machine, cores, pf_for_core=None):
        self.machine = machine
        self.rx: list = []
        self.tx: list = []
        for i, core in enumerate(cores):
            pf = pf_for_core(core) if pf_for_core else None
            self.rx.append(RxQueue(i, core, machine, pf))
            self.tx.append(TxQueue(i, core, machine, pf))

    def rx_for_core(self, core) -> Optional[RxQueue]:
        for queue in self.rx:
            if queue.core is core:
                return queue
        return None

    def tx_for_core(self, core) -> Optional[TxQueue]:
        for queue in self.tx:
            if queue.core is core:
                return queue
        return None
