"""Per-core NIC queues and their descriptor rings.

Each queue is a :class:`~repro.device.qp.DmaQueuePair` — the generic
octo-device ring — plus the NIC-specific data regions, allocated on the
node of the core it serves (the XPS/ARFS locality policy, §2.3):

* a **ring** region holding request + completion descriptors, and
* a **buffer** region holding packet payloads (Rx only; Tx reads payload
  from whatever region the sender provides).
"""

from __future__ import annotations

from typing import Optional

from repro.device.qp import DmaQueuePair
from repro.units import KB

#: Descriptors per ring (100 GbE drivers default to deep rings).
RING_ENTRIES = 4096
#: Rx buffer slot size: one MTU packet rounded to 2 KB pages.
RX_BUFFER_SLOT = 2 * KB


class NicQueue(DmaQueuePair):
    """Base class for Tx/Rx queues."""

    direction = "?"

    def __init__(self, queue_id: int, core, machine, pf=None):
        super().__init__(queue_id, core, machine, pf,
                         ring_name=f"{self.direction}ring{queue_id}",
                         ring_entries=RING_ENTRIES)


class RxQueue(NicQueue):
    """A receive queue: NIC DMA-writes payloads + completions here."""

    direction = "rx"

    def __init__(self, queue_id: int, core, machine, pf=None):
        super().__init__(queue_id, core, machine, pf)
        self.buffers = machine.alloc_region(
            f"rxbuf{queue_id}", core.node_id, RING_ENTRIES * RX_BUFFER_SLOT)


class TxQueue(NicQueue):
    """A transmit queue: the OS posts descriptors, the NIC DMA-reads."""

    direction = "tx"

    def __init__(self, queue_id: int, core, machine, pf=None,
                 ooo_okay: bool = True):
        super().__init__(queue_id, core, machine, pf)
        #: Mirror of Linux XPS's per-packet ooo_okay flag: whether the
        #: socket may switch to another Tx queue right now (§4.2).
        self.ooo_okay = ooo_okay
        #: Kernel socket buffers staged for transmit DMA, allocated on the
        #: queue's node like the ring (XPS locality, §2.3).
        self.skbs = machine.alloc_region(
            f"txskb{queue_id}", core.node_id, RING_ENTRIES * RX_BUFFER_SLOT)


class QueueSet:
    """One queue pair per core, as the evaluated drivers configure (§5)."""

    def __init__(self, machine, cores, pf_for_core=None):
        self.machine = machine
        self.rx: list = []
        self.tx: list = []
        for i, core in enumerate(cores):
            pf = pf_for_core(core) if pf_for_core else None
            self.rx.append(RxQueue(i, core, machine, pf))
            self.tx.append(TxQueue(i, core, machine, pf))

    def rx_for_core(self, core) -> Optional[RxQueue]:
        for queue in self.rx:
            if queue.core is core:
                return queue
        return None

    def tx_for_core(self, core) -> Optional[TxQueue]:
        for queue in self.tx:
            if queue.core is core:
                return queue
        return None
