"""The Ethernet wire between two machines (back-to-back, as in §5)."""

from __future__ import annotations

from repro.nic.packet import wire_bytes
from repro.sim.engine import Environment
from repro.sim.resources import BandwidthServer
from repro.units import bytes_per_sec


class EthernetWire:
    """A full-duplex point-to-point Ethernet link."""

    def __init__(self, env: Environment, gigabits: float = 100.0,
                 propagation_ns: int = 600):
        if gigabits <= 0:
            raise ValueError(f"link speed must be > 0, got {gigabits}")
        self.env = env
        self.gigabits = gigabits
        self.propagation_ns = int(propagation_ns)
        rate = bytes_per_sec(gigabits)
        self.a_to_b = BandwidthServer(env, rate, name="wire.a->b")
        self.b_to_a = BandwidthServer(env, rate, name="wire.b->a")

    def send(self, direction: str, npackets: int, payload_bytes: int) -> int:
        """Charge a packet batch; returns the wire delay in ns."""
        if npackets < 0:
            raise ValueError(f"negative packet count {npackets}")
        server = self._server(direction)
        total = npackets * wire_bytes(payload_bytes)
        return self.propagation_ns + server.account(total)

    def line_rate_packets_per_sec(self, payload_bytes: int) -> float:
        """Maximum packet rate the wire sustains at this payload size."""
        return bytes_per_sec(self.gigabits) / wire_bytes(payload_bytes)

    def _server(self, direction: str) -> BandwidthServer:
        if direction == "a_to_b":
            return self.a_to_b
        if direction == "b_to_a":
            return self.b_to_a
        raise ValueError(f"unknown direction {direction!r}")
