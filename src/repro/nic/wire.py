"""The Ethernet wire between two machines (back-to-back, as in §5)."""

from __future__ import annotations

from typing import Optional

from repro.nic.packet import wire_bytes
from repro.sim.engine import Environment
from repro.sim.resources import BandwidthServer
from repro.sim.rng import SimRandom
from repro.units import bytes_per_sec


class WireImpairment:
    """A loss/corruption episode on the wire (bad optics, a flaky cable).

    Each packet in a batch is independently lost or corrupted with the
    given probabilities, drawn from a seeded stream so episodes replay
    identically.  Either way the packet must be retransmitted: the wire is
    charged again for it and the batch pays one extra propagation round.
    """

    def __init__(self, rng: SimRandom, loss_probability: float = 0.0,
                 corrupt_probability: float = 0.0):
        for name, p in (("loss", loss_probability),
                        ("corrupt", corrupt_probability)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability out of range: {p}")
        if loss_probability + corrupt_probability > 1.0:
            raise ValueError("loss + corrupt probability exceeds 1")
        self.rng = rng
        self.loss_probability = loss_probability
        self.corrupt_probability = corrupt_probability

    def losses(self, npackets: int) -> tuple:
        """(lost, corrupted) counts for a batch of ``npackets``.

        One seeded batch draw replaces the per-packet RNG loop; the
        stream consumed and the per-draw classification are identical to
        the original ``random()``-per-packet code, so replays (and the
        golden tests) are byte-for-byte unchanged.
        """
        if npackets <= 0:
            return 0, 0
        p_loss = self.loss_probability
        p_bad = p_loss + self.corrupt_probability
        draws = self.rng.batch(npackets)
        bad = [draw for draw in draws if draw < p_bad]
        lost = sum(1 for draw in bad if draw < p_loss)
        return lost, len(bad) - lost


class EthernetWire:
    """A full-duplex point-to-point Ethernet link."""

    def __init__(self, env: Environment, gigabits: float = 100.0,
                 propagation_ns: int = 600):
        if gigabits <= 0:
            raise ValueError(f"link speed must be > 0, got {gigabits}")
        self.env = env
        self.gigabits = gigabits
        self.propagation_ns = int(propagation_ns)
        rate = bytes_per_sec(gigabits)
        self.a_to_b = BandwidthServer(env, rate, name="wire.a->b")
        self.b_to_a = BandwidthServer(env, rate, name="wire.b->a")
        self._impairment: Optional[WireImpairment] = None
        self.drops_total = 0
        self.corruptions_total = 0
        self.retransmitted_packets = 0
        #: Offered load per direction, before impairment retransmits:
        #: what the senders handed to the wire.  Invariant checks compare
        #: these against the receive-side NIC queue ledgers.
        self.packets_offered = {"a_to_b": 0, "b_to_a": 0}
        self.payload_bytes_offered = {"a_to_b": 0, "b_to_a": 0}

    # -------------------------------------------------------- impairment

    def start_impairment(self, rng: SimRandom,
                         loss_probability: float = 0.0,
                         corrupt_probability: float = 0.0) -> None:
        """Begin a loss/corruption episode (both directions)."""
        self._impairment = WireImpairment(rng, loss_probability,
                                          corrupt_probability)

    def stop_impairment(self) -> None:
        self._impairment = None

    @property
    def is_impaired(self) -> bool:
        return self._impairment is not None

    # -------------------------------------------------------------- send

    def send(self, direction: str, npackets: int, payload_bytes: int) -> int:
        """Charge a packet batch; returns the wire delay in ns."""
        if npackets < 0:
            raise ValueError(f"negative packet count {npackets}")
        server = self._server(direction)
        self.packets_offered[direction] += npackets
        self.payload_bytes_offered[direction] += npackets * payload_bytes
        total = npackets * wire_bytes(payload_bytes)
        delay = self.propagation_ns + server.account(total)
        if self._impairment is not None and npackets:
            lost, corrupted = self._impairment.losses(npackets)
            bad = lost + corrupted
            if bad:
                self.drops_total += lost
                self.corruptions_total += corrupted
                self.retransmitted_packets += bad
                # Retransmission: the bad packets cross the wire again
                # after one propagation round of recovery (SACK/FEC).
                resend = bad * wire_bytes(payload_bytes)
                delay += self.propagation_ns + server.account(resend)
        return delay

    def line_rate_packets_per_sec(self, payload_bytes: int) -> float:
        """Maximum packet rate the wire sustains at this payload size."""
        return bytes_per_sec(self.gigabits) / wire_bytes(payload_bytes)

    def _server(self, direction: str) -> BandwidthServer:
        if direction == "a_to_b":
            return self.a_to_b
        if direction == "b_to_a":
            return self.b_to_a
        raise ValueError(f"unknown direction {direction!r}")
