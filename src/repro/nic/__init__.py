"""NIC models: packets, queues, steering, firmwares, wire, device."""

from repro.nic.device import PIPELINE_NS_PER_PKT, NicDevice
from repro.nic.firmware import BaseFirmware, OctoFirmware, StandardFirmware
from repro.nic.packet import (
    FRAMING_BYTES,
    HEADER_BYTES,
    Flow,
    packets_for,
    wire_bytes,
)
from repro.nic.rings import (
    RING_ENTRIES,
    RX_BUFFER_SLOT,
    NicQueue,
    QueueSet,
    RxQueue,
    TxQueue,
)
from repro.nic.steering import ArfsTable, Mpfs, SteeringRule, rss_hash
from repro.nic.wire import EthernetWire

__all__ = [
    "ArfsTable",
    "BaseFirmware",
    "EthernetWire",
    "FRAMING_BYTES",
    "Flow",
    "HEADER_BYTES",
    "Mpfs",
    "NicDevice",
    "NicQueue",
    "OctoFirmware",
    "PIPELINE_NS_PER_PKT",
    "QueueSet",
    "RING_ENTRIES",
    "RX_BUFFER_SLOT",
    "RxQueue",
    "SteeringRule",
    "StandardFirmware",
    "TxQueue",
    "packets_for",
    "rss_hash",
    "wire_bytes",
]
