"""Flows and packets.

An IP flow is identified by its 5-tuple (§2.3, footnote 1).  The simulator
moves *batches* of packets belonging to a flow, not individual packet
objects, which keeps 100 Gb/s workloads tractable while preserving
per-packet cost accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Bytes of TCP/IP/Ethernet headers carried per packet on the wire.
HEADER_BYTES = 66
#: Preamble + inter-frame gap + CRC overhead per packet on the wire.
FRAMING_BYTES = 24
#: Minimum Ethernet payload.
MIN_PAYLOAD = 46


@dataclass(frozen=True, order=True)
class Flow:
    """A transport flow 5-tuple."""

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    protocol: str = "tcp"

    def __post_init__(self):
        for port in (self.src_port, self.dst_port):
            if not 0 < port < 65536:
                raise ValueError(f"invalid port {port}")
        if self.protocol not in ("tcp", "udp"):
            raise ValueError(f"unsupported protocol {self.protocol!r}")

    @classmethod
    def make(cls, index: int, protocol: str = "tcp") -> "Flow":
        """A distinct, deterministic flow for tests and workloads."""
        return cls(src_ip="10.0.0.1", src_port=10_000 + index,
                   dst_ip="10.0.0.2", dst_port=5201, protocol=protocol)

    def reversed(self) -> "Flow":
        return Flow(self.dst_ip, self.dst_port, self.src_ip, self.src_port,
                    self.protocol)

    def as_tuple(self) -> Tuple[str, int, str, int, str]:
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port,
                self.protocol)


def wire_bytes(payload: int) -> int:
    """On-wire size of a packet carrying ``payload`` bytes."""
    if payload < 0:
        raise ValueError(f"negative payload {payload}")
    return max(payload, MIN_PAYLOAD) + HEADER_BYTES + FRAMING_BYTES


def packets_for(message_bytes: int, mtu_payload: int) -> int:
    """Number of MTU-limited packets needed to carry a message."""
    if message_bytes <= 0:
        return 1
    return -(-message_bytes // mtu_payload)  # ceil division
