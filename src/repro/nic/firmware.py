"""NIC firmware personalities.

:class:`StandardFirmware` models the stock Mellanox firmware: the MPFS is
keyed by destination MAC, each PF has its own MAC, and therefore a flow's
PF is pinned for the flow's lifetime — remote DMA is unavoidable when the
consuming thread migrates (§2.5).

:class:`OctoFirmware` models the paper's prototype (§4.1): one external
MAC, an MPFS re-keyed by flow 5-tuple (IOctoRFS), and per-PF ARFS tables
consulted after the PF is chosen.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.nic.packet import Flow
from repro.nic.steering import ArfsTable, Mpfs, rss_hash
from repro.sim.errors import DeviceGoneError


class BaseFirmware:
    """Shared steering plumbing for both personalities.

    ``steer_rx`` — the per-batch hot path — memoises its full resolution
    (MPFS rule, PF, ARFS rule / RSS default queue) per ``(flow, dst_mac)``.
    Entries carry a stamp of the firmware + table versions, so any
    structural change (rule insert/remove/expiry, PF failure/recovery,
    queue registration) invalidates them; recency bookkeeping
    (``last_hit_at``) is still applied on cache hits through the live rule
    objects, so idle-expiry behaviour is bit-identical to the uncached
    path.
    """

    def __init__(self, num_pfs: int):
        if num_pfs < 1:
            raise ValueError(f"need >= 1 PF, got {num_pfs}")
        self.num_pfs = num_pfs
        self.arfs: List[ArfsTable] = [ArfsTable() for _ in range(num_pfs)]
        #: Default (RSS) queue list per PF, registered by the driver.
        self._default_queues: Dict[int, list] = {i: [] for i in range(num_pfs)}
        #: Per-PF availability, cleared on surprise removal.
        self._pf_alive: List[bool] = [True] * num_pfs
        #: Memoised steer_rx resolutions keyed by (flow, dst_mac).
        self._steer_cache: Dict[tuple, tuple] = {}
        #: Bumped on firmware-level steering state changes (PF liveness,
        #: default-queue registration); part of every cache stamp.
        self._fw_version = 0
        #: MPFS hardware fast-failover (§4.2): whether the switch may
        #: steer around a dead PF on its own.  The ``mpfs_fast_failover``
        #: component toggles this; standard firmware never consults it
        #: (a MAC-keyed MPFS has nowhere else to deliver).
        self.fast_failover = True

    def configure_fast_failover(self, enabled: bool) -> None:
        """Set the MPFS fast-failover capability, invalidating the steer
        memo if the setting actually changes (a cached resolution may
        have been made under the other policy)."""
        if enabled != self.fast_failover:
            self.fast_failover = enabled
            self._fw_version += 1

    def register_default_queues(self, pf_id: int, queues: list) -> None:
        self._default_queues[pf_id] = list(queues)
        self._fw_version += 1

    def steering_epoch(self) -> tuple:
        """A fingerprint of every steering input: firmware state, the
        MPFS, and all ARFS tables.  Any rule insert/remove/expiry, PF
        failure/recovery, or queue registration changes it — the packet-
        train fast path treats a changed epoch as a de-coalescing
        boundary (the steering decision may no longer be steady)."""
        return (self._fw_version, self.mpfs.version,
                tuple(table.version for table in self.arfs))

    # -------------------------------------------------------- fault state

    def fail_pf(self, pf_id: int) -> None:
        """Mark a PF unavailable for steering (surprise removal)."""
        self._check_pf_id(pf_id)
        self._pf_alive[pf_id] = False
        self._fw_version += 1

    def recover_pf(self, pf_id: int) -> None:
        self._check_pf_id(pf_id)
        self._pf_alive[pf_id] = True
        self._fw_version += 1

    def pf_alive(self, pf_id: int) -> bool:
        self._check_pf_id(pf_id)
        return self._pf_alive[pf_id]

    def surviving_pfs(self) -> List[int]:
        return [i for i in range(self.num_pfs) if self._pf_alive[i]]

    def _check_pf_id(self, pf_id: int) -> None:
        if not 0 <= pf_id < self.num_pfs:
            raise ValueError(f"pf_id {pf_id} out of range")

    def arfs_update(self, pf_id: int, flow: Flow, queue, now: int = 0) -> None:
        self.arfs[pf_id].update(flow, queue, now)

    def arfs_remove(self, pf_id: int, flow: Flow) -> bool:
        return self.arfs[pf_id].remove(flow)

    def _queue_for(self, pf_id: int, flow: Flow, now: int):
        queue = self.arfs[pf_id].lookup(flow, now)
        if queue is not None:
            return queue
        defaults = self._default_queues.get(pf_id) or []
        if not defaults:
            raise LookupError(f"PF {pf_id} has no queues registered")
        return defaults[rss_hash(flow, len(defaults))]

    def steer_rx(self, flow: Flow, dst_mac: str,
                 now: int = 0) -> Tuple[int, object]:
        entry = self._steer_cache.get((flow, dst_mac))
        if entry is not None:
            stamp, pf_id, mpfs_rule, arfs_rule, queue = entry
            if (stamp[0] == self._fw_version
                    and stamp[1] == self.mpfs.version
                    and stamp[2] == self.arfs[pf_id].version):
                # Recency bookkeeping must still happen on hits, or the
                # driver's idle-expiry worker would reap active flows.
                if mpfs_rule is not None:
                    mpfs_rule.last_hit_at = now
                if arfs_rule is not None:
                    arfs_rule.last_hit_at = now
                    return pf_id, arfs_rule.target
                return pf_id, queue
        pf_id, mpfs_rule = self._resolve_pf(flow, dst_mac, now)
        arfs_rule = self.arfs[pf_id].lookup_rule(flow)
        if arfs_rule is not None:
            arfs_rule.last_hit_at = now
            queue = arfs_rule.target
        else:
            defaults = self._default_queues.get(pf_id) or []
            if not defaults:
                raise LookupError(f"PF {pf_id} has no queues registered")
            queue = defaults[rss_hash(flow, len(defaults))]
        stamp = (self._fw_version, self.mpfs.version,
                 self.arfs[pf_id].version)
        self._steer_cache[(flow, dst_mac)] = (stamp, pf_id, mpfs_rule,
                                              arfs_rule, queue)
        return pf_id, queue

    def _resolve_pf(self, flow: Flow, dst_mac: str, now: int):
        """Personality hook: pick the PF for an arriving packet.  Returns
        ``(pf_id, mpfs_rule_or_None)`` — the live MPFS rule (if any) is
        kept in the steer cache so hits can refresh its recency."""
        raise NotImplementedError


class StandardFirmware(BaseFirmware):
    """Stock multi-PF firmware: MAC-keyed MPFS; one netdev per PF."""

    name = "standard"

    def __init__(self, num_pfs: int):
        super().__init__(num_pfs)
        self.mpfs = Mpfs(mode="mac")
        self.macs: Dict[int, str] = {}
        for pf_id in range(num_pfs):
            mac = f"aa:bb:cc:dd:ee:{pf_id:02x}"
            self.macs[pf_id] = mac
            self.mpfs.bind_mac(mac, pf_id)

    def _resolve_pf(self, flow: Flow, dst_mac: str, now: int):
        pf_id = self.mpfs.steer(flow, dst_mac, now)
        if not self._pf_alive[pf_id]:
            # The MAC uniquely names this PF's netdev: with the PF gone
            # there is nowhere else to deliver (the NUDMA rigidity §3.3).
            raise DeviceGoneError(
                f"standard firmware: PF {pf_id} for {dst_mac} is gone")
        return pf_id, None


class OctoFirmware(BaseFirmware):
    """The IOctopus prototype firmware: flow-keyed MPFS (IOctoRFS)."""

    name = "octo"
    #: The single externally-visible MAC of the octoNIC (§3.3).
    MAC = "0c:70:0c:70:0c:70"

    def __init__(self, num_pfs: int):
        super().__init__(num_pfs)
        self.mpfs = Mpfs(mode="flow")

    def ioctorfs_update(self, flow: Flow, pf_id: int, now: int = 0) -> None:
        """Point a flow at a PF (called by the octoNIC driver's kernel
        worker after an ARFS migration callback, §4.2)."""
        if not 0 <= pf_id < self.num_pfs:
            raise ValueError(f"pf_id {pf_id} out of range")
        self.mpfs.update_flow(flow, pf_id, now)

    def ioctorfs_remove(self, flow: Flow) -> bool:
        return self.mpfs.remove_flow(flow)

    def expire_idle(self, now: int, idle_ns: int) -> List[Flow]:
        return self.mpfs.expire_idle(now, idle_ns)

    def failover_pf(self, dead_pf_id: int) -> int:
        """The PF the MPFS falls back to when ``dead_pf_id`` is gone:
        the lowest-numbered surviving PF (deterministic)."""
        for pf_id in self.surviving_pfs():
            if pf_id != dead_pf_id:
                return pf_id
        raise DeviceGoneError("octoNIC: no surviving PF to fail over to")

    def _resolve_pf(self, flow: Flow, dst_mac: str, now: int):
        rule = self.mpfs.steer_rule(flow)
        if rule is None:
            pf_id = self.mpfs.default_pf_id
        else:
            rule.last_hit_at = now
            pf_id = rule.target
        if not self._pf_alive[pf_id]:
            if not self.fast_failover:
                # Fast-failover ablated: the flow-keyed MPFS behaves as
                # rigidly as the MAC-keyed one — packets for a dead PF
                # have nowhere to land until the driver re-points them.
                raise DeviceGoneError(
                    f"octoNIC: PF {pf_id} is gone and MPFS fast-failover "
                    f"is disabled")
            # The MPFS is one switch in front of *all* PFs: it can steer
            # around a dead one in hardware, landing the flow on a
            # surviving PF's tables until the driver re-points the rule.
            pf_id = self.failover_pf(pf_id)
        return pf_id, rule
