"""The NIC device: PFs + firmware + port, with per-PF accounting.

One :class:`NicDevice` models either configuration of the paper's server
NIC: loaded with :class:`~repro.nic.firmware.StandardFirmware` it behaves
as two independent netdevs (one per PF); loaded with
:class:`~repro.nic.firmware.OctoFirmware` it is the octoNIC (Fig 4): one
port, one MAC, and an IOctoRFS steering switch in front of the PFs.

PF bookkeeping and the hot-unplug/replug notification fan-out come from
the generic :class:`~repro.device.base.MultiPfDevice`; this class adds
the packet personality — firmware steering, the wire, and the Rx/Tx
DMA pipelines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.device.base import MultiPfDevice
from repro.memory.region import Region
from repro.nic.firmware import BaseFirmware, OctoFirmware
from repro.nic.packet import Flow
from repro.nic.rings import RxQueue, TxQueue
from repro.nic.wire import EthernetWire
from repro.pcie.fabric import PhysicalFunction
from repro.units import CACHELINE

#: NIC pipeline cost per packet (ConnectX-class NICs forward >100 Mpps).
PIPELINE_NS_PER_PKT = 6


class NicDevice(MultiPfDevice):
    """A (possibly multi-PF) Ethernet NIC."""

    kind = "nic"

    def __init__(self, machine, pfs: List[PhysicalFunction],
                 firmware: BaseFirmware, wire: Optional[EthernetWire] = None,
                 wire_side: str = "b", name: str = "nic"):
        if not pfs:
            raise ValueError("a NIC needs at least one PF")
        if firmware.num_pfs != len(pfs):
            raise ValueError(
                f"firmware expects {firmware.num_pfs} PFs, device has "
                f"{len(pfs)}")
        if wire_side not in ("a", "b"):
            raise ValueError(f"wire_side must be 'a' or 'b', got {wire_side}")
        super().__init__(machine, pfs, name)
        self.firmware = firmware
        self.wire = wire
        self.wire_side = wire_side
        self._pf_rx_bytes: Dict[int, int] = {pf.pf_id: 0 for pf in pfs}
        self._pf_tx_bytes: Dict[int, int] = {pf.pf_id: 0 for pf in pfs}
        self._pf_window_rx: Dict[int, int] = {pf.pf_id: 0 for pf in pfs}
        self._window_start = machine.env.now

    # ------------------------------------------------------------ helpers

    def mac_for_pf(self, pf_id: int) -> str:
        if isinstance(self.firmware, OctoFirmware):
            return OctoFirmware.MAC
        return self.firmware.macs[pf_id]

    # ------------------------------------------------------- fault model

    def _pf_failed(self, pf_id: int) -> None:
        self.firmware.fail_pf(pf_id)

    def _pf_recovered(self, pf_id: int) -> None:
        self.firmware.recover_pf(pf_id)

    # ----------------------------------------------------------- receive

    def rx_deliver(self, flow: Flow, dst_mac: str, npackets: int,
                   payload_bytes: int, charge_wire: bool = True,
                   nbursts: int = 1) -> Tuple[RxQueue, int]:
        """A packet batch arrives from the wire.

        The firmware steers it to a (PF, Rx queue); the device DMA-writes
        payloads into the queue's buffer region and one completion entry
        per packet into its ring.  Returns the queue and the device-side
        delay until the last completion is visible.

        ``nbursts > 1`` marks the batch as that many back-to-back wire
        bursts (a fluid steady interval): the payload/ring DMA is charged
        per burst so DDIO absorption matches burst-by-burst execution.
        """
        if npackets < 1:
            raise ValueError(f"npackets must be >= 1, got {npackets}")
        if payload_bytes < 1:
            raise ValueError(
                f"payload_bytes must be >= 1, got {payload_bytes}")
        now = self.env.now
        pf_id, queue = self.firmware.steer_rx(flow, dst_mac, now)
        pf = self.pfs[pf_id]

        # Wire reception and DMA pipeline inside the NIC: a batch's wall
        # time is the slower of the two stages plus the pipeline cost.
        wire_delay = 0
        if charge_wire and self.wire is not None:
            direction = "a_to_b" if self.wire_side == "b" else "b_to_a"
            wire_delay = self.wire.send(direction, npackets, payload_bytes)

        payload_total = npackets * payload_bytes
        # Sequential transfers on one PCIe link queue behind each other,
        # so the later account() already includes the earlier's service:
        # the batch completes with the completion-ring write.
        buf_delay = pf.dma_write(queue.buffers, payload_total,
                                 nbursts=nbursts)
        ring_delay = pf.dma_write(queue.ring, npackets * CACHELINE,
                                  nbursts=nbursts)
        dma_delay = max(buf_delay, ring_delay)
        delay = npackets * PIPELINE_NS_PER_PKT + max(wire_delay, dma_delay)

        flow_trace = self.machine.tracer.active_flow
        if flow_trace is not None:
            pipeline = npackets * PIPELINE_NS_PER_PKT
            dma_stage = None
            dma_blame = None
            if self.machine.tracer.blame is not None:
                loc = "local" if pf.is_local_to(queue.node_id) else "qpi"
                dma_stage = f"dma.{loc}"
                # Wire and DMA overlap inside the pipeline: the wire
                # stage owns its full transit, the DMA stage owns the
                # pipeline plus whatever DMA time the wire did not hide,
                # so the two charges sum to the returned delay exactly.
                dma_blame = pipeline + max(0, dma_delay - wire_delay)
            flow_trace.step("wire", "wire.rx", wire_delay,
                            {"packets": npackets, "bytes": payload_total},
                            stage="wire")
            flow_trace.step(f"{self.name}.{pf.name}", "dma.rx",
                            pipeline + dma_delay,
                            {"buf_ns": buf_delay, "ring_ns": ring_delay},
                            stage=dma_stage, blame_ns=dma_blame)

        queue.outstanding += npackets
        if queue.outstanding > queue.outstanding_hwm:
            queue.outstanding_hwm = queue.outstanding
        queue.account(npackets, payload_total)
        self._pf_rx_bytes[pf_id] += payload_total
        self._pf_window_rx[pf_id] += payload_total
        return queue, delay

    # ---------------------------------------------------------- transmit

    def tx(self, queue: TxQueue, src_region: Region, npackets: int,
           payload_bytes: int, ndesc: Optional[int] = None,
           nbursts: int = 1) -> int:
        """Transmit a batch posted on ``queue``.

        The device DMA-reads the descriptors and payload through the
        queue's PF, puts the packets on the wire, and DMA-writes one
        completion per descriptor back into the ring.  Returns the
        device-side delay.  ``nbursts > 1`` charges the completion
        write-back per burst (fluid steady intervals).
        """
        if queue.pf is None:
            raise ValueError(f"{queue!r} is not bound to a PF")
        if npackets < 1:
            raise ValueError(f"npackets must be >= 1, got {npackets}")
        if payload_bytes < 1:
            raise ValueError(
                f"payload_bytes must be >= 1, got {payload_bytes}")
        pf = queue.pf
        ndesc = ndesc if ndesc is not None else npackets
        payload_total = npackets * payload_bytes

        # Descriptor fetch + payload DMA pipeline against the wire; the
        # payload read queues behind the descriptor fetch on the link.
        desc_delay = pf.dma_read(queue.ring, ndesc * CACHELINE)
        payload_delay = pf.dma_read(src_region, payload_total)
        dma_delay = max(desc_delay, payload_delay)
        wire_delay = 0
        if self.wire is not None:
            direction = "b_to_a" if self.wire_side == "b" else "a_to_b"
            wire_delay = self.wire.send(direction, npackets, payload_bytes)
        # Completion write-back pipelines with the payload DMA; it is the
        # entry whose read costs the CPU ~80 ns when the PF is remote
        # (§5.1.1, pktgen analysis).
        completion_delay = pf.dma_write(queue.ring, ndesc * CACHELINE,
                                        nbursts=nbursts)
        delay = (npackets * PIPELINE_NS_PER_PKT
                 + max(wire_delay, dma_delay, completion_delay))

        flow_trace = self.machine.tracer.active_flow
        if flow_trace is not None:
            pipeline = npackets * PIPELINE_NS_PER_PKT
            dma_stage = None
            dma_blame = None
            wire_blame = None
            if self.machine.tracer.blame is not None:
                loc = "local" if pf.is_local_to(queue.node_id) else "qpi"
                dma_stage = f"dma.{loc}"
                # Descriptor/payload DMA, the completion write-back and
                # the wire all overlap: the DMA stage owns pipeline +
                # its own time + the completion residual beyond
                # max(wire, dma); the wire stage owns what the DMA did
                # not hide.  Charges sum to the returned delay exactly.
                slowest = max(wire_delay, dma_delay, completion_delay)
                dma_blame = (pipeline + dma_delay
                             + slowest - max(wire_delay, dma_delay))
                wire_blame = max(0, wire_delay - dma_delay)
            flow_trace.step(f"{self.name}.{pf.name}", "dma.tx",
                            pipeline + dma_delay,
                            {"desc_ns": desc_delay,
                             "payload_ns": payload_delay},
                            stage=dma_stage, blame_ns=dma_blame)
            flow_trace.step("wire", "wire.tx", wire_delay,
                            {"packets": npackets, "bytes": payload_total},
                            stage="wire", blame_ns=wire_blame)

        # TX posting is synchronous, so ring residency peaks at the batch
        # itself; record it so the depth HWM is meaningful for tx queues.
        if ndesc > queue.outstanding_hwm:
            queue.outstanding_hwm = ndesc
        queue.account(npackets, payload_total)
        self._pf_tx_bytes[pf.pf_id] += payload_total
        return delay

    # -------------------------------------------------------- accounting

    def pf_rx_bytes(self, pf_id: int) -> int:
        return self._pf_rx_bytes[pf_id]

    def pf_tx_bytes(self, pf_id: int) -> int:
        return self._pf_tx_bytes[pf_id]

    def reset_pf_windows(self) -> None:
        self._window_start = self.env.now
        for pf_id in self._pf_window_rx:
            self._pf_window_rx[pf_id] = 0

    def pf_window_rx_gbps(self, pf_id: int) -> float:
        """Per-PF receive throughput since the last window reset — the
        quantity Fig 14 samples every 50 ms."""
        elapsed = self.env.now - self._window_start
        if elapsed <= 0:
            return 0.0
        return self._pf_window_rx[pf_id] * 8 / elapsed

    def __repr__(self) -> str:
        return (f"<NicDevice {self.name} firmware={self.firmware.name} "
                f"pfs={[pf.attach_node for pf in self.pfs]}>")
