"""Adaptive interrupt coalescing (compatibility re-export).

The implementation moved to :mod:`repro.device.moderation`: interrupt
moderation is a property of any DMA queue pair — the octoSSD's
completion queues moderate exactly like the NIC's Rx rings — so it
lives in the device-generic core.
"""

from repro.device.moderation import (  # noqa: F401
    HIGH_RATE_PPS,
    LOW_RATE_PPS,
    MAX_COALESCED_FRAMES,
    AdaptiveCoalescing,
)

__all__ = [
    "AdaptiveCoalescing",
    "HIGH_RATE_PPS",
    "LOW_RATE_PPS",
    "MAX_COALESCED_FRAMES",
]
