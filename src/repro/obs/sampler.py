"""Periodic utilization sampling driven by sim-time callbacks.

A :class:`UtilizationSampler` is an ordinary simulation process that
wakes every ``interval_ns``, reads a set of cumulative counters, and
feeds per-interval deltas (or raw gauge values) into
:class:`~repro.metrics.collect.TimeSeries`.

Determinism: the sampler only **reads**.  It never mutates model state,
never draws from the simulation RNG, and never charges a resource, so
its timeout events interleave with the workload's without changing any
model-visible value — exact-mode goldens stay bit-identical with a
sampler attached (pinned by tests/obs/test_determinism_with_obs.py).
The sampler keeps private previous-value snapshots rather than calling
any ``reset_window`` helper, because those *are* shared state the
experiment runners depend on.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.metrics.collect import TimeSeries

#: Default sampling cadence: 1 ms of sim time.
DEFAULT_INTERVAL_NS = 1_000_000


class UtilizationSampler:
    """Samples bound channels every ``interval_ns`` until ``horizon_ns``.

    Two channel kinds:

    * ``"gauge"`` — record ``fn()`` as-is (hit rates, occupancy).
    * ``"rate"``  — ``fn()`` is a cumulative byte/ns counter; record the
      per-interval delta normalised by the interval (so a busy-ns
      counter becomes a 0..1 utilisation, a byte counter becomes
      bytes/ns — multiply by 8 for Gb/s at the export layer).
    """

    def __init__(self, env, interval_ns: int = DEFAULT_INTERVAL_NS):
        if interval_ns < 1:
            raise ValueError(f"interval must be >= 1 ns, got {interval_ns}")
        self.env = env
        self.interval_ns = int(interval_ns)
        self.series: Dict[str, TimeSeries] = {}
        self._channels: List[tuple] = []
        self._prev: Dict[str, float] = {}
        self.samples_taken = 0
        self._started = False

    # -------------------------------------------------------- channels

    def add_gauge(self, name: str, fn: Callable[[], float]) -> TimeSeries:
        return self._add(name, fn, "gauge")

    def add_rate(self, name: str, fn: Callable[[], float]) -> TimeSeries:
        return self._add(name, fn, "rate")

    def _add(self, name: str, fn: Callable[[], float],
             kind: str) -> TimeSeries:
        if name in self.series:
            raise ValueError(f"sampler channel {name!r} already exists")
        series = TimeSeries(name)
        self.series[name] = series
        self._channels.append((name, fn, kind, series))
        if kind == "rate":
            self._prev[name] = fn()
        return series

    # ------------------------------------------------------- execution

    def start(self, horizon_ns: int) -> None:
        """Spawn the sampling process, stopping at ``horizon_ns`` so a
        final ``env.run()`` drain is never kept alive by the sampler."""
        if self._started:
            raise ValueError("sampler already started")
        self._started = True
        self.env.process(self._body(int(horizon_ns)), name="obs-sampler")

    def _body(self, horizon_ns: int):
        while self.env.now + self.interval_ns <= horizon_ns:
            yield self.env.timeout(self.interval_ns)
            self._take()

    def _take(self) -> None:
        now = self.env.now
        interval = self.interval_ns
        for name, fn, kind, series in self._channels:
            value = fn()
            if kind == "rate":
                delta = value - self._prev[name]
                self._prev[name] = value
                series.sample(now, delta / interval)
            else:
                series.sample(now, value)
        self.samples_taken += 1

    # --------------------------------------------------------- export

    def counter_tracks(self) -> Dict[str, List[tuple]]:
        """Series as (time_ns, value) lists for Perfetto counter rows."""
        return {name: list(zip(s.times_ns, s.values))
                for name, s in self.series.items()}
