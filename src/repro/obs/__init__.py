"""Unified observability: metrics registry, flow tracing, samplers,
and an engine self-profiler.

Everything here is read-only with respect to the simulation model —
attaching observability never changes simulated results (the
determinism goldens pin this).  :class:`ObsSession` is the single
entry point; the submodules are usable standalone.
"""

from repro.obs.export import prometheus_name, to_perfetto, to_prometheus
from repro.obs.instrument import (
    instrument_machine,
    instrument_net_driver,
    instrument_netstack,
    instrument_nvme_driver,
    instrument_pfs,
)
from repro.obs.profiler import EngineProfiler
from repro.obs.registry import (
    NOOP,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopInstrument,
)
from repro.obs.sampler import DEFAULT_INTERVAL_NS, UtilizationSampler
from repro.obs.session import ObsSession

__all__ = [
    "NOOP",
    "Counter",
    "DEFAULT_INTERVAL_NS",
    "EngineProfiler",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopInstrument",
    "ObsSession",
    "UtilizationSampler",
    "instrument_machine",
    "instrument_net_driver",
    "instrument_netstack",
    "instrument_nvme_driver",
    "instrument_pfs",
    "prometheus_name",
    "to_perfetto",
    "to_prometheus",
]
