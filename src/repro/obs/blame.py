"""Latency-blame attribution: which stage owns each nanosecond?

The flow tracer draws a request's journey; this module *accounts* for
it.  Every instrumented hop charges its latency to a named **stage**
(wire transit, PF DMA, doorbell MMIO, interrupt delivery, stack
processing, completion-entry reads, application service, ...), and a
:class:`BlameCollector` aggregates the charges into per-stage
:class:`~repro.metrics.collect.LatencyDigest` budgets plus a mergeable
tail map that answers "which stage dominates the p99 requests".

Stage names carry a locality/classification suffix after the family
name — ``dma.local`` vs ``dma.qpi``, ``cq.hit`` vs ``cq.miss`` — so a
differential run (:mod:`repro.obs.diff`) can attribute a latency delta
to QPI transit and DDIO-miss/remote-DRAM stages exactly, without
counterfactual re-simulation.

Conservation is the load-bearing invariant: for every sealed flow the
integer sum of its stage charges must equal the end-to-end latency the
model returned, to the nanosecond, in every accuracy tier.  Where the
model overlaps work (the NIC pipeline runs wire transit and DMA
concurrently; TCP Tx overlaps the data DMA with the completion
write-back) the instrumentation charges overlap *residuals* — e.g. on
Rx the wire stage owns ``wire_delay`` and the DMA stage owns
``pipeline + max(0, dma - wire)`` — so the decomposition is exact by
construction and the check catches incomplete instrumentation rather
than modelling slack.

Adaptive/fluid packet trains seal once per train with
``represented=k``; digests then record the per-request apportionment
(``stage_ns // k`` with weight ``k``) while the raw integer sums stay
unapportioned, keeping conservation exact in every tier.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.metrics.collect import LatencyDigest

#: Stage-name suffixes that mark nonuniform-DMA costs: ``.qpi`` stages
#: cross the socket interconnect, ``.miss`` stages pay DDIO misses
#: served from DRAM.  ``obs diff`` sums these to answer "how much of
#: the delta is the paper's NUDMA story".
NUDMA_SUFFIXES = (".qpi", ".miss")

#: Conservation violations kept verbatim before truncating (the count
#: keeps incrementing; the messages stop growing).
MAX_CONSERVATION_ERRORS = 16

#: The tail that "p99 blame" explains: the requests at or above p99.
TAIL_PERCENTILE = 99.0


def stage_family(stage: str) -> str:
    """``dma.qpi`` -> ``dma``: the stage name without its
    locality/classification suffix."""
    return stage.split(".", 1)[0]


def is_nudma_stage(stage: str) -> bool:
    return stage.endswith(NUDMA_SUFFIXES)


class BlameDomain:
    """Per-stage accounting for one flow domain (``flow`` for packet/IO
    journeys, ``txn`` for fleet transactions with queue wait)."""

    __slots__ = ("e2e", "stages", "stage_ns", "tail", "flows", "units",
                 "total_ns")

    def __init__(self):
        #: Per-request end-to-end latency digest (weighted by
        #: ``represented`` for coalesced trains).
        self.e2e = LatencyDigest()
        #: Per-stage per-request digests.
        self.stages: Dict[str, LatencyDigest] = {}
        #: Exact integer nanosecond sums per stage (unapportioned).
        self.stage_ns: Dict[str, int] = {}
        #: Sparse ``e2e bucket -> {stage -> ns}`` map.  Mergeable by
        #: addition; walking buckets from the top down reconstructs
        #: "which stages own the slowest 1% of requests" even after a
        #: fleet-wide merge.
        self.tail: Dict[int, Dict[str, int]] = {}
        #: Sealed flows (trains count once).
        self.flows = 0
        #: Base units represented (trains count their ``k``).
        self.units = 0
        #: Exact end-to-end nanosecond sum.
        self.total_ns = 0

    def add(self, stages: Dict[str, int], total_ns: int,
            represented: int = 1) -> int:
        """Fold one sealed flow in; returns the integer stage sum so the
        caller can run the conservation check."""
        total = int(total_ns)
        k = max(1, int(represented))
        per_unit = total // k
        self.flows += 1
        self.units += k
        self.total_ns += total
        self.e2e.record(per_unit, n=k)
        bucket = self.e2e._bucket_of(per_unit)
        tail_bucket = self.tail.get(bucket)
        if tail_bucket is None:
            tail_bucket = self.tail[bucket] = {}
        stage_sum = 0
        for name, ns in stages.items():
            ns = int(ns)
            stage_sum += ns
            self.stage_ns[name] = self.stage_ns.get(name, 0) + ns
            digest = self.stages.get(name)
            if digest is None:
                digest = self.stages[name] = LatencyDigest()
            digest.record(ns // k, n=k)
            tail_bucket[name] = tail_bucket.get(name, 0) + ns
        return stage_sum

    # ---------------------------------------------------------- queries

    def tail_blame(self, p: float = TAIL_PERCENTILE) -> Dict:
        """Stage attribution of the slowest ``(100 - p)%`` requests.

        Walks the end-to-end digest's buckets from the top down until
        the tail population is covered, then sums each stage's
        nanoseconds over exactly those buckets — mergeable across
        shards because both the digest and the tail map merge by
        addition."""
        if not self.units:
            return {"units": 0, "threshold_ns": None, "stage_ns": {},
                    "e2e_ns": 0}
        rank = max(1, math.ceil(p / 100 * self.units))
        target = self.units - rank + 1
        covered = 0
        stage_ns: Dict[str, int] = {}
        e2e_ns = 0
        threshold = None
        for bucket in sorted(self.e2e.buckets, reverse=True):
            if covered >= target:
                break
            covered += self.e2e.buckets[bucket]
            threshold = bucket
            for name, ns in self.tail.get(bucket, {}).items():
                stage_ns[name] = stage_ns.get(name, 0) + ns
                e2e_ns += ns
        return {
            "units": covered,
            "threshold_ns": (None if threshold is None
                             else self.e2e._bucket_value(threshold)),
            "stage_ns": stage_ns,
            "e2e_ns": e2e_ns,
        }

    # ---------------------------------------------------- serialization

    def to_dict(self) -> Dict:
        return {
            "e2e": self.e2e.to_dict(),
            "stages": {name: digest.to_dict()
                       for name, digest in sorted(self.stages.items())},
            "stage_ns": dict(sorted(self.stage_ns.items())),
            "tail": {str(bucket): dict(sorted(stages.items()))
                     for bucket, stages in sorted(self.tail.items())},
            "flows": self.flows,
            "units": self.units,
            "total_ns": self.total_ns,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "BlameDomain":
        domain = cls()
        domain.e2e = LatencyDigest.from_dict(data["e2e"])
        domain.stages = {name: LatencyDigest.from_dict(d)
                         for name, d in data["stages"].items()}
        domain.stage_ns = {name: int(ns)
                           for name, ns in data["stage_ns"].items()}
        domain.tail = {int(bucket): {name: int(ns)
                                     for name, ns in stages.items()}
                       for bucket, stages in data["tail"].items()}
        domain.flows = int(data["flows"])
        domain.units = int(data["units"])
        domain.total_ns = int(data["total_ns"])
        return domain

    def merge(self, other: "BlameDomain") -> "BlameDomain":
        self.e2e.merge(other.e2e)
        for name, digest in other.stages.items():
            mine = self.stages.get(name)
            if mine is None:
                mine = self.stages[name] = LatencyDigest()
            mine.merge(digest)
        for name, ns in other.stage_ns.items():
            self.stage_ns[name] = self.stage_ns.get(name, 0) + ns
        for bucket, stages in other.tail.items():
            mine_bucket = self.tail.get(bucket)
            if mine_bucket is None:
                mine_bucket = self.tail[bucket] = {}
            for name, ns in stages.items():
                mine_bucket[name] = mine_bucket.get(name, 0) + ns
        self.flows += other.flows
        self.units += other.units
        self.total_ns += other.total_ns
        return self


class BlameCollector:
    """Attach to a :class:`~repro.sim.tracing.Tracer` (``tracer.blame``)
    to receive every sealed flow's stage decomposition."""

    __slots__ = ("domains", "conservation_errors", "violations")

    def __init__(self):
        self.domains: Dict[str, BlameDomain] = {}
        #: First few conservation failures, verbatim.
        self.conservation_errors: List[str] = []
        #: Total conservation failures (keeps counting past the cap).
        self.violations = 0

    def domain(self, name: str = "flow") -> BlameDomain:
        domain = self.domains.get(name)
        if domain is None:
            domain = self.domains[name] = BlameDomain()
        return domain

    def add(self, stages: Dict[str, int], total_ns: int,
            represented: int = 1, domain: str = "flow") -> None:
        stage_sum = self.domain(domain).add(stages, total_ns, represented)
        if stage_sum != int(total_ns):
            self.violations += 1
            if len(self.conservation_errors) < MAX_CONSERVATION_ERRORS:
                self.conservation_errors.append(
                    f"{domain}: stage sum {stage_sum} != end-to-end "
                    f"{int(total_ns)} (stages={dict(sorted(stages.items()))})")

    @property
    def conservation_ok(self) -> bool:
        return self.violations == 0

    # ---------------------------------------------------- serialization

    def to_dict(self) -> Dict:
        return {
            "domains": {name: domain.to_dict()
                        for name, domain in sorted(self.domains.items())},
            "violations": self.violations,
            "conservation_errors": list(self.conservation_errors),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "BlameCollector":
        collector = cls()
        collector.domains = {name: BlameDomain.from_dict(d)
                             for name, d in data["domains"].items()}
        collector.violations = int(data.get("violations", 0))
        collector.conservation_errors = list(
            data.get("conservation_errors", ()))
        return collector

    def merge(self, other: "BlameCollector") -> "BlameCollector":
        """Namespace-free fleet merge: domains fold together by name
        (digest merge + integer addition), which is how per-server
        shards combine into one fleet-wide blame view."""
        for name, domain in other.domains.items():
            self.domain(name).merge(domain)
        self.violations += other.violations
        for message in other.conservation_errors:
            if len(self.conservation_errors) < MAX_CONSERVATION_ERRORS:
                self.conservation_errors.append(message)
        return self


# ------------------------------------------------------------- reporting

def build_report(collector: BlameCollector, domain: str = "flow",
                 point: Optional[Dict] = None,
                 result: Optional[Dict] = None,
                 counters: Optional[Dict] = None) -> Dict:
    """The ``obs blame`` report: per-stage p50/p99 budgets, overall
    shares, p99 tail blame, and the conservation verdict — plain JSON,
    in the style of the ablation report."""
    dom = collector.domain(domain)
    tail = dom.tail_blame()
    units = dom.units
    stages = []
    for name in sorted(dom.stages,
                       key=lambda n: -dom.stage_ns.get(n, 0)):
        digest = dom.stages[name]
        total = dom.stage_ns.get(name, 0)
        tail_ns = tail["stage_ns"].get(name, 0)
        stages.append({
            "stage": name,
            "family": stage_family(name),
            "nudma": is_nudma_stage(name),
            "p50_ns": digest.percentile(50) if digest.count else 0,
            "p99_ns": digest.percentile(99) if digest.count else 0,
            "mean_ns": total / units if units else 0.0,
            "total_ns": total,
            "share": total / dom.total_ns if dom.total_ns else 0.0,
            "tail_ns": tail_ns,
            "tail_mean_ns": (tail_ns / tail["units"]
                             if tail["units"] else 0.0),
            "tail_share": (tail_ns / tail["e2e_ns"]
                           if tail["e2e_ns"] else 0.0),
        })
    p99_blame = max(stages, key=lambda s: s["tail_ns"], default=None)
    report = {
        "domain": domain,
        "flows": dom.flows,
        "units": units,
        "e2e": {
            "p50_ns": dom.e2e.percentile(50) if units else 0,
            "p99_ns": dom.e2e.percentile(99) if units else 0,
            "mean_ns": dom.total_ns / units if units else 0.0,
            "min_ns": dom.e2e.min,
            "max_ns": dom.e2e.max,
            "total_ns": dom.total_ns,
        },
        "stages": stages,
        "p99_blame": (None if p99_blame is None else {
            "stage": p99_blame["stage"],
            "tail_share": p99_blame["tail_share"],
            "tail_mean_ns": p99_blame["tail_mean_ns"],
        }),
        "tail": {"units": tail["units"],
                 "threshold_ns": tail["threshold_ns"],
                 "e2e_ns": tail["e2e_ns"]},
        "conservation": {
            "checked_flows": dom.flows,
            "violations": collector.violations,
            "ok": collector.conservation_ok,
            "errors": list(collector.conservation_errors),
        },
    }
    if point is not None:
        report["point"] = point
    if result is not None:
        report["result"] = result
    if counters is not None:
        report["counters"] = counters
    return report


def render_text(report: Dict) -> str:
    """Per-stage budget table, worst offender first."""
    lines = []
    point = report.get("point")
    if point:
        lines.append("blame " + " ".join(
            f"{k}={v}" for k, v in sorted(point.items())))
    e2e = report["e2e"]
    lines.append(
        f"  domain {report['domain']}: {report['flows']} flows "
        f"({report['units']} units), e2e p50 {e2e['p50_ns']} ns, "
        f"p99 {e2e['p99_ns']} ns, mean {e2e['mean_ns']:.1f} ns")
    conservation = report["conservation"]
    verdict = ("stage sums == end-to-end (exact)"
               if conservation["ok"] else
               f"{conservation['violations']} conservation VIOLATIONS")
    lines.append(f"  conservation: {verdict}")
    lines.append("")
    lines.append(f"  {'stage':16s} {'p50':>9} {'p99':>9} {'mean':>10} "
                 f"{'share':>7} {'tail-share':>10}")
    for row in report["stages"]:
        mark = " *" if row["nudma"] else ""
        lines.append(
            f"  {row['stage']:16s} {row['p50_ns']:>9} {row['p99_ns']:>9} "
            f"{row['mean_ns']:>10.1f} {row['share']:>7.1%} "
            f"{row['tail_share']:>10.1%}{mark}")
    blame = report.get("p99_blame")
    if blame:
        lines.append("")
        lines.append(
            f"  p99 blame: {blame['stage']} "
            f"({blame['tail_share']:.1%} of tail-request time, "
            f"{blame['tail_mean_ns']:.0f} ns per tail request)")
    lines.append("")
    lines.append("  * = NUDMA stage (QPI transit or DDIO-miss/remote DRAM)")
    return "\n".join(lines)


# ---------------------------------------------------------- point runner

def run_blame_point(workload: str, config: str, *, size: int,
                    duration_ns: int, seed: int = 0,
                    accuracy: str = "exact",
                    client_config: str = "local", ddio: bool = True,
                    components: Optional[Dict] = None) -> Dict:
    """Run one experiment point with blame collection attached and
    return its :func:`build_report` dict (plus point metadata, the
    workload result, and the session's counters for ``obs diff``)."""
    from repro.experiments.runners import (run_pktgen, run_tcp_rr,
                                           run_tcp_stream)
    from repro.obs.session import ObsSession

    obs = ObsSession(enabled=True, blame=True)
    common = dict(duration_ns=duration_ns, seed=seed, accuracy=accuracy,
                  components=components, obs=obs)
    if workload == "pktgen":
        result = run_pktgen(config, size, **common)
    elif workload in ("tcp_rx", "tcp_tx"):
        result = run_tcp_stream(config, size, workload[4:], **common)
    elif workload == "rr":
        rtt = run_tcp_rr(config, client_config, ddio, size, **common)
        result = {"rtt_ns": rtt}
    else:
        raise ValueError(f"unknown workload {workload!r}")
    point = {"workload": workload, "config": config, "size": size,
             "duration_ns": duration_ns, "seed": seed,
             "accuracy": accuracy}
    if workload == "rr":
        point["client_config"] = client_config
        point["ddio"] = ddio
    counters = {name: value
                for name, value in obs.collect(include_detail=False).items()
                if isinstance(value, (int, float))}
    return build_report(obs.blame, point=point, result=result,
                        counters=counters)
