"""ObsSession: one handle bundling registry, tracer, sampler, profiler.

The session is how callers opt a run into observability::

    obs = ObsSession(enabled=True, trace=True)
    result = run_pktgen("remote", 256, duration, obs=obs)
    print(obs.utilization_table())

``attach`` binds the registry's gauges over an existing
:class:`~repro.core.configurations.Testbed`, swaps the machines' tracer
for the session's (devices and drivers look ``machine.tracer`` up at
call time, so a post-construction swap is enough), and starts the
utilization sampler.  Everything is read-only with respect to the
model: attaching a session — enabled or not — never changes simulated
results, which the determinism-with-obs golden pins.
"""

from __future__ import annotations

from typing import List, Optional

from repro.metrics.collect import format_table
from repro.obs.export import to_perfetto, to_prometheus
from repro.obs.instrument import (
    instrument_machine,
    instrument_net_driver,
    instrument_netstack,
    instrument_nvme_driver,
)
from repro.obs.profiler import EngineProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import DEFAULT_INTERVAL_NS, UtilizationSampler
from repro.sim.tracing import Tracer


class ObsSession:
    """One run's observability: metrics, traces, samples, profile."""

    def __init__(self, enabled: bool = True, trace: bool = False,
                 flows: bool = True,
                 sample_interval_ns: int = DEFAULT_INTERVAL_NS,
                 profile: bool = False, blame: bool = False):
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer: Optional[Tracer] = (
            Tracer(enabled=True, flows=flows) if trace else None)
        self.blame = None
        if blame:
            from repro.obs.blame import BlameCollector
            self.blame = BlameCollector()
            if self.tracer is None:
                # Blame rides on the flow plumbing but needs no records:
                # an enabled tracer with flows off opens blame-only
                # flows and collects nothing else.
                self.tracer = Tracer(enabled=True, flows=False)
            self.tracer.blame = self.blame
        self.sample_interval_ns = sample_interval_ns
        self.sampler: Optional[UtilizationSampler] = None
        self.profiler: Optional[EngineProfiler] = None
        self._profile = profile
        self._attached = False

    # ------------------------------------------------------------ attach

    def attach(self, testbed, horizon_ns: Optional[int] = None,
               include_client: bool = False) -> "ObsSession":
        """Wire the session into a freshly built testbed.

        ``horizon_ns`` bounds the sampler (normally the point's simulated
        duration); without it no sampler runs.  The client machine is
        skipped by default — the paper's questions are all server-side.
        """
        if self._attached:
            raise ValueError("session already attached")
        self._attached = True
        server = testbed.server
        if self.tracer is not None:
            server.machine.tracer = self.tracer
            testbed.client.machine.tracer = self.tracer
        instrument_machine(self.registry, server.machine, "srv")
        instrument_net_driver(self.registry, server.driver, "srv.nic")
        instrument_netstack(self.registry, server.stack, "srv")
        if include_client:
            instrument_machine(self.registry, testbed.client.machine, "cli")
            instrument_net_driver(self.registry, testbed.client.driver,
                                  "cli.nic")
        if self.enabled and horizon_ns and self.sample_interval_ns:
            self.sampler = self._build_sampler(testbed)
            self.sampler.start(horizon_ns)
        if self._profile:
            self.profiler = EngineProfiler(testbed.env)
            self.profiler.install()
        return self

    def attach_storage(self, driver, prefix: str = "ssd") -> "ObsSession":
        """Bind an NVMe driver (fio/octoSSD setups) into the session."""
        instrument_nvme_driver(self.registry, driver, prefix)
        if self.tracer is not None:
            driver.machine.tracer = self.tracer
        return self

    def _build_sampler(self, testbed) -> UtilizationSampler:
        sampler = UtilizationSampler(testbed.env, self.sample_interval_ns)
        machine = testbed.server.machine
        for link in machine.interconnect.links():
            sampler.add_rate(
                f"srv.qpi.{link.src_node}to{link.dst_node}.util",
                lambda s=link.server: s.busy_ns)
        for node in machine.nodes:
            dram = node.dram
            sampler.add_rate(
                f"srv.node{node.node_id}.dram.gbps",
                lambda d=dram: (d.read_bytes + d.write_bytes) * 8)
            sampler.add_gauge(
                f"srv.node{node.node_id}.ddio.hit_rate",
                lambda c=node.llc: (
                    c.hits_bytes / (c.hits_bytes + c.miss_bytes)
                    if c.hits_bytes + c.miss_bytes else 0.0))
        device = testbed.server.nic
        for pf in device.pfs:
            sampler.add_rate(
                f"srv.nic.pf{pf.pf_id}.rx_gbps",
                lambda d=device, i=pf.pf_id: d.pf_rx_bytes(i) * 8)
        return sampler

    # ----------------------------------------------------------- surface

    def collect(self, include_detail: bool = True):
        return self.registry.collect(include_detail=include_detail)

    def utilization_table(self, full: bool = False,
                          title: str = "per-component utilization") -> str:
        """The ``repro obs`` table: component / metric / value rows.

        ``full=False`` folds away ``detail=True`` instruments (per-queue,
        per-core) so the table stays the curated per-component view.
        """
        rows: List[list] = []
        for name, value in sorted(
                self.collect(include_detail=full).items()):
            component, _, metric = name.rpartition(".")
            rows.append([component, metric, value])
        return format_table(("component", "metric", "value"), rows,
                            title=title)

    def prometheus(self) -> str:
        return to_prometheus(self.registry)

    def perfetto_json(self, process_name: str = "repro") -> str:
        tracer = self.tracer if self.tracer is not None else Tracer()
        return to_perfetto(tracer, registry=self.registry,
                           sampler=self.sampler,
                           process_name=process_name)

    def profile_table(self) -> str:
        if self.profiler is None:
            raise ValueError("session was not built with profile=True")
        return self.profiler.table()

    def blame_report(self, domain: str = "flow") -> dict:
        """Per-stage latency budgets (:func:`repro.obs.blame.build_report`)."""
        if self.blame is None:
            raise ValueError("session was not built with blame=True")
        from repro.obs.blame import build_report
        return build_report(self.blame, domain=domain)

    def blame_table(self, domain: str = "flow") -> str:
        from repro.obs.blame import render_text
        return render_text(self.blame_report(domain=domain))
