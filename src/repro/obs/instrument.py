"""Bind registry gauges over the simulator's component counters.

Instrumentation here is **read-time binding**: each gauge closes over a
component and reads its existing counters only when the registry is
collected.  No model hot path gains an instrument call — the inventory
below is exactly the per-component visibility the paper's analysis uses
(§2, §5.1): QPI link occupancy, DDIO hit/miss/invalidate rates, DRAM
bandwidth, per-PF PCIe traffic and queue-depth high-water marks,
doorbell/interrupt/retry counts, and failover state transitions.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry


def _ratio(num: float, den: float) -> float:
    return num / den if den else 0.0


def instrument_machine(reg: MetricsRegistry, machine, prefix: str) -> None:
    """QPI links, LLC/DDIO, DRAM, and per-core utilisation."""
    if not reg.enabled:
        return
    for link in machine.interconnect.links():
        base = f"{prefix}.qpi.{link.src_node}to{link.dst_node}"
        server = link.server
        reg.gauge(f"{base}.occupancy", fn=server.utilization,
                  help="QPI link busy fraction since t=0")
        reg.gauge(f"{base}.bytes", fn=lambda s=server: s.bytes_total,
                  help="bytes carried")
        reg.gauge(f"{base}.throttle",
                  fn=lambda ln=link: ln.throttle_factor,
                  help="fault-injection throttle factor", detail=True)
    env = machine.env
    for node in machine.nodes:
        base = f"{prefix}.node{node.node_id}"
        llc, dram = node.llc, node.dram
        reg.gauge(f"{base}.ddio.hit_rate",
                  fn=lambda c=llc: _ratio(c.hits_bytes,
                                          c.hits_bytes + c.miss_bytes),
                  help="LLC hit fraction of CPU bytes accessed")
        reg.gauge(f"{base}.ddio.occupancy",
                  fn=lambda c=llc: _ratio(c.ddio_occupied, c.ddio_capacity),
                  help="DDIO ways fill fraction")
        reg.gauge(f"{base}.ddio.hits_bytes",
                  fn=lambda c=llc: c.hits_bytes, detail=True)
        reg.gauge(f"{base}.ddio.miss_bytes",
                  fn=lambda c=llc: c.miss_bytes, detail=True)
        reg.gauge(f"{base}.ddio.invalidated_bytes",
                  fn=lambda c=llc: c.invalidated_bytes,
                  help="bytes invalidated by remote DMA writes")
        reg.gauge(f"{base}.dram.gbps",
                  fn=lambda d=dram, e=env: (
                      (d.read_bytes + d.write_bytes) * 8 / e.now
                      if e.now else 0.0),
                  help="DRAM read+write Gb/s since t=0")
        reg.gauge(f"{base}.dram.read_bytes",
                  fn=lambda d=dram: d.read_bytes, detail=True)
        reg.gauge(f"{base}.dram.write_bytes",
                  fn=lambda d=dram: d.write_bytes, detail=True)
        for core in node.cores:
            reg.gauge(f"{base}.core{core.core_id}.utilization",
                      fn=lambda c=core, e=env: (
                          min(1.0, c.busy_ns / e.now) if e.now else 0.0),
                      detail=True)


def instrument_pfs(reg: MetricsRegistry, device, prefix: str) -> None:
    """Per-PF PCIe fabric traffic and liveness for any MultiPfDevice."""
    if not reg.enabled:
        return
    for pf in device.pfs:
        base = f"{prefix}.pf{pf.pf_id}"
        reg.gauge(f"{base}.alive",
                  fn=lambda p=pf: 1.0 if p.alive else 0.0,
                  help="0 after surprise removal until recovery")
        reg.gauge(f"{base}.pcie.up_bytes",
                  fn=lambda p=pf: p.link.upstream.bytes_total,
                  help="device->host DMA bytes")
        reg.gauge(f"{base}.pcie.down_bytes",
                  fn=lambda p=pf: p.link.downstream.bytes_total,
                  help="host->device DMA bytes")
        reg.gauge(f"{base}.pcie.up_occupancy",
                  fn=lambda p=pf: p.link.upstream.utilization(),
                  help="upstream link busy fraction since t=0")
        reg.gauge(f"{base}.pcie.lanes",
                  fn=lambda p=pf: p.link.active_lanes, detail=True)


def _instrument_driver_common(reg: MetricsRegistry, driver,
                              prefix: str) -> None:
    reg.gauge(f"{prefix}.doorbell.rings",
              fn=lambda d=driver: d.doorbell.rings,
              help="MMIO doorbells rung")
    reg.gauge(f"{prefix}.completion.interrupts",
              fn=lambda d=driver: d.completion.interrupts,
              help="moderated interrupts delivered")
    reg.gauge(f"{prefix}.completion.entries",
              fn=lambda d=driver: d.completion.entries,
              help="completion entries consumed")
    reg.gauge(f"{prefix}.retries", fn=lambda d=driver: d.retries,
              help="submissions retried after DeviceGoneError")
    for counter in ("steering_updates", "failovers", "recoveries",
                    "rules_expired"):
        if hasattr(driver, counter):
            reg.gauge(f"{prefix}.{counter}",
                      fn=lambda d=driver, c=counter: getattr(d, c),
                      help="failover state transitions"
                      if counter in ("failovers", "recoveries") else "")


def instrument_net_driver(reg: MetricsRegistry, driver, prefix: str) -> None:
    """NIC driver + device: per-PF traffic and DmaQueuePair depth HWMs."""
    if not reg.enabled:
        return
    device = driver.device
    instrument_pfs(reg, device, prefix)
    _instrument_driver_common(reg, driver, prefix)
    queues = list(driver.queues.rx) + list(driver.queues.tx)
    for pf in device.pfs:
        base = f"{prefix}.pf{pf.pf_id}"
        reg.gauge(f"{base}.rx_bytes",
                  fn=lambda d=device, i=pf.pf_id: d.pf_rx_bytes(i),
                  help="payload bytes DMA-written through this PF")
        reg.gauge(f"{base}.tx_bytes",
                  fn=lambda d=device, i=pf.pf_id: d.pf_tx_bytes(i),
                  help="payload bytes DMA-read through this PF")
        reg.gauge(f"{base}.queue_depth_hwm",
                  fn=lambda qs=queues, p=pf: max(
                      (q.outstanding_hwm for q in qs if q.pf is p),
                      default=0),
                  help="deepest ring residency among queues on this PF")
    for queue in queues:
        base = f"{prefix}.{queue.direction}q{queue.queue_id}"
        reg.gauge(f"{base}.depth_hwm",
                  fn=lambda q=queue: q.outstanding_hwm, detail=True)
        reg.gauge(f"{base}.packets",
                  fn=lambda q=queue: q.packets_total, detail=True)
        reg.gauge(f"{base}.pf",
                  fn=lambda q=queue: (
                      q.pf.pf_id if q.pf is not None else -1),
                  detail=True)


def instrument_nvme_driver(reg: MetricsRegistry, driver,
                           prefix: str) -> None:
    """NVMe driver + controller: flash, per-PF reads, lazy QP depths."""
    if not reg.enabled:
        return
    controller = driver.controller
    instrument_pfs(reg, controller, prefix)
    _instrument_driver_common(reg, driver, prefix)
    reg.gauge(f"{prefix}.flash.bytes",
              fn=lambda c=controller: c.flash.bytes_total,
              help="bytes through the flash pipeline")
    reg.gauge(f"{prefix}.flash.occupancy",
              fn=lambda c=controller: c.flash.utilization(),
              help="flash pipeline busy fraction since t=0")
    for pf in controller.pfs:
        reg.gauge(f"{prefix}.pf{pf.pf_id}.read_bytes",
                  fn=lambda c=controller, i=pf.pf_id: c.pf_read_bytes(i),
                  help="read payload bytes DMAed through this port")
        # QPs are created lazily per core, so the depth gauge walks the
        # driver's live QP table at read time.
        reg.gauge(f"{prefix}.pf{pf.pf_id}.queue_depth_hwm",
                  fn=lambda d=driver, p=pf: max(
                      (qp.outstanding_hwm for qp in d._qps.values()
                       if qp.pf is p), default=0),
                  help="deepest QP residency on this port")


def instrument_netstack(reg: MetricsRegistry, stack, prefix: str) -> None:
    """Socket population and message counts for one host's stack."""
    if not reg.enabled:
        return
    table = stack._sockets_by_thread
    reg.gauge(f"{prefix}.netstack.sockets",
              fn=lambda t=table: sum(len(socks) for socks in t.values()),
              help="open sockets")
    reg.gauge(f"{prefix}.netstack.rx_messages",
              fn=lambda t=table: sum(s.rx_messages for socks in t.values()
                                     for s in socks))
    reg.gauge(f"{prefix}.netstack.tx_messages",
              fn=lambda t=table: sum(s.tx_messages for socks in t.values()
                                     for s in socks))
