"""Exports: Prometheus text exposition and Perfetto trace assembly."""

from __future__ import annotations

import re
from typing import Dict, Optional

from repro.obs.registry import MetricsRegistry
from repro.sim.tracing import Tracer

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: Summary quantiles emitted per histogram.
_QUANTILES = ((0.5, 50), (0.95, 95), (0.99, 99))


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Dotted instrument name -> Prometheus metric name."""
    return f"{prefix}_{_NAME_RE.sub('_', name)}"


def to_prometheus(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Prometheus text exposition (0.0.4) of every instrument.

    Counters/gauges become single samples; histograms become
    summary-style quantile samples plus ``_count``/``_sum``.
    """
    lines = []
    for name in registry.names():
        instrument = registry.instruments[name]
        metric = prometheus_name(name, prefix)
        if instrument.help:
            lines.append(f"# HELP {metric} {instrument.help}")
        if instrument.kind == "histogram":
            lines.append(f"# TYPE {metric} summary")
            for quantile, p in _QUANTILES:
                if instrument.count:
                    value = instrument.percentile(p)
                    lines.append(
                        f'{metric}{{quantile="{quantile}"}} {value}')
            lines.append(f"{metric}_count {instrument.count}")
            lines.append(f"{metric}_sum {instrument.sum}")
        else:
            lines.append(f"# TYPE {metric} {instrument.kind}")
            lines.append(f"{metric} {instrument.value}")
    return "\n".join(lines) + "\n"


def to_perfetto(tracer: Tracer,
                registry: Optional[MetricsRegistry] = None,
                sampler=None,
                process_name: str = "repro") -> str:
    """Chrome/Perfetto JSON: trace records + sampler counter tracks +
    registry histogram metadata rows, in one document."""
    counters: Dict = {}
    if sampler is not None:
        counters.update(sampler.counter_tracks())
    histograms: Dict = {}
    if registry is not None:
        for name in registry.names():
            instrument = registry.instruments[name]
            if instrument.kind == "histogram" and instrument.count:
                histograms[name] = instrument.summary()
    return tracer.to_chrome_trace(process_name=process_name,
                                  counters=counters,
                                  histograms=histograms)
