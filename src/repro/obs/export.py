"""Exports: Prometheus text exposition and Perfetto trace assembly."""

from __future__ import annotations

import re
from typing import Dict, Optional

from repro.obs.registry import MetricsRegistry
from repro.sim.tracing import Tracer

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: Summary quantiles emitted per histogram.
_QUANTILES = ((0.5, 50), (0.95, 95), (0.99, 99))


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Dotted instrument name -> Prometheus metric name."""
    return f"{prefix}_{_NAME_RE.sub('_', name)}"


def _label_block(labels: Optional[Dict[str, str]],
                 extra: str = "") -> str:
    """Render a ``{k="v",...}`` label block ("" when there are none)."""
    parts = [f'{key}="{labels[key]}"' for key in sorted(labels or {})]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus(registry: MetricsRegistry, prefix: str = "repro",
                  labels: Optional[Dict[str, str]] = None) -> str:
    """Prometheus text exposition (0.0.4) of every instrument.

    Counters/gauges become single samples; histograms become
    summary-style quantile samples plus ``_count``/``_sum``.
    ``labels`` is stamped onto every sample — the fleet export passes
    ``{"server": "<id>"}`` so merged per-server registries stay
    distinguishable after scraping.
    """
    lines = []
    plain = _label_block(labels)
    for name in registry.names():
        instrument = registry.instruments[name]
        metric = prometheus_name(name, prefix)
        if instrument.help:
            lines.append(f"# HELP {metric} {instrument.help}")
        if instrument.kind == "histogram":
            lines.append(f"# TYPE {metric} summary")
            for quantile, p in _QUANTILES:
                if instrument.count:
                    value = instrument.percentile(p)
                    block = _label_block(labels,
                                         f'quantile="{quantile}"')
                    lines.append(f"{metric}{block} {value}")
            lines.append(f"{metric}_count{plain} {instrument.count}")
            lines.append(f"{metric}_sum{plain} {instrument.sum}")
        else:
            lines.append(f"# TYPE {metric} {instrument.kind}")
            lines.append(f"{metric}{plain} {instrument.value}")
    return "\n".join(lines) + "\n"


def to_perfetto(tracer: Tracer,
                registry: Optional[MetricsRegistry] = None,
                sampler=None,
                process_name: str = "repro") -> str:
    """Chrome/Perfetto JSON: trace records + sampler counter tracks +
    registry histogram metadata rows, in one document."""
    counters: Dict = {}
    if sampler is not None:
        counters.update(sampler.counter_tracks())
    histograms: Dict = {}
    if registry is not None:
        for name in registry.names():
            instrument = registry.instruments[name]
            if instrument.kind == "histogram" and instrument.count:
                histograms[name] = instrument.summary()
    return tracer.to_chrome_trace(process_name=process_name,
                                  counters=counters,
                                  histograms=histograms)
