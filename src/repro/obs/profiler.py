"""Event-engine self-profiler: host wall-clock by event category.

Answers "where does a simulated second's host time go?" — the question
the next perf PR starts from.  The profiler wraps
:meth:`~repro.sim.engine.Environment.step` with a per-event
``perf_counter`` timing, classifying each event *before* dispatch by
mirroring the kernel's lane/heap selection (without popping), so the
attribution adds no events and changes no ordering.  Categories are the
waiting process's name (``process:pktgen``) when one process owns the
callback, else the event type.

The wrapper costs two clock reads per event, so a profiled run is
slower — it is a diagnosis tool, never attached by default and excluded
from the obs-overhead bench gate.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.metrics.collect import format_table
from repro.sim.engine import Environment


class EngineProfiler:
    """Attributes host wall-clock to event categories on one env."""

    def __init__(self, env: Environment):
        self.env = env
        #: category -> [event count, wall seconds]
        self.by_category: Dict[str, List[float]] = {}
        self._installed = False

    # ---------------------------------------------------- classification

    def _next_event(self):
        """The event step() will dispatch next (kernel selection logic,
        mirrored without popping)."""
        env = self.env
        lane, queue = env._lane, env._queue
        if lane:
            if queue:
                head = queue[0]
                if head[0] <= env._now and head[1] < lane[0][0]:
                    return head[2]
            return lane[0][1]
        if queue:
            return queue[0][2]
        return None

    @staticmethod
    def _category(event) -> str:
        callbacks = getattr(event, "callbacks", None)
        if callbacks:
            for callback in callbacks:
                owner = getattr(callback, "__self__", None)
                name = getattr(owner, "name", None)
                if name:
                    return f"process:{name}"
        return f"event:{type(event).__name__}"

    # -------------------------------------------------------- install

    def install(self) -> None:
        """Shadow ``env.step`` with the timed wrapper (run() picks the
        instance attribute up on its next iteration)."""
        if self._installed:
            raise ValueError("profiler already installed")
        self._installed = True
        orig_step = Environment.step.__get__(self.env)
        by_category = self.by_category
        next_event = self._next_event
        category_of = self._category
        clock = time.perf_counter

        def timed_step() -> None:
            event = next_event()
            cat = category_of(event) if event is not None else "empty"
            start = clock()
            orig_step()
            elapsed = clock() - start
            cell = by_category.get(cat)
            if cell is None:
                cell = by_category[cat] = [0, 0.0]
            cell[0] += 1
            cell[1] += elapsed

        self.env.step = timed_step

    def uninstall(self) -> None:
        if self._installed:
            self.env.__dict__.pop("step", None)
            self._installed = False

    # -------------------------------------------------------- reporting

    def total_wall_s(self) -> float:
        return sum(cell[1] for cell in self.by_category.values())

    def rows(self, top: Optional[int] = None) -> List[list]:
        """[category, events, wall_ms, share] rows, hottest first."""
        total = self.total_wall_s() or 1.0
        ordered = sorted(self.by_category.items(),
                         key=lambda item: item[1][1], reverse=True)
        if top is not None:
            ordered = ordered[:top]
        return [[cat, int(count), wall * 1e3, wall / total]
                for cat, (count, wall) in ordered]

    def table(self, top: Optional[int] = 12) -> str:
        return format_table(
            ("category", "events", "wall ms", "share"),
            self.rows(top),
            title="engine self-profile (host wall-clock by event type)")
