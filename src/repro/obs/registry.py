"""The metrics registry: namespaced Counter/Gauge/Histogram instruments.

Design rules (the determinism section of DESIGN.md spells out why):

* **Zero cost when disabled.**  A disabled registry hands out one shared
  no-op instrument and registers nothing, so instrumented code pays a
  method call that does nothing — and the preferred instrumentation
  style avoids even that: gauges *bind a read function* over counters
  the components already maintain (``server.bytes_total``,
  ``llc.hits_bytes``, ...), so the hot paths are untouched and the cost
  of observability is paid at collection time, not per event.
* **Read-only.**  Instruments never mutate model state and never draw
  from the simulation RNG, so attaching a registry cannot perturb the
  deterministic event stream.
* **Namespaced.**  Dotted names (``srv.qpi.0to1.occupancy``) group
  instruments per component; ``detail=True`` marks per-queue/per-core
  instruments the CLI table folds away unless asked for everything.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Callable, Dict, List, Optional, Union


class NoopInstrument:
    """Absorbs every instrument call; shared singleton when disabled."""

    __slots__ = ()

    def inc(self, n: Union[int, float] = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


#: The one no-op instance every disabled registry hands out.
NOOP = NoopInstrument()


class Counter:
    """A monotonically increasing count (doorbells rung, retries, ...)."""

    kind = "counter"
    __slots__ = ("name", "help", "detail", "_value")

    def __init__(self, name: str, help: str = "", detail: bool = False):
        self.name = name
        self.help = help
        self.detail = detail
        self._value = 0

    def inc(self, n: Union[int, float] = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {n}")
        self._value += n

    @property
    def value(self) -> Union[int, float]:
        return self._value


class Gauge:
    """A point-in-time value; usually *bound* to a component counter.

    ``fn`` is evaluated at read time, which is what makes gauges free on
    the hot path: the component keeps its plain integer counter and the
    gauge reads it only when someone collects.
    """

    kind = "gauge"
    __slots__ = ("name", "help", "detail", "fn", "_value")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None,
                 help: str = "", detail: bool = False):
        self.name = name
        self.help = help
        self.detail = detail
        self.fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        if self.fn is not None:
            raise ValueError(f"gauge {self.name} is bound to a function")
        self._value = value

    @property
    def value(self) -> float:
        if self.fn is not None:
            return self.fn()
        return self._value


class Histogram:
    """A distribution: observations summarised as count/sum/percentiles."""

    kind = "histogram"
    __slots__ = ("name", "help", "detail", "samples", "_sorted")

    def __init__(self, name: str, help: str = "", detail: bool = False):
        self.name = name
        self.help = help
        self.detail = detail
        self.samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def observe(self, value: float) -> None:
        self.samples.append(value)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def sum(self) -> float:
        return sum(self.samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over all observations, p in [0, 100]."""
        if not self.samples:
            raise ValueError(f"histogram {self.name} has no samples")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        ordered = self._sorted
        if ordered is None:
            ordered = self._sorted = sorted(self.samples)
        rank = max(1, math.ceil(p / 100 * len(ordered)))
        return ordered[rank - 1]

    def quantile_le(self, bound: float) -> int:
        """Observations <= ``bound`` (a cumulative bucket count)."""
        ordered = self._sorted
        if ordered is None:
            ordered = self._sorted = sorted(self.samples)
        return bisect_right(ordered, bound)

    def summary(self) -> Dict[str, float]:
        if not self.samples:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": min(self.samples),
            "max": max(self.samples),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Creates and owns instruments under dotted names.

    When ``enabled=False`` every factory returns the shared
    :data:`NOOP` instrument and nothing is registered, so a disabled
    registry costs nothing to carry around and (by construction) nothing
    per event.

    ``namespace`` prefixes every registered name (``namespace.name``) —
    the fleet merge path gives each server's metrics its own namespace
    (``srv0.``, ``srv1.``, ...) so merged registries never collide on
    instrument names.
    """

    def __init__(self, enabled: bool = True, namespace: str = ""):
        self.enabled = enabled
        self.namespace = namespace
        self.instruments: Dict[str, Instrument] = {}

    # -------------------------------------------------------- factories

    def _qualify(self, name: str) -> str:
        return f"{self.namespace}.{name}" if self.namespace else name

    def _register(self, instrument: Instrument) -> Instrument:
        if instrument.name in self.instruments:
            raise ValueError(
                f"instrument {instrument.name!r} already registered")
        self.instruments[instrument.name] = instrument
        return instrument

    def counter(self, name: str, help: str = "",
                detail: bool = False) -> Union[Counter, NoopInstrument]:
        if not self.enabled:
            return NOOP
        return self._register(Counter(self._qualify(name), help, detail))

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None,
              help: str = "",
              detail: bool = False) -> Union[Gauge, NoopInstrument]:
        if not self.enabled:
            return NOOP
        return self._register(Gauge(self._qualify(name), fn, help, detail))

    def histogram(self, name: str, help: str = "",
                  detail: bool = False) -> Union[Histogram, NoopInstrument]:
        if not self.enabled:
            return NOOP
        return self._register(Histogram(self._qualify(name), help, detail))

    # ----------------------------------------------------------- merging

    def absorb(self, values: Dict[str, float],
               namespace: str = "") -> None:
        """Register a flat ``name -> value`` mapping (a worker's
        ``collect()`` output) as plain gauges, optionally under an extra
        ``namespace`` prefix.

        This is how a fleet run merges per-worker registries shipped
        across process boundaries: each server's collected values land
        under its own namespace, so no two servers' instruments collide.
        A collision (same fully-qualified name twice) still raises — the
        caller picked overlapping namespaces.
        """
        if not self.enabled:
            return
        for name in sorted(values):
            qualified = f"{namespace}.{name}" if namespace else name
            gauge = Gauge(self._qualify(qualified))
            gauge.set(float(values[name]))
            self._register(gauge)

    # ------------------------------------------------------- collection

    def get(self, name: str) -> Instrument:
        return self.instruments[name]

    def names(self) -> List[str]:
        return sorted(self.instruments)

    def collect(self, include_detail: bool = True) -> Dict[str, float]:
        """Evaluate every instrument into a flat name -> value mapping.

        Histograms expand into ``name.count`` / ``name.p50`` / ... keys.
        """
        out: Dict[str, float] = {}
        for name in self.names():
            instrument = self.instruments[name]
            if instrument.detail and not include_detail:
                continue
            if instrument.kind == "histogram":
                for key, value in instrument.summary().items():
                    out[f"{name}.{key}"] = value
            else:
                out[name] = instrument.value
        return out
