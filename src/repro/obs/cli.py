"""`ioctopus-repro obs`: per-component utilization for one experiment
point, plus optional Perfetto trace / Prometheus dump / engine profile.

Examples::

    ioctopus-repro obs                         # fig08 quick point
    ioctopus-repro obs --workload rr --trace /tmp/rr.json
    ioctopus-repro obs --config ioctopus --full --profile
    ioctopus-repro obs --prom /tmp/metrics.prom
    ioctopus-repro obs blame --workload rr --config remote
    ioctopus-repro obs diff --a-config ioctopus --b-config remote

The ``rr`` workload is the one to use with ``--trace``: its latency
path opens a flow per round trip, so the Perfetto view shows each
message as a connected arrow chain wire -> PF -> DMA -> stack -> app.
``obs blame`` replaces the utilization table with the per-stage latency
budget (:mod:`repro.obs.blame`); ``obs diff`` attributes the delta
between two configurations (:mod:`repro.obs.diff`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.base import DURATIONS_MS
from repro.obs.session import ObsSession

WORKLOADS = ("pktgen", "tcp_rx", "tcp_tx", "rr")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ioctopus-repro obs",
        description="Run one experiment point with full observability "
                    "and print a per-component utilization table")
    parser.add_argument("--workload", default="pktgen", choices=WORKLOADS)
    parser.add_argument("--config", default="remote",
                        choices=("local", "remote", "ioctopus"),
                        help="server-side configuration (default: remote, "
                             "the NUDMA-afflicted case)")
    parser.add_argument("--packet-bytes", type=int, default=256,
                        help="pktgen packet size (default: 256, the "
                             "fig08 knee)")
    parser.add_argument("--message-bytes", type=int, default=16384,
                        help="tcp_rx/tcp_tx/rr message size")
    parser.add_argument("--fidelity", default="quick",
                        choices=tuple(sorted(DURATIONS_MS)))
    parser.add_argument("--accuracy", default="exact",
                        choices=("exact", "adaptive"),
                        help="default exact: observability reads are "
                             "deterministic and comparable across runs")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sample-interval-us", type=int, default=1000,
                        help="utilization sampling cadence in sim "
                             "microseconds (default: 1000)")
    parser.add_argument("--full", action="store_true",
                        help="include per-queue/per-core detail rows")
    parser.add_argument("--trace", metavar="FILE",
                        help="write a Chrome/Perfetto JSON trace "
                             "(spans + flow arrows + counter tracks)")
    parser.add_argument("--prom", metavar="FILE",
                        help="write a Prometheus text-format dump")
    parser.add_argument("--profile", action="store_true",
                        help="also print the engine self-profile "
                             "(host wall-clock by event type)")
    return parser


def _run_point(args, obs: ObsSession) -> dict:
    from repro.experiments.runners import (
        run_pktgen,
        run_tcp_rr,
        run_tcp_stream,
    )
    duration = DURATIONS_MS[args.fidelity] * 1_000_000
    common = dict(duration_ns=duration, seed=args.seed,
                  accuracy=args.accuracy, obs=obs)
    if args.workload == "pktgen":
        return run_pktgen(args.config, args.packet_bytes, **common)
    if args.workload in ("tcp_rx", "tcp_tx"):
        direction = args.workload[4:]
        return run_tcp_stream(args.config, args.message_bytes, direction,
                              **common)
    rtt = run_tcp_rr(args.config, "local", True, args.message_bytes,
                     **common)
    return {"avg_rtt_us": rtt / 1000}


def build_blame_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ioctopus-repro obs blame",
        description="Run one experiment point with latency-blame "
                    "attribution and print the per-stage budget table")
    parser.add_argument("--workload", default="pktgen", choices=WORKLOADS)
    parser.add_argument("--config", default="remote",
                        choices=("local", "remote", "ioctopus"))
    parser.add_argument("--packet-bytes", type=int, default=256)
    parser.add_argument("--message-bytes", type=int, default=16384)
    parser.add_argument("--fidelity", default="quick",
                        choices=tuple(sorted(DURATIONS_MS)))
    parser.add_argument("--accuracy", default="exact",
                        choices=("exact", "adaptive", "fluid"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--client-config", default="local",
                        choices=("local", "remote", "ioctopus"),
                        help="rr client-side configuration")
    parser.add_argument("--no-ddio", action="store_true",
                        help="rr: disable DDIO on the server")
    parser.add_argument("--json", action="store_true",
                        help="emit the raw JSON report")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="also write the JSON report to FILE")
    return parser


def blame_main(argv: Optional[List[str]] = None) -> int:
    import json

    from repro.obs.blame import render_text, run_blame_point

    args = build_blame_parser().parse_args(argv)
    size = (args.packet_bytes if args.workload == "pktgen"
            else args.message_bytes)
    duration = DURATIONS_MS[args.fidelity] * 1_000_000
    report = run_blame_point(
        args.workload, args.config, size=size, duration_ns=duration,
        seed=args.seed, accuracy=args.accuracy,
        client_config=args.client_config, ddio=not args.no_ddio)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(json.dumps(report, indent=2, sort_keys=True)
                         + "\n")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_text(report))
    return 0 if report["conservation"]["ok"] else 1


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "blame":
        return blame_main(argv[1:])
    if argv and argv[0] == "diff":
        from repro.obs.diff import main as diff_main
        return diff_main(argv[1:])
    args = build_parser().parse_args(argv)
    obs = ObsSession(enabled=True, trace=bool(args.trace),
                     sample_interval_ns=args.sample_interval_us * 1000,
                     profile=args.profile)
    result = _run_point(args, obs)

    size = (args.packet_bytes if args.workload == "pktgen"
            else args.message_bytes)
    point = (f"{args.workload} {args.config} {size}B "
             f"{args.fidelity}/{args.accuracy}")
    print(f"point: {point}")
    for key, value in result.items():
        print(f"  {key}: {value:.4f}")
    print()
    print(obs.utilization_table(full=args.full))

    if args.profile:
        print()
        print(obs.profile_table())
    if args.trace:
        with open(args.trace, "w") as fh:
            fh.write(obs.perfetto_json())
        records = len(obs.tracer.records) if obs.tracer else 0
        print(f"\nwrote {records} trace records to {args.trace} "
              "(open in ui.perfetto.dev)")
    if args.prom:
        with open(args.prom, "w") as fh:
            fh.write(obs.prometheus())
        print(f"wrote Prometheus dump to {args.prom}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
