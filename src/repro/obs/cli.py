"""`ioctopus-repro obs`: per-component utilization for one experiment
point, plus optional Perfetto trace / Prometheus dump / engine profile.

Examples::

    ioctopus-repro obs                         # fig08 quick point
    ioctopus-repro obs --workload rr --trace /tmp/rr.json
    ioctopus-repro obs --config ioctopus --full --profile
    ioctopus-repro obs --prom /tmp/metrics.prom

The ``rr`` workload is the one to use with ``--trace``: its latency
path opens a flow per round trip, so the Perfetto view shows each
message as a connected arrow chain wire -> PF -> DMA -> stack -> app.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.base import DURATIONS_MS
from repro.obs.session import ObsSession

WORKLOADS = ("pktgen", "tcp_rx", "tcp_tx", "rr")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ioctopus-repro obs",
        description="Run one experiment point with full observability "
                    "and print a per-component utilization table")
    parser.add_argument("--workload", default="pktgen", choices=WORKLOADS)
    parser.add_argument("--config", default="remote",
                        choices=("local", "remote", "ioctopus"),
                        help="server-side configuration (default: remote, "
                             "the NUDMA-afflicted case)")
    parser.add_argument("--packet-bytes", type=int, default=256,
                        help="pktgen packet size (default: 256, the "
                             "fig08 knee)")
    parser.add_argument("--message-bytes", type=int, default=16384,
                        help="tcp_rx/tcp_tx/rr message size")
    parser.add_argument("--fidelity", default="quick",
                        choices=tuple(sorted(DURATIONS_MS)))
    parser.add_argument("--accuracy", default="exact",
                        choices=("exact", "adaptive"),
                        help="default exact: observability reads are "
                             "deterministic and comparable across runs")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sample-interval-us", type=int, default=1000,
                        help="utilization sampling cadence in sim "
                             "microseconds (default: 1000)")
    parser.add_argument("--full", action="store_true",
                        help="include per-queue/per-core detail rows")
    parser.add_argument("--trace", metavar="FILE",
                        help="write a Chrome/Perfetto JSON trace "
                             "(spans + flow arrows + counter tracks)")
    parser.add_argument("--prom", metavar="FILE",
                        help="write a Prometheus text-format dump")
    parser.add_argument("--profile", action="store_true",
                        help="also print the engine self-profile "
                             "(host wall-clock by event type)")
    return parser


def _run_point(args, obs: ObsSession) -> dict:
    from repro.experiments.runners import (
        run_pktgen,
        run_tcp_rr,
        run_tcp_stream,
    )
    duration = DURATIONS_MS[args.fidelity] * 1_000_000
    common = dict(duration_ns=duration, seed=args.seed,
                  accuracy=args.accuracy, obs=obs)
    if args.workload == "pktgen":
        return run_pktgen(args.config, args.packet_bytes, **common)
    if args.workload in ("tcp_rx", "tcp_tx"):
        direction = args.workload[4:]
        return run_tcp_stream(args.config, args.message_bytes, direction,
                              **common)
    rtt = run_tcp_rr(args.config, "local", True, args.message_bytes,
                     **common)
    return {"avg_rtt_us": rtt / 1000}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    obs = ObsSession(enabled=True, trace=bool(args.trace),
                     sample_interval_ns=args.sample_interval_us * 1000,
                     profile=args.profile)
    result = _run_point(args, obs)

    size = (args.packet_bytes if args.workload == "pktgen"
            else args.message_bytes)
    point = (f"{args.workload} {args.config} {size}B "
             f"{args.fidelity}/{args.accuracy}")
    print(f"point: {point}")
    for key, value in result.items():
        print(f"  {key}: {value:.4f}")
    print()
    print(obs.utilization_table(full=args.full))

    if args.profile:
        print()
        print(obs.profile_table())
    if args.trace:
        with open(args.trace, "w") as fh:
            fh.write(obs.perfetto_json())
        records = len(obs.tracer.records) if obs.tracer else 0
        print(f"\nwrote {records} trace records to {args.trace} "
              "(open in ui.perfetto.dev)")
    if args.prom:
        with open(args.prom, "w") as fh:
            fh.write(obs.prometheus())
        print(f"wrote Prometheus dump to {args.prom}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
