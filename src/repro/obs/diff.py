"""Differential run analysis: where did the delta come from?

``obs diff`` takes two blame reports — run fresh (``--a-config remote
--b-config ioctopus``) or loaded from JSON (``--a FILE``) — and
attributes the end-to-end latency delta stage-by-stage and the
observable differences counter-by-counter.

Because every sealed flow's stage charges sum exactly to its
end-to-end latency, the per-stage *mean* deltas sum exactly to the
end-to-end mean delta: the attribution is a decomposition, not a
heuristic.  The tail attribution does the same over each report's
p99-tail population (per-tail-request means), answering "which stages
moved the p99".  Stages whose relative movement is below
``INERT_REL`` are flagged inert, same convention as the ablation
engine.

The headline number is ``nudma_share``: the fraction of the mean delta
carried by ``.qpi``/``.miss`` stages, netted within each stage family
so a ``dma.local -> dma.qpi`` relabel attributes only its excess cost —
for ioctopus-vs-remote this is the paper's whole story (QPI transit
plus remote-DRAM completion reads), and the CI smoke test asserts it
stays >= 0.8.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

from repro.obs.blame import is_nudma_stage, run_blame_point, stage_family

#: Relative movement below this is reported as inert (noise), matching
#: the ablation engine's convention.
INERT_REL = 0.002


def _stage_index(report: Dict) -> Dict[str, Dict]:
    return {row["stage"]: row for row in report.get("stages", ())}


def _rel(delta: float, base: float) -> float:
    return delta / base if base else 0.0


def _clamp_toward(value: float, bound: float) -> float:
    """Clamp ``value`` into the interval between 0 and ``bound``."""
    if bound >= 0:
        return min(max(value, 0.0), bound)
    return max(min(value, 0.0), bound)


def diff_reports(report_a: Dict, report_b: Dict,
                 label_a: str = "a", label_b: str = "b") -> Dict:
    """Stage-by-stage and counter-by-counter attribution of B - A."""
    e2e_a, e2e_b = report_a["e2e"], report_b["e2e"]
    mean_delta = e2e_b["mean_ns"] - e2e_a["mean_ns"]
    stages_a = _stage_index(report_a)
    stages_b = _stage_index(report_b)

    rows: List[Dict] = []
    for name in sorted(set(stages_a) | set(stages_b)):
        a = stages_a.get(name)
        b = stages_b.get(name)
        mean_a = a["mean_ns"] if a else 0.0
        mean_b = b["mean_ns"] if b else 0.0
        tail_a = a["tail_mean_ns"] if a else 0.0
        tail_b = b["tail_mean_ns"] if b else 0.0
        d_mean = mean_b - mean_a
        d_tail = tail_b - tail_a
        nudma = is_nudma_stage(name)
        rows.append({
            "stage": name,
            "family": stage_family(name),
            "nudma": nudma,
            "mean_a_ns": mean_a,
            "mean_b_ns": mean_b,
            "delta_mean_ns": d_mean,
            "share_of_delta": _rel(d_mean, mean_delta),
            "tail_a_ns": tail_a,
            "tail_b_ns": tail_b,
            "delta_tail_ns": d_tail,
            "inert": abs(d_mean) <= INERT_REL * max(
                abs(e2e_a["mean_ns"]), abs(e2e_b["mean_ns"]), 1.0),
        })
    rows.sort(key=lambda row: (-abs(row["delta_mean_ns"]), row["stage"]))

    # Family-level net deltas (families also sum exactly to the e2e
    # mean delta).  A configuration change mostly *relabels* stages
    # within a family (dma.local -> dma.qpi, cq.hit -> cq.miss), so the
    # NUDMA-attributable part of a family's movement is its NUDMA
    # variants' delta clamped to the family's net movement: the +567/-550
    # irq.local->irq.qpi swap attributes only its +17 ns net excess.
    families: Dict[str, Dict[str, float]] = {}
    for row in rows:
        family = families.setdefault(
            row["family"], {"mean": 0.0, "tail": 0.0,
                            "nudma_mean": 0.0, "nudma_tail": 0.0})
        family["mean"] += row["delta_mean_ns"]
        family["tail"] += row["delta_tail_ns"]
        if row["nudma"]:
            family["nudma_mean"] += row["delta_mean_ns"]
            family["nudma_tail"] += row["delta_tail_ns"]
    nudma_mean = 0.0
    nudma_tail = 0.0
    tail_delta_sum = 0.0
    family_rows = []
    for name, f in families.items():
        attributed = _clamp_toward(f["nudma_mean"], f["mean"])
        attributed_tail = _clamp_toward(f["nudma_tail"], f["tail"])
        nudma_mean += attributed
        nudma_tail += attributed_tail
        tail_delta_sum += f["tail"]
        family_rows.append({
            "family": name,
            "delta_mean_ns": f["mean"],
            "share_of_delta": _rel(f["mean"], mean_delta),
            "nudma_mean_ns": attributed,
        })
    family_rows.sort(key=lambda row: (-abs(row["delta_mean_ns"]),
                                      row["family"]))

    counters = _diff_counters(report_a.get("counters"),
                              report_b.get("counters"))
    results = _diff_counters(_numeric(report_a.get("result")),
                             _numeric(report_b.get("result")))

    return {
        "a": {"label": label_a, "point": report_a.get("point"),
              "e2e": e2e_a, "units": report_a.get("units", 0)},
        "b": {"label": label_b, "point": report_b.get("point"),
              "e2e": e2e_b, "units": report_b.get("units", 0)},
        "e2e_delta": {
            "mean_ns": mean_delta,
            "p50_ns": e2e_b["p50_ns"] - e2e_a["p50_ns"],
            "p99_ns": e2e_b["p99_ns"] - e2e_a["p99_ns"],
            "rel_mean": _rel(mean_delta, e2e_a["mean_ns"]),
        },
        "stages": rows,
        "families": family_rows,
        # Σ over .qpi/.miss stages of the mean delta, over the total:
        # the share of the movement the NUDMA story explains.
        "nudma_share": _rel(nudma_mean, mean_delta),
        "nudma_tail_share": _rel(nudma_tail, tail_delta_sum),
        "nudma_delta_mean_ns": nudma_mean,
        "result_delta": results,
        "counters": counters,
        "conservation_ok": (report_a["conservation"]["ok"]
                            and report_b["conservation"]["ok"]),
    }


def _numeric(result: Optional[Dict]) -> Optional[Dict]:
    if not isinstance(result, dict):
        return None
    return {key: value for key, value in result.items()
            if isinstance(value, (int, float))}


def _diff_counters(a: Optional[Dict], b: Optional[Dict]) -> List[Dict]:
    if not a and not b:
        return []
    a = a or {}
    b = b or {}
    rows = []
    for name in sorted(set(a) | set(b)):
        va = float(a.get(name, 0))
        vb = float(b.get(name, 0))
        delta = vb - va
        rel = _rel(delta, abs(va) or abs(vb))
        rows.append({"name": name, "a": va, "b": vb, "delta": delta,
                     "rel_delta": rel,
                     "inert": abs(rel) <= INERT_REL})
    rows.sort(key=lambda row: (-abs(row["rel_delta"]), row["name"]))
    return rows


# -------------------------------------------------------------- rendering

def render_json(report: Dict) -> str:
    return json.dumps(report, indent=2, sort_keys=True)


def _point_label(side: Dict) -> str:
    point = side.get("point")
    if not point:
        return side["label"]
    return (f"{side['label']} ({point.get('workload')} "
            f"{point.get('config')} {point.get('size')}B "
            f"{point.get('accuracy')})")


def render_text(report: Dict) -> str:
    a, b = report["a"], report["b"]
    delta = report["e2e_delta"]
    lines = [
        f"diff: {_point_label(b)} - {_point_label(a)}",
        f"  e2e mean {a['e2e']['mean_ns']:.1f} -> "
        f"{b['e2e']['mean_ns']:.1f} ns "
        f"({delta['mean_ns']:+.1f} ns, {delta['rel_mean']:+.1%}); "
        f"p50 {delta['p50_ns']:+d} ns, p99 {delta['p99_ns']:+d} ns",
        f"  conservation: "
        f"{'ok both sides' if report['conservation_ok'] else 'VIOLATED'}",
        "",
        f"  {'stage':16s} {'mean a':>10} {'mean b':>10} {'delta':>10} "
        f"{'share':>7}  verdict",
    ]
    for row in report["stages"]:
        mark = " *" if row["nudma"] else ""
        verdict = "inert" if row["inert"] else "moved"
        lines.append(
            f"  {row['stage']:16s} {row['mean_a_ns']:>10.1f} "
            f"{row['mean_b_ns']:>10.1f} {row['delta_mean_ns']:>+10.1f} "
            f"{row['share_of_delta']:>7.1%}  {verdict}{mark}")
    lines.append("")
    lines.append(
        f"  NUDMA stages (*) carry {report['nudma_share']:.1%} of the "
        f"mean delta ({report['nudma_delta_mean_ns']:+.1f} ns), "
        f"{report['nudma_tail_share']:.1%} of the tail movement")
    moved = [row for row in report["counters"] if not row["inert"]]
    if moved:
        lines.append("")
        lines.append(f"  {'counter':36s} {'a':>12} {'b':>12} {'rel':>8}")
        for row in moved[:12]:
            lines.append(
                f"  {row['name']:36s} {row['a']:>12.4g} {row['b']:>12.4g} "
                f"{row['rel_delta']:>+8.1%}")
        if len(moved) > 12:
            lines.append(f"  ... and {len(moved) - 12} more "
                         f"non-inert counters")
    for row in report["result_delta"]:
        lines.append(f"  result {row['name']}: {row['a']:.4g} -> "
                     f"{row['b']:.4g} ({row['rel_delta']:+.1%})")
    return "\n".join(lines)


# -------------------------------------------------------------------- CLI

def _load(path: str) -> Dict:
    with open(path) as handle:
        return json.load(handle)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ioctopus-repro obs diff",
        description="Attribute the latency delta between two runs "
                    "stage-by-stage and counter-by-counter")
    parser.add_argument("--a", metavar="FILE", default=None,
                        help="load side A from an obs blame JSON report "
                             "instead of running it")
    parser.add_argument("--b", metavar="FILE", default=None,
                        help="load side B from a JSON report")
    parser.add_argument("--workload", default="pktgen",
                        choices=("pktgen", "tcp_rx", "tcp_tx", "rr"))
    parser.add_argument("--a-config", default="ioctopus",
                        choices=("local", "remote", "ioctopus"))
    parser.add_argument("--b-config", default="remote",
                        choices=("local", "remote", "ioctopus"))
    parser.add_argument("--size", type=int, default=None,
                        help="packet/message bytes (default: 256 for "
                             "pktgen, 64 for rr, 16384 for tcp_*)")
    parser.add_argument("--fidelity", default="quick")
    parser.add_argument("--accuracy", default="exact",
                        choices=("exact", "adaptive", "fluid"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="also write the JSON diff to FILE")
    return parser


def _default_size(workload: str) -> int:
    if workload == "pktgen":
        return 256
    if workload == "rr":
        return 64
    return 16384


def main(argv: Optional[List[str]] = None) -> int:
    from repro.experiments.base import DURATIONS_MS
    args = build_parser().parse_args(argv)
    if args.fidelity not in DURATIONS_MS:
        print(f"fidelity must be one of {sorted(DURATIONS_MS)}",
              file=sys.stderr)
        return 2
    size = args.size if args.size is not None \
        else _default_size(args.workload)
    duration = DURATIONS_MS[args.fidelity] * 1_000_000

    def side(path: Optional[str], config: str) -> Tuple[Dict, str]:
        if path:
            return _load(path), path
        report = run_blame_point(args.workload, config, size=size,
                                 duration_ns=duration, seed=args.seed,
                                 accuracy=args.accuracy)
        return report, config

    report_a, label_a = side(args.a, args.a_config)
    report_b, label_b = side(args.b, args.b_config)
    report = diff_reports(report_a, report_b, label_a, label_b)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(render_json(report) + "\n")
    print(render_json(report) if args.json else render_text(report))
    return 0


if __name__ == "__main__":
    sys.exit(main())
