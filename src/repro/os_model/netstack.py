"""The network stack: sockets, XPS, ARFS callbacks, and the data paths.

The stack mirrors the Linux mechanisms the paper builds on (§2.3):

* **XPS** — each socket transmits through the Tx queue of the core its
  owner currently runs on; after a migration the socket is re-pointed as
  soon as the old queue signals ``ooo_okay``.
* **ARFS** — on migration, the stack invokes the driver's steering
  callback so arriving packets land on the new core's Rx queue (and, for
  the octoNIC driver, on the new node's PF).

Two kinds of data-path APIs exist:

* ``*_burst`` — steady-state throughput: returns (cpu_ns, dev_ns) for a
  batch; callers overlap them (``thread.overlap``) because CPU and device
  pipeline against each other.
* ``latency_*`` — a single message's critical path: returns the **sum** of
  every component (interrupt, wakeup, fills, wire), used by the RR and
  sockperf experiments where coalescing is disabled (§5.1.2).
"""

from __future__ import annotations

from typing import Dict, List

from repro.nic.packet import Flow, packets_for
from repro.os_model.driver import NetDriver
from repro.os_model.scheduler import Scheduler
from repro.os_model.thread import SimThread
from repro.topology.machine import Machine
from repro.units import KB, TSO_SEGMENT

#: TCP maximum segment size with a 1500 B MTU.
MSS = 1448
#: Packets per interrupt under Linux adaptive coalescing (streaming).
COALESCE_PKTS = 64


def _ring_lag(queue) -> int:
    """How far (in bytes) the consumer lags the DMA producer under
    streaming load: half the Rx ring's buffer capacity (deep rings run
    near-full when the CPU is the bottleneck)."""
    return queue.buffers.size // 2


class Socket:
    """A connected socket owned by one thread."""

    def __init__(self, stack: "NetworkStack", thread: SimThread,
                 driver: NetDriver, flow: Flow, app_buffer_bytes: int):
        self.stack = stack
        self.owner = thread
        self.driver = driver
        self.flow = flow
        self.dst_mac = driver.dst_mac()
        self.app_buffer = stack.machine.alloc_region(
            f"app-{flow.src_port}", thread.core.node_id, app_buffer_bytes)
        self.tx_queue = driver.tx_queue_for_core(thread.core)
        self.closed = False
        self.rx_messages = 0
        self.tx_messages = 0
        #: Payload bytes this socket received/sent (app-level ledger;
        #: invariant checks conserve these against the NIC queue ledgers).
        self.rx_payload_bytes = 0
        self.tx_payload_bytes = 0

    def __repr__(self) -> str:
        return f"<Socket {self.flow.src_port}->{self.flow.dst_port}>"


class NetworkStack:
    """One machine's network stack."""

    def __init__(self, machine: Machine, scheduler: Scheduler):
        self.machine = machine
        self.scheduler = scheduler
        self.costs = machine.spec.software
        self.memory = machine.memory
        #: ARFS migration callbacks (the ``arfs_migration`` component):
        #: off, a migrated thread's flows keep landing on the old core's
        #: Rx queue — the pre-ARFS Linux behaviour.
        self.arfs_enabled = True
        #: XPS re-pointing (the ``xps`` component): off, sockets keep
        #: transmitting through the queue of the core they started on.
        self.xps_enabled = True
        self._sockets_by_thread: Dict[SimThread, List[Socket]] = {}
        #: Every socket ever opened on this stack, closed ones included
        #: (the fuzz invariants sum per-socket ledgers over the full run).
        self.sockets: List[Socket] = []
        scheduler.on_migration(self._on_migration)

    # ------------------------------------------------------------ sockets

    def open_socket(self, thread: SimThread, driver: NetDriver, flow: Flow,
                    app_buffer_bytes: int = 64 * KB) -> Socket:
        sock = Socket(self, thread, driver, flow, app_buffer_bytes)
        driver.steer_rx(flow, thread.core, immediate=True)
        self._sockets_by_thread.setdefault(thread, []).append(sock)
        self.sockets.append(sock)
        return sock

    def close(self, sock: Socket) -> None:
        sock.closed = True
        owned = self._sockets_by_thread.get(sock.owner, [])
        if sock in owned:
            owned.remove(sock)

    def _on_migration(self, thread: SimThread, old_core, new_core) -> None:
        for sock in self._sockets_by_thread.get(thread, []):
            # Rx: deferred-until-drained ARFS (and IOctoRFS) update.
            if self.arfs_enabled:
                sock.driver.steer_rx(sock.flow, new_core)
            # Tx: XPS re-points the socket once ooo_okay allows it.
            if self.xps_enabled and (sock.tx_queue.ooo_okay
                                     or sock.tx_queue.is_drained()):
                sock.tx_queue = sock.driver.tx_queue_for_core(new_core)
            # The app buffer stays where it was allocated (first-touch);
            # only cache residency migrates, which the LLC model handles.

    # ----------------------------------------------- steady-state fast path

    def steady_token(self, sock: Socket) -> tuple:
        """Fingerprint of every steering/steady-state input a burst on
        ``sock`` depends on.  While two consecutive bursts see the same
        token, a coalesced train is exact up to linearity: same core, same
        queues, same serving PFs (and both alive), same firmware steering
        epoch, same interrupt-moderation budgets, no wire impairment.
        Any change is a de-coalescing boundary for the train governor."""
        thread = sock.owner
        driver = sock.driver
        rxq = driver.rx_queue_for_core(thread.core)
        txq = sock.tx_queue
        device = driver.device
        wire = device.wire
        return (thread.core, rxq, txq, rxq.pf, txq.pf,
                rxq.pf.alive, txq.pf.alive,
                device.firmware.steering_epoch(),
                rxq.moderation.current_budget(),
                txq.moderation.current_budget(),
                wire.is_impaired if wire is not None else False)

    # ------------------------------------------------- throughput: receive

    def rx_burst(self, sock: Socket, nmessages: int,
                 message_bytes: int, ntrains: int = 1) -> tuple:
        """Receive ``nmessages`` messages; returns (cpu_ns, dev_ns).

        ``ntrains > 1`` coalesces that many identical back-to-back bursts
        into one call (adaptive accuracy): every count is the per-burst
        value scaled by ``ntrains`` — preserving the per-burst quantisation
        of packets-per-message and interrupts — so the charge equals the
        sum of ``ntrains`` individual calls wherever the model is linear.
        """
        if nmessages < 1:
            raise ValueError(f"nmessages must be >= 1, got {nmessages}")
        if ntrains < 1:
            raise ValueError(f"ntrains must be >= 1, got {ntrains}")
        thread = sock.owner
        node = thread.core.node_id
        pkts_per_msg = packets_for(message_bytes, MSS)
        burst_packets = nmessages * pkts_per_msg
        npackets = burst_packets * ntrains
        total_messages = nmessages * ntrains
        payload = max(1, min(message_bytes, MSS))

        # Under streaming load the ring runs deep: the batch the CPU
        # processes now was DMA-written a full burst earlier, so its cache
        # state is whatever survived the interleaving traffic.  We charge
        # the CPU costs against the queue's *pre-delivery* state, then
        # deliver the next batch — which is what lets many queues' working
        # sets thrash the LLC in the multi-core experiment (§5.1.1) while
        # a single queue stays DDIO-hot.
        queue = sock.driver.rx_queue_for_core(thread.core)
        total_bytes = npackets * payload
        # Blame-only interval (no trace records): the shared paths below
        # contribute their stage charges while it is active.
        bflow = self.machine.tracer.begin_blame(self.machine.now)
        cpu = sock.driver.completion.interrupt(queue, burst_packets,
                                               ntrains, self.machine.now)
        stack = (npackets * self.costs.rx_pkt_ns
                 + total_messages * self.costs.syscall_ns)
        cpu += stack
        # Completion-descriptor reads: hit (DDIO) or ~80 ns miss each.
        cpu += sock.driver.completion.consume(queue, npackets, node)
        # Payload copy to userspace: source freshness decided by DMA path.
        copy = int(total_bytes * self.costs.copy_ns_per_byte)
        fresh = self.memory.cpu_read_fresh_dma(node, queue.buffers,
                                               total_bytes,
                                               inflight_bytes=_ring_lag(queue))
        copy += self.memory.cpu_stream_write(node, sock.app_buffer,
                                             total_bytes)
        cpu += copy + fresh

        delivered, dev_ns = sock.driver.device.rx_deliver(
            sock.flow, sock.dst_mac, npackets, payload, nbursts=ntrains)
        delivered.outstanding = max(0, delivered.outstanding - npackets)
        if bflow is not None:
            bflow.charge("stack", stack)
            bflow.charge("app", copy)
            bflow.charge("mem.miss", fresh)
            bflow.seal(cpu + dev_ns, represented=ntrains)
        sock.rx_messages += total_messages
        sock.rx_payload_bytes += total_bytes
        return cpu, dev_ns

    # ------------------------------------------------ throughput: transmit

    def tx_burst(self, sock: Socket, nmessages: int, message_bytes: int,
                 tso: bool = True, ntrains: int = 1) -> tuple:
        """Transmit ``nmessages`` messages; returns (cpu_ns, dev_ns).

        ``ntrains`` coalesces identical back-to-back bursts exactly as in
        :meth:`rx_burst`; per-burst quantisation (TSO descriptor count,
        ACK ratio, doorbell per burst) is preserved by scaling the
        per-burst values rather than recomputing from the train total.
        """
        if nmessages < 1:
            raise ValueError(f"nmessages must be >= 1, got {nmessages}")
        if ntrains < 1:
            raise ValueError(f"ntrains must be >= 1, got {ntrains}")
        thread = sock.owner
        node = thread.core.node_id
        txq = sock.tx_queue
        pkts_per_msg = packets_for(message_bytes, MSS)
        burst_packets = nmessages * pkts_per_msg
        npackets = burst_packets * ntrains
        total_messages = nmessages * ntrains
        payload = max(1, min(message_bytes, MSS))
        total_bytes = npackets * payload
        if tso:
            burst_desc = nmessages * max(1, -(-message_bytes // TSO_SEGMENT))
            ndesc = burst_desc * ntrains
            stack_cost = ndesc * self.costs.tx_segment_ns
        else:
            burst_desc = burst_packets
            ndesc = npackets
            stack_cost = npackets * self.costs.tx_pkt_ns

        bflow = self.machine.tracer.begin_blame(self.machine.now)
        kernel = total_messages * self.costs.syscall_ns + stack_cost
        cpu = kernel
        # Copy userspace -> kernel skbs.
        copy = int(total_bytes * self.costs.copy_ns_per_byte)
        copy += self.memory.cpu_stream_read(node, sock.app_buffer,
                                            total_bytes)
        copy += self.memory.cpu_stream_write(node, txq.skbs, total_bytes)
        cpu += copy
        # Doorbell per burst (crosses the interconnect if the PF is remote).
        cpu += sock.driver.doorbell.ring(txq, node, times=ntrains)

        dev_ns = sock.driver.device.tx(txq, txq.skbs, npackets, payload,
                                       ndesc=ndesc, nbursts=ntrains)
        # Completion reads (the pktgen-style ~80 ns-per-miss path).
        cpu += sock.driver.completion.consume(txq, ndesc, node)
        # Interrupt per completion batch.
        cpu += sock.driver.completion.interrupt(txq, burst_desc, ntrains,
                                                self.machine.now)
        # Incoming TCP ACKs (~1 per 2 MSS, GRO-coalesced ~8:1).  They are
        # DMA-written like any Rx traffic, so their descriptor reads miss
        # when the serving PF is remote.
        nacks = (burst_packets // 16) * ntrains
        ack_stack = 0
        ack_residual = 0
        if nacks:
            rxq = sock.driver.rx_queue_for_core(thread.core)
            dev_ack = rxq.pf.dma_write(rxq.ring, nacks * 64,
                                       nbursts=ntrains)
            ack_stack = nacks * (self.costs.rx_pkt_ns // 2)
            cpu += ack_stack
            cpu += sock.driver.completion.consume(rxq, nacks, node)
            if dev_ack > dev_ns:
                # The ACK DMA outlasts the Tx pipeline: the overflow is
                # remote-PF DMA time on the device side.
                ack_residual = dev_ack - dev_ns
                if bflow is not None:
                    loc = ("local" if rxq.pf.is_local_to(node) else "qpi")
                    bflow.charge(f"dma.{loc}", ack_residual)
            dev_ns = max(dev_ns, dev_ack)
        if bflow is not None:
            bflow.charge("stack", kernel + ack_stack)
            bflow.charge("app", copy)
            bflow.seal(cpu + dev_ns, represented=ntrains)
        sock.tx_messages += total_messages
        sock.tx_payload_bytes += total_bytes
        return cpu, dev_ns

    # ------------------------------------------------------ latency paths

    def latency_rx(self, sock: Socket, message_bytes: int,
                   charge_wire: bool = True) -> int:
        """Critical-path ns from wire arrival to the app holding the data
        (coalescing disabled: one interrupt + one wakeup per message).

        Pass ``charge_wire=False`` when the sender's ``latency_tx`` already
        charged the wire for this message (request/response loops)."""
        thread = sock.owner
        node = thread.core.node_id
        pkts = packets_for(message_bytes, MSS)
        payload = max(1, min(message_bytes, MSS))
        # One flow per message: the device and completion path contribute
        # their steps (wire, DMA, CQ reads) while it is active.
        flow = self.machine.tracer.begin_flow(self.machine.now)
        queue, dev_ns = sock.driver.device.rx_deliver(
            sock.flow, sock.dst_mac, pkts, payload, charge_wire=charge_wire)
        queue.outstanding = max(0, queue.outstanding - pkts)
        total = pkts * payload

        latency = dev_ns
        irq = (queue.pf.interrupt_latency(node)
               + self.costs.irq_ns + self.costs.wakeup_ns)
        stack = pkts * self.costs.rx_pkt_ns + self.costs.syscall_ns
        if flow is not None:
            irq_loc = "local" if queue.pf.is_local_to(node) else "qpi"
            flow.step(f"core{node}.irq", "irq.wakeup", irq,
                      stage=f"irq.{irq_loc}")
            flow.step(f"core{node}.stack", "stack.rx", stack,
                      {"packets": pkts}, stage="stack")
        latency += irq + stack
        latency += sock.driver.completion.consume(queue, pkts, node)
        # The packet head is a latency-bound demand load (header parse
        # cannot be prefetched); the remainder streams.
        head = self.memory.read_fresh_dma_line(node, queue.buffers)
        copy = int(total * self.costs.copy_ns_per_byte)
        copy += self.memory.cpu_stream_write(node, sock.app_buffer, total)
        fresh = self.memory.cpu_read_fresh_dma(node, queue.buffers, total)
        app = head + copy + fresh
        latency += app
        if flow is not None:
            # Payload freshness is its own stage: zero when DDIO kept
            # the data hot, the remote-DRAM/DDIO-miss cost otherwise.
            flow.finish(f"core{node}.app", "app.copy", app,
                        {"bytes": total},
                        stages={"mem.miss": head + fresh,
                                "app": copy})
            flow.seal(latency)
        sock.rx_messages += 1
        sock.rx_payload_bytes += total
        return latency

    def latency_tx(self, sock: Socket, message_bytes: int,
                   udp: bool = False) -> int:
        """Critical-path ns from send() to the last byte on the wire."""
        thread = sock.owner
        node = thread.core.node_id
        txq = sock.tx_queue
        pkts = packets_for(message_bytes, MSS)
        payload = max(1, min(message_bytes, MSS))
        total = pkts * payload
        per_pkt = self.costs.udp_pkt_ns if udp else self.costs.tx_pkt_ns

        flow = self.machine.tracer.begin_flow(self.machine.now)
        kernel = self.costs.syscall_ns + pkts * per_pkt
        app = int(total * self.costs.copy_ns_per_byte)
        app += self.memory.cpu_stream_read(node, sock.app_buffer, total)
        app += self.memory.cpu_stream_write(node, txq.skbs, total)
        stack = kernel + app
        if flow is not None:
            flow.step(f"core{node}.app", "app.send", stack,
                      {"bytes": total},
                      stages={"stack": kernel, "app": app})
        latency = stack
        latency += sock.driver.doorbell.ring(txq, node)
        latency += sock.driver.device.tx(txq, txq.skbs, pkts, payload,
                                         ndesc=pkts)
        if flow is not None:
            flow.finish("wire", "tx.done", 0)
            flow.seal(latency)
        sock.tx_messages += 1
        sock.tx_payload_bytes += total
        return latency
