"""OS model: threads, scheduler, netdevice drivers, network stack."""

from repro.os_model.alloc import (
    PAGE,
    POLICIES,
    NumaAllocator,
    OutOfMemoryError,
)
from repro.os_model.driver import NetDriver, StandardDriver
from repro.os_model.netstack import COALESCE_PKTS, MSS, NetworkStack, Socket
from repro.os_model.scheduler import Scheduler
from repro.os_model.thread import SimThread

__all__ = [
    "COALESCE_PKTS",
    "NumaAllocator",
    "OutOfMemoryError",
    "PAGE",
    "POLICIES",
    "MSS",
    "NetDriver",
    "NetworkStack",
    "Scheduler",
    "SimThread",
    "Socket",
    "StandardDriver",
]
