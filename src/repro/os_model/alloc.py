"""NUMA-aware page allocation policies.

Production kernels satisfy allocations from the node of the requesting
core by default (§2.1) and offer explicit policies on top.  The network
stack's locality guarantees (§2.3) — rings, packet buffers and skbs on
the queue's node — ride on exactly this allocator, so we model the
policies the experiments depend on plus the ones a NUDMA study wants to
vary: ``local`` (first-touch), ``node`` (explicit bind), ``interleave``
(round-robin pages across nodes, the classic bandwidth-vs-latency
trade), and ``preferred`` (local with fallback when the node is full).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.memory.region import Region
from repro.topology.machine import Machine
from repro.units import KB

PAGE = 4 * KB

POLICIES = ("local", "node", "interleave", "preferred")


class OutOfMemoryError(Exception):
    """No node can satisfy the allocation under the given policy."""


class NumaAllocator:
    """Tracks per-node memory and places regions by policy."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.capacity = {node.node_id: machine.spec.memory.capacity_bytes
                         for node in machine.nodes}
        self.allocated: Dict[int, int] = {n: 0 for n in self.capacity}
        self._interleave_next = 0
        self.regions: List[Region] = []

    # ------------------------------------------------------------ queries

    def free_bytes(self, node: int) -> int:
        return self.capacity[node] - self.allocated[node]

    def node_pressure(self, node: int) -> float:
        """Fraction of the node's memory in use."""
        return self.allocated[node] / self.capacity[node]

    # --------------------------------------------------------- allocation

    def alloc(self, name: str, size: int, policy: str = "local",
              cpu_node: int = 0, target_node: Optional[int] = None,
              non_temporal: bool = False) -> Region:
        """Allocate a region under ``policy``.

        ``interleave`` returns a region homed on the node holding the
        majority of its pages (our regions are single-homed); interleaved
        buffers of >= 2 pages alternate their majority node so a set of
        them spreads evenly — the same aggregate behaviour as true
        page-interleaving at our modelling granularity.
        """
        if size <= 0:
            raise ValueError(f"allocation size must be > 0, got {size}")
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, "
                             f"got {policy!r}")
        node = self._choose_node(size, policy, cpu_node, target_node)
        rounded = -(-size // PAGE) * PAGE
        if self.free_bytes(node) < rounded:
            raise OutOfMemoryError(
                f"node {node} has {self.free_bytes(node)} B free, "
                f"need {rounded} B ({name!r}, policy {policy})")
        self.allocated[node] += rounded
        region = self.machine.alloc_region(name, node, size,
                                           non_temporal=non_temporal)
        region.allocator = self
        region.allocated_bytes = rounded
        self.regions.append(region)
        return region

    def free(self, region: Region) -> None:
        if region not in self.regions:
            raise ValueError(f"{region!r} was not allocated here")
        self.regions.remove(region)
        self.allocated[region.home_node] -= region.allocated_bytes

    def migrate(self, region: Region, new_node: int) -> Region:
        """Page migration (§2.1: kernels move remote pages local).

        Returns a replacement region homed on ``new_node``; the caller is
        responsible for the copy cost (``MemorySystem.cpu_copy``).
        """
        if new_node == region.home_node:
            return region
        rounded = region.allocated_bytes
        if self.free_bytes(new_node) < rounded:
            raise OutOfMemoryError(
                f"cannot migrate {region.name!r}: node {new_node} full")
        self.free(region)
        return self.alloc(region.name, region.size, policy="node",
                          target_node=new_node,
                          non_temporal=region.non_temporal)

    # ----------------------------------------------------------- internal

    def _choose_node(self, size: int, policy: str, cpu_node: int,
                     target_node: Optional[int]) -> int:
        if policy == "node":
            if target_node is None:
                raise ValueError("policy 'node' requires target_node")
            return target_node
        if policy == "local":
            return cpu_node
        if policy == "interleave":
            node = self._interleave_next
            self._interleave_next = (node + 1) % len(self.capacity)
            return node
        # preferred: local unless it cannot hold the allocation.
        rounded = -(-size // PAGE) * PAGE
        if self.free_bytes(cpu_node) >= rounded:
            return cpu_node
        candidates = sorted(self.capacity,
                            key=lambda n: -self.free_bytes(n))
        return candidates[0]
