"""Simulated threads.

A :class:`SimThread` wraps a generator body and a current core.  Bodies
yield events produced by the thread's helpers::

    def body(thread):
        while True:
            yield thread.compute(500)          # busy CPU time
            yield thread.overlap(cpu_ns, dev_ns)  # pipelined CPU + device

``overlap`` models the steady-state pipelining of CPU work with device
work: the wall time of a batch is the *max* of the two, but only the CPU
part is charged to the core (this is why a QPI-throttled NIC lowers
throughput while CPU utilisation drops, as in Fig 11).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.sim.engine import Event, Process
from repro.topology.machine import Core


class SimThread:
    """A schedulable thread pinned to (at most) one core at a time."""

    def __init__(self, scheduler, name: str,
                 body_fn: Callable[["SimThread"], Generator],
                 core: Core):
        self.scheduler = scheduler
        self.machine = scheduler.machine
        self.env = scheduler.machine.env
        self.name = name
        self.body_fn = body_fn
        self.core = core
        self.process: Optional[Process] = None
        self.started_at: Optional[int] = None
        self.finished_at: Optional[int] = None
        self.migrations = 0

    # ------------------------------------------------------------- state

    @property
    def node_id(self) -> int:
        return self.core.node_id

    @property
    def is_alive(self) -> bool:
        return self.process is not None and self.process.is_alive

    def start(self) -> Process:
        if self.process is not None:
            raise RuntimeError(f"thread {self.name!r} already started")
        self.started_at = self.env.now
        self.process = self.env.process(self._run(), name=self.name)
        return self.process

    def _run(self):
        try:
            result = yield from self.body_fn(self)
        finally:
            self.finished_at = self.env.now
            self.scheduler._thread_finished(self)
        return result

    # ----------------------------------------------------------- helpers

    def compute(self, ns: int) -> Event:
        """Busy the current core for ``ns``.

        The returned event is pooled: yield it immediately, don't store it.
        """
        self.core.charge(int(ns))
        return self.env.pooled_timeout(int(ns))

    def overlap(self, cpu_ns: int, dev_ns: int) -> Event:
        """One pipelined batch: wall time max(cpu, dev), core charged cpu.

        The returned event is pooled: yield it immediately, don't store it.
        """
        self.core.charge(int(cpu_ns))
        return self.env.pooled_timeout(max(int(cpu_ns), int(dev_ns)))

    def sleep(self, ns: int) -> Event:
        """Block without using CPU (pooled: yield immediately)."""
        return self.env.pooled_timeout(int(ns))

    def __repr__(self) -> str:
        return f"<SimThread {self.name} core={self.core.core_id}>"
