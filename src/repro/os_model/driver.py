"""Netdevice drivers.

:class:`NetDriver` is the interface the network stack talks to; retry
backoff and the deferred-steering worker come from the generic
:class:`~repro.device.driver.DeviceDriver` base.  The
:class:`StandardDriver` is the stock vendor driver: it binds **one PF**
to one netdev, so every queue it owns DMAs through that PF wherever the
consuming thread runs — this is what makes the `remote` configuration
remote.  The octoNIC team driver lives in :mod:`repro.core.teaming`.
"""

from __future__ import annotations

from typing import Optional

from repro.device.driver import DeviceDriver
from repro.nic.device import NicDevice
from repro.nic.packet import Flow
from repro.nic.rings import QueueSet, RxQueue, TxQueue
from repro.topology.machine import Core, Machine


class NetDriver(DeviceDriver):
    """Interface between the network stack and a NIC."""

    name = "base"

    def __init__(self, machine: Machine, device: NicDevice):
        super().__init__(machine, device)
        self.queues: Optional[QueueSet] = None

    # -------------------------------------------------------------- API

    def dst_mac(self) -> str:
        """The MAC remote peers address this netdev by."""
        raise NotImplementedError

    def rx_queue_for_core(self, core: Core) -> RxQueue:
        self._check_queues_configured()
        queue = self.queues.rx_for_core(core)
        if queue is None:
            raise LookupError(f"no Rx queue for core {core.core_id}")
        return queue

    def tx_queue_for_core(self, core: Core) -> TxQueue:
        self._check_queues_configured()
        queue = self.queues.tx_for_core(core)
        if queue is None:
            raise LookupError(f"no Tx queue for core {core.core_id}")
        return queue

    def _check_queues_configured(self) -> None:
        if self.queues is None:
            raise RuntimeError(
                f"{type(self).__name__} ({self.name!r}) has no queues "
                f"configured; subclasses must build a QueueSet before "
                f"the netdev is used")

    def steer_rx(self, flow: Flow, core: Core, immediate: bool = False):
        """Point ``flow`` at the queue serving ``core``.

        Immediate on socket creation; on migration it is deferred until
        the old queue drains (avoiding out-of-order delivery) and applied
        by an asynchronous kernel worker (§4.2).
        """
        raise NotImplementedError

    # --------------------------------------------------------- internals

    def _drain_delay_ns(self, old_queue: RxQueue) -> int:
        """Time until the old queue empties plus the worker's update cost."""
        per_pkt = self.machine.spec.software.rx_pkt_ns
        return (self.machine.spec.software.steering_update_ns
                + old_queue.outstanding * per_pkt)


class StandardDriver(NetDriver):
    """Stock vendor driver: one netdev per PF (Fig 5a/5b)."""

    name = "standard"

    def __init__(self, machine: Machine, device: NicDevice, pf_id: int):
        super().__init__(machine, device)
        if not 0 <= pf_id < len(device.pfs):
            raise ValueError(f"pf_id {pf_id} out of range")
        self.pf_id = pf_id
        pf = device.pf(pf_id)
        self.queues = QueueSet(machine, machine.cores,
                               pf_for_core=lambda core: pf)
        device.firmware.register_default_queues(pf_id, self.queues.rx)

    def dst_mac(self) -> str:
        return self.device.mac_for_pf(self.pf_id)

    def steer_rx(self, flow: Flow, core: Core,
                 immediate: bool = False) -> None:
        new_queue = self.rx_queue_for_core(core)
        old_queue = self.device.firmware.arfs[self.pf_id].lookup(flow)

        def apply():
            self.device.firmware.arfs_update(self.pf_id, flow, new_queue,
                                             now=self.env.now)

        if immediate or old_queue is None or not self.no_reorder_resteer:
            apply()
            self.steering_updates += 1
        else:
            def deferred():
                self.machine.tracer.emit(
                    self.env.now, self.name, "steer.applied",
                    f"flow={flow.src_port}->{flow.dst_port} "
                    f"pf={self.pf_id} residual={old_queue.outstanding}")
                apply()
            self._apply_after(self._drain_delay_ns(old_queue), deferred)
