"""Thread placement and migration.

The paper's experiments pin workloads with ``taskset``/``sched_setaffinity``
and migrate them explicitly (§5.3), so the scheduler models placement and
migration — with migration callbacks that the network stack uses to re-steer
flows (the ARFS callback path, §2.3) — rather than time-slicing.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from repro.os_model.thread import SimThread
from repro.topology.machine import Core, Machine

MigrationCallback = Callable[[SimThread, Core, Core], None]


class Scheduler:
    """Places threads on cores; supports explicit migration."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.threads: List[SimThread] = []
        self._core_owner: Dict[int, SimThread] = {}
        self._migration_callbacks: List[MigrationCallback] = []

    # ---------------------------------------------------------- creation

    def spawn(self, name: str, body_fn: Callable[[SimThread], Generator],
              core: Optional[Core] = None, core_id: Optional[int] = None,
              allow_shared_core: bool = False) -> SimThread:
        """Create and start a thread pinned to ``core``.

        By default each core hosts one thread (all the paper's workloads
        are pinned one-per-core); pass ``allow_shared_core=True`` to relax.
        """
        if core is None:
            if core_id is None:
                core = self._first_free_core()
            else:
                core = self.machine.core(core_id)
        if not allow_shared_core and core.core_id in self._core_owner:
            owner = self._core_owner[core.core_id]
            raise RuntimeError(
                f"core {core.core_id} already runs {owner.name!r}; "
                f"pass allow_shared_core=True to oversubscribe")
        thread = SimThread(self, name, body_fn, core)
        self.threads.append(thread)
        self._core_owner.setdefault(core.core_id, thread)
        thread.start()
        return thread

    # --------------------------------------------------------- migration

    def set_affinity(self, thread: SimThread, core: Core,
                     allow_shared_core: bool = False) -> None:
        """``sched_setaffinity``: move a thread to another core.

        Fires migration callbacks so the stack can re-steer the thread's
        flows (§5.3's experiment does exactly this at t ~= 4.5 s).
        """
        old = thread.core
        if core is old:
            return
        if not allow_shared_core and self._core_owner.get(
                core.core_id) not in (None, thread):
            raise RuntimeError(f"core {core.core_id} is occupied")
        if self._core_owner.get(old.core_id) is thread:
            del self._core_owner[old.core_id]
        self._core_owner.setdefault(core.core_id, thread)
        thread.core = core
        thread.migrations += 1
        for callback in self._migration_callbacks:
            callback(thread, old, core)

    def on_migration(self, callback: MigrationCallback) -> None:
        self._migration_callbacks.append(callback)

    # ----------------------------------------------------------- queries

    def thread_on_core(self, core_id: int) -> Optional[SimThread]:
        return self._core_owner.get(core_id)

    def free_cores(self) -> List[Core]:
        return [c for c in self.machine.cores
                if c.core_id not in self._core_owner]

    # ---------------------------------------------------------- internal

    def _first_free_core(self) -> Core:
        free = self.free_cores()
        if not free:
            raise RuntimeError("no free cores left")
        return free[0]

    def _thread_finished(self, thread: SimThread) -> None:
        if self._core_owner.get(thread.core.core_id) is thread:
            del self._core_owner[thread.core.core_id]
