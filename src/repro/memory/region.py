"""Memory regions: the unit of placement and cache-residency tracking.

A :class:`Region` stands for a logically-contiguous buffer — a descriptor
ring, a packet-buffer pool, an application heap slab, a STREAM array.  It
knows its **home node** (where its physical pages live, decided by the
NUMA-aware allocator) and the simulator tracks, per LLC, how much of it is
currently cache-resident.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_REGION_IDS = itertools.count()


@dataclass(eq=False)
class Region:
    """A placed buffer."""

    name: str
    home_node: int
    size: int
    #: Regions written with non-temporal stores never allocate in the LLC.
    non_temporal: bool = False
    region_id: int = field(default_factory=lambda: next(_REGION_IDS))

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError(f"region {self.name!r} needs size > 0, "
                             f"got {self.size}")
        if self.home_node < 0:
            raise ValueError(f"region {self.name!r} home_node must be >= 0")

    def __hash__(self) -> int:
        return self.region_id

    def __repr__(self) -> str:
        return (f"<Region {self.name} node={self.home_node} "
                f"size={self.size}>")
