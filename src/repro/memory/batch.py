"""Vectorised batch kernels for the memory/DMA hot paths.

The fluid accuracy tier charges whole steady intervals in one call, so
the remaining per-burst arithmetic — service durations on a byte-serial
link, the DDIO absorb/spill split, fresh-DMA-line hit/miss
classification — is expressed over arrays here and evaluated with numpy
when it is available.  Every function is golden-tested bit-for-bit
against the scalar per-packet expressions it replaces
(``tests/memory/test_batch.py``); the scalar fallback keeps the package
importable (and identical) without numpy.
"""

from __future__ import annotations

from typing import List, Sequence

try:  # numpy is optional: the scalar fallback is bit-identical.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch
    _np = None

#: Below this many elements the numpy round trip costs more than the
#: scalar loop saves.
_VECTOR_MIN = 8


def service_durations(sizes: Sequence[int], bytes_per_sec: float) -> List[int]:
    """Per-transfer service times in ns for a byte-serial server.

    Elementwise identical to ``int(round(n * 1e9 / bytes_per_sec))`` —
    the inlined expression in :meth:`BandwidthServer.account` — for every
    ``n`` in ``sizes`` (IEEE-754 division plus round-half-even in both
    paths).
    """
    if _np is not None and len(sizes) >= _VECTOR_MIN:
        out = _np.rint(
            _np.asarray(sizes, dtype=_np.float64) * 1e9 / bytes_per_sec)
        return [int(v) for v in out.astype(_np.int64)]
    return [int(round(n * 1e9 / bytes_per_sec)) for n in sizes]


def ddio_split(sizes: Sequence[int], ddio_capacity: int) -> tuple:
    """DDIO absorb/spill classification for a batch of DMA bursts.

    Per burst, the LLC absorbs ``min(size, ddio_capacity)`` into the
    DDIO way-slice and the remainder spills to DRAM — the same
    nonlinearity :meth:`LastLevelCache.ddio_write` applies per call.
    Returns ``(absorbed, spills)`` lists; elementwise identical to the
    scalar expressions.
    """
    if _np is not None and len(sizes) >= _VECTOR_MIN:
        arr = _np.asarray(sizes, dtype=_np.int64)
        absorbed = _np.minimum(arr, ddio_capacity)
        spills = arr - absorbed
        return [int(v) for v in absorbed], [int(v) for v in spills]
    absorbed = [min(n, ddio_capacity) for n in sizes]
    return absorbed, [n - a for n, a in zip(sizes, absorbed)]


def dma_line_latencies(nlines: Sequence[int], hit: Sequence[bool],
                       hit_ns: int, miss_ns: int) -> List[int]:
    """Latency for batches of fresh-DMA cache-line reads.

    Each entry covers ``nlines[i]`` line reads that were classified
    DDIO-hit (``hit_ns`` per line) or DRAM-miss (``miss_ns`` per line);
    identical to ``n * (hit_ns if h else miss_ns)`` per element.
    """
    if _np is not None and len(nlines) >= _VECTOR_MIN:
        arr = _np.asarray(nlines, dtype=_np.int64)
        mask = _np.asarray(hit, dtype=bool)
        out = arr * _np.where(mask, hit_ns, miss_ns)
        return [int(v) for v in out]
    return [n * (hit_ns if h else miss_ns)
            for n, h in zip(nlines, hit)]
