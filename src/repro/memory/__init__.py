"""Memory hierarchy: regions, LLC (with DDIO), DRAM, and the access router."""

from repro.memory.dram import DramController
from repro.memory.llc import LastLevelCache
from repro.memory.region import Region
from repro.memory.system import MemorySystem

__all__ = ["DramController", "LastLevelCache", "MemorySystem", "Region"]
