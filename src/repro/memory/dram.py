"""Per-node DRAM controllers.

Each node's memory controller is a processor-sharing bandwidth server (many
agents interleave on a real controller) plus read/write byte counters used
to report "memory bandwidth" exactly the way the paper's figures do.
"""

from __future__ import annotations

from repro.sim.engine import Environment
from repro.sim.resources import ProcessorSharingServer, RateEstimator

#: Latency inflation strength: fill latency grows as 1 + ALPHA * u^2 with
#: controller utilisation u (classic open-queue approximation).
_ALPHA = 3.0


class DramController:
    """One NUMA node's memory controller."""

    def __init__(self, env: Environment, node_id: int,
                 bytes_per_sec: float, miss_latency_ns: int):
        self.env = env
        self.node_id = node_id
        self.miss_latency_ns = int(miss_latency_ns)
        self.server = ProcessorSharingServer(
            env, bytes_per_sec, name=f"dram{node_id}")
        self.estimator = RateEstimator(env, bytes_per_sec)
        self.read_bytes = 0
        self.write_bytes = 0
        self._window_start = 0
        self._window_read = 0
        self._window_write = 0

    def read(self, nbytes: int) -> int:
        """Charge a read burst; returns its bandwidth-limited service ns."""
        self.read_bytes += nbytes
        self._window_read += nbytes
        self.estimator.update(nbytes)
        return self.server.account(nbytes)

    def write(self, nbytes: int) -> int:
        """Charge a write burst; returns its bandwidth-limited service ns."""
        self.write_bytes += nbytes
        self._window_write += nbytes
        self.estimator.update(nbytes)
        return self.server.account(nbytes)

    def load_factor(self) -> float:
        """Multiplier applied to miss latencies under load (>= 1)."""
        u = self.estimator.utilization()
        return 1.0 + _ALPHA * u * u

    def loaded_miss_latency(self) -> int:
        """Miss latency inflated by the controller's current load."""
        return int(self.miss_latency_ns * self.load_factor())

    def enter(self) -> None:
        """Declare a long-running bandwidth consumer (slows everyone)."""
        self.server.enter()

    def leave(self) -> None:
        self.server.leave()

    # ---------------------------------------------------------- reporting

    def reset_window(self) -> None:
        self._window_start = self.env.now
        self._window_read = 0
        self._window_write = 0

    def window_bytes(self) -> int:
        return self._window_read + self._window_write

    def window_bandwidth_bps(self) -> float:
        """Bytes/sec of combined read+write traffic since the last reset."""
        elapsed = self.env.now - self._window_start
        if elapsed <= 0:
            return 0.0
        return self.window_bytes() * 1e9 / elapsed

    def __repr__(self) -> str:
        return (f"<DramController node={self.node_id} "
                f"r={self.read_bytes} w={self.write_bytes}>")
