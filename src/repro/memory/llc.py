"""Last-level cache model with DDIO allocation.

The LLC is modelled at **region granularity**: for each region we track how
many of its bytes are resident, evicting least-recently-used regions when
capacity is exceeded.  This captures the two behaviours the paper's results
hinge on:

* DDIO — DMA writes from a *local* device allocate into (a slice of) the
  LLC, so the CPU's subsequent reads hit; remote DMA writes bypass the LLC
  and additionally invalidate any cached copy (§2.2).
* Capacity — when the combined working set of many cores exceeds the LLC,
  residency fractions drop and memory traffic appears even in the local
  configuration (§5.1.1, multi-core throughput).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.memory.batch import ddio_split
from repro.memory.region import Region


@dataclass
class _Entry:
    resident: int = 0       # bytes of the region currently cached
    ddio: int = 0           # subset of `resident` allocated by DDIO


class LastLevelCache:
    """One socket's LLC."""

    def __init__(self, node_id: int, capacity: int, ddio_fraction: float):
        if capacity <= 0:
            raise ValueError(f"LLC capacity must be > 0, got {capacity}")
        if not 0.0 < ddio_fraction <= 1.0:
            raise ValueError(f"ddio_fraction out of (0, 1]: {ddio_fraction}")
        self.node_id = node_id
        self.capacity = capacity
        self.ddio_capacity = int(capacity * ddio_fraction)
        self._entries: "OrderedDict[Region, _Entry]" = OrderedDict()
        self._occupied = 0
        self._ddio_occupied = 0
        # Counters for reporting.
        self.hits_bytes = 0
        self.miss_bytes = 0
        self.invalidated_bytes = 0

    # ----------------------------------------------------------- queries

    @property
    def occupied(self) -> int:
        return self._occupied

    @property
    def ddio_occupied(self) -> int:
        """Bytes currently held by DDIO allocations (<= ddio_capacity)."""
        return self._ddio_occupied

    def residency(self, region: Region) -> float:
        """Fraction of the region's bytes that are cache-resident."""
        entry = self._entries.get(region)
        if entry is None:
            return 0.0
        return min(1.0, entry.resident / region.size)

    def resident_bytes(self, region: Region) -> int:
        entry = self._entries.get(region)
        return 0 if entry is None else entry.resident

    # ------------------------------------------------------------ updates

    def load(self, region: Region, nbytes: int) -> None:
        """Allocate bytes of ``region`` (CPU read/write allocation path)."""
        if region.non_temporal:
            return
        self._insert(region, nbytes, ddio=False)

    def ddio_write(self, region: Region, nbytes: int) -> int:
        """DDIO allocation by a local device's DMA write.

        Returns the number of bytes actually absorbed by the DDIO ways;
        the remainder (if the write burst exceeds the DDIO slice) goes to
        DRAM at the caller's charge.
        """
        if region.non_temporal:
            return 0
        absorbed = min(nbytes, self.ddio_capacity)
        self._insert(region, absorbed, ddio=True)
        return absorbed

    def ddio_write_batch(self, region: Region, sizes) -> int:
        """DDIO allocation for back-to-back local DMA bursts (fluid
        steady intervals).

        Equivalent to one :meth:`ddio_write` per element of ``sizes``:
        each burst absorbs up to the DDIO slice capacity, growth is
        capped by the region size, and eviction runs once at the end —
        the same final state as evicting after every burst, since no
        other access interleaves within the batch.  Returns the total
        bytes absorbed; the remainder is the caller's DRAM spill.  The
        per-burst absorb/spill classification is vectorised
        (:func:`repro.memory.batch.ddio_split`).
        """
        if region.non_temporal:
            return 0
        absorbed, _spills = ddio_split(sizes, self.ddio_capacity)
        total = sum(absorbed)
        self._insert(region, total, ddio=True)
        return total

    def invalidate(self, region: Region, nbytes: Optional[int] = None) -> int:
        """Drop (up to) ``nbytes`` of the region; returns bytes dropped."""
        entry = self._entries.get(region)
        if entry is None:
            return 0
        dropped = entry.resident if nbytes is None else min(
            entry.resident, nbytes)
        ddio_dropped = min(entry.ddio, dropped)
        entry.resident -= dropped
        entry.ddio -= ddio_dropped
        self._occupied -= dropped
        self._ddio_occupied -= ddio_dropped
        self.invalidated_bytes += dropped
        if entry.resident <= 0:
            del self._entries[region]
            self._clear_dma_freshness(region)
        return dropped

    def touch(self, region: Region) -> None:
        """Mark the region most-recently used."""
        if region in self._entries:
            self._entries.move_to_end(region)

    def record_access(self, region: Region, nbytes: int) -> float:
        """Account a CPU access: returns the hit fraction and updates
        hit/miss counters and recency."""
        fraction = self.residency(region)
        hit = int(nbytes * fraction)
        self.hits_bytes += hit
        self.miss_bytes += nbytes - hit
        self.touch(region)
        return fraction

    # ----------------------------------------------------------- internal

    def _insert(self, region: Region, nbytes: int, ddio: bool) -> None:
        entry = self._entries.get(region)
        if entry is None:
            entry = _Entry()
            self._entries[region] = entry
        self._entries.move_to_end(region)
        room_in_region = region.size - entry.resident
        grow = max(0, min(nbytes, room_in_region))
        entry.resident += grow
        self._occupied += grow
        if ddio:
            entry.ddio += grow
            self._ddio_occupied += grow
            self._evict_ddio_overflow(keep=region)
        self._evict_overflow(keep=region)

    def _evict_overflow(self, keep: Region) -> None:
        while self._occupied > self.capacity:
            victim, entry = next(iter(self._entries.items()))
            if victim is keep and len(self._entries) == 1:
                # A single region larger than the cache: clamp it.
                overflow = self._occupied - self.capacity
                entry.resident -= overflow
                entry.ddio = min(entry.ddio, entry.resident)
                self._occupied = self.capacity
                self._ddio_occupied = min(self._ddio_occupied,
                                          self._occupied)
                return
            if victim is keep:
                # Skip the protected region: evict the next-oldest.
                self._entries.move_to_end(victim)
                continue
            self._occupied -= entry.resident
            self._ddio_occupied -= entry.ddio
            del self._entries[victim]
            self._clear_dma_freshness(victim)

    def _evict_ddio_overflow(self, keep: Region) -> None:
        """DDIO may not overflow its slice: shrink oldest DDIO allocations."""
        if self._ddio_occupied <= self.ddio_capacity:
            return
        for victim in list(self._entries):
            if self._ddio_occupied <= self.ddio_capacity:
                break
            entry = self._entries[victim]
            if entry.ddio == 0 or victim is keep:
                continue
            drop = min(entry.ddio,
                       self._ddio_occupied - self.ddio_capacity)
            entry.ddio -= drop
            entry.resident -= drop
            self._occupied -= drop
            self._ddio_occupied -= drop
            if entry.resident <= 0:
                del self._entries[victim]
        if self._ddio_occupied > self.ddio_capacity:
            # Only `keep` holds DDIO bytes: clamp it too.
            entry = self._entries[keep]
            drop = self._ddio_occupied - self.ddio_capacity
            drop = min(drop, entry.ddio)
            entry.ddio -= drop
            entry.resident -= drop
            self._occupied -= drop
            self._ddio_occupied -= drop

    def _clear_dma_freshness(self, region: Region) -> None:
        """A fully-evicted region's freshly-DMA-written bytes are gone
        from this LLC; subsequent reads must miss (multi-core working
        sets exceeding the LLC reintroduce memory traffic even with
        DDIO, §5.1.1)."""
        if getattr(region, "dma_llc_node", None) == self.node_id:
            region.dma_llc_node = None

    def __repr__(self) -> str:
        return (f"<LLC node={self.node_id} "
                f"{self._occupied}/{self.capacity} B "
                f"ddio={self._ddio_occupied}/{self.ddio_capacity} B>")
