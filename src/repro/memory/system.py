"""The memory system: routes every CPU and DMA access in the machine.

All data movement in the simulator — netperf copies, pktgen descriptor
writes, NIC DMA, STREAM antagonists, PageRank scans — funnels through one
:class:`MemorySystem`.  It decides, per access, whether the bytes hit the
LLC, local DRAM, or remote DRAM across the interconnect; charges the right
bandwidth servers; and returns the access latency.  The NUDMA effects the
paper measures are therefore *consequences* of three routing rules
(§2.2/§5.1.1):

1. DMA writes from a device **local** to the target memory allocate into
   the LLC (DDIO); the CPU's subsequent reads are hits.
2. DMA writes from a **remote** device go to DRAM, cross the interconnect,
   and invalidate the CPU's cached copy; the CPU's subsequent reads miss
   (~80 ns/line, plus interconnect queueing under load).
3. DMA reads are satisfied by probing LLC and DRAM in parallel and do not
   invalidate — which is why transmit throughput is placement-insensitive
   while receive is not (Fig 6 vs Fig 7).
"""

from __future__ import annotations

from typing import List, Optional

from repro.interconnect.link import Interconnect
from repro.memory.dram import DramController
from repro.memory.llc import LastLevelCache
from repro.memory.region import Region
from repro.sim.engine import Environment
from repro.units import CACHELINE

if False:  # pragma: no cover - import only for type checkers
    from repro.topology.constants import MachineSpec

#: Residency above this fraction counts as "the line I need is cached" for
#: single-line reads (descriptor/completion entries).
_LINE_HIT_THRESHOLD = 0.5

#: Request-header overhead, as a fraction of payload, for remote fills.
_REQUEST_OVERHEAD = 1 / 8

#: Cache-line transactions a DMA engine keeps in flight across the
#: interconnect.  When congestion inflates the per-line round trip, the
#: engine's effective remote bandwidth collapses to
#: OUTSTANDING * 64 B / round-trip — the §5.2 and §5.4 degradation.
_DMA_OUTSTANDING_LINES = 32


class MemorySystem:
    """Access router for one machine."""

    def __init__(self, env: Environment, spec: "MachineSpec",
                 llcs: List[LastLevelCache], drams: List[DramController],
                 interconnect: Interconnect):
        if not (len(llcs) == len(drams) == spec.num_nodes):
            raise ValueError("llcs/drams must have one entry per node")
        self.env = env
        self.spec = spec
        self.llcs = llcs
        self.drams = drams
        self.interconnect = interconnect
        self.ddio_enabled = True
        #: In-flight cache-line window per DMA engine (ablation knob).
        self.dma_outstanding_lines = _DMA_OUTSTANDING_LINES
        self._stall_per_line = spec.software.dram_stream_stall_ns_per_line
        self._copy_ns_per_byte = spec.software.copy_ns_per_byte

    # ------------------------------------------------------------------
    # CPU-side accesses
    # ------------------------------------------------------------------

    def cpu_stream_read(self, node: int, region: Region,
                        nbytes: int) -> int:
        """Streaming read (e.g. the source side of a copy, a STREAM scan).

        Returns the CPU-visible stall time beyond the base instruction
        cost; misses charge DRAM and (if remote) interconnect bandwidth.
        """
        llc = self.llcs[node]
        fraction = llc.record_access(region, nbytes)
        miss = int(nbytes * (1.0 - fraction))
        if miss == 0:
            return 0
        home = region.home_node
        stall = int(miss / CACHELINE * self._stall_per_line
                    * self.drams[home].load_factor())
        dram_delay = self.drams[home].read(miss)
        qpi_delay = 0
        if home != node:
            qpi_delay = self.interconnect.round_trip(
                node, home, int(miss * _REQUEST_OVERHEAD), miss)
        llc.load(region, nbytes)
        return max(stall, dram_delay, qpi_delay)

    def cpu_stream_write(self, node: int, region: Region,
                         nbytes: int) -> int:
        """Streaming write (destination side of a copy, STREAM's store
        kernel).  Write-allocate unless the region is non-temporal."""
        home = region.home_node
        if region.non_temporal:
            # NT stores go straight to the home memory, no allocation, no
            # fill read; they stall the CPU very little.
            dram_delay = self.drams[home].write(nbytes)
            qpi_delay = 0
            if home != node:
                qpi_delay = self.interconnect.traverse(node, home, nbytes)
            return max(dram_delay, qpi_delay)
        llc = self.llcs[node]
        fraction = llc.record_access(region, nbytes)
        miss = int(nbytes * (1.0 - fraction))
        if miss == 0:
            return 0
        stall = int(miss / CACHELINE * self._stall_per_line
                    * self.drams[home].load_factor())
        # Write-allocate fill read now + steady-state writeback later.
        dram_delay = self.drams[home].read(miss) + self.drams[home].write(
            miss)
        qpi_delay = 0
        if home != node:
            qpi_delay = (self.interconnect.round_trip(
                node, home, int(miss * _REQUEST_OVERHEAD), miss)
                + self.interconnect.traverse(node, home, miss))
        llc.load(region, nbytes)
        return max(stall, dram_delay // 2, qpi_delay)

    def cpu_copy(self, node: int, src: Region, dst: Region,
                 nbytes: int) -> int:
        """A memcpy: base per-byte cost plus source/destination stalls."""
        base = int(nbytes * self._copy_ns_per_byte)
        return (base
                + self.cpu_stream_read(node, src, nbytes)
                + self.cpu_stream_write(node, dst, nbytes))

    def cpu_read_fresh_dma(self, node: int, region: Region,
                           nbytes: int, inflight_bytes: int = 0) -> int:
        """Read data a device DMA-wrote (Rx payload copy-out).

        If the DMA landed in this node's LLC (DDIO), the copy source is
        hot; otherwise every line streams from the region's home DRAM.
        ``inflight_bytes`` is how far the consumer lags the producer (the
        ring backlog): the data is only still cached if the region has at
        least that much LLC residency — with many queues sharing the DDIO
        slice, it does not, and memory traffic reappears even with a local
        device (§5.1.1, multi-core).
        """
        llc = self.llcs[node]
        llc.touch(region)
        window = min(inflight_bytes, int(region.size * 0.9))
        if (self._dma_resident_node(region) == node
                and llc.resident_bytes(region) >= window):
            llc.hits_bytes += nbytes
            return 0
        llc.miss_bytes += nbytes
        home = region.home_node
        stall = int(nbytes / CACHELINE * self._stall_per_line
                    * self.drams[home].load_factor())
        dram_delay = self.drams[home].read(nbytes)
        # Streaming cold DMA data through the LLC evicts an equal volume
        # of dirty lines written in the same pass (the copy destination),
        # so the controller also sees a writeback stream.  Together with
        # the device's write and the copy's read this yields the 3x-of-
        # throughput memory bandwidth the paper measures for remote Rx
        # (Fig 6b); with DDIO none of the three streams exists.
        dram_delay = max(dram_delay, self.drams[home].write(nbytes))
        qpi_delay = 0
        if home != node:
            qpi_delay = self.interconnect.round_trip(
                node, home, int(nbytes * _REQUEST_OVERHEAD), nbytes)
        llc.load(region, nbytes)
        return max(stall, dram_delay, qpi_delay)

    def read_fresh_dma_line(self, node: int, region: Region) -> int:
        """Latency-critical single-line read of a just-DMA-written entry
        (a completion descriptor).  This is the ~80 ns that separates
        pktgen's local and remote rates (§5.1.1)."""
        resident = self._dma_resident_node(region)
        if resident == node:
            self.llcs[node].hits_bytes += CACHELINE
            return 0
        self.llcs[node].miss_bytes += CACHELINE
        if resident is not None and resident != node:
            # Remote-DDIO case (§2.4): the entry sits in the *other*
            # socket's LLC.  Cache-to-cache forwarding costs about as much
            # as an idle local DRAM miss — it merely spares DRAM bandwidth
            # and the controller's load-induced latency inflation, which
            # is why the paper measured at most ~2% benefit.
            return self.drams[resident].miss_latency_ns
        return self._line_fill_latency(node, region)

    def dma_read_class(self, node: int, region: Region) -> str:
        """Classify (without charging) what a latency-bound read of a
        freshly DMA-written line in ``region`` would be served from —
        the DDIO tag the latency-blame stages carry:

        * ``"ddio_hit"`` — the DMA allocated into this node's LLC.
        * ``"llc_remote"`` — remote-DDIO: the line sits in the *other*
          socket's LLC (cache-to-cache forward, ~a DRAM miss, §2.4).
        * ``"dram"`` — the DMA spilled/went to this node's DRAM.
        * ``"dram_qpi"`` — DRAM on the other socket, across the
          interconnect.

        Pure read: no counters move, no bandwidth is charged, so blame
        classification cannot perturb the model.
        """
        resident = self._dma_resident_node(region)
        if resident == node:
            return "ddio_hit"
        if resident is not None:
            return "llc_remote"
        if region.home_node != node:
            return "dram_qpi"
        return "dram"

    def cacheline_read(self, node: int, region: Region) -> int:
        """Latency of one demand-load line (not freshly DMA-written)."""
        llc = self.llcs[node]
        if llc.residency(region) >= _LINE_HIT_THRESHOLD:
            llc.hits_bytes += CACHELINE
            llc.touch(region)
            return 0
        llc.miss_bytes += CACHELINE
        latency = self._line_fill_latency(node, region)
        llc.load(region, CACHELINE)
        return latency

    def cacheline_write(self, node: int, region: Region) -> int:
        """One read-for-ownership store (e.g. publishing a descriptor)."""
        llc = self.llcs[node]
        if llc.residency(region) >= _LINE_HIT_THRESHOLD:
            llc.touch(region)
            return 0
        latency = self._line_fill_latency(node, region)
        llc.load(region, CACHELINE)
        return latency

    # ------------------------------------------------------------------
    # Device-side (DMA) accesses
    # ------------------------------------------------------------------

    def dma_write(self, device_node: int, region: Region,
                  nbytes: int, engine=None, nbursts: int = 1) -> int:
        """A device writes ``nbytes`` into ``region``.

        Local + DDIO: allocate into the LLC's DDIO slice, DRAM untouched.
        Remote (or DDIO off): cross the interconnect, write DRAM, and
        invalidate the CPU-side cached copy.

        ``nbytes`` is the total across ``nbursts`` back-to-back bursts.
        With ``nbursts > 1`` (coalesced trains) the DDIO absorb/spill
        split and the DMA-window serialization are applied *per burst*,
        preserving the exact path's nonlinearity: K bursts each absorb up
        to the DDIO slice, while one giant write would not — this is what
        lets the fluid tier advance steady intervals far past the
        2 MB-per-train byte cap without spilling where exact would not.
        """
        home = region.home_node
        if (device_node == home and self.ddio_enabled
                and not region.non_temporal):
            if nbursts == 1:
                absorbed = self.llcs[home].ddio_write(region, nbytes)
            else:
                per_burst = nbytes // nbursts
                sizes = [per_burst] * (nbursts - 1)
                sizes.append(nbytes - per_burst * (nbursts - 1))
                absorbed = self.llcs[home].ddio_write_batch(region, sizes)
            spill = nbytes - absorbed
            delay = self.drams[home].write(spill) if spill else 0
            self._set_dma_resident(region, home if spill == 0 else None)
            return delay
        dram_delay = self.drams[home].write(nbytes)
        qpi_delay = 0
        if device_node != home:
            qpi_delay = self.interconnect.traverse(device_node, home, nbytes)
            serial = self._dma_serialization(device_node, home, nbytes,
                                             engine, nbursts)
            if serial > qpi_delay:
                qpi_delay = serial
        self.llcs[home].invalidate(region, nbytes)
        self._set_dma_resident(region, None)
        return dram_delay if dram_delay > qpi_delay else qpi_delay

    def dma_read(self, device_node: int, region: Region,
                 nbytes: int, engine=None) -> int:
        """A device reads ``nbytes`` from ``region``.

        Reads never invalidate.  A remote read always charges the home
        DRAM for a parallel probe (the paper's §5.1.1 hypothesis for why
        remote Tx memory bandwidth equals its throughput), even when the
        data is ultimately served from the LLC.
        """
        home = region.home_node
        llc = self.llcs[home]
        cached_fraction = llc.residency(region)
        if device_node == home:
            if cached_fraction >= _LINE_HIT_THRESHOLD and self.ddio_enabled:
                llc.hits_bytes += nbytes
                return 0
            return self.drams[home].read(nbytes)
        dram_delay = self.drams[home].read(nbytes)  # parallel probe
        qpi_delay = self.interconnect.round_trip(
            device_node, home, int(nbytes * _REQUEST_OVERHEAD), nbytes)
        serial = self._dma_serialization(device_node, home, nbytes, engine)
        if serial > qpi_delay:
            qpi_delay = serial
        return dram_delay if dram_delay > qpi_delay else qpi_delay

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def reset_windows(self) -> None:
        for dram in self.drams:
            dram.reset_window()

    def ddio_slice_bytes(self, node: int) -> int:
        """Capacity of the node's DDIO LLC slice.

        The packet-train fast path keeps a single train's payload below
        this: per-packet delivery rotates buffers through the slice, so a
        closed-form train that exceeded it would spill to DRAM where the
        exact path would not.
        """
        return self.llcs[node].ddio_capacity

    def total_window_bandwidth_bps(self) -> float:
        return sum(d.window_bandwidth_bps() for d in self.drams)

    def node_window_bandwidth_bps(self, node: int) -> float:
        return self.drams[node].window_bandwidth_bps()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _dma_serialization(self, device_node: int, home: int,
                           nbytes: int, engine=None,
                           nbursts: int = 1) -> int:
        """Delay from the DMA engine's bounded in-flight line window.

        When ``engine`` (the issuing PF) is given, the window is a serial
        resource: concurrent remote transfers through one engine queue
        behind each other, which is what throttles an SSD or NIC behind a
        congested interconnect (§5.2, §5.4).

        With ``nbursts > 1`` the window is charged per burst at the
        current loaded round trip (the fluid tier's closed-form rate
        share: within a steady interval the crossing latency is taken as
        constant), matching the exact path's per-burst integer
        truncation.
        """
        round_trip = self.interconnect.loaded_round_trip_ns(device_node,
                                                            home)
        if nbursts == 1:
            lines = nbytes // CACHELINE
            if lines < 1:
                lines = 1
            duration = int(lines * round_trip / self.dma_outstanding_lines)
        else:
            lines = (nbytes // nbursts) // CACHELINE
            if lines < 1:
                lines = 1
            duration = nbursts * int(
                lines * round_trip / self.dma_outstanding_lines)
        if engine is None:
            return duration
        now = self.env._now
        free_at = getattr(engine, "dma_window_free_at", 0)
        start = free_at if free_at > now else now
        engine.dma_window_free_at = start + duration
        return (start - now) + duration

    def _line_fill_latency(self, node: int, region: Region) -> int:
        home = region.home_node
        latency = self.drams[home].loaded_miss_latency()
        latency += self.drams[home].read(CACHELINE)
        if home != node:
            # Latency-bound single-line fills see the congestion-inflated
            # crossing latency, not the bulk servers' transient batch
            # backlog (a line interleaves between batches on real links).
            latency += self.interconnect.loaded_round_trip_ns(node, home)
        return latency

    @staticmethod
    def _dma_resident_node(region: Region) -> Optional[int]:
        return getattr(region, "dma_llc_node", None)

    @staticmethod
    def _set_dma_resident(region: Region, node: Optional[int]) -> None:
        region.dma_llc_node = node
