"""Shape verification: the paper's claims as checkable predicates."""

from repro.analysis.claims import (
    ClaimCheck,
    claim,
    claims_for,
    verify_all,
    verify_result,
)
from repro.analysis.report import render_report, render_result, run_report

__all__ = [
    "ClaimCheck",
    "claim",
    "claims_for",
    "render_report",
    "render_result",
    "run_report",
    "verify_all",
    "verify_result",
]
