"""The paper's qualitative claims, encoded as checkable predicates.

Each claim inspects one experiment's :class:`ExperimentResult` and
returns a :class:`ClaimCheck`.  ``verify_result`` evaluates every claim
registered for that experiment; ``verify_all`` runs and verifies the
whole evaluation.  This is the machine-readable version of
``EXPERIMENTS.md``: the *shape* of each figure — who wins, by roughly
what factor, where the crossovers fall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.experiments.base import ExperimentResult, get_experiment


@dataclass(frozen=True)
class ClaimCheck:
    """Outcome of checking one claim against measured rows."""

    experiment: str
    claim: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        tail = f" ({self.detail})" if self.detail else ""
        return f"[{mark}] {self.experiment}: {self.claim}{tail}"


Predicate = Callable[[ExperimentResult], ClaimCheck]
_CLAIMS: Dict[str, List[Predicate]] = {}


def claim(experiment: str, text: str):
    """Decorator registering a predicate for an experiment.

    The wrapped function receives the result and returns (passed, detail).
    """

    def wrap(fn):
        def predicate(result: ExperimentResult) -> ClaimCheck:
            passed, detail = fn(result)
            return ClaimCheck(experiment, text, passed, detail)

        _CLAIMS.setdefault(experiment, []).append(predicate)
        return fn

    return wrap


def claims_for(experiment: str) -> List[Predicate]:
    return list(_CLAIMS.get(experiment, []))


def verify_result(result: ExperimentResult) -> List[ClaimCheck]:
    """Check every registered claim against an already-run result."""
    return [predicate(result) for predicate in claims_for(result.experiment)]


def verify_all(fidelity: str = "quick") -> List[ClaimCheck]:
    """Run and verify every experiment that has registered claims."""
    checks: List[ClaimCheck] = []
    for name in sorted(_CLAIMS):
        result = get_experiment(name).run(fidelity=fidelity)
        checks.extend(verify_result(result))
    return checks


# ---------------------------------------------------------------------------
# The claims themselves (paper section in each text).
# ---------------------------------------------------------------------------

@claim("fig06", "Rx: ioct/local beats remote at every size, gap grows "
                "(§5.1.1)")
def _fig06_gap(result):
    ratios = result.column("ratio_local_over_remote")
    ok = all(r > 1.0 for r in ratios) and ratios[-1] > ratios[0]
    return ok, f"ratios {ratios[0]}..{ratios[-1]}"


@claim("fig06", "Rx: remote memory bandwidth ~3x its throughput (§5.1.1)")
def _fig06_membw(result):
    row = result.as_dicts()[-1]
    factor = row["remote_membw_gbps"] / max(row["remote_gbps"], 1e-9)
    return 2.3 <= factor <= 3.8, f"{factor:.2f}x"


@claim("fig06", "Rx: ioctopus is indistinguishable from local (§5.3)")
def _fig06_ioct(result):
    deltas = [abs(r["ioct_gbps"] - r["local_gbps"])
              / max(r["local_gbps"], 1e-9) for r in result.as_dicts()]
    return max(deltas) < 0.03, f"max delta {max(deltas):.1%}"


@claim("fig07", "Tx: placements obtain comparable throughput (§5.1.1)")
def _fig07_tie(result):
    ratios = result.column("ratio_local_over_remote")
    return all(0.93 <= r <= 1.10 for r in ratios), f"max {max(ratios)}"


@claim("fig07", "Tx: remote membw equals its throughput (§5.1.1)")
def _fig07_probe(result):
    factor = result.as_dicts()[-1]["remote_membw_over_tput"]
    return 0.85 <= factor <= 1.25, f"{factor:.2f}x"


@claim("fig08", "pktgen: ~4.1 vs ~3.08 Mpps, one 80 ns miss/packet "
                "(§5.1.1)")
def _fig08_rates(result):
    rows = result.as_dicts()
    ok = all(3.9 <= r["ioct_mpps"] <= 4.3
             and 2.85 <= r["remote_mpps"] <= 3.25 for r in rows)
    return ok, (f"{rows[0]['ioct_mpps']} / {rows[0]['remote_mpps']} Mpps")


@claim("fig09", "RR: ll < llnd < rr at every message size (§5.1.2)")
def _fig09_order(result):
    ok = all(1.0 <= r["llnd_over_ll"] < r["rr_over_ll"] <= 1.35
             for r in result.as_dicts())
    return ok, ""


@claim("fig10", "memcached: advantage grows with SET ratio (§5.1.3)")
def _fig10_sets(result):
    ratios = result.column("ratio")
    return ratios[-1] > ratios[0] and ratios[-1] >= 1.08, \
        f"{ratios[0]} -> {ratios[-1]}"


@claim("fig11", "congestion: the local/remote gap widens with STREAM "
                "pairs (§5.2)")
def _fig11_gap(result):
    ratios = result.column("ratio")
    return max(ratios) >= 1.6 and ratios[-1] > ratios[0], \
        f"peak {max(ratios)}x"


@claim("fig12", "latency: ioct flat, remote grows with congestion (§5.2)")
def _fig12_flat(result):
    ioct = result.column("ioct_us")
    remote = result.column("remote_us")
    ok = (max(ioct) - min(ioct) < 0.3
          and remote[-1] > remote[0] * 1.08)
    return ok, f"remote {remote[0]} -> {remote[-1]} us"


@claim("fig13", "co-location: remote I/O placement slows PageRank (§5.2)")
def _fig13_victim(result):
    slowdowns = result.column("pr_slowdown_remote")
    return all(s > 1.01 for s in slowdowns), f"{slowdowns}"


@claim("fig14", "migration: octoNIC re-steers at full rate; standard NIC "
                "drops to remote level (§5.3)")
def _fig14_steer(result):
    rows = result.as_dicts()
    octo = [r for r in rows if r["config"] == "octoNIC"]
    std = [r for r in rows if r["config"] == "ethNIC"]
    ok = (octo[-1]["pf1_gbps"] > 0.9 * octo[0]["pf0_gbps"]
          and std[-1]["pf1_gbps"] == 0
          and std[-1]["pf0_gbps"] < 0.9 * std[0]["pf0_gbps"])
    return ok, ""


@claim("fig15", "NVMe: remote fio degrades ~20-25% then flattens (§5.4)")
def _fig15_fio(result):
    norm = result.column("fio_normalized")
    return 0.70 <= min(norm) <= 0.85 and norm[0] == 1.0, \
        f"floor {min(norm)}"


@claim("sec24", "remote DDIO yields at most a marginal improvement (§2.4)")
def _sec24_marginal(result):
    improvement = result.as_dicts()[1]["vs_default_remote"]
    return 0.95 <= improvement <= 1.05, f"{improvement}x"


@claim("sec511", "multi-core: line rate via both PFs; memory traffic "
                 "reappears for ioct (§5.1.1)")
def _sec511_multicore(result):
    rows = {r["config"]: r for r in result.as_dicts()}
    ok = (rows["ioctopus"]["total_gbps"] > 85
          and rows["ioctopus"]["membw_gbps"] > 10)
    return ok, f"{rows['ioctopus']['total_gbps']} Gb/s"
