"""Markdown report generation: results + claim verdicts in one document.

``render_report`` turns a set of experiment results into the same kind of
document as ``EXPERIMENTS.md`` — per-experiment tables plus PASS/FAIL
verdicts for every registered paper claim — so a full reproduction run
can be archived as a single artifact::

    from repro.analysis import run_report
    print(run_report(fidelity="quick"))
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.analysis.claims import verify_result
from repro.experiments.base import (
    ExperimentResult,
    all_experiment_names,
    get_experiment,
)


def _markdown_table(result: ExperimentResult) -> str:
    header = "| " + " | ".join(result.headers) + " |"
    rule = "|" + "|".join("---" for _ in result.headers) + "|"
    lines = [header, rule]
    for row in result.rows:
        cells = [f"{v:.2f}" if isinstance(v, float) else str(v)
                 for v in row]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def render_result(result: ExperimentResult) -> str:
    """One experiment as a markdown section with claim verdicts."""
    experiment = get_experiment(result.experiment)
    parts = [f"## {result.experiment} — {result.paper_ref}", "",
             experiment.description, "", _markdown_table(result)]
    if result.notes:
        parts += ["", f"*{result.notes}*"]
    checks = verify_result(result)
    if checks:
        parts += ["", "Claims:", ""]
        for check in checks:
            mark = "✅" if check.passed else "❌"
            detail = f" — {check.detail}" if check.detail else ""
            parts.append(f"- {mark} {check.claim}{detail}")
    return "\n".join(parts)


def render_report(results: Iterable[ExperimentResult],
                  title: str = "IOctopus reproduction report") -> str:
    """A complete markdown report for a set of results."""
    results = list(results)
    sections = [f"# {title}", ""]
    passed = failed = 0
    bodies = []
    for result in results:
        bodies.append(render_result(result))
        for check in verify_result(result):
            if check.passed:
                passed += 1
            else:
                failed += 1
    sections.append(f"{len(results)} experiments; claims: "
                    f"{passed} passed, {failed} failed.")
    sections.append("")
    sections.append("\n\n".join(bodies))
    return "\n".join(sections)


def run_report(names: Optional[List[str]] = None,
               fidelity: str = "quick") -> str:
    """Run experiments (all by default) and render the report."""
    names = names if names is not None else all_experiment_names()
    results = [get_experiment(name).run(fidelity=fidelity)
               for name in names]
    return render_report(results)
