"""PCIe fabric: links, physical functions, and bifurcation.

A device occupies one or more **physical functions** (PFs).  Each PF is an
endpoint attached to exactly one CPU socket's I/O controller — that
attachment point is what decides whether its DMA is local or remote, i.e.
the root of the NUDMA problem (§2.2).  Bifurcation (§3.2) splits a device's
lanes across several PFs so that one device can attach to every socket.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.engine import Environment
from repro.sim.errors import DeviceGoneError
from repro.sim.resources import BandwidthServer
from repro.topology.constants import PcieSpec
from repro.topology.machine import Machine


class PcieLink:
    """One PF's lane bundle: independent upstream/downstream byte servers.

    A link can be *degraded* (retrained to fewer lanes — both servers run
    at the reduced rate) and *restored* to its full width.
    """

    def __init__(self, env: Environment, name: str, spec: PcieSpec,
                 lanes: int):
        if lanes < 1:
            raise ValueError(f"PCIe link needs >= 1 lane, got {lanes}")
        self.spec = spec
        self.lanes = lanes
        self.active_lanes = lanes
        rate = lanes * spec.bytes_per_sec_per_lane
        self.upstream = BandwidthServer(env, rate, name=f"{name}.up")
        self.downstream = BandwidthServer(env, rate, name=f"{name}.down")

    @property
    def bytes_per_sec(self) -> float:
        return self.active_lanes * self.spec.bytes_per_sec_per_lane

    @property
    def is_degraded(self) -> bool:
        return self.active_lanes < self.lanes

    def degrade(self, active_lanes: int) -> None:
        """Retrain the link to ``active_lanes`` (fault injection)."""
        if not 1 <= active_lanes <= self.lanes:
            raise ValueError(
                f"active_lanes must be in [1, {self.lanes}], "
                f"got {active_lanes}")
        self.active_lanes = active_lanes
        rate = active_lanes * self.spec.bytes_per_sec_per_lane
        self.upstream.set_rate(rate)
        self.downstream.set_rate(rate)

    def restore(self) -> None:
        """Retrain back to the full lane width."""
        self.degrade(self.lanes)


class PhysicalFunction:
    """A PCIe endpoint: the device's presence on one socket."""

    def __init__(self, machine: Machine, pf_id: int, attach_node: int,
                 lanes: int, name: str = ""):
        if not 0 <= attach_node < machine.spec.num_nodes:
            raise ValueError(f"attach_node {attach_node} out of range")
        self.machine = machine
        self.pf_id = pf_id
        self.attach_node = attach_node
        self.name = name or f"pf{pf_id}"
        self.link = PcieLink(machine.env, self.name, machine.spec.pcie,
                             lanes)
        #: Set by the owning device when registered.
        self.device: Optional[object] = None
        #: DMA-engine window state (see MemorySystem._dma_serialization).
        self.dma_window_free_at = 0
        #: False after a surprise removal until the PF is recovered.
        self.alive = True
        #: TLP route constants, resolved once: the PCIe half round trip
        #: and the interconnect link per peer node (the topology is fixed
        #: at construction, so per-call lookups are pure overhead).
        self._half_rtt = machine.spec.pcie.round_trip_ns // 2
        self._mmio_links: dict = {}
        self._irq_links: dict = {}
        self._memory = machine.memory

    # ------------------------------------------------------- fault state

    def fail(self) -> None:
        """Surprise-remove this endpoint: every DMA/MMIO raises until
        :meth:`recover` is called."""
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    def _check_alive(self, operation: str) -> None:
        if not self.alive:
            raise DeviceGoneError(
                f"{operation} on removed PF {self.name} "
                f"(node {self.attach_node})")

    # ------------------------------------------------------------- DMA

    def dma_write(self, region, nbytes: int, nbursts: int = 1) -> int:
        """Device -> memory write through this PF; returns delay ns.

        ``nbursts > 1`` (fluid steady intervals) charges the PCIe link
        and the memory system per burst — ``nbytes`` is the total — so
        the DDIO absorb nonlinearity and per-burst rounding match the
        exact path's burst-by-burst execution.
        """
        self._check_alive("dma_write")
        per_burst, remainder = divmod(nbytes, nbursts)
        if nbursts == 1 or remainder:
            pcie_delay = self.link.upstream.account(nbytes)
        else:
            pcie_delay = self.link.upstream.account_batch(per_burst, nbursts)
        mem_delay = self._memory.dma_write(self.attach_node, region,
                                           nbytes, engine=self,
                                           nbursts=nbursts)
        return mem_delay if mem_delay > pcie_delay else pcie_delay

    def dma_read(self, region, nbytes: int) -> int:
        """Memory -> device read through this PF; returns delay ns."""
        self._check_alive("dma_read")
        pcie_delay = self.link.downstream.account(nbytes)
        mem_delay = self._memory.dma_read(self.attach_node, region,
                                          nbytes, engine=self)
        return mem_delay if mem_delay > pcie_delay else pcie_delay

    # ------------------------------------------------------------- MMIO

    def mmio_latency(self, from_node: int) -> int:
        """Latency of a posted MMIO write (doorbell) from a core.

        Crossing the interconnect to reach a remote PF is one of the
        nonuniform I/O interactions Fig 1 depicts.
        """
        self._check_alive("mmio")
        latency = self._half_rtt
        if from_node != self.attach_node:
            link = self._mmio_links.get(from_node)
            if link is None:
                link = self.machine.interconnect.link(from_node,
                                                      self.attach_node)
                self._mmio_links[from_node] = link
            link.estimator.update(8)
            latency += link.loaded_crossing_ns()
        return latency

    def interrupt_latency(self, to_node: int) -> int:
        """Latency for an MSI-X message to reach a core on ``to_node``."""
        self._check_alive("interrupt")
        latency = self._half_rtt
        if to_node != self.attach_node:
            link = self._irq_links.get(to_node)
            if link is None:
                link = self.machine.interconnect.link(self.attach_node,
                                                      to_node)
                self._irq_links[to_node] = link
            link.estimator.update(8)
            latency += link.loaded_crossing_ns()
        return latency

    def is_local_to(self, node: int) -> bool:
        return self.attach_node == node

    def __repr__(self) -> str:
        state = "" if self.alive else " dead"
        return (f"<PF {self.name} node={self.attach_node} "
                f"x{self.link.lanes}{state}>")


def bifurcate(machine: Machine, total_lanes: int,
              attach_nodes: List[int], name: str = "dev") -> (
                  List[PhysicalFunction]):
    """Split ``total_lanes`` evenly into one PF per attach node (§3.2).

    A 16-lane card bifurcated across two sockets yields two x8 endpoints —
    exactly the ConnectX-5 Socket Direct arrangement the prototype uses
    (§4.1).
    """
    if not attach_nodes:
        raise ValueError("bifurcate needs at least one attach node")
    if total_lanes % len(attach_nodes) != 0:
        raise ValueError(
            f"{total_lanes} lanes do not split evenly across "
            f"{len(attach_nodes)} endpoints")
    lanes_each = total_lanes // len(attach_nodes)
    return [PhysicalFunction(machine, pf_id, node, lanes_each,
                             name=f"{name}.pf{pf_id}")
            for pf_id, node in enumerate(attach_nodes)]
