"""PCIe fabric: links, physical functions, and bifurcation.

A device occupies one or more **physical functions** (PFs).  Each PF is an
endpoint attached to exactly one CPU socket's I/O controller — that
attachment point is what decides whether its DMA is local or remote, i.e.
the root of the NUDMA problem (§2.2).  Bifurcation (§3.2) splits a device's
lanes across several PFs so that one device can attach to every socket.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.engine import Environment
from repro.sim.resources import BandwidthServer
from repro.topology.constants import PcieSpec
from repro.topology.machine import Machine


class PcieLink:
    """One PF's lane bundle: independent upstream/downstream byte servers."""

    def __init__(self, env: Environment, name: str, spec: PcieSpec,
                 lanes: int):
        if lanes < 1:
            raise ValueError(f"PCIe link needs >= 1 lane, got {lanes}")
        self.spec = spec
        self.lanes = lanes
        rate = lanes * spec.bytes_per_sec_per_lane
        self.upstream = BandwidthServer(env, rate, name=f"{name}.up")
        self.downstream = BandwidthServer(env, rate, name=f"{name}.down")

    @property
    def bytes_per_sec(self) -> float:
        return self.lanes * self.spec.bytes_per_sec_per_lane


class PhysicalFunction:
    """A PCIe endpoint: the device's presence on one socket."""

    def __init__(self, machine: Machine, pf_id: int, attach_node: int,
                 lanes: int, name: str = ""):
        if not 0 <= attach_node < machine.spec.num_nodes:
            raise ValueError(f"attach_node {attach_node} out of range")
        self.machine = machine
        self.pf_id = pf_id
        self.attach_node = attach_node
        self.name = name or f"pf{pf_id}"
        self.link = PcieLink(machine.env, self.name, machine.spec.pcie,
                             lanes)
        #: Set by the owning device when registered.
        self.device: Optional[object] = None
        #: DMA-engine window state (see MemorySystem._dma_serialization).
        self.dma_window_free_at = 0

    # ------------------------------------------------------------- DMA

    def dma_write(self, region, nbytes: int) -> int:
        """Device -> memory write through this PF; returns delay ns."""
        pcie_delay = self.link.upstream.account(nbytes)
        mem_delay = self.machine.memory.dma_write(self.attach_node, region,
                                                  nbytes, engine=self)
        return max(pcie_delay, mem_delay)

    def dma_read(self, region, nbytes: int) -> int:
        """Memory -> device read through this PF; returns delay ns."""
        pcie_delay = self.link.downstream.account(nbytes)
        mem_delay = self.machine.memory.dma_read(self.attach_node, region,
                                                 nbytes, engine=self)
        return max(pcie_delay, mem_delay)

    # ------------------------------------------------------------- MMIO

    def mmio_latency(self, from_node: int) -> int:
        """Latency of a posted MMIO write (doorbell) from a core.

        Crossing the interconnect to reach a remote PF is one of the
        nonuniform I/O interactions Fig 1 depicts.
        """
        latency = self.machine.spec.pcie.round_trip_ns // 2
        if from_node != self.attach_node:
            link = self.machine.interconnect.link(from_node,
                                                  self.attach_node)
            link.estimator.update(8)
            latency += link.loaded_crossing_ns()
        return latency

    def interrupt_latency(self, to_node: int) -> int:
        """Latency for an MSI-X message to reach a core on ``to_node``."""
        latency = self.machine.spec.pcie.round_trip_ns // 2
        if to_node != self.attach_node:
            link = self.machine.interconnect.link(self.attach_node,
                                                  to_node)
            link.estimator.update(8)
            latency += link.loaded_crossing_ns()
        return latency

    def is_local_to(self, node: int) -> bool:
        return self.attach_node == node

    def __repr__(self) -> str:
        return (f"<PF {self.name} node={self.attach_node} "
                f"x{self.link.lanes}>")


def bifurcate(machine: Machine, total_lanes: int,
              attach_nodes: List[int], name: str = "dev") -> (
                  List[PhysicalFunction]):
    """Split ``total_lanes`` evenly into one PF per attach node (§3.2).

    A 16-lane card bifurcated across two sockets yields two x8 endpoints —
    exactly the ConnectX-5 Socket Direct arrangement the prototype uses
    (§4.1).
    """
    if not attach_nodes:
        raise ValueError("bifurcate needs at least one attach node")
    if total_lanes % len(attach_nodes) != 0:
        raise ValueError(
            f"{total_lanes} lanes do not split evenly across "
            f"{len(attach_nodes)} endpoints")
    lanes_each = total_lanes // len(attach_nodes)
    return [PhysicalFunction(machine, pf_id, node, lanes_each,
                             name=f"{name}.pf{pf_id}")
            for pf_id, node in enumerate(attach_nodes)]
