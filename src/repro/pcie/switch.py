"""Programmable PCIe switch (§3.2, "Programmable PCIe Switching").

The paper weighs three ways to give one device a presence on every
socket: PCIe extenders/bifurcation, motherboard hard-wiring, and an
onboard programmable switch.  The switch is the flexible option — devices
can be re-attached at runtime and peer-to-peer DMA becomes possible — but
it "adds latency to individual operations, consumes more power and
requires more lanes".  This module models that trade so the ablation
benches can quantify it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.pcie.fabric import PhysicalFunction
from repro.topology.machine import Machine

#: Store-and-forward latency a packet pays per switch hop.
SWITCH_HOP_NS = 150
#: Idle power of a PCIe switch ASIC vs. ~0 for passive bifurcation.
SWITCH_POWER_W = 25.0


class SwitchedFunction(PhysicalFunction):
    """A PF reached through the programmable switch.

    Identical to a directly-attached PF except every DMA/MMIO pays the
    switch's hop latency, and its attachment node can be changed at
    runtime (``reattach``) without touching cables or riser cards.
    """

    def __init__(self, machine: Machine, pf_id: int, attach_node: int,
                 lanes: int, name: str = "",
                 hop_ns: int = SWITCH_HOP_NS):
        super().__init__(machine, pf_id, attach_node, lanes, name=name)
        self.hop_ns = int(hop_ns)
        self.reattach_count = 0

    def dma_write(self, region, nbytes: int, nbursts: int = 1) -> int:
        return self.hop_ns + super().dma_write(region, nbytes,
                                               nbursts=nbursts)

    def dma_read(self, region, nbytes: int) -> int:
        return self.hop_ns + super().dma_read(region, nbytes)

    def mmio_latency(self, from_node: int) -> int:
        return self.hop_ns + super().mmio_latency(from_node)

    def interrupt_latency(self, to_node: int) -> int:
        return self.hop_ns + super().interrupt_latency(to_node)

    def reattach(self, node: int) -> None:
        """Re-route this endpoint to another socket — the flexibility a
        fixed bifurcation cannot offer."""
        self._check_alive("reattach")
        if not 0 <= node < self.machine.spec.num_nodes:
            raise ValueError(f"node {node} out of range")
        if node != self.attach_node:
            self.attach_node = node
            self.reattach_count += 1


class PcieSwitch:
    """An onboard switch connecting device ports to every socket."""

    def __init__(self, machine: Machine, hop_ns: int = SWITCH_HOP_NS):
        self.machine = machine
        self.hop_ns = int(hop_ns)
        self.functions: List[SwitchedFunction] = []
        self._next_pf_id = 0

    def attach(self, node: int, lanes: int,
               name: str = "") -> SwitchedFunction:
        pf = SwitchedFunction(self.machine, self._next_pf_id, node, lanes,
                              name=name or f"sw.pf{self._next_pf_id}",
                              hop_ns=self.hop_ns)
        self._next_pf_id += 1
        self.functions.append(pf)
        return pf

    def attach_per_node(self, lanes_each: int,
                        name: str = "dev") -> List[SwitchedFunction]:
        """One endpoint per socket — the switched octoNIC arrangement."""
        return [self.attach(node, lanes_each, name=f"{name}.pf{node}")
                for node in range(self.machine.spec.num_nodes)]

    def peer_to_peer(self, src: SwitchedFunction, dst: SwitchedFunction,
                     nbytes: int) -> int:
        """Device-to-device DMA through the switch, never touching DRAM
        or the CPU interconnect (the switch's unique capability, §3.2)."""
        if src not in self.functions or dst not in self.functions:
            raise ValueError("both endpoints must hang off this switch")
        src._check_alive("peer_to_peer")
        dst._check_alive("peer_to_peer")
        up = src.link.upstream.account(nbytes)
        down = dst.link.downstream.account(nbytes)
        return 2 * self.hop_ns + max(up, down)

    @property
    def power_watts(self) -> float:
        return SWITCH_POWER_W

    def lanes_required(self) -> int:
        """A switch needs host-side lanes to every socket *plus* the
        device-side lanes — the paper's "requires more lanes" drawback."""
        device_side = sum(pf.link.lanes for pf in self.functions)
        host_side = self.machine.spec.num_nodes * max(
            (pf.link.lanes for pf in self.functions), default=0)
        return device_side + host_side
