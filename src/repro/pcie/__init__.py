"""PCIe fabric: links, physical functions, bifurcation, switching."""

from repro.pcie.fabric import PcieLink, PhysicalFunction, bifurcate
from repro.pcie.switch import PcieSwitch, SwitchedFunction

__all__ = ["PcieLink", "PcieSwitch", "PhysicalFunction",
           "SwitchedFunction", "bifurcate"]
