"""IOctoSG: per-fragment PF hints for transmits that span NUMA nodes.

§3.3: when a transmitted buffer was not allocated by the NIC driver (e.g.
``sendfile()`` out of the page cache), a single packet's fragments may live
on different nodes.  No single PF can reach all of them without NUDMA, so
IOctoSG lets the driver annotate each scatter-gather fragment with the PF
that is local to that fragment's node.  (The paper's hardware prototype
does not implement IOctoSG; we do, to evaluate the design point.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.memory.region import Region
from repro.nic.device import NicDevice


@dataclass(frozen=True)
class SgFragment:
    """One scatter-gather list entry."""

    region: Region
    nbytes: int

    def __post_init__(self):
        if self.nbytes <= 0:
            raise ValueError(f"fragment bytes must be > 0, got {self.nbytes}")


@dataclass(frozen=True)
class SgHint:
    """A fragment annotated with the PF the device should read it from."""

    fragment: SgFragment
    pf_id: int


def plan_fragments(device: NicDevice,
                   fragments: Sequence[SgFragment]) -> List[SgHint]:
    """Assign each fragment the PF local to its home node.

    Falls back to PF 0 for a node without a local PF (a partially
    populated octoNIC).
    """
    hints = []
    for fragment in fragments:
        pf = device.pf_local_to(fragment.region.home_node)
        hints.append(SgHint(fragment, pf.pf_id if pf else 0))
    return hints


def transmit_with_hints(device: NicDevice,
                        hints: Sequence[SgHint]) -> int:
    """DMA-read every fragment through its hinted PF; returns the device
    delay (max across PFs, which operate in parallel)."""
    if not hints:
        raise ValueError("need at least one fragment")
    delay = 0
    for hint in hints:
        pf = device.pf(hint.pf_id)
        delay = max(delay, pf.dma_read(hint.fragment.region,
                                       hint.fragment.nbytes))
    return delay


def transmit_without_hints(device: NicDevice, pf_id: int,
                           hints: Sequence[SgHint]) -> int:
    """Baseline: read every fragment through one fixed PF (what a standard
    NIC must do) — remote fragments pay interconnect crossings."""
    if not hints:
        raise ValueError("need at least one fragment")
    pf = device.pf(pf_id)
    delay = 0
    for hint in hints:
        delay = max(delay, pf.dma_read(hint.fragment.region,
                                       hint.fragment.nbytes))
    return delay
