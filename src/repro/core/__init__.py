"""The paper's contribution: the octoNIC driver stack and testbed configs."""

from repro.core.configurations import (
    CONFIGS,
    FAR_NODE,
    NIC_NODE,
    Host,
    Testbed,
    TestbedBuilder,
    apply_components,
    attach_octossd,
    attach_octossd_fleet,
)
from repro.core.sg import (
    SgFragment,
    SgHint,
    plan_fragments,
    transmit_with_hints,
    transmit_without_hints,
)
from repro.core.teaming import RULE_IDLE_NS, OctoTeamDriver

__all__ = [
    "CONFIGS",
    "FAR_NODE",
    "Host",
    "NIC_NODE",
    "OctoTeamDriver",
    "RULE_IDLE_NS",
    "SgFragment",
    "SgHint",
    "Testbed",
    "TestbedBuilder",
    "apply_components",
    "attach_octossd",
    "attach_octossd_fleet",
    "plan_fragments",
    "transmit_with_hints",
    "transmit_without_hints",
]
