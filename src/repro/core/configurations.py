"""The paper's evaluated configurations as a ready-to-run testbed (§5).

A :class:`Testbed` builds two machines sharing one simulation clock — the
*server* (whose NIC is bifurcated across both sockets, like the ConnectX-5
Socket Direct card) and the *client* (single-PF NIC, always local) — wired
back-to-back at 100 Gb/s.

``config`` selects the server-side arrangement:

* ``"local"``    — standard firmware; workload runs on the NIC-local node.
* ``"remote"``   — standard firmware; workload runs on the other node, so
  every DMA crosses the interconnect (the NUDMA configuration).
* ``"ioctopus"`` — octoNIC firmware + team driver; the workload runs on
  the *remote* node placement-wise, but the octoNIC steers through the PF
  local to wherever the workload is — by design it must match ``local``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.teaming import OctoTeamDriver
from repro.nic.device import NicDevice
from repro.nic.firmware import OctoFirmware, StandardFirmware
from repro.nic.wire import EthernetWire
from repro.os_model.driver import NetDriver, StandardDriver
from repro.os_model.netstack import NetworkStack
from repro.os_model.scheduler import Scheduler
from repro.pcie.fabric import bifurcate
from repro.sim.engine import Environment
from repro.topology.constants import MachineSpec, dell_r730_spec
from repro.topology.machine import Machine

CONFIGS = ("local", "remote", "ioctopus")

#: The node the server NIC's PF0 attaches to.
NIC_NODE = 0
#: The node "remote" workloads run on.
FAR_NODE = 1


class Host:
    """One machine plus its OS services and NIC."""

    def __init__(self, machine: Machine, nic: NicDevice, driver: NetDriver):
        self.machine = machine
        self.nic = nic
        self.driver = driver
        self.scheduler = Scheduler(machine)
        self.stack = NetworkStack(machine, self.scheduler)


class Testbed:
    """Server + client wired back-to-back, per the paper's §5 setup."""

    #: Not a pytest test class, despite the name.
    __test__ = False

    def __init__(self, config: str, seed: int = 0, ddio: bool = True,
                 spec: Optional[MachineSpec] = None,
                 client_config: str = "local",
                 accuracy: Optional[str] = None):
        if config not in CONFIGS:
            raise ValueError(f"config must be one of {CONFIGS}, "
                             f"got {config!r}")
        if client_config not in ("local", "remote"):
            raise ValueError("client_config must be 'local' or 'remote'")
        self.config = config
        self.client_config = client_config
        spec = spec or dell_r730_spec()
        # ``accuracy=None`` resolves to the process default (REPRO_ACCURACY
        # or "exact"); the experiment layer passes an explicit mode.
        self.env = Environment(accuracy=accuracy)
        self.accuracy = self.env.accuracy
        self.wire = EthernetWire(self.env)

        # --- server: bifurcated x16 NIC, one x8 PF per socket (§4.1).
        server = Machine(spec, seed=seed, env=self.env)
        server_pfs = bifurcate(server, 16, [0, 1], name="srv")
        if config == "ioctopus":
            firmware = OctoFirmware(num_pfs=2)
            nic = NicDevice(server, server_pfs, firmware, wire=self.wire,
                            wire_side="b", name="octoNIC")
            driver: NetDriver = OctoTeamDriver(server, nic)
        else:
            firmware = StandardFirmware(num_pfs=2)
            nic = NicDevice(server, server_pfs, firmware, wire=self.wire,
                            wire_side="b", name="ethNIC")
            # Both `local` and `remote` use the PF0 netdev; what differs
            # is where the workload runs (§5, "Evaluated configurations").
            driver = StandardDriver(server, nic, pf_id=NIC_NODE)
        self.server = Host(server, nic, driver)

        # --- client: plain single-PF x16 NIC on node 0.
        client = Machine(spec, seed=seed + 1, env=self.env)
        client_pfs = bifurcate(client, 16, [0], name="cli")
        client_nic = NicDevice(client, client_pfs, StandardFirmware(1),
                               wire=self.wire, wire_side="a", name="cliNIC")
        self.client = Host(client, client_nic,
                           StandardDriver(client, client_nic, pf_id=0))

        if not ddio:
            server.memory.ddio_enabled = False
            client.memory.ddio_enabled = False

    # -------------------------------------------------------- placement

    @property
    def server_workload_node(self) -> int:
        """Node the server workload (threads + memory) is pinned to."""
        return NIC_NODE if self.config == "local" else FAR_NODE

    @property
    def client_workload_node(self) -> int:
        return 0 if self.client_config == "local" else 1

    def server_core(self, index: int = 0):
        """The index-th workload core on the server."""
        return self.server.machine.cores_on_node(
            self.server_workload_node)[index]

    def client_core(self, index: int = 0):
        return self.client.machine.cores_on_node(
            self.client_workload_node)[index]

    def run(self, until_ns: int) -> None:
        self.env.run(until=until_ns)

    def __repr__(self) -> str:
        return f"<Testbed {self.config} t={self.env.now}ns>"
