"""The paper's evaluated configurations as a ready-to-run testbed (§5).

A :class:`Testbed` builds two machines sharing one simulation clock — the
*server* (whose NIC is bifurcated across both sockets, like the ConnectX-5
Socket Direct card) and the *client* (single-PF NIC, always local) — wired
back-to-back at 100 Gb/s.

The system under test is a :class:`~repro.components.SystemConfig`: a
server-arrangement *preset* plus explicit component overrides against
the registry defaults (:mod:`repro.components`).  The preset selects:

* ``"local"``    — standard firmware; workload runs on the NIC-local node.
* ``"remote"``   — standard firmware; workload runs on the other node, so
  every DMA crosses the interconnect (the NUDMA configuration).
* ``"ioctopus"`` — octoNIC firmware + team driver; the workload runs on
  the *remote* node placement-wise, but the octoNIC steers through the PF
  local to wherever the workload is — by design it must match ``local``.

Assembly itself lives in :class:`TestbedBuilder`, which the ablation
experiments also use directly for single-host builds (different wiring,
4-socket machines) instead of hand-rolling Machine/NIC/driver stacks.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Union

from repro.components import SystemConfig, all_components, as_system_config
from repro.core.teaming import OctoTeamDriver
from repro.nic.device import NicDevice
from repro.nic.firmware import OctoFirmware, StandardFirmware
from repro.nic.wire import EthernetWire
from repro.nvme.device import NvmeController
from repro.nvme.driver import NvmeDriver
from repro.os_model.driver import NetDriver, StandardDriver
from repro.os_model.netstack import NetworkStack
from repro.os_model.scheduler import Scheduler
from repro.pcie.fabric import bifurcate
from repro.sim.engine import Environment
from repro.topology.constants import MachineSpec, dell_r730_spec
from repro.topology.machine import Machine

CONFIGS = ("local", "remote", "ioctopus")

#: The node the server NIC's PF0 attaches to.
NIC_NODE = 0
#: The node "remote" workloads run on.
FAR_NODE = 1


class Host:
    """One machine plus its OS services and NIC."""

    def __init__(self, machine: Machine, nic: NicDevice, driver: NetDriver):
        self.machine = machine
        self.nic = nic
        self.driver = driver
        self.scheduler = Scheduler(machine)
        self.stack = NetworkStack(machine, self.scheduler)
        #: Wiring metadata, set by the builder ("bifurcation"/"switch",
        #: lane count, switch ASIC power) — the §3.2 cost ablation reads
        #: these instead of re-deriving them.
        self.wiring = "bifurcation"
        self.wiring_lanes = 0
        self.wiring_power_w = 0.0


def apply_components(system: SystemConfig, hosts: List[Host],
                     env: Environment) -> None:
    """Thread every registered component's effective state through the
    freshly-built ``hosts``.  Runs at build time (flags only, no
    events), so the default config is bit-identical to a build that
    never consulted the registry."""
    states = system.components()
    for component in all_components():
        if states[component.name]:
            component.apply(hosts, env)
        else:
            component.remove(hosts, env)


class TestbedBuilder:
    """Composable assembly of hosts and testbeds from a SystemConfig.

    The one place Machine + PFs + firmware + driver + Host come
    together; the :class:`Testbed` constructor and the ablation
    experiments (different wiring, 4-socket machines, single-host
    benches) are all thin calls into it::

        host = (TestbedBuilder("ioctopus").spec(spec4)
                .attach_nodes([0, 1, 2, 3]).pf_name("o4")
                .build_host())
        testbed = TestbedBuilder(SystemConfig("remote").without("ddio"))\\
                  .seed(7).build()
    """

    #: Not a pytest test class, despite the name.
    __test__ = False

    def __init__(self, system: Union[str, SystemConfig] = "ioctopus"):
        self._system = as_system_config(system)
        self._seed = 0
        self._spec: Optional[MachineSpec] = None
        self._accuracy: Optional[str] = None
        self._client_config = "local"
        self._wiring = "bifurcation"
        self._lanes = 16
        self._attach_nodes: Optional[List[int]] = None
        self._pf_name: Optional[str] = None
        self._nic_name: Optional[str] = None

    # ------------------------------------------------------ fluent knobs

    def system(self, system: Union[str, SystemConfig]) -> "TestbedBuilder":
        self._system = as_system_config(system)
        return self

    def seed(self, seed: int) -> "TestbedBuilder":
        self._seed = seed
        return self

    def spec(self, spec: Optional[MachineSpec]) -> "TestbedBuilder":
        self._spec = spec
        return self

    def accuracy(self, accuracy: Optional[str]) -> "TestbedBuilder":
        self._accuracy = accuracy
        return self

    def client_config(self, client_config: str) -> "TestbedBuilder":
        if client_config not in ("local", "remote"):
            raise ValueError("client_config must be 'local' or 'remote'")
        self._client_config = client_config
        return self

    def wiring(self, wiring: str) -> "TestbedBuilder":
        """``"bifurcation"`` (passive riser, the paper's prototype) or
        ``"switch"`` (programmable PCIe switch, §3.2)."""
        if wiring not in ("bifurcation", "switch"):
            raise ValueError("wiring must be 'bifurcation' or 'switch'")
        self._wiring = wiring
        return self

    def lanes(self, lanes: int) -> "TestbedBuilder":
        self._lanes = lanes
        return self

    def attach_nodes(self, nodes: List[int]) -> "TestbedBuilder":
        """Nodes the NIC exposes a PF on (default: every node for the
        octo preset, nodes 0+1 for the standard presets)."""
        self._attach_nodes = list(nodes)
        return self

    def pf_name(self, name: str) -> "TestbedBuilder":
        self._pf_name = name
        return self

    def nic_name(self, name: str) -> "TestbedBuilder":
        self._nic_name = name
        return self

    # ----------------------------------------------------------- assembly

    def _resolved_spec(self) -> MachineSpec:
        return self._spec or dell_r730_spec()

    def _resolved_attach(self, spec: MachineSpec) -> List[int]:
        if self._attach_nodes is not None:
            return list(self._attach_nodes)
        if self._system.preset == "ioctopus":
            return list(range(spec.num_nodes))
        return list(range(min(2, spec.num_nodes)))

    def _assemble_host(self, machine: Machine, wire, wire_side: str) -> Host:
        """One machine + NIC + driver per the preset; no components yet
        (the caller applies them once every host of the build exists)."""
        octo = self._system.preset == "ioctopus"
        spec = machine.spec
        attach = self._resolved_attach(spec)
        pf_name = self._pf_name if self._pf_name is not None else "srv"
        wiring_power = 0.0
        if self._wiring == "switch":
            from repro.pcie.switch import PcieSwitch
            switch = PcieSwitch(machine)
            pfs = switch.attach_per_node(self._lanes // spec.num_nodes,
                                         name=pf_name)
            wiring_lanes = switch.lanes_required()
            wiring_power = switch.power_watts
        else:
            pfs = bifurcate(machine, self._lanes, attach, name=pf_name)
            wiring_lanes = self._lanes
        nic_kwargs = {}
        if self._nic_name is not None:
            nic_kwargs["name"] = self._nic_name
        if octo:
            firmware = OctoFirmware(num_pfs=len(pfs))
            nic = NicDevice(machine, pfs, firmware, wire=wire,
                            wire_side=wire_side, **nic_kwargs)
            driver: NetDriver = OctoTeamDriver(machine, nic)
        else:
            firmware = StandardFirmware(num_pfs=len(pfs))
            nic = NicDevice(machine, pfs, firmware, wire=wire,
                            wire_side=wire_side, **nic_kwargs)
            # Both `local` and `remote` use the PF0 netdev; what differs
            # is where the workload runs (§5, "Evaluated configurations").
            driver = StandardDriver(machine, nic, pf_id=0)
        host = Host(machine, nic, driver)
        host.wiring = self._wiring
        host.wiring_lanes = wiring_lanes
        host.wiring_power_w = wiring_power
        return host

    def build_host(self, env: Optional[Environment] = None,
                   wire=None, wire_side: str = "b") -> Host:
        """A single server host (no client, no testbed) — what the
        wiring/scale ablations assemble per arrangement.  Components are
        applied to this host alone."""
        env = env or Environment(accuracy=self._accuracy)
        machine = Machine(self._resolved_spec(), seed=self._seed, env=env)
        host = self._assemble_host(machine, wire, wire_side)
        apply_components(self._system, [host], env)
        return host

    def build(self) -> "Testbed":
        """The full two-machine testbed (server + client + wire)."""
        return Testbed(self._system, seed=self._seed, spec=self._spec,
                       client_config=self._client_config,
                       accuracy=self._accuracy)


def attach_octossd(machine: Machine, octo: bool, name: str,
                   lanes_per_port: int = 8) -> NvmeController:
    """One NVMe controller wired per the arrangement under test: a
    single-port drive on node 0, or (``octo=True``) a dual-port octoSSD
    with one PF per socket — the storage twin of the NIC bifurcation.
    Shared by the mixed-IO ablation and the fuzz runner."""
    attach = [0, 1] if octo else [0]
    return NvmeController(
        machine, bifurcate(machine, lanes_per_port * len(attach), attach,
                           name=name), name=name)


def attach_octossd_fleet(machine: Machine, octo: bool, count: int,
                         name_prefix: str = "ssd") -> List[NvmeDriver]:
    """``count`` SSDs plus their drivers (octo teaming per ``octo``)."""
    ssds = [attach_octossd(machine, octo, name=f"{name_prefix}{i}")
            for i in range(count)]
    return [NvmeDriver(machine, ssd, octo_mode=octo) for ssd in ssds]


class Testbed:
    """Server + client wired back-to-back, per the paper's §5 setup."""

    #: Not a pytest test class, despite the name.
    __test__ = False

    def __init__(self, config: Union[str, SystemConfig, None] = None,
                 seed: int = 0, ddio: Optional[bool] = None,
                 spec: Optional[MachineSpec] = None,
                 client_config: str = "local",
                 accuracy: Optional[str] = None,
                 system: Union[str, SystemConfig, None] = None):
        if config is not None and system is not None:
            raise ValueError("pass either config or system=, not both")
        if isinstance(config, str) and config not in CONFIGS:
            raise ValueError(f"config must be one of {CONFIGS}, "
                             f"got {config!r}")
        system = as_system_config(system if system is not None else config)
        if ddio is not None:
            warnings.warn(
                "Testbed(ddio=...) is deprecated; pass a SystemConfig "
                "instead, e.g. Testbed(SystemConfig('remote')"
                ".without('ddio'))", DeprecationWarning, stacklevel=2)
            system = system.with_override("ddio", ddio)
        if client_config not in ("local", "remote"):
            raise ValueError("client_config must be 'local' or 'remote'")
        self.system = system
        self.config = system.preset
        self.client_config = client_config
        # ``accuracy=None`` resolves to the process default (REPRO_ACCURACY
        # or "exact"); the experiment layer passes an explicit mode.
        self.env = Environment(accuracy=accuracy)
        self.accuracy = self.env.accuracy
        self.wire = EthernetWire(self.env)

        # --- server: bifurcated x16 NIC, one x8 PF per socket (§4.1).
        builder = (TestbedBuilder(system).spec(spec).pf_name("srv")
                   .nic_name("octoNIC" if system.preset == "ioctopus"
                             else "ethNIC"))
        server = Machine(builder._resolved_spec(), seed=seed, env=self.env)
        self.server = builder._assemble_host(server, self.wire, "b")

        # --- client: plain single-PF x16 NIC on node 0.
        client_builder = (TestbedBuilder("local").spec(spec)
                          .attach_nodes([0]).pf_name("cli")
                          .nic_name("cliNIC"))
        client = Machine(client_builder._resolved_spec(), seed=seed + 1,
                         env=self.env)
        self.client = client_builder._assemble_host(client, self.wire, "a")

        apply_components(system, [self.server, self.client], self.env)

    # -------------------------------------------------------- placement

    @property
    def server_workload_node(self) -> int:
        """Node the server workload (threads + memory) is pinned to."""
        return NIC_NODE if self.config == "local" else FAR_NODE

    @property
    def client_workload_node(self) -> int:
        return 0 if self.client_config == "local" else 1

    def server_core(self, index: int = 0):
        """The index-th workload core on the server."""
        return self.server.machine.cores_on_node(
            self.server_workload_node)[index]

    def client_core(self, index: int = 0):
        return self.client.machine.cores_on_node(
            self.client_workload_node)[index]

    def run(self, until_ns: int) -> None:
        self.env.run(until=until_ns)

    def __repr__(self) -> str:
        return f"<Testbed {self.system.label()} t={self.env.now}ns>"
