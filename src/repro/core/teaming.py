"""The octoNIC team driver: IOctopus mode (§4.2).

The driver presents a multi-PF octoNIC as **one** netdevice.  The
teaming policy itself — per-core queues bound to the socket-local PF,
PF hot-unplug re-homing with drain-before-resteer, recovery — is the
device-generic :class:`~repro.device.team.OctoTeam`; this class adds
the NIC personality on top:

* XPS hands it transmits on the current core's queue -> the local PF.
* The ARFS migration callback triggers both a per-PF ARFS update and an
  IOctoRFS (flow -> PF) update, applied asynchronously by a kernel worker
  after the old queue drains, so packets never reorder (§4.2 "Receive").
* A periodic worker expires idle rules from the driver tables and the
  device, mirroring the Linux ARFS garbage collector.
* On failover/recovery, the deferred re-steer plan re-points every live
  ARFS and IOctoRFS rule at the surviving (or recovered) PF's tables.

Either way the netdev stays up at nonuniform-DMA (`remote`) throughput
instead of disappearing; on PF recovery the mapping is undone the same
way and full octopus throughput returns.
"""

from __future__ import annotations

from typing import List

from repro.device.team import OctoTeam, ResteerPlan
from repro.nic.device import NicDevice
from repro.nic.firmware import OctoFirmware
from repro.nic.packet import Flow
from repro.nic.rings import QueueSet, RxQueue
from repro.os_model.driver import NetDriver
from repro.pcie.fabric import PhysicalFunction
from repro.topology.machine import Core, Machine

#: Default idle time before a steering rule is garbage-collected.
RULE_IDLE_NS = 500_000_000  # 500 ms, matching ARFS defaults


class OctoTeamDriver(OctoTeam, NetDriver):
    """The IOctopus-mode team driver (one netdev over all PFs)."""

    name = "octo-team"
    team_label = "octoNIC"
    team_noun = "netdev"

    def __init__(self, machine: Machine, device: NicDevice,
                 allow_degraded: bool = False):
        NetDriver.__init__(self, machine, device)
        if not isinstance(device.firmware, OctoFirmware):
            raise TypeError(
                "OctoTeamDriver requires a device running OctoFirmware; "
                f"got {type(device.firmware).__name__}")
        self._init_team(machine, device, allow_degraded)
        self.queues = QueueSet(machine, machine.cores,
                               pf_for_core=self._pf_for_core)
        self._register_defaults()
        self._expiry_process = None
        #: Steering rules dropped by the expiry worker.
        self.rules_expired = 0
        self._team_listen()

    def dst_mac(self) -> str:
        return OctoFirmware.MAC

    def steer_rx(self, flow: Flow, core: Core,
                 immediate: bool = False) -> None:
        new_queue = self.rx_queue_for_core(core)
        pf_id = new_queue.pf.pf_id
        firmware: OctoFirmware = self.device.firmware
        # The flow's current queue may live on ANY PF's ARFS table (the
        # whole point of migration is that the PF changes).
        current_pf = firmware.mpfs.current_pf(flow)
        old_queue = (firmware.arfs[current_pf].lookup(flow)
                     if current_pf is not None else None)

        def apply():
            now = self.env.now
            firmware.arfs_update(pf_id, flow, new_queue, now=now)
            firmware.ioctorfs_update(flow, pf_id, now=now)

        if immediate or old_queue is None or not self.no_reorder_resteer:
            apply()
            self.steering_updates += 1
        else:
            def deferred():
                # No-reorder rule: the old Rx queue must have drained by
                # the time the ARFS/IOctoRFS update lands.
                self.machine.tracer.emit(
                    self.env.now, self.name, "steer.applied",
                    f"flow={flow.src_port}->{flow.dst_port} "
                    f"pf={pf_id} residual={old_queue.outstanding}")
                apply()
            self._apply_after(self._drain_delay_ns(old_queue), deferred)

    # ------------------------------------------------- teaming personality

    def _team_queues(self) -> List:
        return self.queues.rx + self.queues.tx

    def _drainable(self, queues: List) -> List:
        # Only receive queues gate the re-steer: §4.2's no-reorder rule
        # is about packets already DMA-written to the old Rx queue.
        return [q for q in queues if isinstance(q, RxQueue)]

    def _after_rehome(self) -> None:
        self._register_defaults()

    def _register_defaults(self) -> None:
        """(Re-)register each surviving PF's default queue list with the
        firmware; dead PFs are left with an empty list."""
        firmware = self.device.firmware
        for pf in self.device.pfs:
            local_rx = [q for q in self.queues.rx
                        if q.pf is pf] if pf.alive else []
            firmware.register_default_queues(pf.pf_id, local_rx)

    def _plan_failover_resteer(self, pf: PhysicalFunction,
                               fallback: PhysicalFunction) -> ResteerPlan:
        firmware: OctoFirmware = self.device.firmware
        arfs_rules = firmware.arfs[pf.pf_id].snapshot()
        flows = firmware.mpfs.flows_on_pf(pf.pf_id)

        def apply():
            now = self.env.now
            for flow, queue in arfs_rules:
                firmware.arfs_remove(pf.pf_id, flow)
                firmware.arfs_update(fallback.pf_id, flow, queue, now=now)
            for flow in flows:
                firmware.ioctorfs_update(flow, fallback.pf_id, now=now)

        return apply, f"flows={len(flows)} arfs={len(arfs_rules)}"

    def _plan_recovery_resteer(self, pf: PhysicalFunction,
                               drainable: List) -> ResteerPlan:
        firmware: OctoFirmware = self.device.firmware
        # Rules whose queue just moved home: re-point them to the
        # recovered PF's tables once the interim queue drains.
        moved_queues = set(id(q) for q in drainable)
        resteer = []
        for other_id in range(firmware.num_pfs):
            if other_id == pf.pf_id:
                continue
            for flow, queue in firmware.arfs[other_id].snapshot():
                if id(queue) in moved_queues:
                    resteer.append((other_id, flow, queue))

        def apply():
            now = self.env.now
            for old_pf_id, flow, queue in resteer:
                firmware.arfs_remove(old_pf_id, flow)
                firmware.arfs_update(pf.pf_id, flow, queue, now=now)
                firmware.ioctorfs_update(flow, pf.pf_id, now=now)

        return apply, f"flows={len(resteer)}"

    # --------------------------------------------------------- rule expiry

    def start_expiry_worker(self, period_ns: int = 100_000_000,
                            idle_ns: int = RULE_IDLE_NS) -> None:
        """Start the periodic kernel worker that deletes expired rules
        from the driver tables and the device (§4.2)."""
        if self._expiry_process is not None:
            raise RuntimeError("expiry worker already running")

        firmware: OctoFirmware = self.device.firmware

        def worker():
            while True:
                yield self.env.timeout(period_ns)
                now = self.env.now
                expired = set(firmware.expire_idle(now, idle_ns))
                for pf_id in range(firmware.num_pfs):
                    expired.update(
                        firmware.arfs[pf_id].expire_idle(now, idle_ns))
                self.rules_expired += len(expired)

        self._expiry_process = self.env.process(worker(),
                                                name="octo-expiry")
