"""The octoNIC team driver: IOctopus mode (§4.2).

The driver presents a multi-PF octoNIC as **one** netdevice.  It keeps one
queue pair per core, each bound to the PF local to that core's socket, and
piggybacks on the stack's existing callbacks:

* XPS hands it transmits on the current core's queue -> the local PF.
* The ARFS migration callback triggers both a per-PF ARFS update and an
  IOctoRFS (flow -> PF) update, applied asynchronously by a kernel worker
  after the old queue drains, so packets never reorder (§4.2 "Receive").
* A periodic worker expires idle rules from the driver tables and the
  device, mirroring the Linux ARFS garbage collector.
"""

from __future__ import annotations

from typing import Optional

from repro.nic.device import NicDevice
from repro.nic.firmware import OctoFirmware
from repro.nic.packet import Flow
from repro.nic.rings import QueueSet
from repro.os_model.driver import NetDriver
from repro.topology.machine import Core, Machine

#: Default idle time before a steering rule is garbage-collected.
RULE_IDLE_NS = 500_000_000  # 500 ms, matching ARFS defaults


class OctoTeamDriver(NetDriver):
    """The IOctopus-mode team driver (one netdev over all PFs)."""

    name = "octo-team"

    def __init__(self, machine: Machine, device: NicDevice):
        super().__init__(machine, device)
        if not isinstance(device.firmware, OctoFirmware):
            raise TypeError(
                "OctoTeamDriver requires a device running OctoFirmware; "
                f"got {type(device.firmware).__name__}")
        missing = [n for n in range(machine.spec.num_nodes)
                   if device.pf_local_to(n) is None]
        if missing:
            raise ValueError(
                f"octoNIC needs a PF on every node; missing {missing}")
        self.queues = QueueSet(
            machine, machine.cores,
            pf_for_core=lambda core: device.pf_local_to(core.node_id))
        for pf in device.pfs:
            local_rx = [q for q in self.queues.rx
                        if q.pf is pf]
            device.firmware.register_default_queues(pf.pf_id, local_rx)
        self._expiry_process = None

    def dst_mac(self) -> str:
        return OctoFirmware.MAC

    def steer_rx(self, flow: Flow, core: Core,
                 immediate: bool = False) -> None:
        new_queue = self.rx_queue_for_core(core)
        pf_id = new_queue.pf.pf_id
        firmware: OctoFirmware = self.device.firmware
        # The flow's current queue may live on ANY PF's ARFS table (the
        # whole point of migration is that the PF changes).
        current_pf = firmware.mpfs.current_pf(flow)
        old_queue = (firmware.arfs[current_pf].lookup(flow)
                     if current_pf is not None else None)

        def apply():
            now = self.env.now
            firmware.arfs_update(pf_id, flow, new_queue, now=now)
            firmware.ioctorfs_update(flow, pf_id, now=now)

        if immediate or old_queue is None:
            apply()
            self.steering_updates += 1
        else:
            self._apply_after(self._drain_delay_ns(old_queue), apply)

    # --------------------------------------------------------- rule expiry

    def start_expiry_worker(self, period_ns: int = 100_000_000,
                            idle_ns: int = RULE_IDLE_NS) -> None:
        """Start the periodic kernel worker that deletes expired rules
        from the driver tables and the device (§4.2)."""
        if self._expiry_process is not None:
            raise RuntimeError("expiry worker already running")

        firmware: OctoFirmware = self.device.firmware

        def worker():
            while True:
                yield self.env.timeout(period_ns)
                now = self.env.now
                expired = firmware.expire_idle(now, idle_ns)
                for pf_id in range(firmware.num_pfs):
                    for flow in firmware.arfs[pf_id].expire_idle(now,
                                                                 idle_ns):
                        if flow not in expired:
                            expired.append(flow)

        self._expiry_process = self.env.process(worker(),
                                                name="octo-expiry")
