"""The octoNIC team driver: IOctopus mode (§4.2).

The driver presents a multi-PF octoNIC as **one** netdevice.  It keeps one
queue pair per core, each bound to the PF local to that core's socket, and
piggybacks on the stack's existing callbacks:

* XPS hands it transmits on the current core's queue -> the local PF.
* The ARFS migration callback triggers both a per-PF ARFS update and an
  IOctoRFS (flow -> PF) update, applied asynchronously by a kernel worker
  after the old queue drains, so packets never reorder (§4.2 "Receive").
* A periodic worker expires idle rules from the driver tables and the
  device, mirroring the Linux ARFS garbage collector.

Fault tolerance: the driver registers for the device's PF hot-unplug
notifications.  When a PF dies it re-homes that socket's queues onto a
surviving PF, re-registers the default (RSS) queue lists, and — after the
dead PF's queues drain, so packets never reorder — re-points every live
ARFS and IOctoRFS rule.  The netdev stays up at nonuniform-DMA (`remote`)
throughput instead of disappearing; on PF recovery the mapping is undone
the same way and full octopus throughput returns.
"""

from __future__ import annotations

from typing import Optional

from repro.nic.device import NicDevice
from repro.nic.firmware import OctoFirmware
from repro.nic.packet import Flow
from repro.nic.rings import QueueSet
from repro.os_model.driver import NetDriver
from repro.pcie.fabric import PhysicalFunction
from repro.sim.errors import DeviceGoneError
from repro.topology.machine import Core, Machine

#: Default idle time before a steering rule is garbage-collected.
RULE_IDLE_NS = 500_000_000  # 500 ms, matching ARFS defaults


class OctoTeamDriver(NetDriver):
    """The IOctopus-mode team driver (one netdev over all PFs)."""

    name = "octo-team"

    def __init__(self, machine: Machine, device: NicDevice,
                 allow_degraded: bool = False):
        super().__init__(machine, device)
        if not isinstance(device.firmware, OctoFirmware):
            raise TypeError(
                "OctoTeamDriver requires a device running OctoFirmware; "
                f"got {type(device.firmware).__name__}")
        missing = [n for n in range(machine.spec.num_nodes)
                   if device.pf_local_to(n) is None
                   or not device.pf_local_to(n).alive]
        if missing and not allow_degraded:
            raise ValueError(
                f"octoNIC needs a PF on every node; missing {missing} "
                f"(pass allow_degraded=True to run those sockets through "
                f"a remote PF)")
        if not device.alive_pfs:
            raise ValueError("octoNIC has no usable PF at all")
        self.queues = QueueSet(machine, machine.cores,
                               pf_for_core=self._pf_for_core)
        self._register_defaults()
        self._expiry_process = None
        #: Completed PF failovers / recoveries (exposed for tests/metrics).
        self.failovers = 0
        self.recoveries = 0
        #: Steering rules dropped by the expiry worker.
        self.rules_expired = 0
        device.add_pf_listener(on_failure=self._on_pf_failure,
                               on_recovery=self._on_pf_recovery)

    def dst_mac(self) -> str:
        return OctoFirmware.MAC

    def steer_rx(self, flow: Flow, core: Core,
                 immediate: bool = False) -> None:
        new_queue = self.rx_queue_for_core(core)
        pf_id = new_queue.pf.pf_id
        firmware: OctoFirmware = self.device.firmware
        # The flow's current queue may live on ANY PF's ARFS table (the
        # whole point of migration is that the PF changes).
        current_pf = firmware.mpfs.current_pf(flow)
        old_queue = (firmware.arfs[current_pf].lookup(flow)
                     if current_pf is not None else None)

        def apply():
            now = self.env.now
            firmware.arfs_update(pf_id, flow, new_queue, now=now)
            firmware.ioctorfs_update(flow, pf_id, now=now)

        if immediate or old_queue is None:
            apply()
            self.steering_updates += 1
        else:
            self._apply_after(self._drain_delay_ns(old_queue), apply)

    # ----------------------------------------------------- queue homing

    def _pf_for_core(self, core: Core) -> PhysicalFunction:
        """The PF serving ``core``: its socket's PF when alive, else the
        lowest-numbered surviving PF (nonuniform, but functional)."""
        local = self.device.pf_local_to(core.node_id)
        if local is not None and local.alive:
            return local
        fallback = self._fallback_pf()
        if fallback is None:
            raise DeviceGoneError(
                f"octoNIC: no surviving PF to serve core {core.core_id}")
        return fallback

    def _fallback_pf(self, exclude: Optional[PhysicalFunction] = None) -> (
            Optional[PhysicalFunction]):
        for pf in self.device.pfs:
            if pf.alive and pf is not exclude:
                return pf
        return None

    def _register_defaults(self) -> None:
        """(Re-)register each surviving PF's default queue list with the
        firmware; dead PFs are left with an empty list."""
        firmware = self.device.firmware
        for pf in self.device.pfs:
            local_rx = [q for q in self.queues.rx
                        if q.pf is pf] if pf.alive else []
            firmware.register_default_queues(pf.pf_id, local_rx)

    # ------------------------------------------------------- PF failover

    def _on_pf_failure(self, pf: PhysicalFunction) -> None:
        """Device callback: ``pf`` was surprise-removed.

        Queue re-homing and default-queue registration are immediate (the
        hot-unplug handler); the per-flow rule re-steer is deferred until
        the dead PF's queues drain, preserving §4.2's no-reorder rule.
        """
        firmware: OctoFirmware = self.device.firmware
        fallback = self._fallback_pf(exclude=pf)
        if fallback is None:
            self._trace("failover.dead_netdev",
                        f"pf{pf.pf_id} was the last PF; netdev down")
            return
        moved_rx = [q for q in self.queues.rx if q.pf is pf]
        moved_tx = [q for q in self.queues.tx if q.pf is pf]
        for queue in moved_rx + moved_tx:
            queue.pf = fallback
        self._register_defaults()

        arfs_rules = firmware.arfs[pf.pf_id].snapshot()
        flows = firmware.mpfs.flows_on_pf(pf.pf_id)
        drain = max((self._drain_delay_ns(q) for q in moved_rx), default=0)

        def apply():
            now = self.env.now
            for flow, queue in arfs_rules:
                firmware.arfs_remove(pf.pf_id, flow)
                firmware.arfs_update(fallback.pf_id, flow, queue, now=now)
            for flow in flows:
                firmware.ioctorfs_update(flow, fallback.pf_id, now=now)
            self.failovers += 1
            self._trace("failover.applied",
                        f"pf{pf.pf_id}->pf{fallback.pf_id} "
                        f"flows={len(flows)} arfs={len(arfs_rules)}")

        self._trace("failover.begin",
                    f"pf{pf.pf_id}->pf{fallback.pf_id} "
                    f"queues={len(moved_rx) + len(moved_tx)} "
                    f"drain_ns={drain}")
        self._apply_after(drain, apply)

    def _on_pf_recovery(self, pf: PhysicalFunction) -> None:
        """Device callback: ``pf`` came back.  Re-home its socket's
        queues and re-steer their flows, again after a drain."""
        firmware: OctoFirmware = self.device.firmware
        back_rx = [q for q in self.queues.rx
                   if q.core.node_id == pf.attach_node and q.pf is not pf]
        back_tx = [q for q in self.queues.tx
                   if q.core.node_id == pf.attach_node and q.pf is not pf]
        for queue in back_rx + back_tx:
            queue.pf = pf
        self._register_defaults()

        # Rules whose queue just moved home: re-point them to the
        # recovered PF's tables once the interim queue drains.
        moved_queues = set(id(q) for q in back_rx)
        resteer = []
        for other_id in range(firmware.num_pfs):
            if other_id == pf.pf_id:
                continue
            for flow, queue in firmware.arfs[other_id].snapshot():
                if id(queue) in moved_queues:
                    resteer.append((other_id, flow, queue))
        drain = max((self._drain_delay_ns(q) for q in back_rx), default=0)

        def apply():
            now = self.env.now
            for old_pf_id, flow, queue in resteer:
                firmware.arfs_remove(old_pf_id, flow)
                firmware.arfs_update(pf.pf_id, flow, queue, now=now)
                firmware.ioctorfs_update(flow, pf.pf_id, now=now)
            self.recoveries += 1
            self._trace("recovery.applied",
                        f"pf{pf.pf_id} flows={len(resteer)}")

        self._trace("recovery.begin",
                    f"pf{pf.pf_id} queues={len(back_rx) + len(back_tx)} "
                    f"drain_ns={drain}")
        self._apply_after(drain, apply)

    def _trace(self, event: str, detail: str) -> None:
        self.machine.tracer.emit(self.env.now, self.name, event, detail)

    # --------------------------------------------------------- rule expiry

    def start_expiry_worker(self, period_ns: int = 100_000_000,
                            idle_ns: int = RULE_IDLE_NS) -> None:
        """Start the periodic kernel worker that deletes expired rules
        from the driver tables and the device (§4.2)."""
        if self._expiry_process is not None:
            raise RuntimeError("expiry worker already running")

        firmware: OctoFirmware = self.device.firmware

        def worker():
            while True:
                yield self.env.timeout(period_ns)
                now = self.env.now
                expired = set(firmware.expire_idle(now, idle_ns))
                for pf_id in range(firmware.num_pfs):
                    expired.update(
                        firmware.arfs[pf_id].expire_idle(now, idle_ns))
                self.rules_expired += len(expired)

        self._expiry_process = self.env.process(worker(),
                                                name="octo-expiry")
