"""Socket-to-socket interconnect (QPI/UPI) models."""

from repro.interconnect.link import Interconnect, InterconnectLink

__all__ = ["Interconnect", "InterconnectLink"]
