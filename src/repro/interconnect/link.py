"""CPU interconnect (QPI/UPI) links.

A socket-to-socket interconnect is modelled as a pair of directional
:class:`~repro.sim.resources.BandwidthServer` channels plus a fixed crossing
latency.  Congestion is emergent: when STREAM antagonists saturate a
direction, every remote DMA or remote memory access that crosses it sees the
server's queueing delay, which is exactly the effect §5.2 of the paper
measures.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.sim.engine import Environment
from repro.sim.resources import BandwidthServer, RateEstimator

#: Crossing latency grows as 1 + BETA * u / (1 - u) with utilisation u,
#: capped per-spec (an M/M/1-style waiting-time approximation for the
#: link's flit arbitration).
_BETA = 0.6


class InterconnectLink:
    """One directional aggregate channel between two sockets.

    Real machines have 2 QPI/UPI links between sockets; traffic is striped
    across them, so we aggregate them into a single byte server per
    direction with the summed bandwidth.
    """

    def __init__(self, env: Environment, src_node: int, dst_node: int,
                 bytes_per_sec: float, crossing_latency_ns: int,
                 max_latency_inflation: float = 12.0):
        self.env = env
        self.src_node = src_node
        self.dst_node = dst_node
        self.crossing_latency_ns = int(crossing_latency_ns)
        self.max_latency_inflation = float(max_latency_inflation)
        self.server = BandwidthServer(
            env, bytes_per_sec, name=f"qpi{src_node}->{dst_node}")
        self.estimator = RateEstimator(env, bytes_per_sec)
        self._base_bytes_per_sec = float(bytes_per_sec)
        self.throttle_factor = 1.0

    # -------------------------------------------------------- throttling

    def throttle(self, factor: float) -> None:
        """Clamp the link to ``factor`` of its rated bandwidth (thermal /
        fault throttling).  Crossings also see the matching latency
        inflation because the estimator's capacity shrinks with it."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"throttle factor must be in (0, 1], "
                             f"got {factor}")
        self.throttle_factor = float(factor)
        rate = self._base_bytes_per_sec * factor
        self.server.set_rate(rate)
        self.estimator.bytes_per_sec = rate

    def unthrottle(self) -> None:
        self.throttle(1.0)

    @property
    def is_throttled(self) -> bool:
        return self.throttle_factor < 1.0

    def load_factor(self) -> float:
        """Latency inflation multiplier for crossings (>= 1, capped)."""
        u = self.estimator.utilization()
        return min(self.max_latency_inflation,
                   1.0 + _BETA * u / max(1e-6, 1.0 - u))

    def loaded_crossing_ns(self) -> int:
        # load_factor() inlined (hot path; identical math — the
        # conditional cap equals min() bit-for-bit).
        u = self.estimator.utilization()
        inflation = 1.0 + _BETA * u / max(1e-6, 1.0 - u)
        if inflation > self.max_latency_inflation:
            inflation = self.max_latency_inflation
        return int(self.crossing_latency_ns * inflation)

    def traverse(self, nbytes: int) -> int:
        """Charge a transfer; return its total delay (latency + queue +
        service) in ns."""
        u = self.estimator.update_utilization(nbytes)
        inflation = 1.0 + _BETA * u / max(1e-6, 1.0 - u)
        if inflation > self.max_latency_inflation:
            inflation = self.max_latency_inflation
        return (int(self.crossing_latency_ns * inflation)
                + self.server.account(nbytes))

    def probe_delay(self, nbytes: int = 64) -> int:
        """Delay a transfer *would* see, without charging bandwidth.

        Used for latency estimates (e.g. deciding whether congestion makes
        remote placement worse) without perturbing the measurement.
        """
        return (self.crossing_latency_ns + self.server.queueing_delay()
                + self.server.service_time(nbytes))

    def utilization(self, since: int = 0) -> float:
        return self.server.utilization(since)


class Interconnect:
    """The full-socket interconnect: directional links between node pairs."""

    def __init__(self, env: Environment, num_nodes: int,
                 bytes_per_sec_per_direction: float,
                 crossing_latency_ns: int,
                 max_latency_inflation: float = 12.0):
        if num_nodes < 1:
            raise ValueError(f"need at least one node, got {num_nodes}")
        self.env = env
        self.num_nodes = num_nodes
        self._links: Dict[Tuple[int, int], InterconnectLink] = {}
        for src in range(num_nodes):
            for dst in range(num_nodes):
                if src != dst:
                    self._links[(src, dst)] = InterconnectLink(
                        env, src, dst, bytes_per_sec_per_direction,
                        crossing_latency_ns, max_latency_inflation)

    def link(self, src_node: int, dst_node: int) -> InterconnectLink:
        try:
            return self._links[(src_node, dst_node)]
        except KeyError:
            raise KeyError(
                f"no interconnect link {src_node}->{dst_node} "
                f"(same node, or node out of range)") from None

    def traverse(self, src_node: int, dst_node: int, nbytes: int) -> int:
        """Charge a crossing src->dst; 0 ns if src == dst."""
        if src_node == dst_node:
            return 0
        return self.link(src_node, dst_node).traverse(nbytes)

    def loaded_round_trip_ns(self, a: int, b: int) -> int:
        """Congestion-inflated latency of one a->b->a line round trip."""
        if a == b:
            return 0
        links = self._links
        try:
            return (links[(a, b)].loaded_crossing_ns()
                    + links[(b, a)].loaded_crossing_ns())
        except KeyError:
            self.link(a, b)          # re-raise with the friendly message
            raise

    def round_trip(self, src_node: int, dst_node: int,
                   request_bytes: int, response_bytes: int) -> int:
        """Charge a request/response pair (e.g. a remote cache-line fill:
        small request out, data back)."""
        if src_node == dst_node:
            return 0
        links = self._links
        try:
            out = links[(src_node, dst_node)].traverse(request_bytes)
            back = links[(dst_node, src_node)].traverse(response_bytes)
        except KeyError:
            self.link(src_node, dst_node)
            self.link(dst_node, src_node)
            raise
        return out + back

    def links(self):
        return list(self._links.values())
