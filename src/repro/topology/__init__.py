"""Machine topology: specs, presets and the composed hardware substrate."""

from repro.topology.constants import (
    CACHELINE,
    GB,
    KB,
    MB,
    MTU,
    TSO_SEGMENT,
    CpuSpec,
    InterconnectSpec,
    MachineSpec,
    MemorySpec,
    PcieSpec,
    SoftwareCosts,
    dell_r730_spec,
    dell_skylake_spec,
)
from repro.topology.machine import Core, Machine, Node


def dell_r730(seed: int = 0) -> Machine:
    """Build the paper's networking testbed server."""
    return Machine(dell_r730_spec(), seed=seed)


def dell_skylake(seed: int = 0) -> Machine:
    """Build the paper's NVMe testbed server."""
    return Machine(dell_skylake_spec(), seed=seed)


__all__ = [
    "CACHELINE",
    "Core",
    "CpuSpec",
    "GB",
    "InterconnectSpec",
    "KB",
    "MB",
    "MTU",
    "Machine",
    "MachineSpec",
    "MemorySpec",
    "Node",
    "PcieSpec",
    "SoftwareCosts",
    "TSO_SEGMENT",
    "dell_r730",
    "dell_r730_spec",
    "dell_skylake",
    "dell_skylake_spec",
]
