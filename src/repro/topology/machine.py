"""Machine topology: nodes, cores, and the composed hardware substrate.

A :class:`Machine` owns the simulation environment plus every hardware
component: per-node LLC and DRAM controller, the socket interconnect, and
the :class:`~repro.memory.system.MemorySystem` router.  I/O devices attach
to it through the PCIe fabric (``repro.pcie``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.interconnect.link import Interconnect
from repro.memory.dram import DramController
from repro.memory.llc import LastLevelCache
from repro.memory.region import Region
from repro.memory.system import MemorySystem
from repro.sim.engine import Environment
from repro.sim.resources import Resource
from repro.sim.rng import SimRandom
from repro.sim.tracing import Tracer
from repro.topology.constants import MachineSpec


class Core:
    """One CPU core: a capacity-1 resource with busy-time accounting."""

    def __init__(self, env: Environment, core_id: int, node_id: int):
        self.env = env
        self.core_id = core_id
        self.node_id = node_id
        self.resource = Resource(env, capacity=1)
        self._busy_ns = 0
        self._window_start = 0
        self._window_busy = 0

    def charge(self, ns: int) -> int:
        """Account ``ns`` of busy time; returns ns for yield convenience."""
        if ns < 0:
            raise ValueError(f"negative CPU charge {ns}")
        self._busy_ns += ns
        self._window_busy += ns
        return ns

    @property
    def busy_ns(self) -> int:
        return self._busy_ns

    def reset_window(self) -> None:
        self._window_start = self.env.now
        self._window_busy = 0

    @property
    def window_busy_ns(self) -> int:
        """Busy ns charged since the last window reset.  The adaptive
        runners divide by their own (train-aligned) elapsed time instead
        of ``env.now``, so charge-ahead trains do not skew utilisation."""
        return self._window_busy

    def window_utilization(self) -> float:
        elapsed = self.env.now - self._window_start
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._window_busy / elapsed)

    def __repr__(self) -> str:
        return f"<Core {self.core_id} node={self.node_id}>"


class Node:
    """A NUMA node: cores + LLC + local DRAM."""

    def __init__(self, node_id: int, cores: List[Core],
                 llc: LastLevelCache, dram: DramController):
        self.node_id = node_id
        self.cores = cores
        self.llc = llc
        self.dram = dram

    def __repr__(self) -> str:
        return f"<Node {self.node_id} cores={len(self.cores)}>"


class Machine:
    """The composed server."""

    def __init__(self, spec: MachineSpec, seed: int = 0,
                 tracer: Optional[Tracer] = None,
                 env: Optional[Environment] = None):
        self.spec = spec
        # Client/server experiments share one Environment across machines.
        self.env = env if env is not None else Environment()
        self.rng = SimRandom(seed, name=spec.name)
        self.tracer = tracer or Tracer(enabled=False)

        self.interconnect = Interconnect(
            self.env, spec.num_nodes,
            spec.interconnect.bytes_per_sec_per_direction,
            spec.interconnect.crossing_latency_ns,
            spec.interconnect.max_latency_inflation)

        self.nodes: List[Node] = []
        self.cores: List[Core] = []
        llcs, drams = [], []
        for node_id in range(spec.num_nodes):
            llc = LastLevelCache(node_id, spec.cpu.llc_bytes,
                                 spec.cpu.ddio_llc_fraction)
            dram = DramController(self.env, node_id,
                                  spec.memory.bytes_per_sec,
                                  spec.memory.miss_latency_ns)
            cores = [Core(self.env, node_id * spec.cpu.cores + i, node_id)
                     for i in range(spec.cpu.cores)]
            self.nodes.append(Node(node_id, cores, llc, dram))
            self.cores.extend(cores)
            llcs.append(llc)
            drams.append(dram)

        self.memory = MemorySystem(self.env, spec, llcs, drams,
                                   self.interconnect)

    # ------------------------------------------------------------ helpers

    @property
    def now(self) -> int:
        return self.env.now

    def core(self, core_id: int) -> Core:
        return self.cores[core_id]

    def node_of_core(self, core_id: int) -> int:
        return self.cores[core_id].node_id

    def cores_on_node(self, node_id: int) -> List[Core]:
        return self.nodes[node_id].cores

    def alloc_region(self, name: str, node: int, size: int,
                     non_temporal: bool = False) -> Region:
        """Allocate a region homed on ``node`` (the NUMA-local policy the
        kernel applies to ring/packet buffers, §2.3)."""
        if not 0 <= node < self.spec.num_nodes:
            raise ValueError(f"node {node} out of range for "
                             f"{self.spec.num_nodes}-node machine")
        return Region(name=name, home_node=node, size=size,
                      non_temporal=non_temporal)

    def reset_measurement_windows(self) -> None:
        """Start a fresh measurement window on every counter the
        experiments report (DRAM bandwidth, link utilisation, core
        utilisation)."""
        self.memory.reset_windows()
        for core in self.cores:
            core.reset_window()
        for link in self.interconnect.links():
            link.server.reset_window()

    def __repr__(self) -> str:
        return (f"<Machine {self.spec.name} nodes={self.spec.num_nodes} "
                f"cores={len(self.cores)} t={self.env.now}ns>")
