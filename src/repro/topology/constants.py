"""Calibration constants for the simulated machines.

This module is the **only** place where hardware and software cost numbers
live.  Every experiment runs against the same constants; nothing is tuned
per-figure.  Hardware numbers come from the paper's testbed description
(§5 "Experimental setup") and public datasheets; software per-operation
costs are calibrated once against the absolute numbers the paper reports
(e.g. pktgen's 4.1 Mpps local / 3.08 Mpps remote single-core rates, §5.1.1,
whose difference the authors attribute to one ~80 ns LLC miss per packet).

Units: time is ns, bandwidth is bytes/sec, sizes are bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import CACHELINE, GB, KB, MB, MTU, TSO_SEGMENT

__all__ = [
    "CACHELINE", "GB", "KB", "MB", "MTU", "TSO_SEGMENT",
    "CpuSpec", "MemorySpec", "InterconnectSpec", "PcieSpec",
    "SoftwareCosts", "MachineSpec", "dell_r730_spec", "dell_skylake_spec",
]


@dataclass(frozen=True)
class CpuSpec:
    """One socket's worth of CPU."""

    cores: int
    ghz: float
    llc_bytes: int
    #: DDIO may allocate into only a slice of the LLC (2 ways of 20 on
    #: real Intel parts, here expressed as a fraction).
    ddio_llc_fraction: float = 0.10


@dataclass(frozen=True)
class MemorySpec:
    """One node's DRAM subsystem."""

    bytes_per_sec: float          # achievable node DRAM bandwidth
    capacity_bytes: int
    #: Extra latency of an LLC miss served by local DRAM, over an LLC hit.
    #: §5.1.1: "Reading this entry from memory costs about 80 ns, which is
    #: essentially the delta between the per-packet costs."
    miss_latency_ns: int = 80


@dataclass(frozen=True)
class InterconnectSpec:
    """Socket interconnect (QPI for Broadwell, UPI for Skylake)."""

    bytes_per_sec_per_direction: float
    crossing_latency_ns: int = 70  # one-way, per crossing
    #: Cap on congestion-driven latency inflation.  UPI's arbitration
    #: degrades more gracefully than QPI's, hence the lower Skylake cap.
    max_latency_inflation: float = 20.0


@dataclass(frozen=True)
class PcieSpec:
    """A PCIe attachment point."""

    gen: int = 3
    lanes: int = 16
    #: Effective payload bytes/sec per lane (PCIe gen3: 8 GT/s, 128b/130b,
    #: ~85% TLP efficiency => ~0.85 GB/s/lane).
    bytes_per_sec_per_lane: float = 0.85e9
    round_trip_ns: int = 400      # doorbell-to-DMA-start round trip


@dataclass(frozen=True)
class SoftwareCosts:
    """Per-operation CPU costs of the (simulated) Linux 4.14 I/O stack.

    Calibrated once against the paper's single-core absolute numbers:

    * ``pktgen_pkt_ns = 244``: 1e9/244 = 4.1 Mpps, the paper's local rate.
      The remote rate then *emerges* as 1e9/(244+80) = 3.09 Mpps from the
      completion-read LLC miss — matching the paper's 3.08 Mpps.
    * TCP Rx: 260 ns/packet softirq+TCP cost plus a 0.13 ns/B copy gives
      ~23 Gb/s local single-core at 64 KB messages (paper: ~23) and, with
      the emergent remote penalties, ~18.5 Gb/s remote (ratio ~1.26).
    * TCP Tx: a 0.9 us per-64KB-TSO-segment cost plus the same copy rate
      gives ~47 Gb/s for both placements (paper: both ~47, Fig 7).
    """

    #: Cost of one socket-API round (syscall entry/exit, fd work).
    syscall_ns: int = 450
    #: Per-packet receive-side protocol cost (driver + softirq + TCP).
    rx_pkt_ns: int = 260
    #: Per-TSO-segment transmit-side cost (qdisc + TCP + doorbell).
    tx_segment_ns: int = 900
    #: Per-packet transmit cost when TSO is off (e.g. small sends).
    tx_pkt_ns: int = 260
    #: memcpy throughput when source and destination are cache-resident.
    copy_ns_per_byte: float = 0.13
    #: Extra stall per cache line streamed from local DRAM (prefetchers
    #: hide most of the miss; ~2.5 ns/line residual).
    dram_stream_stall_ns_per_line: float = 2.5
    #: pktgen's per-packet cost (descriptor write, doorbell amortised,
    #: completion read *hit*); misses are added by the memory system.
    pktgen_pkt_ns: int = 244
    #: Interrupt entry + NAPI poll schedule cost.
    irq_ns: int = 900
    #: Waking a blocked thread (scheduler enqueue + context switch).
    wakeup_ns: int = 1100
    #: UDP per-datagram stack cost (sockperf path).
    udp_pkt_ns: int = 250
    #: memcached per-request CPU outside of networking (parse, hash, LRU).
    memcached_req_ns: int = 2300
    #: ARFS / IOctoRFS rule update cost on the kernel worker.
    steering_update_ns: int = 2000
    #: STREAM kernel instruction cost (caps one thread at ~5.9 GB/s).
    stream_cpu_ns_per_byte: float = 0.17
    #: PageRank per-byte CPU cost over its edge arrays (the kernel is
    #: memory-bound; most of its time is the random-gather misses).
    pagerank_cpu_ns_per_byte: float = 0.05
    #: fio per-request submission/completion CPU cost (io_submit path).
    fio_request_ns: int = 4000


@dataclass(frozen=True)
class MachineSpec:
    """Complete description of a simulated server."""

    name: str
    num_nodes: int
    cpu: CpuSpec
    memory: MemorySpec
    interconnect: InterconnectSpec
    pcie: PcieSpec = field(default_factory=PcieSpec)
    software: SoftwareCosts = field(default_factory=SoftwareCosts)

    def __post_init__(self):
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.cpu.cores


def dell_r730_spec() -> MachineSpec:
    """The paper's networking testbed (§5): Dell PowerEdge R730,
    2x 14-core Xeon E5-2660 v4 (Broadwell) @ 2.0 GHz, 35 MB LLC,
    4x16 GB DDR4-2400 per socket, 2x 9.6 GT/s QPI links."""
    return MachineSpec(
        name="dell-r730-broadwell",
        num_nodes=2,
        cpu=CpuSpec(cores=14, ghz=2.0, llc_bytes=35 * MB),
        # 4 channels DDR4-2400 = 76.8 GB/s peak; ~60 GB/s achievable.
        memory=MemorySpec(bytes_per_sec=60e9, capacity_bytes=64 * GB),
        # 2 QPI links x 9.6 GT/s x 2 B = 38.4 GB/s raw per direction;
        # ~75% protocol efficiency => ~28 GB/s usable.
        interconnect=InterconnectSpec(bytes_per_sec_per_direction=28e9,
                                      crossing_latency_ns=70),
    )


def dell_skylake_spec() -> MachineSpec:
    """The paper's NVMe testbed (§5.4): 2x 24-core Xeon Platinum 8160
    (Skylake), 2x 10.4 GT/s UPI links, 6x8 GB per socket."""
    return MachineSpec(
        name="dell-skylake-8160",
        num_nodes=2,
        cpu=CpuSpec(cores=24, ghz=2.1, llc_bytes=33 * MB),
        # 6 channels DDR4-2666 = 128 GB/s peak; ~100 GB/s achievable.
        memory=MemorySpec(bytes_per_sec=100e9, capacity_bytes=48 * GB),
        # 2 UPI links x 10.4 GT/s x 2 B ~= 41.6 GB/s raw; ~75% usable.
        interconnect=InterconnectSpec(bytes_per_sec_per_direction=31e9,
                                      crossing_latency_ns=65,
                                      max_latency_inflation=5.5),
    )
