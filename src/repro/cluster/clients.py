"""Client fleets: deterministic populations behind the load balancer.

Every connection in the fleet is generated — never stored — from the
master seed: block ``b``'s population is a pure function of
``SimRandom(master_seed, "fleet").child("block-b")``, so any worker
process can regenerate any block it is asked to serve, and the same
master seed yields the same million-connection fleet no matter how the
blocks are sharded across processes.

Per connection the generator draws a Zipf-like request weight (hot
clients ask more), a slow-reader flag, and a churn lifetime; per block
these reduce to the aggregates the server simulation actually consumes
(total/slow weight, per-epoch churn events), which is what keeps a
million connections cheap — the per-connection draws happen once per
block per run, the simulation itself works on block aggregates.

The load curve composes three client behaviours:

* **diurnal**: one compressed "day" over the run — the arrival rate
  swings ``(1-A)..(1+A)`` following a sine, quantized per epoch;
* **churn**: connections die (exponential lifetimes) and are instantly
  replaced by an identical newcomer, so the active count is constant
  and churn is an *event count* the fleet metrics export;
* **incast**: per server per epoch, bursts of ``incast_fanin``
  synchronized arrivals on top of the smooth schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.cluster.spec import FleetSpec
from repro.sim.rng import SimRandom

#: Cap on a single connection's Zipf weight (keeps one pathological
#: draw from dominating a whole block).
MAX_CONN_WEIGHT = 10_000.0


def fleet_rng(master_seed: int) -> SimRandom:
    """The fleet's root stream; everything derives from named children."""
    return SimRandom(master_seed, "fleet")


def server_seed(master_seed: int, server_id: int) -> int:
    """Machine seed for one server's Testbed — a named child of the
    fleet root, so per-server streams are decorrelated and independent
    of which worker process builds them."""
    return fleet_rng(master_seed).child(f"server-{server_id}").seed


@dataclass(frozen=True)
class BlockProfile:
    """One block's population, reduced to simulation aggregates."""

    block_id: int
    connections: int
    #: Sum of per-connection request weights (normalized: mean 1).
    total_weight: float
    #: Weight carried by slow-reader connections.
    slow_weight: float
    #: Largest single connection weight (Zipf skew witness).
    top_weight: float
    #: Churn events (connection replacements) per epoch.
    churn_by_epoch: Tuple[int, ...]


def generate_block(master_seed: int, block_id: int, size: int,
                   spec: FleetSpec) -> BlockProfile:
    """Regenerate block ``block_id``'s population from the master seed."""
    if size <= 0:
        return BlockProfile(block_id, 0, 0.0, 0.0, 0.0,
                            tuple([0] * spec.epochs))
    rng = fleet_rng(master_seed).child(f"block-{block_id}")
    # One batch draw per attribute keeps the stream layout explicit (and
    # replayable): weights, slow flags, churn births, churn lifetimes.
    u_weight = rng.batch(size)
    u_slow = rng.batch(size)
    u_birth = rng.batch(size)
    u_life = rng.batch(size)

    if spec.zipf_s > 0:
        inv_s = 1.0 / spec.zipf_s
        weights = [min((1.0 - u) ** -inv_s, MAX_CONN_WEIGHT)
                   for u in u_weight]
    else:
        weights = [1.0] * size
    scale = size / sum(weights)
    weights = [w * scale for w in weights]

    slow_weight = 0.0
    for u, w in zip(u_slow, weights):
        if u < spec.slow_fraction:
            slow_weight += w

    mean_life = spec.mean_lifetime_ns()
    churn = [0] * spec.epochs
    for ub, ul in zip(u_birth, u_life):
        birth = int(ub * spec.duration_ns)
        # Exponential lifetime; 1-ul is in (0, 1] so log is finite.
        death = birth + int(-mean_life * math.log(1.0 - ul))
        if death < spec.duration_ns:
            churn[spec.epoch_of(death)] += 1

    return BlockProfile(block_id, size, sum(weights), slow_weight,
                        max(weights), tuple(churn))


def diurnal_factor(spec: FleetSpec, t_ns: int) -> float:
    """Rate multiplier at ``t_ns``: one compressed day over the run,
    starting at the trough (1-A), peaking (1+A) mid-run."""
    if spec.diurnal_amplitude == 0.0:
        return 1.0
    phase = 2.0 * math.pi * t_ns / spec.duration_ns
    return 1.0 + spec.diurnal_amplitude * math.sin(phase - math.pi / 2.0)


def incast_schedule(master_seed: int, server_id: int,
                    spec: FleetSpec) -> List[List[Tuple[int, int]]]:
    """Per-epoch ``(t_ns, fanin)`` incast bursts aimed at one server.

    Drawn from the server's own named stream, so the schedule is
    independent of which blocks the LB currently routes there.
    """
    rng = fleet_rng(master_seed).child(f"server-{server_id}") \
        .child("incast")
    schedule: List[List[Tuple[int, int]]] = []
    for start, end in spec.epoch_bounds():
        bursts = []
        for _ in range(spec.incast_per_epoch):
            t = start + int(rng.random() * max(1, end - start - 1))
            bursts.append((t, spec.incast_fanin))
        schedule.append(sorted(bursts))
    return schedule
