"""The process-sharded fleet executor.

One server = one sweep point = one worker process.  The executor reuses
the figure sweeps' persistent :mod:`repro.experiments.sweep` machinery —
the long-lived ``ProcessPoolExecutor``, the dotted-path invocation, the
on-disk code+params cache — but swaps in its own fan-out predicate: a
fleet point is a *whole server simulation* (testbed build, a hundred
thousand regenerated client connections, the full event run), heavy
enough that process fan-out pays off whenever more than one worker is
asked for, including on hosts where the lightweight figure points would
take the serial fallback.

No runtime coordination happens between workers: the LB assignment
timeline, health reactions and arrival schedules are all planned
deterministically from (spec, master_seed), with cross-server coupling
quantized to epoch boundaries (see :mod:`repro.cluster.lb`).  That is
why the merged result — and its fingerprint — is identical for any
``jobs`` value.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.cluster.merge import FleetResult
from repro.cluster.server import run_fleet_server
from repro.cluster.spec import FleetSpec
from repro.experiments.sweep import sweep_map


def fleet_parallel_when(npoints: int, jobs: int) -> bool:
    """Fan out whenever there is anything to share: fleet points are
    heavyweight, so the MIN_PARALLEL_POINTS / cpu-count guards of the
    figure sweeps would only serialize real work (and hide cross-process
    determinism bugs on single-CPU dev hosts)."""
    return jobs > 1 and npoints > 1


def run_fleet(spec: Union[FleetSpec, dict], master_seed: int = 0,
              accuracy: Optional[str] = None,
              jobs: Optional[int] = None,
              cache_dir: Optional[str] = None,
              blame: bool = False) -> FleetResult:
    """Simulate the whole fleet and merge the per-server shards.

    ``blame=True`` ships a transaction-domain blame shard per server
    (merged into ``FleetResult.blame``); opt-in because it changes the
    shard payloads and hence the fleet fingerprint."""
    if isinstance(spec, dict):
        spec = FleetSpec.from_dict(spec)
    points = [dict(server_id=server, spec=spec.to_dict(),
                   master_seed=master_seed, accuracy=accuracy)
              for server in range(spec.servers)]
    if blame:
        for point in points:
            point["blame"] = True
    shards = sweep_map(run_fleet_server, points, jobs=jobs,
                       cache_dir=cache_dir,
                       parallel_when=fleet_parallel_when)
    return FleetResult(spec, master_seed, shards)
