"""The per-server fleet workload: serve a planned arrival stream.

Unlike the closed-loop figure workloads (which hammer as fast as the
host allows), a fleet server services an *open* arrival stream the
client-fleet planner laid out deterministically: requests arrive on a
schedule, queue while the workers are busy, and each transaction's
latency is its completion time minus its **arrival** time — so queueing
tails (incast bursts, diurnal peaks, slow-client holds, failover blips)
emerge from the simulation instead of being modelled directly.

Latencies land in per-epoch :class:`~repro.metrics.collect.LatencyDigest`
shards keyed by the *arrival* epoch, which is what makes a failover blip
attributable to the epoch the requests arrived in once the fleet merge
combines every server's shards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.metrics.collect import LatencyDigest
from repro.nic.packet import Flow
from repro.units import GB
from repro.workloads.base import Workload, measured_meter

#: memcached-style request framing (keys as in Fig 10; values come from
#: the fleet spec — production-small, not the figure's 512 KB).
KEY_BYTES = 256
ACK_BYTES = 64

#: Requests one worker dequeues per service round (epoll-style batch).
FLEET_MAX_BATCH = 32
#: Cap on the extra hold one slow client's transaction may add.
SLOW_HOLD_CAP_NS = 2_000_000
#: Sockets per worker (arrival batches rotate across them).
SOCKETS_PER_WORKER = 4


@dataclass(frozen=True)
class WorkerSegment:
    """One epoch's share of one worker's arrival schedule."""

    epoch: int
    start_ns: int
    end_ns: int
    #: Sorted arrival times (smooth schedule + incast bursts merged).
    arrivals: Tuple[int, ...]
    #: Fraction of transactions from slow-reader connections.
    slow_fraction: float


class FleetServerWorkload(Workload):
    """All worker threads of one fleet server, serving planned arrivals.

    ``dead_ns`` truncates the server: workers stop cold at that instant
    (whole-server death, or a serving-PF loss with no failover path) and
    everything still queued or yet to arrive counts as lost upstream.
    """

    def __init__(self, host, cores, segments_per_worker:
                 List[List[WorkerSegment]], set_fraction: float,
                 value_bytes: int, slow_factor: float, duration_ns: int,
                 dead_ns: Optional[int] = None):
        super().__init__(host, duration_ns)
        if len(cores) != len(segments_per_worker):
            raise ValueError(
                f"{len(cores)} cores for "
                f"{len(segments_per_worker)} worker schedules")
        self.set_fraction = set_fraction
        self.value_bytes = value_bytes
        self.slow_factor = slow_factor
        self.dead_ns = dead_ns
        self.meter = measured_meter(self)
        #: arrival-epoch -> merged latency shard (across this server's
        #: workers; the fleet merge folds these across servers).
        self.epoch_digests: Dict[int, LatencyDigest] = {}
        self.served = 0
        node = cores[0].node_id
        self.heap = host.machine.alloc_region("fleet-heap", node, 1 * GB)
        for i, (core, segments) in enumerate(
                zip(cores, segments_per_worker)):
            self._spawn(f"fleet-{i}", self._worker_body(i, segments), core)

    def _digest(self, epoch: int) -> LatencyDigest:
        digest = self.epoch_digests.get(epoch)
        if digest is None:
            digest = self.epoch_digests[epoch] = LatencyDigest()
        return digest

    def digest(self) -> LatencyDigest:
        """Whole-run digest (all epochs merged)."""
        whole = LatencyDigest()
        for epoch in sorted(self.epoch_digests):
            whole.merge(self.epoch_digests[epoch])
        return whole

    def _dead(self) -> bool:
        return self.dead_ns is not None and self.env.now >= self.dead_ns

    def _worker_body(self, worker_id: int, segments:
                     List[WorkerSegment]):
        def body(thread):
            host = self.host
            node = thread.core.node_id
            machine = host.machine
            costs = machine.spec.software
            socks = [host.stack.open_socket(
                thread, host.driver,
                Flow.make(1000 + worker_id * SOCKETS_PER_WORKER + c),
                app_buffer_bytes=self.value_bytes)
                for c in range(SOCKETS_PER_WORKER)]
            set_accum = 0.0
            slow_accum = 0.0
            sock_i = 0
            #: (arrival_ns, epoch) admitted but not yet serviced —
            #: carried across segment boundaries (backlog from one
            #: epoch drains into the next, as on a real server).
            pending: List[Tuple[int, int]] = []
            for seg in segments:
                arrivals = seg.arrivals
                i = 0
                while i < len(arrivals) or pending:
                    if self._dead():
                        return
                    now = self.env.now
                    while i < len(arrivals) and arrivals[i] <= now:
                        pending.append((arrivals[i], seg.epoch))
                        i += 1
                    if not pending:
                        yield thread.sleep(arrivals[i] - now)
                        continue
                    n = min(len(pending), FLEET_MAX_BATCH)
                    batch = pending[:n]
                    del pending[:n]
                    n_set = 0
                    for _ in range(n):
                        set_accum += self.set_fraction
                        if set_accum >= 1.0:
                            set_accum -= 1.0
                            n_set += 1
                    n_get = n - n_set
                    n_slow = 0
                    for _ in range(n):
                        slow_accum += seg.slow_fraction
                        if slow_accum >= 1.0:
                            slow_accum -= 1.0
                            n_slow += 1
                    sock = socks[sock_i % len(socks)]
                    sock_i += 1
                    cpu = n * costs.memcached_req_ns
                    dev = 0
                    if n_set:
                        rx_cpu, d = host.stack.rx_burst(
                            sock, 1, KEY_BYTES + self.value_bytes,
                            ntrains=n_set)
                        cpu += rx_cpu
                        cpu += n_set * int(self.value_bytes
                                           * costs.copy_ns_per_byte)
                        cpu += machine.memory.cpu_stream_write(
                            node, self.heap, n_set * self.value_bytes)
                        tx_cpu, d2 = host.stack.tx_burst(
                            sock, 1, ACK_BYTES, ntrains=n_set)
                        cpu += tx_cpu
                        dev = max(dev, d, d2)
                    if n_get:
                        rx_cpu, d = host.stack.rx_burst(
                            sock, 1, KEY_BYTES, ntrains=n_get)
                        cpu += rx_cpu
                        cpu += machine.memory.cpu_stream_read(
                            node, self.heap, n_get * self.value_bytes)
                        tx_cpu, d2 = host.stack.tx_burst(
                            sock, 1, self.value_bytes, ntrains=n_get)
                        cpu += tx_cpu
                        dev = max(dev, d, d2)
                    if n_slow:
                        # A slow reader stalls its transaction's
                        # writeback: the hold parks in the device/socket
                        # path, so it extends this batch but a capped
                        # amount — the starvation bound the tests pin.
                        base_txn = max(cpu, dev) // n
                        dev += n_slow * min(
                            int(self.slow_factor * base_txn),
                            SLOW_HOLD_CAP_NS)
                    busy = max(cpu, dev)
                    done_at = now + busy
                    blame = machine.tracer.blame
                    for arrival, epoch in batch:
                        self._digest(epoch).record(done_at - arrival)
                        if blame is not None:
                            # Transaction-domain blame: the time before
                            # the worker picked the request up is queue
                            # wait, the batch's busy span is service —
                            # exactly done_at - arrival, so the fleet's
                            # txn domain conserves like the flow domain.
                            blame.add({"queue.wait": now - arrival,
                                       "app.service": busy},
                                      done_at - arrival, domain="txn")
                    self.served += n
                    if now < self.duration_ns:
                        self.meter.record(n * self.value_bytes, n)
                    yield thread.overlap(cpu, dev)
            self.meter.finish(min(self.env.now, self.duration_ns))
        return body

    def transactions_ktps(self) -> float:
        if self.meter.end_ns is None:
            self.meter.finish(min(self.env.now, self.duration_ns))
        return self.meter.ktps()
