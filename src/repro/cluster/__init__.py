"""Rack-scale fleet simulation: N servers behind a deterministic LB,
process-sharded one server per worker, merged into one fleet view."""

from repro.cluster.executor import fleet_parallel_when, run_fleet
from repro.cluster.merge import FleetResult
from repro.cluster.server import run_fleet_server
from repro.cluster.spec import FLEET_BLOCKS, FleetSpec

__all__ = [
    "FLEET_BLOCKS",
    "FleetSpec",
    "FleetResult",
    "fleet_parallel_when",
    "run_fleet",
    "run_fleet_server",
]
