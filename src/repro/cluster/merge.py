"""The fleet merge: fold per-server shards into one fleet view.

Each worker process ships a plain-JSON dict (digests, counters, obs
values, utilization series).  The merge layer is pure arithmetic over
those dicts — digest merging is bucket-count addition (associative and
order-independent, so the fleet percentiles do not depend on which
worker finished first), obs values land in one
:class:`~repro.obs.registry.MetricsRegistry` under per-server
namespaces (``srv0.`` ...), and the whole result reduces to a canonical
sha256 **fleet fingerprint**: same spec + master seed => same
fingerprint, regardless of ``--jobs``, process scheduling, or cache
hits.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

from repro.cluster.spec import FleetSpec
from repro.metrics.collect import LatencyDigest
from repro.obs.export import to_prometheus
from repro.obs.registry import MetricsRegistry


class FleetResult:
    """Merged view of one fleet run."""

    def __init__(self, spec: FleetSpec, master_seed: int,
                 servers: List[Dict]):
        if len(servers) != spec.servers:
            raise ValueError(f"expected {spec.servers} server results, "
                             f"got {len(servers)}")
        self.spec = spec
        self.master_seed = master_seed
        self.servers = sorted(servers, key=lambda s: s["server"])
        self.digest = LatencyDigest()
        self.epoch_digests: Dict[int, LatencyDigest] = {}
        #: Fleet-wide blame (None unless the shards ran with blame=True):
        #: per-domain digests and tail maps merge by addition, exactly
        #: like the latency digests, so fleet-wide p99 blame is as
        #: order-independent as the fleet percentiles.
        self.blame = None
        for shard in self.servers:
            self.digest.merge(LatencyDigest.from_dict(shard["digest"]))
            for key, data in shard["epoch_digests"].items():
                epoch = int(key)
                merged = self.epoch_digests.setdefault(epoch,
                                                       LatencyDigest())
                merged.merge(LatencyDigest.from_dict(data))
            blame_data = shard.get("blame")
            if blame_data:
                from repro.obs.blame import BlameCollector
                if self.blame is None:
                    self.blame = BlameCollector()
                self.blame.merge(BlameCollector.from_dict(blame_data))

    # ----------------------------------------------------------- counters

    def _total(self, key: str) -> int:
        return sum(shard[key] for shard in self.servers)

    @property
    def planned(self) -> int:
        return self._total("planned")

    @property
    def served(self) -> int:
        return self._total("served")

    @property
    def lost(self) -> int:
        return self._total("lost")

    @property
    def churn(self) -> int:
        return sum(sum(shard["churn_by_epoch"])
                   for shard in self.servers)

    @property
    def ktps(self) -> float:
        return sum(shard["ktps"] for shard in self.servers)

    def dead_servers(self) -> List[int]:
        return [shard["server"] for shard in self.servers
                if shard["died_at"] is not None]

    def percentile(self, p: float) -> int:
        """Fleet-wide latency percentile over every served transaction."""
        return self.digest.percentile(p)

    def blame_report(self, domain: str = "txn") -> Dict:
        """Fleet-wide per-stage blame (queue wait vs service time for
        the transaction domain) over the merged shards."""
        if self.blame is None:
            raise ValueError("fleet ran without blame=True shards")
        from repro.obs.blame import build_report
        return build_report(self.blame, domain=domain)

    def epoch_percentile(self, epoch: int, p: float) -> Optional[int]:
        digest = self.epoch_digests.get(epoch)
        if digest is None or not digest.count:
            return None
        return digest.percentile(p)

    # ------------------------------------------------------- observability

    def registry(self) -> MetricsRegistry:
        """One merged registry: every server's collected obs values under
        its own ``srv<N>`` namespace, plus fleet-level rollups."""
        registry = MetricsRegistry(enabled=True)
        for shard in self.servers:
            registry.absorb(shard["obs"],
                            namespace=f"srv{shard['server']}")
        rollups = {
            "fleet.servers": self.spec.servers,
            "fleet.dead_servers": len(self.dead_servers()),
            "fleet.connections": self.spec.connections,
            "fleet.txn.planned": self.planned,
            "fleet.txn.served": self.served,
            "fleet.txn.lost": self.lost,
            "fleet.conn.churn": self.churn,
            "fleet.ktps": self.ktps,
        }
        if self.digest.count:
            rollups["fleet.latency.p50_ns"] = self.percentile(50)
            rollups["fleet.latency.p99_ns"] = self.percentile(99)
        registry.absorb(rollups)
        return registry

    def prometheus(self) -> str:
        """Per-server ``server=`` labelled exposition blocks plus the
        merged fleet rollups, as one scrape body."""
        parts = []
        for shard in self.servers:
            registry = MetricsRegistry(enabled=True)
            registry.absorb(shard["obs"])
            parts.append(to_prometheus(
                registry, labels={"server": str(shard["server"])}))
        fleet = MetricsRegistry(enabled=True)
        fleet.absorb({name: value
                      for name, value in self.registry().collect().items()
                      if name.startswith("fleet.")})
        parts.append(to_prometheus(fleet))
        return "".join(parts)

    # -------------------------------------------------------- fingerprint

    def fingerprint(self) -> str:
        """Canonical sha256 over everything the fleet run produced.

        The hash covers the sorted per-server shards verbatim (counters,
        digests, obs values, series), so *any* behavioural divergence
        between two runs — different jobs count, resumed from cache,
        re-run months later — shows up as a fingerprint mismatch.
        """
        payload = json.dumps({
            "spec": self.spec.to_dict(),
            "master_seed": self.master_seed,
            "servers": self.servers,
        }, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def summary(self) -> Dict:
        """The headline numbers one row of fig16 reports."""
        out = {
            "servers": self.spec.servers,
            "connections": self.spec.connections,
            "planned": self.planned,
            "served": self.served,
            "lost": self.lost,
            "churn": self.churn,
            "ktps": round(self.ktps, 3),
            "dead_servers": len(self.dead_servers()),
        }
        if self.digest.count:
            out["p50_ns"] = self.percentile(50)
            out["p99_ns"] = self.percentile(99)
        return out
