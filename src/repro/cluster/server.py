"""One fleet server = one sweep point: plan, simulate, ship JSON back.

:func:`run_fleet_server` is the module-level function the fleet executor
fans out across worker processes (picklable by dotted path, JSON
kwargs, JSON result — the same contract every figure point runner
honours, so the sweep executor's disk cache works unchanged).  It

1. **plans** the server's epochs from the spec + master seed alone —
   which blocks the LB routes here each epoch (including blocks
   inherited from servers that died in earlier epochs), each epoch's
   arrival schedule (block aggregates x diurnal curve, plus incast
   bursts), and the death truncation if this server fails;
2. **simulates** a full octoNIC :class:`Testbed` serving that schedule
   (injecting a live PF flap when the spec says this server's serving
   PF flaps and the team driver can ride it out);
3. **ships** per-epoch latency digests, throughput/churn/loss counters,
   the obs registry's collected values and the utilization time series
   as one plain-JSON dict the merge layer folds into the fleet view.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.cluster.lb import blocks_for
from repro.cluster.clients import (diurnal_factor, generate_block,
                                   incast_schedule, server_seed)
from repro.cluster.spec import FleetSpec
from repro.cluster.workload import FleetServerWorkload, WorkerSegment
from repro.core.configurations import Testbed
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.obs.session import ObsSession

#: Drain slack after the arrival window, as a divisor of the duration.
SLACK_DIVISOR = 3

#: The PF that serves an "ioctopus" fleet workload (remote-node
#: placement steered through the node-local PF, as in fig_failover).
SERVING_PF = 1


class ServerPlan:
    """Everything one server's simulation consumes, planned up front."""

    def __init__(self, spec: FleetSpec, server_id: int, master_seed: int):
        self.death = spec.death_ns(server_id)
        sizes = spec.block_sizes()
        incasts = incast_schedule(master_seed, server_id, spec)
        profiles: Dict[int, object] = {}
        self.segments: List[List[WorkerSegment]] = [
            [] for _ in range(spec.workers)]
        self.planned = 0
        self.conns_by_epoch: List[int] = []
        self.churn_by_epoch: List[int] = []
        self.slow_by_epoch: List[float] = []
        for e, (start, end) in enumerate(spec.epoch_bounds()):
            blocks = blocks_for(spec, server_id, e)
            conns = 0
            churn = 0
            slow_w = 0.0
            total_w = 0.0
            for b in blocks:
                if sizes[b] == 0:
                    continue
                profile = profiles.get(b)
                if profile is None:
                    profile = profiles[b] = generate_block(
                        master_seed, b, sizes[b], spec)
                conns += profile.connections
                churn += profile.churn_by_epoch[e]
                slow_w += profile.slow_weight
                total_w += profile.total_weight
            self.conns_by_epoch.append(conns)
            self.churn_by_epoch.append(churn)
            slow_fraction = slow_w / total_w if total_w else 0.0
            self.slow_by_epoch.append(slow_fraction)
            rate_tps = (conns * spec.conn_rate_tps
                        * diurnal_factor(spec, (start + end) // 2))
            count = int(rate_tps * (end - start) / 1e9)
            span = end - start
            smooth = [start + ((2 * j + 1) * span) // (2 * count)
                      for j in range(count)]
            bursts = incasts[e] if blocks else []
            self.planned += count + sum(fanin for _, fanin in bursts)
            # Deal the smooth schedule round-robin across workers and
            # each incast burst wholly to one worker (a burst hammers
            # one accept queue — that is what makes it an incast).
            for w in range(spec.workers):
                arrivals = smooth[w::spec.workers]
                for burst_i, (t, fanin) in enumerate(bursts):
                    if burst_i % spec.workers == w:
                        arrivals.extend([t] * fanin)
                arrivals.sort()
                self.segments[w].append(WorkerSegment(
                    e, start, end, tuple(arrivals), slow_fraction))


def run_fleet_server(server_id: int, spec: Union[FleetSpec, Dict],
                     master_seed: int = 0,
                     accuracy: Optional[str] = None,
                     blame: bool = False) -> Dict:
    """Simulate one fleet server end to end; plain-JSON result.

    ``blame=True`` additionally ships the server's transaction-domain
    latency-blame shard (queue wait vs service time) for the fleet-wide
    merge.  It is opt-in because the extra ``blame`` key changes the
    shard payload — and therefore the fleet fingerprint."""
    if isinstance(spec, dict):
        spec = FleetSpec.from_dict(spec)
    plan = ServerPlan(spec, server_id, master_seed)
    testbed = Testbed(spec.config,
                      seed=server_seed(master_seed, server_id),
                      accuracy=accuracy)
    host = testbed.server
    cores = host.machine.cores_on_node(
        testbed.server_workload_node)[:spec.workers]
    workload = FleetServerWorkload(
        host, cores, plan.segments, spec.set_fraction, spec.value_bytes,
        spec.slow_factor, spec.duration_ns, dead_ns=plan.death)

    flap = spec.flap_for(server_id)
    failover_events = 0
    if flap is not None:
        fault_plan = FaultPlan()
        fault_plan.add(FaultSpec("pf_down", flap[0], flap[1],
                                 pf_id=SERVING_PF))
        injector = FaultInjector(testbed.env, fault_plan, device=host.nic,
                                 wire=testbed.wire, machine=host.machine,
                                 rng=host.machine.rng)
        injector.start()

    obs = ObsSession(enabled=True, blame=blame)
    obs.attach(testbed, horizon_ns=spec.duration_ns)

    horizon = spec.duration_ns + spec.duration_ns // SLACK_DIVISOR
    if plan.death is not None:
        horizon = min(horizon, plan.death + 1)
    testbed.run(horizon)
    if flap is not None:
        failover_events = len(injector.events)

    served = workload.served
    digest = workload.digest()
    shard = {
        "server": server_id,
        "config": spec.config,
        "died_at": plan.death,
        "failover_events": failover_events,
        "conns_by_epoch": plan.conns_by_epoch,
        "churn_by_epoch": plan.churn_by_epoch,
        "slow_by_epoch": [round(s, 6) for s in plan.slow_by_epoch],
        "planned": plan.planned,
        "served": served,
        "lost": plan.planned - served,
        "ktps": round(workload.transactions_ktps(), 3),
        "epoch_digests": {str(e): d.to_dict()
                          for e, d in
                          sorted(workload.epoch_digests.items())},
        "digest": digest.to_dict(),
        "obs": obs.collect(include_detail=False),
        "series": ({name: [[t, round(v, 6)] for t, v in points]
                    for name, points in
                    obs.sampler.counter_tracks().items()}
                   if obs.sampler is not None else {}),
    }
    if blame:
        shard["blame"] = obs.blame.to_dict()
    return shard
