"""The fleet specification: one value object describing a rack-scale run.

A :class:`FleetSpec` is everything the fleet simulator needs to plan a
run *deterministically up front*: how many dual-socket servers stand
behind the load balancer, how many client connections the fleet carries,
the client-behaviour knobs (request rate, Zipf skew, churn, diurnal
curve, slow clients, incast bursts), and the optional failure scenario
(a whole-server death or a serving-PF flap).

Because the spec plus a master seed fully determine the run — the LB
assignment timeline, every block's client population, every server's
arrival schedule — each server can be simulated in its own worker
process with **no runtime coordination**: cross-server coupling (LB
reaction to a death) is quantized to epoch boundaries, which is the
bounded lag that makes the fleet embarrassingly parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict, List, Optional, Tuple

from repro.core.configurations import CONFIGS

#: Fleet-wide connection blocks the load balancer assigns to servers.
#: Connections are organised in blocks (not individually) so any worker
#: can regenerate any block's client population from the master seed.
FLEET_BLOCKS = 512


@dataclass(frozen=True)
class FleetSpec:
    """Everything one fleet run is, as a frozen JSON-able value object."""

    servers: int = 8
    #: Fleet-wide simulated client connections (split over FLEET_BLOCKS).
    connections: int = 1_048_576
    #: Server-side arrangement, per Testbed: "ioctopus" / "remote" / "local".
    config: str = "ioctopus"
    duration_ns: int = 10_000_000
    #: LB health/diurnal quantum: the LB re-reads server health and the
    #: diurnal curve only at epoch boundaries (the bounded lag).
    epochs: int = 8
    #: memcached-style worker cores per server.
    workers: int = 2

    # ---- client-fleet behaviour ----
    #: Mean requests/sec per connection (closed-form arrival rate).
    conn_rate_tps: float = 2.0
    set_fraction: float = 0.1
    value_bytes: int = 2048
    #: Zipf-like skew of per-connection request weight (0 = uniform).
    zipf_s: float = 1.1
    #: Mean connection lifetime for churn accounting (0 = duration / 2).
    churn_lifetime_ns: int = 0
    #: Diurnal load curve amplitude: rate swings (1-A)..(1+A) over the
    #: run (one compressed "day").
    diurnal_amplitude: float = 0.3
    #: Fraction of connections that are slow readers.
    slow_fraction: float = 0.02
    #: Extra service hold a slow client's transaction costs, as a
    #: multiple of the base per-transaction service time.
    slow_factor: float = 4.0
    #: Synchronised-arrival bursts per server per epoch, and their fan-in.
    incast_per_epoch: int = 1
    incast_fanin: int = 64

    # ---- failure scenario ----
    #: (server_id, at_ns): that server dies outright at at_ns.
    server_down: Optional[Tuple[int, int]] = None
    #: (server_id, at_ns, duration_ns): the *serving* PF of that server
    #: is surprise-removed for duration_ns.  Under "ioctopus" the team
    #: driver fails the queues over to the surviving PF (the server
    #: degrades to remote-level DMA but stays up); under standard
    #: firmware losing the serving PF kills the netdev — the server is
    #: dead to the LB.
    pf_flap: Optional[Tuple[int, int, int]] = None

    def __post_init__(self):
        if self.servers < 1:
            raise ValueError(f"servers must be >= 1, got {self.servers}")
        if self.connections < 1:
            raise ValueError(
                f"connections must be >= 1, got {self.connections}")
        if self.config not in CONFIGS:
            raise ValueError(f"config must be one of {CONFIGS}, "
                             f"got {self.config!r}")
        if self.duration_ns < 1:
            raise ValueError(
                f"duration_ns must be >= 1, got {self.duration_ns}")
        if not 1 <= self.epochs <= self.duration_ns:
            raise ValueError(f"epochs out of range: {self.epochs}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.conn_rate_tps <= 0:
            raise ValueError(
                f"conn_rate_tps must be > 0, got {self.conn_rate_tps}")
        if not 0.0 <= self.set_fraction <= 1.0:
            raise ValueError(
                f"set_fraction out of [0,1]: {self.set_fraction}")
        if self.zipf_s < 0:
            raise ValueError(f"zipf_s must be >= 0, got {self.zipf_s}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1), "
                             f"got {self.diurnal_amplitude}")
        if not 0.0 <= self.slow_fraction <= 1.0:
            raise ValueError(
                f"slow_fraction out of [0,1]: {self.slow_fraction}")
        if self.slow_factor < 0:
            raise ValueError(
                f"slow_factor must be >= 0, got {self.slow_factor}")
        if self.incast_per_epoch < 0 or self.incast_fanin < 0:
            raise ValueError("incast knobs must be >= 0")
        for name, event in (("server_down", self.server_down),
                            ("pf_flap", self.pf_flap)):
            if event is None:
                continue
            if not 0 <= event[0] < self.servers:
                raise ValueError(
                    f"{name}: server {event[0]} out of range")
            if not 0 <= event[1] < self.duration_ns:
                raise ValueError(
                    f"{name}: at_ns {event[1]} outside the run")
        if self.pf_flap is not None and self.pf_flap[2] < 1:
            raise ValueError("pf_flap duration_ns must be >= 1")

    # ---------------------------------------------------------- structure

    def epoch_bounds(self) -> List[Tuple[int, int]]:
        """[start_ns, end_ns) of every epoch (equal integer splits)."""
        return [(self.duration_ns * e // self.epochs,
                 self.duration_ns * (e + 1) // self.epochs)
                for e in range(self.epochs)]

    def epoch_of(self, t_ns: int) -> int:
        """Epoch index containing ``t_ns`` (clamped to the run)."""
        if t_ns <= 0:
            return 0
        if t_ns >= self.duration_ns:
            return self.epochs - 1
        # Integer epoch edges are floor(duration*e/epochs), so the naive
        # inverse can be off by one at an edge; nudge to the true bin.
        e = min(self.epochs - 1,
                t_ns * self.epochs // self.duration_ns)
        while e > 0 and t_ns < self.duration_ns * e // self.epochs:
            e -= 1
        while (e < self.epochs - 1
               and t_ns >= self.duration_ns * (e + 1) // self.epochs):
            e += 1
        return e

    def block_sizes(self) -> List[int]:
        """Connections per block (even split, remainder on low blocks)."""
        base, extra = divmod(self.connections, FLEET_BLOCKS)
        return [base + (1 if b < extra else 0) for b in range(FLEET_BLOCKS)]

    def mean_lifetime_ns(self) -> int:
        """Churn: resolved mean connection lifetime."""
        return self.churn_lifetime_ns or max(1, self.duration_ns // 2)

    # ------------------------------------------------------------- health

    def death_ns(self, server_id: int) -> Optional[int]:
        """When ``server_id`` stops serving, or None if it survives.

        ``server_down`` kills unconditionally.  ``pf_flap`` kills only
        under standard firmware (no failover path); the octoNIC's team
        driver rides it out, so under "ioctopus" the flap is injected
        into that server's simulation as a live PF fault instead.
        """
        deaths = []
        if self.server_down is not None and self.server_down[0] == server_id:
            deaths.append(self.server_down[1])
        if (self.pf_flap is not None and self.pf_flap[0] == server_id
                and self.config != "ioctopus"):
            deaths.append(self.pf_flap[1])
        return min(deaths) if deaths else None

    def flap_for(self, server_id: int) -> Optional[Tuple[int, int]]:
        """(at_ns, duration_ns) of a survivable PF flap to inject into
        this server's simulation (ioctopus only; standard firmware
        treats the flap as a death instead — see :meth:`death_ns`)."""
        if (self.config == "ioctopus" and self.pf_flap is not None
                and self.pf_flap[0] == server_id):
            return self.pf_flap[1], self.pf_flap[2]
        return None

    # ------------------------------------------------------ serialization

    def to_dict(self) -> Dict:
        data = asdict(self)
        for key in ("server_down", "pf_flap"):
            if data[key] is not None:
                data[key] = list(data[key])
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "FleetSpec":
        data = dict(data)
        for key in ("server_down", "pf_flap"):
            if data.get(key) is not None:
                data[key] = tuple(data[key])
        return cls(**data)
