"""The simulated L4 load balancer: blocks -> servers, per epoch.

The LB is not an event-driven component — it is a *deterministic
function* of the fleet spec.  Connections live in :data:`FLEET_BLOCKS`
fleet-wide blocks; each block's home server is picked by rendezvous
(highest-random-weight) hashing over the servers alive at the epoch's
start.  Rendezvous hashing gives two properties the fleet needs:

* the assignment is a pure function of (block, alive set) — every
  worker process computes the identical plan with no coordination;
* when a server dies, only *its* blocks move (minimal disruption), and
  they spread evenly over the survivors.

Health is quantized to epochs: a server dying mid-epoch keeps its
blocks until the epoch ends (arrivals in the dead tail are lost — the
LB has not noticed yet), and the reassignment lands at the next epoch
boundary.  That one-epoch reaction lag is the fleet's bounded lag.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.cluster.spec import FLEET_BLOCKS, FleetSpec

_MASK64 = (1 << 64) - 1


def alive_servers(spec: FleetSpec, epoch: int) -> Set[int]:
    """Servers the LB considers alive for ``epoch`` (health quantized:
    a server is dropped starting from the first epoch that begins at or
    after its death)."""
    start = spec.epoch_bounds()[epoch][0]
    alive = set()
    for server in range(spec.servers):
        death = spec.death_ns(server)
        if death is None or death > start:
            alive.add(server)
    return alive


def _weight(block_id: int, server: int) -> int:
    """Rendezvous weight of (block, server) — a stable avalanche mix
    (splitmix64 finalizer).  A linear hash (CRC) must not be used here:
    its weights for adjacent servers are correlated, which funnels a
    dead server's blocks onto one runner-up instead of spreading them."""
    x = (block_id * 0x9E3779B97F4A7C15
         + server * 0xBF58476D1CE4E5B9
         + 0x94D049BB133111EB) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


def home_server(block_id: int, alive: Set[int]) -> int:
    """The alive server with the highest rendezvous weight for the block."""
    if not alive:
        raise ValueError("no servers alive")
    return max(alive, key=lambda server: (_weight(block_id, server), server))


def assignment(spec: FleetSpec, epoch: int) -> Dict[int, int]:
    """block -> server for every block, at ``epoch``."""
    alive = alive_servers(spec, epoch)
    return {block: home_server(block, alive)
            for block in range(FLEET_BLOCKS)}


def blocks_for(spec: FleetSpec, server_id: int, epoch: int) -> List[int]:
    """The blocks ``server_id`` serves during ``epoch`` (sorted)."""
    alive = alive_servers(spec, epoch)
    if server_id not in alive:
        return []
    return [block for block in range(FLEET_BLOCKS)
            if home_server(block, alive) == server_id]


def pick_counts(spec: FleetSpec, epoch: int) -> Dict[int, int]:
    """Connections each server carries during ``epoch`` — the LB's pick
    distribution, which the tests check for balance and for minimal
    movement across a death."""
    sizes = spec.block_sizes()
    counts = {server: 0 for server in alive_servers(spec, epoch)}
    for block, server in assignment(spec, epoch).items():
        counts[server] += sizes[block]
    return counts
