"""Frozen, hashable system configuration: preset + component overrides.

A :class:`SystemConfig` is the declarative answer to "which system am I
simulating": one of the paper's evaluated presets (``local`` /
``remote`` / ``ioctopus``, §5) plus an explicit set of component
overrides against the registry defaults.  It is a frozen dataclass —
hashable, usable as a dict key, JSON round-trippable — and its
:meth:`run_id` is a stable content hash, which is what gives ablation
matrices stable run IDs across processes and sessions.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.components.registry import component_names, default_states

#: The paper's evaluated server arrangements (§5).
PRESETS = ("local", "remote", "ioctopus")


@dataclass(frozen=True)
class SystemConfig:
    """One declarative system under test."""

    #: Server arrangement preset (wiring + firmware + driver choice).
    preset: str = "ioctopus"
    #: Component overrides vs the registry defaults, kept sorted so two
    #: configs with the same content compare and hash equal.
    overrides: Tuple[Tuple[str, bool], ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.preset not in PRESETS:
            raise ValueError(f"preset must be one of {PRESETS}, "
                             f"got {self.preset!r}")
        known = set(component_names())
        seen = set()
        for name, enabled in self.overrides:
            if name not in known:
                raise ValueError(f"unknown component {name!r}; "
                                 f"registered: {sorted(known)}")
            if name in seen:
                raise ValueError(f"duplicate override for {name!r}")
            if not isinstance(enabled, bool):
                raise ValueError(f"override for {name!r} must be a bool, "
                                 f"got {enabled!r}")
            seen.add(name)
        normalized = tuple(sorted(self.overrides))
        object.__setattr__(self, "overrides", normalized)

    # ------------------------------------------------------ construction

    @classmethod
    def for_preset(cls, preset: str,
                   overrides: Optional[Mapping[str, bool]] = None,
                   ) -> "SystemConfig":
        return cls(preset=preset,
                   overrides=tuple((overrides or {}).items()))

    def without(self, *names: str) -> "SystemConfig":
        """This config with ``names`` switched off (leave-one-out)."""
        merged = dict(self.overrides)
        for name in names:
            merged[name] = False
        return SystemConfig(self.preset, tuple(merged.items()))

    def with_override(self, name: str, enabled: bool) -> "SystemConfig":
        merged = dict(self.overrides)
        merged[name] = enabled
        return SystemConfig(self.preset, tuple(merged.items()))

    # ----------------------------------------------------------- queries

    def enabled(self, name: str) -> bool:
        """Effective state of component ``name`` under this config."""
        for key, value in self.overrides:
            if key == name:
                return value
        defaults = default_states()
        if name not in defaults:
            raise KeyError(f"unknown component {name!r}")
        return defaults[name]

    def components(self) -> Dict[str, bool]:
        """Full effective component map (defaults + overrides)."""
        states = default_states()
        states.update(dict(self.overrides))
        return states

    def disabled_components(self) -> Tuple[str, ...]:
        """Components this config switches off vs their defaults."""
        defaults = default_states()
        return tuple(name for name, enabled in self.overrides
                     if not enabled and defaults[name])

    def is_default(self) -> bool:
        defaults = default_states()
        return all(defaults[name] == enabled
                   for name, enabled in self.overrides)

    def label(self) -> str:
        """Human-readable tag, e.g. ``ioctopus`` or ``ioctopus-ddio``."""
        off = self.disabled_components()
        flipped_on = tuple(name for name, enabled in self.overrides
                           if enabled and not default_states()[name])
        parts = [self.preset]
        parts.extend(f"-{name}" for name in off)
        parts.extend(f"+{name}" for name in flipped_on)
        return "".join(parts) if len(parts) > 1 else self.preset

    def run_id(self) -> str:
        """Stable content hash of (preset, effective overrides).

        Deliberately independent of the process, session, and dict
        ordering: two processes generating the same leave-one-out
        matrix produce the same IDs, which is what lets matrix rows
        flow through the on-disk sweep cache as cache hits.
        """
        payload = json.dumps({"preset": self.preset,
                              "overrides": list(self.overrides)},
                             sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()[:12]

    # ----------------------------------------------------- serialization

    def to_dict(self) -> Dict:
        return {"preset": self.preset,
                "overrides": {name: enabled
                              for name, enabled in self.overrides}}

    @classmethod
    def from_dict(cls, data: Mapping) -> "SystemConfig":
        return cls(preset=data["preset"],
                   overrides=tuple(dict(data.get("overrides",
                                                 {})).items()))

    def __str__(self) -> str:
        return self.label()


def as_system_config(value: Union[str, SystemConfig, Mapping, None],
                     ) -> SystemConfig:
    """Coerce a preset string / dict / SystemConfig into a SystemConfig."""
    if value is None:
        return SystemConfig()
    if isinstance(value, SystemConfig):
        return value
    if isinstance(value, str):
        return SystemConfig(preset=value)
    if isinstance(value, Mapping):
        return SystemConfig.from_dict(value)
    raise TypeError(f"cannot build a SystemConfig from {value!r}")


def loo_matrix(base: SystemConfig,
               names: Optional[Iterable[str]] = None,
               pairwise: bool = False) -> Tuple[SystemConfig, ...]:
    """Baseline + leave-one-out (+ optional pairwise) configurations.

    Only components that are *on* under ``base`` produce rows (turning
    off an already-off component is the baseline again).
    """
    selected = tuple(names) if names is not None else component_names()
    active = [name for name in selected if base.enabled(name)]
    configs = [base]
    configs.extend(base.without(name) for name in active)
    if pairwise:
        for i, first in enumerate(active):
            for second in active[i + 1:]:
                configs.append(base.without(first, second))
    return tuple(configs)
