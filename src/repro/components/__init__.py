"""First-class system components: registry + declarative configuration.

Every mechanism the paper's evaluation turns on — DDIO, ARFS migration,
XPS, MPFS fast-failover, interrupt moderation, train coalescing, the
§4.2 no-reorder re-steer rule — is registered here as a toggleable
:class:`Component`; a frozen :class:`SystemConfig` names a preset plus
component overrides and hashes to a stable run ID.  The testbed builder
applies a config at build time; the ablation engine generates
leave-one-out matrices over it.
"""

from repro.components.config import (
    PRESETS,
    SystemConfig,
    as_system_config,
    loo_matrix,
)
from repro.components.registry import (
    LAYERS,
    Component,
    all_components,
    component_names,
    default_states,
    fault_safe_component_names,
    get_component,
    register_component,
)

__all__ = [
    "Component",
    "LAYERS",
    "PRESETS",
    "SystemConfig",
    "all_components",
    "as_system_config",
    "component_names",
    "default_states",
    "fault_safe_component_names",
    "get_component",
    "loo_matrix",
    "register_component",
]
