"""The component registry: every toggleable IOctopus mechanism.

A :class:`Component` declares one mechanism the paper's design turns on
— DDIO, ARFS migration, XPS, the MPFS hardware fast-failover, adaptive
interrupt moderation, packet-train coalescing, the §4.2 no-reorder
re-steer rule — as a *first-class, toggleable* unit: a name, the layer
it lives in, its default state, apply/remove hooks that thread the real
enable/disable path through the simulator, and a cost note answering
"what does this mechanism buy / cost" in one line.

The hooks are deliberately duck-typed: each receives ``(hosts, env)``
where ``hosts`` is the list of :class:`~repro.core.configurations.Host`
objects in the build (testbed server + client, or a single ablation
host) and ``env`` is the shared simulation environment.  They run at
**build time**, after the hosts exist but before any traffic, so they
only flip flags — no events are created and a default-configuration
build is bit-identical to one that never consulted the registry.

The ablation engine (:mod:`repro.experiments.ablate`) generates
leave-one-out matrices over exactly this registry; the fuzz grammar
draws random off-toggles from the :func:`fault_safe_component_names`
subset (components whose off-state keeps every invariant satisfiable
under fault plans).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

#: Hook signature: (hosts, env) -> None.  ``hosts`` are Host-like
#: objects exposing ``machine``, ``nic``, ``driver``, ``stack``.
Hook = Callable[[List, object], None]

#: Layers a component may live in (documentation + registry table).
LAYERS = ("memory", "nic-firmware", "nic-queues", "driver", "os-stack",
          "workload")


@dataclass(frozen=True)
class Component:
    """One toggleable mechanism of the reproduced system."""

    #: Registry key; also the name used in ``SystemConfig`` overrides,
    #: ablation reports and fuzz-case ``components`` dicts.
    name: str
    #: Which layer the real enable/disable path lives in.
    layer: str
    #: Paper section that introduces the mechanism.
    paper_ref: str
    #: Whether the component is on in the paper's evaluated system.
    default: bool
    #: One-line "what it buys / what it costs" note for the report.
    cost_note: str
    #: Thread the *enabled* state through the simulator (idempotent).
    apply: Hook = field(repr=False)
    #: Thread the *disabled* state through the simulator (idempotent).
    remove: Hook = field(repr=False)
    #: Safe for the fuzzer to switch off under arbitrary fault plans
    #: (False for components whose off-state legitimately violates an
    #: invariant — e.g. disabling the no-reorder rule reorders packets).
    fault_safe: bool = True

    def __post_init__(self):
        if self.layer not in LAYERS:
            raise ValueError(f"layer must be one of {LAYERS}, "
                             f"got {self.layer!r}")


_REGISTRY: Dict[str, Component] = {}


def register_component(component: Component) -> Component:
    if component.name in _REGISTRY:
        raise ValueError(f"component {component.name!r} already registered")
    _REGISTRY[component.name] = component
    return component


def get_component(name: str) -> Component:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown component {name!r}; registered: "
            f"{component_names()}") from None


def component_names() -> Tuple[str, ...]:
    """Registered component names, in registration order (stable)."""
    return tuple(_REGISTRY)


def all_components() -> Tuple[Component, ...]:
    return tuple(_REGISTRY.values())


def fault_safe_component_names() -> Tuple[str, ...]:
    """Components the fuzzer may randomly disable under fault plans."""
    return tuple(name for name, comp in _REGISTRY.items()
                 if comp.fault_safe)


def default_states() -> Dict[str, bool]:
    return {name: comp.default for name, comp in _REGISTRY.items()}


# --------------------------------------------------------------- hooks
#
# Each hook flips the one real flag the simulator layers consult.  They
# set attributes only (idempotent, no events), so applying the defaults
# is a no-op relative to a build that never ran them.

def _set_ddio(hosts, env, enabled: bool) -> None:
    for host in hosts:
        host.machine.memory.ddio_enabled = enabled


def _set_arfs(hosts, env, enabled: bool) -> None:
    for host in hosts:
        host.stack.arfs_enabled = enabled


def _set_xps(hosts, env, enabled: bool) -> None:
    for host in hosts:
        host.stack.xps_enabled = enabled


def _set_fast_failover(hosts, env, enabled: bool) -> None:
    for host in hosts:
        host.nic.firmware.configure_fast_failover(enabled)


def _set_moderation(hosts, env, enabled: bool) -> None:
    for host in hosts:
        queues = host.driver.queues
        if queues is None:
            continue
        for queue in list(queues.rx) + list(queues.tx):
            if enabled:
                queue.moderation.enable()
            else:
                queue.moderation.disable()


def _set_train_coalescing(hosts, env, enabled: bool) -> None:
    env.train_coalescing = enabled


def _set_no_reorder(hosts, env, enabled: bool) -> None:
    for host in hosts:
        host.driver.no_reorder_resteer = enabled


def _pair(fn) -> Tuple[Hook, Hook]:
    return (lambda hosts, env: fn(hosts, env, True),
            lambda hosts, env: fn(hosts, env, False))


_apply, _remove = _pair(_set_ddio)
register_component(Component(
    name="ddio", layer="memory", paper_ref="§2.2",
    default=True,
    cost_note="DMA writes allocate into the local LLC slice; off, every "
              "local receive pays DRAM like a remote one",
    apply=_apply, remove=_remove))

_apply, _remove = _pair(_set_arfs)
register_component(Component(
    name="arfs_migration", layer="os-stack", paper_ref="§2.3/§4.2",
    default=True,
    cost_note="migrating threads re-steer their flows' Rx (and the "
              "octoNIC's PF); off, flows keep DMA-ing to the old core's "
              "queue after migration",
    apply=_apply, remove=_remove))

_apply, _remove = _pair(_set_xps)
register_component(Component(
    name="xps", layer="os-stack", paper_ref="§2.3",
    default=True,
    cost_note="sockets transmit through the current core's Tx queue "
              "(and its local PF); off, transmits stay on the old "
              "queue after migration",
    apply=_apply, remove=_remove))

_apply, _remove = _pair(_set_fast_failover)
register_component(Component(
    name="mpfs_fast_failover", layer="nic-firmware", paper_ref="§4.2",
    default=True,
    fault_safe=False,  # off-state legitimately kills octo traffic on
                       # a PF-down fault (DeviceGoneError mid-run).
    cost_note="the flow-keyed MPFS steers around a dead PF in hardware; "
              "off, a dead PF's flows are dropped until the driver "
              "re-points them (standard-firmware rigidity)",
    apply=_apply, remove=_remove))

_apply, _remove = _pair(_set_moderation)
register_component(Component(
    name="interrupt_moderation", layer="nic-queues", paper_ref="§5",
    default=True,
    cost_note="adaptive per-queue coalescing amortises interrupts under "
              "streaming load; off, every burst interrupts per packet "
              "batch of one",
    apply=_apply, remove=_remove))

_apply, _remove = _pair(_set_train_coalescing)
register_component(Component(
    name="train_coalescing", layer="workload", paper_ref="simulator "
    "(adaptive/fluid tiers)",
    default=True,
    cost_note="steady-state bursts coalesce into packet trains "
              "(simulator fast path; inert in exact accuracy); off, "
              "every burst is its own event",
    apply=_apply, remove=_remove))

_apply, _remove = _pair(_set_no_reorder)
register_component(Component(
    name="no_reorder_resteer", layer="driver", paper_ref="§4.2",
    default=True,
    fault_safe=False,  # off-state is the unsafe immediate re-steer the
                       # no_reorder invariant exists to reject.
    cost_note="ARFS/IOctoRFS updates wait for the old Rx queue to "
              "drain; off, re-steers apply immediately (the unsafe "
              "baseline that reorders in-flight packets)",
    apply=_apply, remove=_remove))
