"""IOctopus reproduction: a NUDMA-accurate simulator and the octoNIC stack.

This package reproduces *IOctopus: Outsmarting Nonuniform DMA* (Smolyar et
al., ASPLOS 2020) as a discrete-event simulation of multi-socket servers:
CPUs, LLC with DDIO, DRAM controllers, the QPI/UPI interconnect, a PCIe
fabric with bifurcated multi-PF devices, a multi-queue NIC with standard
and octoNIC firmware, an OS model (scheduler, XPS/ARFS network stack,
drivers), NVMe, and every workload the paper evaluates with.

Quick tour::

    from repro import Testbed, TcpStream, Flow

    testbed = Testbed("ioctopus")          # or "local" / "remote"
    workload = TcpStream(testbed.server, testbed.server_core(0),
                         Flow.make(0), 65536, "rx",
                         duration_ns=40_000_000)
    testbed.run(48_000_000)
    print(workload.throughput_gbps())

See ``repro.experiments`` (and the ``ioctopus-repro`` CLI) for the code
that regenerates every figure in the paper's evaluation.
"""

from repro.core import Testbed
from repro.core.teaming import OctoTeamDriver
from repro.experiments import all_experiment_names, get_experiment
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.nic import (
    EthernetWire,
    Flow,
    NicDevice,
    OctoFirmware,
    StandardFirmware,
)
from repro.nvme import NvmeController, NvmeDriver
from repro.os_model import NetworkStack, Scheduler, StandardDriver
from repro.pcie import PhysicalFunction, bifurcate
from repro.topology import Machine, dell_r730, dell_r730_spec, dell_skylake
from repro.workloads import (
    FioReader,
    MemcachedServer,
    PageRank,
    Pktgen,
    TcpRr,
    TcpStream,
    UdpPingPong,
    spawn_stream_pairs,
)

__version__ = "1.0.0"

__all__ = [
    "EthernetWire",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FioReader",
    "Flow",
    "Machine",
    "MemcachedServer",
    "NetworkStack",
    "NicDevice",
    "NvmeController",
    "NvmeDriver",
    "OctoFirmware",
    "OctoTeamDriver",
    "PageRank",
    "PhysicalFunction",
    "Pktgen",
    "Scheduler",
    "StandardDriver",
    "StandardFirmware",
    "TcpRr",
    "TcpStream",
    "Testbed",
    "UdpPingPong",
    "all_experiment_names",
    "bifurcate",
    "dell_r730",
    "dell_r730_spec",
    "dell_skylake",
    "get_experiment",
    "spawn_stream_pairs",
]
