"""Deterministic fault injection.

A :class:`FaultPlan` declares *what* fails and *when*; a
:class:`FaultInjector` is the sim process that fires the plan against the
live testbed components and records every injection and recovery.  Plans
are either written by hand or drawn reproducibly from a
:class:`~repro.sim.rng.SimRandom` seed, so a faulty run can be replayed
event-for-event (the gem5-style determinism argument: an injected fault
is only scientifically useful if the same seed reproduces it exactly).
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
]
