"""Declarative fault plans.

A plan is a list of :class:`FaultSpec` entries, each naming a fault kind,
an injection time, an optional duration (transient faults recover; a
``None`` duration is permanent), and the kind-specific target/parameters.
Plans are value objects: two runs given equal plans and equal seeds
produce byte-identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.sim.rng import SimRandom

#: Every fault kind the injector knows how to fire.
FAULT_KINDS = (
    "pf_down",        # surprise-remove one PF        (target: pf_id)
    "pcie_link_down",  # PF's link drops               (target: pf_id)
    "pcie_degrade",   # PF's link retrains narrower   (target: pf_id, lanes)
    "wire_loss",      # wire loss/corruption burst    (probabilities)
    "qpi_throttle",   # one interconnect direction    (src/dst, factor)
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what, when, for how long, and against which target."""

    kind: str
    at_ns: int
    duration_ns: Optional[int] = None
    pf_id: Optional[int] = None
    lanes: Optional[int] = None
    loss_probability: float = 0.0
    corrupt_probability: float = 0.0
    src_node: Optional[int] = None
    dst_node: Optional[int] = None
    throttle_factor: Optional[float] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {FAULT_KINDS}")
        if self.at_ns < 0:
            raise ValueError(f"at_ns must be >= 0, got {self.at_ns}")
        if self.duration_ns is not None and self.duration_ns < 1:
            raise ValueError(
                f"duration_ns must be >= 1 or None, got {self.duration_ns}")
        for name, probability in (
                ("loss_probability", self.loss_probability),
                ("corrupt_probability", self.corrupt_probability)):
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"{self.kind}: {name} must be in [0, 1], "
                    f"got {probability}")
        if self.loss_probability + self.corrupt_probability > 1.0:
            raise ValueError(
                f"{self.kind}: loss_probability + corrupt_probability "
                f"must not exceed 1, got "
                f"{self.loss_probability + self.corrupt_probability}")
        if self.kind in ("pf_down", "pcie_link_down", "pcie_degrade"):
            if self.pf_id is None:
                raise ValueError(
                    f"{self.kind} targets one physical function: "
                    f"pass pf_id")
            if self.pf_id < 0:
                raise ValueError(
                    f"{self.kind}: pf_id must be >= 0, got {self.pf_id}")
        if self.kind == "pcie_degrade" and (self.lanes is None
                                            or self.lanes < 1):
            raise ValueError(
                f"pcie_degrade retrains the link narrower: pass "
                f"lanes >= 1, got {self.lanes}")
        if self.kind == "wire_loss":
            if self.loss_probability <= 0 and self.corrupt_probability <= 0:
                raise ValueError(
                    "wire_loss needs loss_probability and/or "
                    "corrupt_probability > 0 (both were 0)")
        if self.kind == "qpi_throttle":
            if self.src_node is None or self.dst_node is None:
                raise ValueError(
                    "qpi_throttle targets one interconnect direction: "
                    "pass both src_node and dst_node")
            if self.throttle_factor is None or not (
                    0.0 < self.throttle_factor < 1.0):
                raise ValueError(
                    f"qpi_throttle needs throttle_factor > 0 and < 1 "
                    f"(the fraction of link rate that remains), got "
                    f"{self.throttle_factor}")

    @property
    def is_transient(self) -> bool:
        return self.duration_ns is not None

    @property
    def ends_at_ns(self) -> Optional[int]:
        if self.duration_ns is None:
            return None
        return self.at_ns + self.duration_ns

    def describe(self) -> str:
        """A stable one-line rendering (used in traces, so it must not
        depend on object identity)."""
        parts = [self.kind, f"at={self.at_ns}"]
        if self.duration_ns is not None:
            parts.append(f"dur={self.duration_ns}")
        if self.pf_id is not None:
            parts.append(f"pf={self.pf_id}")
        if self.lanes is not None:
            parts.append(f"lanes={self.lanes}")
        if self.loss_probability:
            parts.append(f"loss={self.loss_probability:g}")
        if self.corrupt_probability:
            parts.append(f"corrupt={self.corrupt_probability:g}")
        if self.src_node is not None:
            parts.append(f"qpi={self.src_node}->{self.dst_node}")
        if self.throttle_factor is not None:
            parts.append(f"factor={self.throttle_factor:g}")
        return " ".join(parts)


@dataclass
class FaultPlan:
    """An ordered collection of fault specs."""

    specs: List[FaultSpec] = field(default_factory=list)

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    def ordered(self) -> List[FaultSpec]:
        """Specs in firing order: by injection time, ties broken by the
        order they were added (stable sort), so replay is deterministic."""
        return sorted(self.specs, key=lambda s: s.at_ns)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.ordered())

    def describe(self) -> List[str]:
        return [spec.describe() for spec in self.ordered()]

    # ------------------------------------------------------- generation

    @classmethod
    def random(cls, rng: SimRandom, horizon_ns: int, count: int,
               kinds: Sequence[str] = ("pf_down", "pcie_degrade",
                                       "wire_loss", "qpi_throttle"),
               num_pfs: int = 2, num_nodes: int = 2,
               mean_duration_ns: int = 50_000_000) -> "FaultPlan":
        """Draw ``count`` transient faults reproducibly from ``rng``.

        The same (seed, arguments) pair always yields the same plan; the
        stream is a child of ``rng`` so the caller's other draws are not
        perturbed.
        """
        if horizon_ns < 1:
            raise ValueError(f"horizon_ns must be >= 1, got {horizon_ns}")
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        if "qpi_throttle" in kinds and num_nodes < 2:
            raise ValueError("qpi_throttle needs >= 2 nodes")
        stream = rng.child("fault-plan")
        plan = cls()
        for _ in range(count):
            kind = stream.choice(list(kinds))
            at_ns = stream.randint(0, horizon_ns - 1)
            duration = max(1, int(stream.expovariate(
                1.0 / mean_duration_ns)))
            if kind in ("pf_down", "pcie_link_down"):
                plan.add(FaultSpec(kind, at_ns, duration,
                                   pf_id=stream.randint(0, num_pfs - 1)))
            elif kind == "pcie_degrade":
                plan.add(FaultSpec(kind, at_ns, duration,
                                   pf_id=stream.randint(0, num_pfs - 1),
                                   lanes=stream.choice([1, 2, 4])))
            elif kind == "wire_loss":
                plan.add(FaultSpec(
                    kind, at_ns, duration,
                    loss_probability=round(stream.uniform(0.001, 0.05), 6),
                    corrupt_probability=round(
                        stream.uniform(0.0, 0.01), 6)))
            else:  # qpi_throttle
                src = stream.randint(0, num_nodes - 1)
                dst = (src + 1 + stream.randint(0, max(0, num_nodes - 2))) \
                    % num_nodes
                plan.add(FaultSpec(
                    kind, at_ns, duration, src_node=src, dst_node=dst,
                    throttle_factor=round(stream.uniform(0.1, 0.9), 6)))
        return plan
