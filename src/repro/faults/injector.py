"""The fault injector: fires a :class:`FaultPlan` against live components.

One injector process walks the plan in time order; each transient fault
also schedules its own recovery process, so overlapping faults compose.
Every injection and recovery is appended to :attr:`FaultInjector.events`
(and mirrored to the machine tracer when one is enabled) as plain
strings, which makes "same seed -> byte-identical fault trace" a direct
list comparison.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.device.base import MultiPfDevice
from repro.faults.plan import FaultPlan, FaultSpec
from repro.nic.wire import EthernetWire
from repro.sim.engine import Environment
from repro.sim.rng import SimRandom
from repro.sim.tracing import Tracer
from repro.topology.machine import Machine


class FaultInjector:
    """Fires a fault plan against a device / wire / machine triple."""

    def __init__(self, env: Environment, plan: FaultPlan,
                 device: Optional[MultiPfDevice] = None,
                 wire: Optional[EthernetWire] = None,
                 machine: Optional[Machine] = None,
                 rng: Optional[SimRandom] = None,
                 tracer: Optional[Tracer] = None):
        self.env = env
        self.plan = plan
        self.device = device
        self.wire = wire
        self.machine = machine
        self.rng = (rng or SimRandom(0, name="faults")).child("injector")
        self.tracer = tracer or (machine.tracer if machine is not None
                                 else None)
        #: (time_ns, event, detail) triples — the replayable fault trace.
        self.events: List[Tuple[int, str, str]] = []
        self._process = None
        self._validate_targets()

    # ------------------------------------------------------------ driving

    def start(self):
        """Spawn the injector process (call before ``env.run``)."""
        if self._process is not None:
            raise RuntimeError("fault injector already started")
        self._process = self.env.process(self._body(), name="fault-injector")
        return self._process

    def _body(self):
        for spec in self.plan.ordered():
            delay = spec.at_ns - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._inject(spec)
            if spec.is_transient:
                self.env.process(self._recover_later(spec),
                                 name=f"fault-recover-{spec.kind}")

    def _recover_later(self, spec: FaultSpec):
        yield self.env.timeout(spec.duration_ns)
        self._recover(spec)

    # ---------------------------------------------------------- injection

    def _inject(self, spec: FaultSpec) -> None:
        if spec.kind == "pf_down":
            self.device.surprise_remove(spec.pf_id)
        elif spec.kind == "pcie_link_down":
            self.device.surprise_remove(spec.pf_id, cause="link-down")
        elif spec.kind == "pcie_degrade":
            self.device.pf(spec.pf_id).link.degrade(spec.lanes)
        elif spec.kind == "wire_loss":
            self.wire.start_impairment(
                self.rng.child(f"wire@{spec.at_ns}"),
                loss_probability=spec.loss_probability,
                corrupt_probability=spec.corrupt_probability)
        elif spec.kind == "qpi_throttle":
            self.machine.interconnect.link(
                spec.src_node, spec.dst_node).throttle(spec.throttle_factor)
        self._record("fault", spec)

    def _recover(self, spec: FaultSpec) -> None:
        if spec.kind in ("pf_down", "pcie_link_down"):
            self.device.recover_pf(spec.pf_id)
        elif spec.kind == "pcie_degrade":
            self.device.pf(spec.pf_id).link.restore()
        elif spec.kind == "wire_loss":
            self.wire.stop_impairment()
        elif spec.kind == "qpi_throttle":
            self.machine.interconnect.link(
                spec.src_node, spec.dst_node).unthrottle()
        self._record("recover", spec)

    def _record(self, phase: str, spec: FaultSpec) -> None:
        event = f"{phase}.{spec.kind}"
        detail = spec.describe()
        self.events.append((self.env.now, event, detail))
        if self.tracer is not None:
            self.tracer.emit(self.env.now, "fault-injector", event, detail)

    def rendered_events(self) -> List[str]:
        """The fault/recovery trace as stable strings (determinism
        checks compare these byte-for-byte)."""
        return [f"[{t}] {event} {detail}"
                for t, event, detail in self.events]

    # --------------------------------------------------------- validation

    def _validate_targets(self) -> None:
        """Fail fast at construction: every spec must have the component
        it targets, so a bad plan doesn't die mid-simulation."""
        for spec in self.plan.ordered():
            if spec.kind in ("pf_down", "pcie_link_down", "pcie_degrade"):
                if self.device is None:
                    raise ValueError(f"{spec.kind} fault needs a device")
                if not 0 <= spec.pf_id < len(self.device.pfs):
                    raise ValueError(
                        f"{spec.kind}: pf_id {spec.pf_id} out of range "
                        f"for {len(self.device.pfs)}-PF device")
                if spec.kind == "pcie_degrade":
                    link = self.device.pf(spec.pf_id).link
                    if spec.lanes > link.lanes:
                        raise ValueError(
                            f"pcie_degrade: {spec.lanes} lanes exceeds "
                            f"the link's {link.lanes}")
            elif spec.kind == "wire_loss":
                if self.wire is None:
                    raise ValueError("wire_loss fault needs a wire")
            elif spec.kind == "qpi_throttle":
                if self.machine is None:
                    raise ValueError("qpi_throttle fault needs a machine")
                num_nodes = self.machine.spec.num_nodes
                for node in (spec.src_node, spec.dst_node):
                    if not 0 <= node < num_nodes:
                        raise ValueError(
                            f"qpi_throttle: node {node} out of range")
