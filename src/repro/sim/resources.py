"""Shared-resource primitives built on the event kernel.

Three abstractions cover every piece of contended hardware in the simulator:

:class:`Resource`
    Counted mutual exclusion (e.g. a CPU core, a DMA engine channel).

:class:`Store`
    A FIFO buffer of objects with blocking get/put (e.g. a descriptor ring,
    a NIC ingress queue).

:class:`BandwidthServer`
    A byte-serial link: transfers are serviced FIFO at a fixed byte rate, so
    queueing delay under load *emerges* rather than being modelled
    analytically.  QPI links, PCIe links, DRAM channels and the Ethernet
    wire are all BandwidthServers.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Environment, Event
from repro.sim.errors import SimulationError


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot.

    Usable as a context manager so callers cannot leak slots::

        with resource.request() as req:
            yield req
            ... hold the resource ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with FIFO admission."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: set = set()
        self._waiters: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Request:
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed()
        else:
            self._waiters.append(req)
        return req

    def release(self, request: Request) -> None:
        if request in self._users:
            self._users.remove(request)
        elif request in self._waiters:
            self._waiters.remove(request)
            return
        else:
            return  # already released; releasing twice is harmless
        while self._waiters and len(self._users) < self.capacity:
            nxt = self._waiters.popleft()
            self._users.add(nxt)
            nxt.succeed()


class Store:
    """FIFO object buffer with optional capacity."""

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()

    @property
    def level(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        event = Event(self.env)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif not self.is_full:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Non-blocking pop; returns None when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._admit_putter()
        return item

    def _admit_putter(self) -> None:
        if self._putters and not self.is_full:
            put_event, item = self._putters.popleft()
            self._items.append(item)
            put_event.succeed()


class BandwidthServer:
    """A FIFO byte-serial server with busy-time accounting.

    ``transfer(nbytes)`` returns an event that fires once the final byte has
    been serviced.  Back-to-back transfers queue behind each other, so a
    saturated link exhibits growing delay — this is what turns "STREAM pairs
    hammering the QPI" into measurably worse remote-DMA latency without any
    special-case congestion formula.
    """

    def __init__(self, env: Environment, bytes_per_sec: float, name: str = ""):
        if bytes_per_sec <= 0:
            raise ValueError(f"bytes_per_sec must be > 0, got {bytes_per_sec}")
        self.env = env
        self.name = name
        self.bytes_per_sec = float(bytes_per_sec)
        self._free_at = 0          # time the server next becomes idle
        self._busy_ns = 0          # cumulative service time
        self._bytes_total = 0
        self._window_start = 0     # for windowed utilisation/byte queries
        self._window_bytes = 0

    def service_time(self, nbytes: int) -> int:
        """Pure service time for ``nbytes`` (no queueing), in ns."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        return int(round(nbytes * 1e9 / self.bytes_per_sec))

    def set_rate(self, bytes_per_sec: float) -> None:
        """Change the service rate (link retraining, fault throttling).

        The un-started portion of the queued backlog is rescaled to the
        new rate, so a fault throttle (qpi_throttle, pcie_degrade) takes
        effect immediately instead of only after the old-rate backlog
        drains.  Events already created by :meth:`transfer` keep their
        scheduled completion times; only the server's future availability
        (and thus every transfer accounted after the change) moves.

        Also bumps the environment's ``rate_epoch`` so the fluid tier
        invalidates every steady interval that spans this boundary.
        """
        if bytes_per_sec <= 0:
            raise ValueError(f"bytes_per_sec must be > 0, got {bytes_per_sec}")
        now = self.env._now
        backlog = self._free_at - now
        if backlog > 0:
            self._free_at = now + int(round(
                backlog * self.bytes_per_sec / bytes_per_sec))
        self.bytes_per_sec = float(bytes_per_sec)
        self.env.rate_epoch += 1

    def transfer(self, nbytes: int) -> Event:
        """Enqueue a transfer; the event fires at service completion."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        now = self.env._now
        free_at = self._free_at
        start = free_at if free_at > now else now
        # service_time() inlined (hot path; same rounding expression).
        duration = int(round(nbytes * 1e9 / self.bytes_per_sec))
        self._free_at = start + duration
        self._busy_ns += duration
        self._bytes_total += nbytes
        self._window_bytes += nbytes
        event = Event(self.env)
        event.succeed(delay=self._free_at - now)
        return event

    def queueing_delay(self) -> int:
        """Delay a zero-byte transfer would see right now, in ns."""
        return max(0, self._free_at - self.env.now)

    def account(self, nbytes: int) -> int:
        """Charge bytes and return total delay (queue + service) without
        creating an event.  Used on hot paths where the caller folds the
        delay into a larger latency sum."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        # env._now (not the .now property): this runs a few hundred
        # thousand times per simulated second.
        now = self.env._now
        free_at = self._free_at
        start = free_at if free_at > now else now
        # service_time() inlined (hot path; same rounding expression).
        duration = int(round(nbytes * 1e9 / self.bytes_per_sec))
        self._free_at = start + duration
        self._busy_ns += duration
        self._bytes_total += nbytes
        self._window_bytes += nbytes
        return (start - now) + duration

    def account_batch(self, nbytes: int, nbursts: int) -> int:
        """Charge ``nbursts`` back-to-back transfers of ``nbytes`` each.

        Bit-identical to ``nbursts`` sequential :meth:`account` calls at
        the current timestamp (same per-burst rounding, same final
        ``_free_at``/counters), collapsed into one call; the return value
        is the delay until the *final* burst completes — exactly what the
        last of the sequential calls would have returned.  This is the
        fluid tier's per-burst-faithful PCIe/interconnect charge.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        if nbursts < 1:
            raise ValueError(f"nbursts must be >= 1, got {nbursts}")
        now = self.env._now
        free_at = self._free_at
        start = free_at if free_at > now else now
        duration = int(round(nbytes * 1e9 / self.bytes_per_sec))
        total = duration * nbursts
        self._free_at = start + total
        self._busy_ns += total
        self._bytes_total += nbytes * nbursts
        self._window_bytes += nbytes * nbursts
        return (start - now) + total

    def account_many(self, sizes) -> int:
        """Charge a heterogeneous sequence of transfer sizes.

        Bit-identical to calling :meth:`account` once per element of
        ``sizes`` at the current timestamp; returns the delay until the
        final transfer completes.  Per-element service durations are
        computed vectorised (numpy) when available — see
        :func:`repro.memory.batch.service_durations`.
        """
        from repro.memory.batch import service_durations
        durations = service_durations(sizes, self.bytes_per_sec)
        total = int(sum(durations))
        nbytes = int(sum(sizes))
        if nbytes < 0:
            raise ValueError("negative transfer size in batch")
        now = self.env._now
        free_at = self._free_at
        start = free_at if free_at > now else now
        self._free_at = start + total
        self._busy_ns += total
        self._bytes_total += nbytes
        self._window_bytes += nbytes
        return (start - now) + total

    @property
    def bytes_total(self) -> int:
        return self._bytes_total

    @property
    def busy_ns(self) -> int:
        """Cumulative service time — the numerator of utilization()."""
        return self._busy_ns

    def utilization(self, since: int = 0) -> float:
        """Fraction of wall time busy between ``since`` and now."""
        elapsed = self.env.now - since
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_ns / elapsed)

    def reset_window(self) -> None:
        self._window_start = self.env.now
        self._window_bytes = 0

    def window_throughput_bps(self) -> float:
        """Bytes/sec moved since the last ``reset_window()``."""
        elapsed = self.env.now - self._window_start
        if elapsed <= 0:
            return 0.0
        return self._window_bytes * 1e9 / elapsed

    def __repr__(self) -> str:
        return (f"<BandwidthServer {self.name or '?'} "
                f"{self.bytes_per_sec / 1e9:.1f} GB/s "
                f"backlog={self.queueing_delay()}ns>")


class RateEstimator:
    """Rolling estimate of a server's offered load vs. capacity.

    Buckets bytes into fixed windows; ``utilization()`` blends the last
    completed bucket with the current one.  Used to inflate memory and
    interconnect latencies under load — the standard queueing-delay
    approximation that turns "STREAM is hammering the QPI" into "remote
    cache-line fills got slower" (paper §5.2).
    """

    def __init__(self, env: Environment, bytes_per_sec: float,
                 bucket_ns: int = 20_000):
        self.env = env
        self.bytes_per_sec = float(bytes_per_sec)
        self.bucket_ns = int(bucket_ns)
        self._bucket_start = 0
        self._bucket_bytes = 0
        self._last_utilization = 0.0
        #: Active steady-interval reservations, keyed by flow id:
        #: ``{flow_id: [end_ns, rate_bps, span_ns, prev_rate_bps]}``.
        #: A flow's charges within one interval accumulate into its
        #: slot's rate; its next interval *replaces* the slot (keeping
        #: the replaced block's final rate as ``prev_rate``), so an
        #: overestimated span never leaves a stale tail stacked under
        #: the successor.  Empty outside fluid accuracy.
        self._pending: dict = {}

    def update(self, nbytes: int) -> None:
        now = self.env._now
        span = self.env.fluid_span_ns
        if span > 0:
            # Steady-interval charge: the bytes arrive paced over the
            # span.  Register the interval's average rate instead of
            # depositing into the bucket stream — an instant deposit of
            # a whole interval's bytes would read as a saturation spike
            # the exact schedule never shows.
            end = now + span
            rate = nbytes * 1e9 / span
            slot = self._pending.get(self.env.fluid_flow_id)
            if slot is not None and slot[0] == end:
                slot[1] += rate
            else:
                # New interval block: replace the flow's reservation.
                # Its previous block's full rate is kept as prev_rate
                # (the flow's own recent average) unless the flow went
                # idle for more than a block — then the exact bucket
                # would have decayed it too.
                prev = (slot[1] if slot is not None
                        and slot[0] + slot[2] > now else 0.0)
                self._pending[self.env.fluid_flow_id] = [
                    end, rate, span, prev]
            return
        elapsed = now - self._bucket_start
        if elapsed >= self.bucket_ns:
            self._last_utilization = min(
                1.0, self._bucket_bytes * 1e9
                / (self.bytes_per_sec * max(1, elapsed)))
            self._bucket_start = now
            self._bucket_bytes = 0
        self._bucket_bytes += nbytes

    def _reserved_rate(self, now: int, exclude: int = 0) -> float:
        """Aggregate rate (bytes/sec) of the *currently active*
        steady-interval reservations; expired ones are dropped.  A flow
        issuing back-to-back intervals keeps exactly one reservation
        alive at any instant, so its contribution equals its average
        rate — no tails, no double counting.

        ``exclude`` marks the flow currently *inside* its own interval
        block: for it, the slot's still-accumulating current rate is
        swapped for the previous block's full rate.  That mirrors the
        exact schedule, where a charge reads the load factor before
        depositing its own bytes but does see its *past* deposits in
        the bucket blend — a flow's load slows itself down, just with
        one block of lag."""
        total = 0.0
        expired = None
        for fid, (end, rate, _span, prev) in self._pending.items():
            if now < end:
                total += prev if fid == exclude else rate
            else:
                expired = fid if expired is None else expired
        if expired is not None:
            self._pending = {fid: slot for fid, slot in
                             self._pending.items() if slot[0] > now}
        return total

    def utilization(self) -> float:
        now = self.env._now
        elapsed = now - self._bucket_start
        if elapsed <= 0:
            base = self._last_utilization
        else:
            current = min(1.0, self._bucket_bytes * 1e9
                          / (self.bytes_per_sec * elapsed))
            # Blend: the current bucket only counts once it has some
            # history, so a single burst at bucket start doesn't read as
            # saturation.
            weight = min(1.0, elapsed / self.bucket_ns)
            base = ((1.0 - weight) * self._last_utilization
                    + weight * current)
        if self._pending:
            exclude = (self.env.fluid_flow_id
                       if self.env.fluid_span_ns > 0 else 0)
            base = min(1.0, base + self._reserved_rate(now, exclude)
                       / self.bytes_per_sec)
        return base

    def update_utilization(self, nbytes: int) -> float:
        """Fused ``update(nbytes)`` followed by ``utilization()`` — the
        two always run back to back on the link hot path, and fusing them
        halves the call overhead.  Bit-identical to the pair."""
        if self._pending or self.env.fluid_span_ns > 0:
            # Fluid reservations in play: take the unfused path, which
            # handles draining and the reserved-rate contribution.
            self.update(nbytes)
            return self.utilization()
        now = self.env._now
        elapsed = now - self._bucket_start
        if elapsed >= self.bucket_ns:
            self._last_utilization = min(
                1.0, self._bucket_bytes * 1e9
                / (self.bytes_per_sec * max(1, elapsed)))
            self._bucket_start = now
            self._bucket_bytes = nbytes
            # elapsed is now zero: utilization() would return the stored
            # last-bucket figure unchanged.
            return self._last_utilization
        self._bucket_bytes += nbytes
        if elapsed <= 0:
            return self._last_utilization
        current = min(1.0, self._bucket_bytes * 1e9
                      / (self.bytes_per_sec * elapsed))
        weight = min(1.0, elapsed / self.bucket_ns)
        return (1.0 - weight) * self._last_utilization + weight * current


class ProcessorSharingServer:
    """Approximate processor-sharing bandwidth: N concurrent flows each get
    rate/N.  Used for DRAM controllers where many agents interleave, making
    strict FIFO too pessimistic for small accesses.

    The approximation recomputes per-flow delay from the instantaneous flow
    count, which is accurate when flows have similar sizes (our accesses are
    cache-line batches).
    """

    def __init__(self, env: Environment, bytes_per_sec: float, name: str = ""):
        if bytes_per_sec <= 0:
            raise ValueError(f"bytes_per_sec must be > 0, got {bytes_per_sec}")
        self.env = env
        self.name = name
        self.bytes_per_sec = float(bytes_per_sec)
        self._active = 0
        self._bytes_total = 0
        self._window_start = 0
        self._window_bytes = 0

    def account(self, nbytes: int) -> int:
        """Charge bytes; return the slowed-down service time in ns."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        self._bytes_total += nbytes
        self._window_bytes += nbytes
        share = max(1, self._active)
        return int(round(nbytes * share * 1e9 / self.bytes_per_sec))

    def enter(self) -> None:
        self._active += 1

    def leave(self) -> None:
        if self._active <= 0:
            raise SimulationError(f"leave() without enter() on {self.name}")
        self._active -= 1

    @property
    def bytes_total(self) -> int:
        return self._bytes_total

    def reset_window(self) -> None:
        self._window_start = self.env.now
        self._window_bytes = 0

    def window_throughput_bps(self) -> float:
        elapsed = self.env.now - self._window_start
        if elapsed <= 0:
            return 0.0
        return self._window_bytes * 1e9 / elapsed
