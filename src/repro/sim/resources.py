"""Shared-resource primitives built on the event kernel.

Three abstractions cover every piece of contended hardware in the simulator:

:class:`Resource`
    Counted mutual exclusion (e.g. a CPU core, a DMA engine channel).

:class:`Store`
    A FIFO buffer of objects with blocking get/put (e.g. a descriptor ring,
    a NIC ingress queue).

:class:`BandwidthServer`
    A byte-serial link: transfers are serviced FIFO at a fixed byte rate, so
    queueing delay under load *emerges* rather than being modelled
    analytically.  QPI links, PCIe links, DRAM channels and the Ethernet
    wire are all BandwidthServers.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Environment, Event
from repro.sim.errors import SimulationError


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot.

    Usable as a context manager so callers cannot leak slots::

        with resource.request() as req:
            yield req
            ... hold the resource ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with FIFO admission."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: set = set()
        self._waiters: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Request:
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed()
        else:
            self._waiters.append(req)
        return req

    def release(self, request: Request) -> None:
        if request in self._users:
            self._users.remove(request)
        elif request in self._waiters:
            self._waiters.remove(request)
            return
        else:
            return  # already released; releasing twice is harmless
        while self._waiters and len(self._users) < self.capacity:
            nxt = self._waiters.popleft()
            self._users.add(nxt)
            nxt.succeed()


class Store:
    """FIFO object buffer with optional capacity."""

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()

    @property
    def level(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        event = Event(self.env)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif not self.is_full:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Non-blocking pop; returns None when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._admit_putter()
        return item

    def _admit_putter(self) -> None:
        if self._putters and not self.is_full:
            put_event, item = self._putters.popleft()
            self._items.append(item)
            put_event.succeed()


class BandwidthServer:
    """A FIFO byte-serial server with busy-time accounting.

    ``transfer(nbytes)`` returns an event that fires once the final byte has
    been serviced.  Back-to-back transfers queue behind each other, so a
    saturated link exhibits growing delay — this is what turns "STREAM pairs
    hammering the QPI" into measurably worse remote-DMA latency without any
    special-case congestion formula.
    """

    def __init__(self, env: Environment, bytes_per_sec: float, name: str = ""):
        if bytes_per_sec <= 0:
            raise ValueError(f"bytes_per_sec must be > 0, got {bytes_per_sec}")
        self.env = env
        self.name = name
        self.bytes_per_sec = float(bytes_per_sec)
        self._free_at = 0          # time the server next becomes idle
        self._busy_ns = 0          # cumulative service time
        self._bytes_total = 0
        self._window_start = 0     # for windowed utilisation/byte queries
        self._window_bytes = 0

    def service_time(self, nbytes: int) -> int:
        """Pure service time for ``nbytes`` (no queueing), in ns."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        return int(round(nbytes * 1e9 / self.bytes_per_sec))

    def set_rate(self, bytes_per_sec: float) -> None:
        """Change the service rate (link retraining, fault throttling).

        In-flight transfers keep their already-computed completion times;
        only transfers accounted after the change see the new rate.
        """
        if bytes_per_sec <= 0:
            raise ValueError(f"bytes_per_sec must be > 0, got {bytes_per_sec}")
        self.bytes_per_sec = float(bytes_per_sec)

    def transfer(self, nbytes: int) -> Event:
        """Enqueue a transfer; the event fires at service completion."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        now = self.env._now
        free_at = self._free_at
        start = free_at if free_at > now else now
        # service_time() inlined (hot path; same rounding expression).
        duration = int(round(nbytes * 1e9 / self.bytes_per_sec))
        self._free_at = start + duration
        self._busy_ns += duration
        self._bytes_total += nbytes
        self._window_bytes += nbytes
        event = Event(self.env)
        event.succeed(delay=self._free_at - now)
        return event

    def queueing_delay(self) -> int:
        """Delay a zero-byte transfer would see right now, in ns."""
        return max(0, self._free_at - self.env.now)

    def account(self, nbytes: int) -> int:
        """Charge bytes and return total delay (queue + service) without
        creating an event.  Used on hot paths where the caller folds the
        delay into a larger latency sum."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        # env._now (not the .now property): this runs a few hundred
        # thousand times per simulated second.
        now = self.env._now
        free_at = self._free_at
        start = free_at if free_at > now else now
        # service_time() inlined (hot path; same rounding expression).
        duration = int(round(nbytes * 1e9 / self.bytes_per_sec))
        self._free_at = start + duration
        self._busy_ns += duration
        self._bytes_total += nbytes
        self._window_bytes += nbytes
        return (start - now) + duration

    @property
    def bytes_total(self) -> int:
        return self._bytes_total

    @property
    def busy_ns(self) -> int:
        """Cumulative service time — the numerator of utilization()."""
        return self._busy_ns

    def utilization(self, since: int = 0) -> float:
        """Fraction of wall time busy between ``since`` and now."""
        elapsed = self.env.now - since
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_ns / elapsed)

    def reset_window(self) -> None:
        self._window_start = self.env.now
        self._window_bytes = 0

    def window_throughput_bps(self) -> float:
        """Bytes/sec moved since the last ``reset_window()``."""
        elapsed = self.env.now - self._window_start
        if elapsed <= 0:
            return 0.0
        return self._window_bytes * 1e9 / elapsed

    def __repr__(self) -> str:
        return (f"<BandwidthServer {self.name or '?'} "
                f"{self.bytes_per_sec / 1e9:.1f} GB/s "
                f"backlog={self.queueing_delay()}ns>")


class RateEstimator:
    """Rolling estimate of a server's offered load vs. capacity.

    Buckets bytes into fixed windows; ``utilization()`` blends the last
    completed bucket with the current one.  Used to inflate memory and
    interconnect latencies under load — the standard queueing-delay
    approximation that turns "STREAM is hammering the QPI" into "remote
    cache-line fills got slower" (paper §5.2).
    """

    def __init__(self, env: Environment, bytes_per_sec: float,
                 bucket_ns: int = 20_000):
        self.env = env
        self.bytes_per_sec = float(bytes_per_sec)
        self.bucket_ns = int(bucket_ns)
        self._bucket_start = 0
        self._bucket_bytes = 0
        self._last_utilization = 0.0

    def update(self, nbytes: int) -> None:
        now = self.env._now
        elapsed = now - self._bucket_start
        if elapsed >= self.bucket_ns:
            self._last_utilization = min(
                1.0, self._bucket_bytes * 1e9
                / (self.bytes_per_sec * max(1, elapsed)))
            self._bucket_start = now
            self._bucket_bytes = 0
        self._bucket_bytes += nbytes

    def utilization(self) -> float:
        now = self.env._now
        elapsed = now - self._bucket_start
        if elapsed <= 0:
            return self._last_utilization
        current = min(1.0, self._bucket_bytes * 1e9
                      / (self.bytes_per_sec * elapsed))
        # Blend: the current bucket only counts once it has some history,
        # so a single burst at bucket start doesn't read as saturation.
        weight = min(1.0, elapsed / self.bucket_ns)
        return (1.0 - weight) * self._last_utilization + weight * current

    def update_utilization(self, nbytes: int) -> float:
        """Fused ``update(nbytes)`` followed by ``utilization()`` — the
        two always run back to back on the link hot path, and fusing them
        halves the call overhead.  Bit-identical to the pair."""
        now = self.env._now
        elapsed = now - self._bucket_start
        if elapsed >= self.bucket_ns:
            self._last_utilization = min(
                1.0, self._bucket_bytes * 1e9
                / (self.bytes_per_sec * max(1, elapsed)))
            self._bucket_start = now
            self._bucket_bytes = nbytes
            # elapsed is now zero: utilization() would return the stored
            # last-bucket figure unchanged.
            return self._last_utilization
        self._bucket_bytes += nbytes
        if elapsed <= 0:
            return self._last_utilization
        current = min(1.0, self._bucket_bytes * 1e9
                      / (self.bytes_per_sec * elapsed))
        weight = min(1.0, elapsed / self.bucket_ns)
        return (1.0 - weight) * self._last_utilization + weight * current


class ProcessorSharingServer:
    """Approximate processor-sharing bandwidth: N concurrent flows each get
    rate/N.  Used for DRAM controllers where many agents interleave, making
    strict FIFO too pessimistic for small accesses.

    The approximation recomputes per-flow delay from the instantaneous flow
    count, which is accurate when flows have similar sizes (our accesses are
    cache-line batches).
    """

    def __init__(self, env: Environment, bytes_per_sec: float, name: str = ""):
        if bytes_per_sec <= 0:
            raise ValueError(f"bytes_per_sec must be > 0, got {bytes_per_sec}")
        self.env = env
        self.name = name
        self.bytes_per_sec = float(bytes_per_sec)
        self._active = 0
        self._bytes_total = 0
        self._window_start = 0
        self._window_bytes = 0

    def account(self, nbytes: int) -> int:
        """Charge bytes; return the slowed-down service time in ns."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        self._bytes_total += nbytes
        self._window_bytes += nbytes
        share = max(1, self._active)
        return int(round(nbytes * share * 1e9 / self.bytes_per_sec))

    def enter(self) -> None:
        self._active += 1

    def leave(self) -> None:
        if self._active <= 0:
            raise SimulationError(f"leave() without enter() on {self.name}")
        self._active -= 1

    @property
    def bytes_total(self) -> int:
        return self._bytes_total

    def reset_window(self) -> None:
        self._window_start = self.env.now
        self._window_bytes = 0

    def window_throughput_bps(self) -> float:
        elapsed = self.env.now - self._window_start
        if elapsed <= 0:
            return 0.0
        return self._window_bytes * 1e9 / elapsed
