"""Seeded randomness for deterministic simulations.

Every stochastic choice in the simulator goes through a :class:`SimRandom`
so that a run is fully reproducible from its seed, and independent
subsystems can derive decorrelated child streams by name.
"""

from __future__ import annotations

import random
import zlib
from typing import Sequence


class SimRandom:
    """A named, seedable random stream."""

    def __init__(self, seed: int = 0, name: str = "root"):
        self.seed = int(seed)
        self.name = name
        self._rng = random.Random(self.seed)

    def child(self, name: str) -> "SimRandom":
        """Derive an independent stream keyed by ``name``.

        The child seed mixes the parent seed with a CRC of the name, so the
        same (seed, name) pair always yields the same stream regardless of
        creation order.
        """
        mixed = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode())) % (2**63)
        return SimRandom(mixed, name=f"{self.name}/{name}")

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def random(self) -> float:
        return self._rng.random()

    def batch(self, n: int) -> list:
        """``n`` sequential uniform [0, 1) draws in one call.

        Consumes exactly the same underlying stream as ``n`` calls to
        :meth:`random`, so replacing a per-item loop with one batch draw
        replays identically from the same seed.
        """
        if n < 0:
            raise ValueError(f"batch size must be >= 0, got {n}")
        draw = self._rng.random
        return [draw() for _ in range(n)]

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def choice(self, seq: Sequence):
        return self._rng.choice(seq)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def bernoulli(self, probability: float) -> bool:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        return self._rng.random() < probability

    def __repr__(self) -> str:
        return f"<SimRandom {self.name} seed={self.seed}>"
