"""Exceptions raised by the simulation kernel."""


class SimulationError(Exception):
    """Base class for all simulator errors."""


class ScheduleInPastError(SimulationError):
    """An event was scheduled before the current simulation time."""


class AlreadyTriggeredError(SimulationError):
    """succeed()/fail() was called on an event that already fired."""


class DeviceGoneError(SimulationError):
    """An operation was issued against hardware that has failed or been
    surprise-removed (dead PF, downed PCIe link)."""


class DeviceTimeoutError(SimulationError):
    """A driver operation exhausted its retry budget against dead
    hardware."""


class RetriesExhausted(DeviceTimeoutError):
    """Typed retry-budget exhaustion: the attempt cap or the sim-time
    deadline of :meth:`repro.device.driver.DeviceDriver.call_with_retry`
    was hit.

    Subclasses :class:`DeviceTimeoutError` so existing ``except`` clauses
    keep working; carries the budget that ran out so fuzzed permanent
    faults fail loudly with a diagnosable error instead of hanging.
    """

    def __init__(self, message: str, attempts: int = 0,
                 elapsed_ns: int = 0, last_error=None):
        super().__init__(message)
        self.attempts = attempts
        self.elapsed_ns = elapsed_ns
        self.last_error = last_error


class Interrupt(SimulationError):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.engine.Process.interrupt`.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause
