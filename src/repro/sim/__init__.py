"""Deterministic discrete-event simulation kernel (nanosecond clock)."""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Process,
    Timeout,
)
from repro.sim.errors import (
    AlreadyTriggeredError,
    Interrupt,
    ScheduleInPastError,
    SimulationError,
)
from repro.sim.resources import (
    BandwidthServer,
    ProcessorSharingServer,
    Request,
    Resource,
    Store,
)
from repro.sim.rng import SimRandom
from repro.sim.tracing import NULL_TRACER, TraceFlow, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "AlreadyTriggeredError",
    "BandwidthServer",
    "Environment",
    "Event",
    "Interrupt",
    "NULL_TRACER",
    "Process",
    "ProcessorSharingServer",
    "Request",
    "Resource",
    "ScheduleInPastError",
    "SimRandom",
    "SimulationError",
    "Store",
    "Timeout",
    "TraceFlow",
    "TraceRecord",
    "Tracer",
]
