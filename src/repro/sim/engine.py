"""A deterministic discrete-event simulation kernel.

The kernel is intentionally simpy-like: simulation logic is written as
generator functions ("processes") that ``yield`` events.  Time is an integer
number of **nanoseconds**, which keeps arithmetic exact and makes hardware
latencies (a cache miss is ~80 ns, a QPI crossing ~60 ns) natural to express.

Determinism guarantees
----------------------
Events scheduled for the same timestamp fire in schedule order (a strictly
increasing sequence number breaks heap ties), so two runs with the same seed
produce identical traces.

Fast-path machinery
-------------------
Two optimisations keep the kernel cheap without changing any trace:

* **Same-timestamp fast lane** — the dominant schedule case is ``delay=0``
  (event hand-offs, resource grants, process resumes).  Those events go to
  a FIFO deque instead of the heap; :meth:`Environment.step` interleaves
  the lane with the heap by the same global ``(time, sequence)`` order the
  heap alone would have produced, so event order is bit-identical.
* **Event free-list** — one-shot events the kernel itself creates and fully
  controls (process bootstrap/resume hand-offs, interrupts, and the
  :meth:`Environment.pooled_timeout` variant used by the thread helpers)
  are recycled after their callbacks run instead of being reallocated.
  Pooled events MUST NOT be retained by callers past their firing; the
  public :meth:`Environment.timeout` is not pooled and stays safe to hold.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim.errors import (
    AlreadyTriggeredError,
    Interrupt,
    ScheduleInPastError,
    SimulationError,
)

#: Marker object distinguishing "not yet set" from a legitimate ``None`` value.
_PENDING = object()

#: Accuracy modes governing the adaptive fast paths.
#:
#: * ``"exact"``    — today's per-packet, bit-identical behaviour; seeded
#:   runs reproduce the determinism goldens byte-for-byte.
#: * ``"adaptive"`` — steady-state packet-train coalescing in the
#:   workloads plus early termination in the experiment runners; metrics
#:   stay within ~1% of exact while processing far fewer events.
#: * ``"fluid"``    — flow-level fluid modeling: while a flow's steady
#:   token (plus the environment-wide :attr:`Environment.rate_epoch`) is
#:   unchanged, whole steady intervals are advanced analytically with
#:   per-burst byte/packet/interrupt/doorbell counts derived in closed
#:   form; execution de-coalesces back to event granularity at every
#:   rate-change boundary.  Metrics stay within ~2% of exact.
ACCURACY_MODES = ("exact", "adaptive", "fluid")


def default_accuracy() -> str:
    """The process-wide accuracy default (``REPRO_ACCURACY`` env var)."""
    mode = os.environ.get("REPRO_ACCURACY") or "exact"
    if mode not in ACCURACY_MODES:
        raise ValueError(f"REPRO_ACCURACY must be one of {ACCURACY_MODES}, "
                         f"got {mode!r}")
    return mode


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; it is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, at which point it is scheduled and its
    callbacks run when the simulator reaches it in the event queue.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_scheduled",
                 "_pool_ok")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._scheduled = False
        self._pool_ok = False

    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event left the queue)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise SimulationError("event value read before it was triggered")
        return self._value

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        if self.triggered:
            raise AlreadyTriggeredError(f"{self!r} already triggered")
        self._value = value
        self.env.schedule(self, delay)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise AlreadyTriggeredError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self.env.schedule(self)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: int, value: Any = None):
        if delay < 0:
            raise ScheduleInPastError(f"negative timeout delay {delay}")
        super().__init__(env)
        self._value = value
        self.env.schedule(self, delay)


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ("_children", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._children = list(events)
        self._remaining = 0
        for event in self._children:
            if event.processed:
                continue
            self._remaining += 1
            event.callbacks.append(self._on_child)
        if self._remaining == 0:
            self.succeed([e.value for e in self._children])

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self._children])


class AnyOf(Event):
    """Fires when the first child event fires; value is that event."""

    __slots__ = ("_children",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        done = next((e for e in self._children if e.processed), None)
        if done is not None:
            self.succeed(done)
            return
        for event in self._children:
            event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        # First child wins: detach from the losers so long-lived events do
        # not accumulate dead callbacks (memory + dispatch cost in long
        # runs) and so late firings skip the triggered-check entirely.
        for child in self._children:
            if child is not event and child.callbacks is not None:
                try:
                    child.callbacks.remove(self._on_child)
                except ValueError:
                    pass
        if not event.ok:
            self.fail(event._exception)
            return
        self.succeed(event)


class Process(Event):
    """Drives a generator; the process event fires when the generator ends.

    The generator may yield any :class:`Event`; the process resumes with the
    event's value (or the event's exception is thrown into the generator).
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any],
                 name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise TypeError(f"process body must be a generator, "
                            f"got {type(generator).__name__}")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume the generator at time env.now via an
        # immediately-scheduled (pooled) initialisation event.
        init = env._pooled_event()
        init.callbacks.append(self._resume)
        init._value = None
        env.schedule(init)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            # Detach from whatever we were waiting on (even if it has
            # already triggered but not yet been processed — e.g. a
            # Timeout, whose value is assigned at construction).
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        interruption = self.env._pooled_event()
        interruption.callbacks.append(self._resume)
        interruption._exception = Interrupt(cause)
        self.env.schedule(interruption)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self.env._active_process = self
        try:
            if event._exception is not None:
                next_event = self._generator.throw(event._exception)
            else:
                next_event = self._generator.send(
                    None if event._value is _PENDING else event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except Interrupt:
            # The process chose not to handle its interruption: treat the
            # process as failed so waiters see the error.
            self.env._active_process = None
            self._exception = SimulationError(
                f"process {self.name!r} killed by unhandled interrupt")
            self.env.schedule(self)
            return
        self.env._active_process = None
        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {next_event!r}, "
                f"which is not an Event")
        if next_event.processed:
            # Already fired: resume on the next same-tick scheduler pass
            # through a pooled hand-off event on the fast lane (hot on
            # every ARFS cache hit; no heap traffic, no allocation).
            bounce = self.env._pooled_event()
            bounce.callbacks.append(self._resume)
            if next_event._exception is not None:
                bounce._exception = next_event._exception
            else:
                bounce._value = next_event._value
            self.env.schedule(bounce)
        else:
            self._waiting_on = next_event
            next_event.callbacks.append(self._resume)


class Environment:
    """The simulation clock and event queue."""

    def __init__(self, initial_time: int = 0,
                 accuracy: Optional[str] = None):
        if accuracy is None:
            accuracy = default_accuracy()
        if accuracy not in ACCURACY_MODES:
            raise ValueError(f"accuracy must be one of {ACCURACY_MODES}, "
                             f"got {accuracy!r}")
        #: Accuracy mode every model layer consults (see ACCURACY_MODES).
        self.accuracy = accuracy
        self._now = int(initial_time)
        self._queue: List[tuple] = []
        #: Same-timestamp fast lane: (sequence, event) pairs scheduled with
        #: delay 0, drained in global (time, sequence) order with the heap.
        self._lane: deque = deque()
        self._sequence = 0
        self._active_process: Optional[Process] = None
        #: Free-list of recycled one-shot events (see module docstring).
        self._pool: List[Event] = []
        #: Total events dispatched; the perf harness divides by wall time.
        self.events_processed = 0
        #: Bumped by every BandwidthServer.set_rate (fault throttles, link
        #: retraining).  The fluid tier folds this into its steady tokens
        #: so any rate change invalidates every in-flight steady interval.
        self.rate_epoch = 0
        #: The ``train_coalescing`` component: when cleared,
        #: :func:`repro.workloads.train.make_governor` hands out
        #: governors that never coalesce (inert in exact mode, where
        #: trains never form anyway).
        self.train_coalescing = True
        #: Wall span (ns) of the steady interval currently being charged,
        #: or 0 outside one.  Set by FluidRegion.interval(); bandwidth
        #: servers and rate estimators treat charges landing while it is
        #: nonzero as spread uniformly over the span instead of stacked
        #: at the current instant — the closed-form rate-share view that
        #: keeps one flow's coalesced interval from presenting phantom
        #: backlog or utilisation spikes to concurrent flows.
        self.fluid_span_ns = 0
        #: Identity of the flow charging the current steady interval
        #: (rate estimators key reservations by it, so a flow's next
        #: interval replaces its previous reservation instead of
        #: stacking with a stale tail of it).
        self.fluid_flow_id = 0

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def adaptive(self) -> bool:
        """True when the bounded-error fast paths may engage (any
        non-exact tier: train coalescing, early termination)."""
        return self.accuracy != "exact"

    @property
    def fluid(self) -> bool:
        """True for the fluid tier: closed-form steady-interval service."""
        return self.accuracy == "fluid"

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event construction ------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, int(delay), value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- pooled fast-path events -------------------------------------------

    def _pooled_event(self) -> Event:
        """A recycled pending event; recycled again after it fires.

        Only for one-shot events whose last reader is a callback: the
        object is reset and reused as soon as its callbacks have run.
        """
        pool = self._pool
        if pool:
            return pool.pop()
        event = Event(self)
        event._pool_ok = True
        return event

    def pooled_timeout(self, delay: int, value: Any = None) -> Event:
        """A :class:`Timeout`-equivalent drawn from the free list.

        The caller must yield/consume it immediately and never touch it
        after it fires (the thread helpers' ``yield thread.overlap(...)``
        pattern); use :meth:`timeout` for an event that is retained.
        """
        if delay < 0:
            raise ScheduleInPastError(f"negative timeout delay {delay}")
        event = self._pooled_event()
        event._value = value
        self.schedule(event, delay)
        return event

    # -- scheduling and execution -----------------------------------------

    def schedule(self, event: Event, delay: int = 0) -> None:
        if event._scheduled:
            return
        if delay == 0:
            # Same-timestamp fast lane: no heap traffic for the dominant
            # delay-0 case; sequence numbers keep global order intact.
            event._scheduled = True
            self._sequence += 1
            self._lane.append((self._sequence, event))
            return
        if delay < 0:
            raise ScheduleInPastError(
                f"cannot schedule {delay} ns in the past")
        event._scheduled = True
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + int(delay),
                                     self._sequence, event))

    def peek(self) -> Optional[int]:
        """Timestamp of the next event, or None if the queue is empty."""
        if self._lane:
            return self._now
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Process exactly one event (the globally (time, seq)-smallest)."""
        lane = self._lane
        event: Optional[Event] = None
        if lane:
            queue = self._queue
            if queue:
                head = queue[0]
                # A heap event at the current timestamp fires before lane
                # events scheduled after it (strict sequence order).
                if head[0] <= self._now and head[1] < lane[0][0]:
                    heapq.heappop(queue)
                    event = head[2]
            if event is None:
                event = lane.popleft()[1]
        else:
            if not self._queue:
                raise SimulationError("step() on an empty event queue")
            when, _seq, event = heapq.heappop(self._queue)
            self._now = when
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        if len(callbacks) == 1:
            # Inlined single-callback dispatch (the overwhelmingly common
            # case: one process waiting on one event).
            callbacks[0](event)
        else:
            for callback in callbacks:
                callback(event)
        if event._pool_ok:
            event.callbacks = []
            event._value = _PENDING
            event._exception = None
            event._scheduled = False
            self._pool.append(event)

    def run(self, until: Optional[int] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so rate computations over a
        fixed window are exact.
        """
        if until is not None:
            until = int(until)
            if until < self._now:
                raise ScheduleInPastError(
                    f"run(until={until}) but now={self._now}")
            while self._lane or self._queue:
                if not self._lane and self._queue[0][0] > until:
                    break
                self.step()
            self._now = max(self._now, until)
            return
        while self._lane or self._queue:
            self.step()

    def run_process(self, process: Process) -> Any:
        """Run until ``process`` finishes and return its value."""
        while not process.triggered:
            if not (self._lane or self._queue):
                raise SimulationError(
                    f"deadlock: process {process.name!r} cannot finish "
                    f"(event queue empty)")
            self.step()
        # Drain same-timestamp bookkeeping so .value is settled.
        return process.value

    def __repr__(self) -> str:
        return (f"<Environment now={self._now} "
                f"queued={len(self._queue) + len(self._lane)}>")
