"""Lightweight event tracing: instants, spans, and flows.

A :class:`Tracer` collects :class:`TraceRecord` entries.  Tracing is off
by default and costs one predicate check per emit when disabled, so hot
paths can trace unconditionally.  Three record shapes exist:

* **instant** (``phase="i"``) — a point event, the original shape every
  component emits (``pf_down``, ``failover.begin``, ...).
* **span** (``phase="X"``) — a duration: ``emit``-ed with ``dur`` ns, it
  renders as a slice on the source's track.
* **flow step** — a span that additionally carries a ``flow_id``: one
  packet or IO's journey through the machine.  Steps of one flow are
  connected by Perfetto/Chrome flow arrows (``s``/``t``/``f`` events),
  so a single packet can be followed wire → PF → DMA → LLC → app across
  component tracks.

Flows are built through :meth:`Tracer.begin_flow`, which returns a
:class:`TraceFlow` holding a **time cursor**: each :meth:`TraceFlow.step`
emits a span at the cursor and advances it by the step's duration, so a
critical path renders as a staircase of connected slices.  At most one
flow is active at a time (``Tracer.active_flow``); shared code like the
doorbell/completion paths contributes steps to whatever flow its caller
opened, which is how the NIC and NVMe stacks get flow tracing from the
same lines of code.

Collected traces export as Chrome trace-event JSON
(:meth:`Tracer.to_chrome_trace`) for ``chrome://tracing`` or
https://ui.perfetto.dev; metric time series and histogram summaries can
ride along as counter tracks / metadata rows.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: int
    source: str
    event: str
    payload: Any = None
    #: Chrome phase: "i" instant, "X" complete span.
    phase: str = "i"
    #: Span duration in ns (phase "X" only).
    dur: int = 0
    #: Flow membership: id shared by every step of one packet/IO journey.
    flow_id: Optional[int] = None
    #: "s" first step, "t" intermediate, "f" final step of the flow.
    flow_phase: Optional[str] = None

    def __str__(self) -> str:
        extra = f" {self.payload}" if self.payload is not None else ""
        if self.phase == "X":
            extra = f" (+{self.dur} ns){extra}"
        return f"[{self.time:>12} ns] {self.source}: {self.event}{extra}"


class TraceFlow:
    """One packet/IO journey: connected spans with a running time cursor.

    Besides the Perfetto staircase, a flow can accumulate **blame**: each
    step may name the latency *stage* it belongs to (``stage=``) and the
    nanoseconds that stage is answerable for (``blame_ns=``, defaulting
    to ``dur``), or pass a whole ``stages={name: ns}`` decomposition when
    one hop covers several stages.  Blame differs from the staircase
    duration wherever the model overlaps work (e.g. the NIC pipeline
    runs wire transit and DMA concurrently): stages carry the
    *overlap-residual* charges so that their sum equals the latency the
    model actually returned.  :meth:`seal` hands the accumulated stages
    to the tracer's blame collector together with that end-to-end total,
    which is where the stage-sum == end-to-end conservation check lives.

    Flows with ``record=False`` are *blame-only*: they accumulate stages
    and participate in ``active_flow`` plumbing but emit no
    :class:`TraceRecord`, so throughput paths can attribute latency
    without perturbing traces, fingerprints, or memory.
    """

    __slots__ = ("tracer", "flow_id", "cursor", "steps", "record",
                 "stages")

    def __init__(self, tracer: "Tracer", flow_id: int, start_ns: int,
                 record: bool = True):
        self.tracer = tracer
        self.flow_id = flow_id
        self.cursor = int(start_ns)
        self.steps = 0
        self.record = record
        self.stages: Optional[Dict[str, int]] = None

    def _charge(self, stage: Optional[str], blame_ns: Optional[int],
                dur: int, stages: Optional[Dict[str, int]]) -> None:
        acc = self.stages
        if acc is None:
            acc = self.stages = {}
        if stages is not None:
            for name, ns in stages.items():
                ns = int(ns)
                if ns > 0:
                    acc[name] = acc.get(name, 0) + ns
        elif stage is not None:
            ns = dur if blame_ns is None else int(blame_ns)
            if ns > 0:
                acc[stage] = acc.get(stage, 0) + ns

    def step(self, source: str, event: str, dur: int = 0,
             payload: Any = None, *, stage: Optional[str] = None,
             blame_ns: Optional[int] = None,
             stages: Optional[Dict[str, int]] = None) -> None:
        """Emit one stage of the journey at the cursor; advance it by
        ``dur`` so the next stage starts where this one ended."""
        dur = int(dur)
        if dur < 0:
            dur = 0
        if self.record:
            phase = "s" if self.steps == 0 else "t"
            self.tracer._append(TraceRecord(
                self.cursor, source, event, payload, "X", dur,
                self.flow_id, phase))
        self.steps += 1
        self.cursor += dur
        if self.tracer.blame is not None:
            self._charge(stage, blame_ns, dur, stages)

    def finish(self, source: str, event: str, dur: int = 0,
               payload: Any = None, *, stage: Optional[str] = None,
               blame_ns: Optional[int] = None,
               stages: Optional[Dict[str, int]] = None) -> None:
        """Emit the terminal stage and close the flow."""
        dur = int(dur)
        if dur < 0:
            dur = 0
        if self.record:
            self.tracer._append(TraceRecord(
                self.cursor, source, event, payload, "X", dur,
                self.flow_id, "f"))
        self.steps += 1
        self.cursor += dur
        if self.tracer.blame is not None:
            self._charge(stage, blame_ns, dur, stages)
        if self.tracer.active_flow is self:
            self.tracer.active_flow = None

    def charge(self, stage: str, ns: int) -> None:
        """Charge ``ns`` to ``stage`` without emitting a span — how the
        burst paths attribute CPU costs that have no trace step."""
        if self.tracer.blame is None:
            return
        ns = int(ns)
        if ns <= 0:
            return
        acc = self.stages
        if acc is None:
            acc = self.stages = {}
        acc[stage] = acc.get(stage, 0) + ns

    def seal(self, total_ns: int, represented: int = 1,
             domain: str = "flow") -> None:
        """Close the flow for blame purposes: report the accumulated
        stage charges against the end-to-end total the caller actually
        returned.  ``represented`` is how many base units (bursts,
        requests) this flow stands for — adaptive/fluid packet trains
        seal once per train with ``represented=k`` and the collector
        apportions stage time across them.  Safe to call after
        :meth:`finish`; a no-op when no blame collector is attached."""
        if self.tracer.active_flow is self:
            self.tracer.active_flow = None
        blame = self.tracer.blame
        if blame is not None:
            blame.add(self.stages or {}, int(total_ns),
                      represented=represented, domain=domain)


@dataclass
class Tracer:
    """Collects trace records, optionally filtered by source prefix."""

    enabled: bool = False
    source_prefix: Optional[str] = None
    records: List[TraceRecord] = field(default_factory=list)
    sinks: List[Callable[[TraceRecord], None]] = field(default_factory=list)
    #: Flow tracing is opt-in on top of ``enabled``: several experiments
    #: and tests flip ``enabled`` for instant events and must not start
    #: collecting per-packet staircases as a side effect.
    flows: bool = False
    #: Cap on *recorded* flows per tracer: latency loops open one flow
    #: per message, and an unbounded run would otherwise collect
    #: millions of spans.  Rather than keeping the first ``flow_limit``
    #: flows (which biases traces towards warm-up), the tracer stride-
    #: samples: when the cap is hit the stride doubles (keeping every
    #: 2nd, 4th, ... candidate, offset seeded from the sim clock) and
    #: already-collected flows outside the new stride are evicted, so a
    #: long run ends with <= ``flow_limit`` flows spread across its
    #: whole duration.  Runs that never hit the cap record exactly the
    #: flows (and ids) they always did — exact-mode traces stay
    #: bit-identical.
    flow_limit: int = 1000
    #: The flow currently being built (shared paths contribute steps to
    #: it); None outside an open flow.
    active_flow: Optional[TraceFlow] = None
    #: Latency-blame collector (:class:`repro.obs.blame.BlameCollector`
    #: or None).  When attached, ``begin_flow`` opens blame-only flows
    #: even past the flow cap / with ``flows`` off, and sealed flows
    #: report their per-stage charges to it.
    blame: Optional[Any] = None
    #: Burst-path blame sampling: :meth:`begin_blame` admits one call in
    #: ``blame_stride``.  Throughput loops open one blame flow per burst
    #: and bursts are statistically exchangeable, so sampling keeps the
    #: per-stage digests and shares unbiased while bounding attribution
    #: cost (the obs-overhead ceiling gates blame-enabled runs at the
    #: same 2% as the rest of the stack).  Latency paths open their
    #: flows through :meth:`begin_flow`, which never samples — every
    #: request's decomposition is charged and conservation-checked.
    blame_stride: int = 64
    #: Flow candidates seen (every ``begin_flow`` call) — doubles as the
    #: next flow id, so ids equal candidate indices.
    _flow_seen: int = 0
    #: ``begin_blame`` candidates seen (separate counter so the sampling
    #: phase is independent of interleaved ``begin_flow`` traffic).
    _blame_seen: int = 0
    _flow_stride: int = 1
    _flow_offset: int = 0
    #: Ids of currently recorded flows (survivors of stride eviction).
    _flow_ids: List[int] = field(default_factory=list)

    # ------------------------------------------------------------- emit

    def _append(self, record: TraceRecord) -> None:
        if self.source_prefix and not record.source.startswith(
                self.source_prefix):
            return
        self.records.append(record)
        for sink in self.sinks:
            sink(record)

    def emit(self, time: int, source: str, event: str,
             payload: Any = None) -> None:
        if not self.enabled:
            return
        self._append(TraceRecord(time, source, event, payload))

    def span(self, time: int, source: str, event: str, dur: int,
             payload: Any = None) -> None:
        """A standalone duration slice (no flow membership)."""
        if not self.enabled:
            return
        self._append(TraceRecord(time, source, event, payload, "X",
                                 max(0, int(dur))))

    def begin_flow(self, start_ns: int) -> Optional[TraceFlow]:
        """Open a flow at ``start_ns`` and make it the active flow.

        Returns None when neither flow tracing nor blame collection
        wants the flow — callers guard their step/finish calls on the
        returned handle, while shared paths consult :attr:`active_flow`.
        With a blame collector attached, flows past the recording cap
        (or with ``flows`` off entirely) come back *blame-only*
        (``record=False``): they accumulate stage charges but emit no
        trace records.
        """
        if not self.enabled:
            return None
        index = self._flow_seen
        self._flow_seen = index + 1
        record = False
        if self.flows:
            record = self._admit_flow(index, start_ns)
        if not record and self.blame is None:
            return None
        flow = TraceFlow(self, index, start_ns, record=record)
        self.active_flow = flow
        return flow

    def begin_blame(self, start_ns: int) -> Optional[TraceFlow]:
        """Open a blame-only flow (no trace records, ever) — what the
        throughput/burst paths use so stage attribution works without
        flow tracing and without perturbing recorded traces.  Returns
        None unless a blame collector is attached, and only for one
        call in :attr:`blame_stride` (deterministic burst sampling)."""
        if self.blame is None or not self.enabled:
            return None
        index = self._blame_seen
        self._blame_seen = index + 1
        if self.blame_stride > 1 and index % self.blame_stride:
            return None
        flow = TraceFlow(self, self._flow_seen, start_ns, record=False)
        self._flow_seen += 1
        self.active_flow = flow
        return flow

    # ------------------------------------------------- flow admission

    def _admit_flow(self, index: int, start_ns: int) -> bool:
        """Deterministic stride sampling: admit candidate ``index`` iff
        it lies on the current stride lattice; double the stride (and
        evict off-lattice survivors) whenever the cap is reached."""
        if self.flow_limit <= 0:
            return False
        if (index - self._flow_offset) % self._flow_stride:
            return False
        if len(self._flow_ids) >= self.flow_limit:
            self._double_stride(start_ns)
            if (index - self._flow_offset) % self._flow_stride:
                return False
        self._flow_ids.append(index)
        return True

    def _double_stride(self, start_ns: int) -> None:
        """Halve the kept-flow density.  The surviving parity class is
        seeded from the sim clock at overflow time — deterministic for a
        given run, but not systematically biased towards even candidate
        indices.  The new offset stays congruent to the old one modulo
        the old stride, so survivors remain a subset of what was already
        collected and no recorded flow is ever half-evicted."""
        seed = int(start_ns)
        while (len(self._flow_ids) >= self.flow_limit
               and self._flow_stride < (1 << 60)):
            bit = (seed >> (self._flow_stride.bit_length() - 1)) & 1
            self._flow_offset += bit * self._flow_stride
            self._flow_stride *= 2
            self._flow_ids = [
                i for i in self._flow_ids
                if (i - self._flow_offset) % self._flow_stride == 0]
        kept = set(self._flow_ids)
        self.records = [r for r in self.records
                        if r.flow_id is None or r.flow_id in kept]

    # ----------------------------------------------------------- queries

    def by_event(self, event: str) -> List[TraceRecord]:
        return [r for r in self.records if r.event == event]

    def by_source(self, source: str) -> List[TraceRecord]:
        return [r for r in self.records if r.source == source]

    def by_flow(self, flow_id: int) -> List[TraceRecord]:
        return [r for r in self.records if r.flow_id == flow_id]

    def counts(self) -> Dict[str, int]:
        return Counter(record.event for record in self.records)

    # ------------------------------------------------------------ export

    @staticmethod
    def _args_of(record: TraceRecord) -> Optional[dict]:
        if record.payload is None:
            return None
        if isinstance(record.payload, dict):
            # Structured payloads become structured Perfetto args.
            return dict(record.payload)
        return {"payload": str(record.payload)}

    def to_chrome_trace(
            self, process_name: str = "repro",
            counters: Optional[Dict[str, Sequence[Tuple[int, float]]]] = None,
            histograms: Optional[Dict[str, Dict[str, float]]] = None) -> str:
        """The collected records as Chrome trace-event JSON.

        Each source becomes one thread row; instants stay point events,
        spans become "X" slices, and flow steps additionally emit
        ``s``/``t``/``f`` arrow events binding the slices of one packet's
        journey together.  ``counters`` (name -> [(time_ns, value), ...])
        render as Perfetto counter tracks; ``histograms`` (name ->
        summary dict) are attached as metadata rows.  Load the string in
        ``chrome://tracing`` or https://ui.perfetto.dev.  Timestamps are
        microseconds in that format, so sim nanoseconds map to fractional
        ``ts`` values.
        """
        sources = sorted({record.source for record in self.records})
        tids = {source: tid for tid, source in enumerate(sources)}
        events: List[dict] = [{
            "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
            "args": {"name": process_name},
        }]
        for source, tid in tids.items():
            events.append({"name": "thread_name", "ph": "M", "pid": 0,
                           "tid": tid, "args": {"name": source}})
        for record in self.records:
            event = {
                "name": record.event,
                "pid": 0,
                "tid": tids[record.source],
                "ts": record.time / 1000,
                "cat": record.event.split(".")[0],
            }
            if record.phase == "X":
                event["ph"] = "X"
                event["dur"] = record.dur / 1000
            else:
                event["ph"] = "i"
                event["s"] = "t"    # thread-scoped instant
            args = self._args_of(record)
            if args is not None:
                event["args"] = args
            events.append(event)
            if record.flow_id is not None and record.flow_phase:
                # Arrow events bind to the slice enclosing their ts on
                # the same thread; "f" needs bp=e to attach to the
                # slice it ends in rather than the next one.
                arrow = {
                    "name": "flow",
                    "cat": "flow",
                    "ph": record.flow_phase,
                    "id": record.flow_id,
                    "pid": 0,
                    "tid": tids[record.source],
                    "ts": record.time / 1000,
                }
                if record.flow_phase == "f":
                    arrow["bp"] = "e"
                events.append(arrow)
        for name, series in (counters or {}).items():
            for time_ns, value in series:
                events.append({
                    "name": name, "ph": "C", "pid": 0,
                    "ts": time_ns / 1000,
                    "args": {"value": value},
                })
        for name, summary in (histograms or {}).items():
            events.append({
                "name": f"histogram:{name}", "ph": "M", "pid": 0, "tid": 0,
                "args": {str(k): v for k, v in summary.items()},
            })
        return json.dumps({"traceEvents": events,
                           "displayTimeUnit": "ns"})

    def clear(self) -> None:
        self.records.clear()
        self.active_flow = None
        self._flow_seen = 0
        self._blame_seen = 0
        self._flow_stride = 1
        self._flow_offset = 0
        self._flow_ids = []


#: Shared no-op tracer used when a component is built without one.
NULL_TRACER = Tracer(enabled=False)
