"""Lightweight event tracing.

A :class:`Tracer` collects (time, source, event, payload) tuples.  Tracing
is off by default and costs one predicate check per emit when disabled, so
hot paths can trace unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: int
    source: str
    event: str
    payload: Any = None

    def __str__(self) -> str:
        extra = f" {self.payload}" if self.payload is not None else ""
        return f"[{self.time:>12} ns] {self.source}: {self.event}{extra}"


@dataclass
class Tracer:
    """Collects trace records, optionally filtered by source prefix."""

    enabled: bool = False
    source_prefix: Optional[str] = None
    records: List[TraceRecord] = field(default_factory=list)
    sinks: List[Callable[[TraceRecord], None]] = field(default_factory=list)

    def emit(self, time: int, source: str, event: str,
             payload: Any = None) -> None:
        if not self.enabled:
            return
        if self.source_prefix and not source.startswith(self.source_prefix):
            return
        record = TraceRecord(time, source, event, payload)
        self.records.append(record)
        for sink in self.sinks:
            sink(record)

    def by_event(self, event: str) -> List[TraceRecord]:
        return [r for r in self.records if r.event == event]

    def by_source(self, source: str) -> List[TraceRecord]:
        return [r for r in self.records if r.source == source]

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for record in self.records:
            tally[record.event] = tally.get(record.event, 0) + 1
        return tally

    def clear(self) -> None:
        self.records.clear()


#: Shared no-op tracer used when a component is built without one.
NULL_TRACER = Tracer(enabled=False)
