"""Lightweight event tracing.

A :class:`Tracer` collects (time, source, event, payload) tuples.  Tracing
is off by default and costs one predicate check per emit when disabled, so
hot paths can trace unconditionally.  Collected traces can be exported as
Chrome trace-event JSON (:meth:`Tracer.to_chrome_trace`) and inspected in
``chrome://tracing`` or Perfetto.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: int
    source: str
    event: str
    payload: Any = None

    def __str__(self) -> str:
        extra = f" {self.payload}" if self.payload is not None else ""
        return f"[{self.time:>12} ns] {self.source}: {self.event}{extra}"


@dataclass
class Tracer:
    """Collects trace records, optionally filtered by source prefix."""

    enabled: bool = False
    source_prefix: Optional[str] = None
    records: List[TraceRecord] = field(default_factory=list)
    sinks: List[Callable[[TraceRecord], None]] = field(default_factory=list)

    def emit(self, time: int, source: str, event: str,
             payload: Any = None) -> None:
        if not self.enabled:
            return
        if self.source_prefix and not source.startswith(self.source_prefix):
            return
        record = TraceRecord(time, source, event, payload)
        self.records.append(record)
        for sink in self.sinks:
            sink(record)

    def by_event(self, event: str) -> List[TraceRecord]:
        return [r for r in self.records if r.event == event]

    def by_source(self, source: str) -> List[TraceRecord]:
        return [r for r in self.records if r.source == source]

    def counts(self) -> Dict[str, int]:
        return Counter(record.event for record in self.records)

    def to_chrome_trace(self, process_name: str = "repro") -> str:
        """The collected records as Chrome trace-event JSON.

        Each source becomes one thread row of instant events; load the
        string (or a file holding it) in ``chrome://tracing`` or
        https://ui.perfetto.dev.  Timestamps are microseconds in that
        format, so sim nanoseconds map to fractional ``ts`` values.
        """
        sources = sorted({record.source for record in self.records})
        tids = {source: tid for tid, source in enumerate(sources)}
        events: List[dict] = [{
            "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
            "args": {"name": process_name},
        }]
        for source, tid in tids.items():
            events.append({"name": "thread_name", "ph": "M", "pid": 0,
                           "tid": tid, "args": {"name": source}})
        for record in self.records:
            event = {
                "name": record.event,
                "ph": "i",          # instant event
                "s": "t",           # thread-scoped
                "pid": 0,
                "tid": tids[record.source],
                "ts": record.time / 1000,
                "cat": record.event.split(".")[0],
            }
            if record.payload is not None:
                event["args"] = {"payload": str(record.payload)}
            events.append(event)
        return json.dumps({"traceEvents": events,
                           "displayTimeUnit": "ns"})

    def clear(self) -> None:
        self.records.clear()


#: Shared no-op tracer used when a component is built without one.
NULL_TRACER = Tracer(enabled=False)
