"""Lightweight event tracing: instants, spans, and flows.

A :class:`Tracer` collects :class:`TraceRecord` entries.  Tracing is off
by default and costs one predicate check per emit when disabled, so hot
paths can trace unconditionally.  Three record shapes exist:

* **instant** (``phase="i"``) — a point event, the original shape every
  component emits (``pf_down``, ``failover.begin``, ...).
* **span** (``phase="X"``) — a duration: ``emit``-ed with ``dur`` ns, it
  renders as a slice on the source's track.
* **flow step** — a span that additionally carries a ``flow_id``: one
  packet or IO's journey through the machine.  Steps of one flow are
  connected by Perfetto/Chrome flow arrows (``s``/``t``/``f`` events),
  so a single packet can be followed wire → PF → DMA → LLC → app across
  component tracks.

Flows are built through :meth:`Tracer.begin_flow`, which returns a
:class:`TraceFlow` holding a **time cursor**: each :meth:`TraceFlow.step`
emits a span at the cursor and advances it by the step's duration, so a
critical path renders as a staircase of connected slices.  At most one
flow is active at a time (``Tracer.active_flow``); shared code like the
doorbell/completion paths contributes steps to whatever flow its caller
opened, which is how the NIC and NVMe stacks get flow tracing from the
same lines of code.

Collected traces export as Chrome trace-event JSON
(:meth:`Tracer.to_chrome_trace`) for ``chrome://tracing`` or
https://ui.perfetto.dev; metric time series and histogram summaries can
ride along as counter tracks / metadata rows.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: int
    source: str
    event: str
    payload: Any = None
    #: Chrome phase: "i" instant, "X" complete span.
    phase: str = "i"
    #: Span duration in ns (phase "X" only).
    dur: int = 0
    #: Flow membership: id shared by every step of one packet/IO journey.
    flow_id: Optional[int] = None
    #: "s" first step, "t" intermediate, "f" final step of the flow.
    flow_phase: Optional[str] = None

    def __str__(self) -> str:
        extra = f" {self.payload}" if self.payload is not None else ""
        if self.phase == "X":
            extra = f" (+{self.dur} ns){extra}"
        return f"[{self.time:>12} ns] {self.source}: {self.event}{extra}"


class TraceFlow:
    """One packet/IO journey: connected spans with a running time cursor."""

    __slots__ = ("tracer", "flow_id", "cursor", "steps")

    def __init__(self, tracer: "Tracer", flow_id: int, start_ns: int):
        self.tracer = tracer
        self.flow_id = flow_id
        self.cursor = int(start_ns)
        self.steps = 0

    def step(self, source: str, event: str, dur: int = 0,
             payload: Any = None) -> None:
        """Emit one stage of the journey at the cursor; advance it by
        ``dur`` so the next stage starts where this one ended."""
        dur = int(dur)
        if dur < 0:
            dur = 0
        phase = "s" if self.steps == 0 else "t"
        self.tracer._append(TraceRecord(
            self.cursor, source, event, payload, "X", dur,
            self.flow_id, phase))
        self.steps += 1
        self.cursor += dur

    def finish(self, source: str, event: str, dur: int = 0,
               payload: Any = None) -> None:
        """Emit the terminal stage and close the flow."""
        dur = int(dur)
        if dur < 0:
            dur = 0
        self.tracer._append(TraceRecord(
            self.cursor, source, event, payload, "X", dur,
            self.flow_id, "f"))
        self.steps += 1
        self.cursor += dur
        if self.tracer.active_flow is self:
            self.tracer.active_flow = None


@dataclass
class Tracer:
    """Collects trace records, optionally filtered by source prefix."""

    enabled: bool = False
    source_prefix: Optional[str] = None
    records: List[TraceRecord] = field(default_factory=list)
    sinks: List[Callable[[TraceRecord], None]] = field(default_factory=list)
    #: Flow tracing is opt-in on top of ``enabled``: several experiments
    #: and tests flip ``enabled`` for instant events and must not start
    #: collecting per-packet staircases as a side effect.
    flows: bool = False
    #: Hard cap on flows per tracer: latency loops open one flow per
    #: message, and an unbounded run would otherwise collect millions of
    #: spans.  ``begin_flow`` returns None once the cap is reached.
    flow_limit: int = 1000
    #: The flow currently being built (shared paths contribute steps to
    #: it); None outside an open flow.
    active_flow: Optional[TraceFlow] = None
    _next_flow_id: int = 0

    # ------------------------------------------------------------- emit

    def _append(self, record: TraceRecord) -> None:
        if self.source_prefix and not record.source.startswith(
                self.source_prefix):
            return
        self.records.append(record)
        for sink in self.sinks:
            sink(record)

    def emit(self, time: int, source: str, event: str,
             payload: Any = None) -> None:
        if not self.enabled:
            return
        self._append(TraceRecord(time, source, event, payload))

    def span(self, time: int, source: str, event: str, dur: int,
             payload: Any = None) -> None:
        """A standalone duration slice (no flow membership)."""
        if not self.enabled:
            return
        self._append(TraceRecord(time, source, event, payload, "X",
                                 max(0, int(dur))))

    def begin_flow(self, start_ns: int) -> Optional[TraceFlow]:
        """Open a flow at ``start_ns`` and make it the active flow.

        Returns None when flow tracing is off (or the flow cap is hit) —
        callers guard their step/finish calls on the returned handle,
        while shared paths consult :attr:`active_flow`.
        """
        if not (self.enabled and self.flows):
            return None
        if self._next_flow_id >= self.flow_limit:
            return None
        flow = TraceFlow(self, self._next_flow_id, start_ns)
        self._next_flow_id += 1
        self.active_flow = flow
        return flow

    # ----------------------------------------------------------- queries

    def by_event(self, event: str) -> List[TraceRecord]:
        return [r for r in self.records if r.event == event]

    def by_source(self, source: str) -> List[TraceRecord]:
        return [r for r in self.records if r.source == source]

    def by_flow(self, flow_id: int) -> List[TraceRecord]:
        return [r for r in self.records if r.flow_id == flow_id]

    def counts(self) -> Dict[str, int]:
        return Counter(record.event for record in self.records)

    # ------------------------------------------------------------ export

    @staticmethod
    def _args_of(record: TraceRecord) -> Optional[dict]:
        if record.payload is None:
            return None
        if isinstance(record.payload, dict):
            # Structured payloads become structured Perfetto args.
            return dict(record.payload)
        return {"payload": str(record.payload)}

    def to_chrome_trace(
            self, process_name: str = "repro",
            counters: Optional[Dict[str, Sequence[Tuple[int, float]]]] = None,
            histograms: Optional[Dict[str, Dict[str, float]]] = None) -> str:
        """The collected records as Chrome trace-event JSON.

        Each source becomes one thread row; instants stay point events,
        spans become "X" slices, and flow steps additionally emit
        ``s``/``t``/``f`` arrow events binding the slices of one packet's
        journey together.  ``counters`` (name -> [(time_ns, value), ...])
        render as Perfetto counter tracks; ``histograms`` (name ->
        summary dict) are attached as metadata rows.  Load the string in
        ``chrome://tracing`` or https://ui.perfetto.dev.  Timestamps are
        microseconds in that format, so sim nanoseconds map to fractional
        ``ts`` values.
        """
        sources = sorted({record.source for record in self.records})
        tids = {source: tid for tid, source in enumerate(sources)}
        events: List[dict] = [{
            "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
            "args": {"name": process_name},
        }]
        for source, tid in tids.items():
            events.append({"name": "thread_name", "ph": "M", "pid": 0,
                           "tid": tid, "args": {"name": source}})
        for record in self.records:
            event = {
                "name": record.event,
                "pid": 0,
                "tid": tids[record.source],
                "ts": record.time / 1000,
                "cat": record.event.split(".")[0],
            }
            if record.phase == "X":
                event["ph"] = "X"
                event["dur"] = record.dur / 1000
            else:
                event["ph"] = "i"
                event["s"] = "t"    # thread-scoped instant
            args = self._args_of(record)
            if args is not None:
                event["args"] = args
            events.append(event)
            if record.flow_id is not None and record.flow_phase:
                # Arrow events bind to the slice enclosing their ts on
                # the same thread; "f" needs bp=e to attach to the
                # slice it ends in rather than the next one.
                arrow = {
                    "name": "flow",
                    "cat": "flow",
                    "ph": record.flow_phase,
                    "id": record.flow_id,
                    "pid": 0,
                    "tid": tids[record.source],
                    "ts": record.time / 1000,
                }
                if record.flow_phase == "f":
                    arrow["bp"] = "e"
                events.append(arrow)
        for name, series in (counters or {}).items():
            for time_ns, value in series:
                events.append({
                    "name": name, "ph": "C", "pid": 0,
                    "ts": time_ns / 1000,
                    "args": {"value": value},
                })
        for name, summary in (histograms or {}).items():
            events.append({
                "name": f"histogram:{name}", "ph": "M", "pid": 0, "tid": 0,
                "args": {str(k): v for k, v in summary.items()},
            })
        return json.dumps({"traceEvents": events,
                           "displayTimeUnit": "ns"})

    def clear(self) -> None:
        self.records.clear()
        self.active_flow = None


#: Shared no-op tracer used when a component is built without one.
NULL_TRACER = Tracer(enabled=False)
