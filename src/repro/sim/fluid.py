"""Fluid-flow steady-interval coordination (``--accuracy=fluid``).

The fluid tier extends train coalescing (PR 3) from packet bursts to
flow-level fluid modeling: while every input a flow's service depends on
is unchanged, the simulator advances a whole *steady interval* in one
event, deriving per-flow byte/packet/interrupt/doorbell counts from
closed-form rate shares over the ``BandwidthServer`` queues instead of
replaying each burst.

:class:`FluidRegion` is the per-environment coordinator.  It does three
things:

* **Token extension** — folds the environment-wide
  :attr:`~repro.sim.engine.Environment.rate_epoch` (bumped by every
  ``BandwidthServer.set_rate``: fault throttles, PCIe retraining) into
  each flow's ``steady_token``, so *any* rate change anywhere in the
  machine de-coalesces *every* fluid flow at its next planning point.
  Per-flow invalidation (core migration, PF liveness, steering epoch,
  moderation budget, wire impairment) rides on the same tokens
  ``TrainGovernor`` already tracks.
* **Interval sizing policy** — a steady interval may span many ring
  wraps (the exact model attaches no cost to a wrap; doorbells,
  completions and interrupts are still charged per burst in closed
  form) but never more than ``1/WALL_SLICES`` of the measurement
  window: this bounds both the convergence loop's blind spot and the
  worst-case lag between a fault firing and the fluid flows observing
  it.
* **Accounting** — counts intervals granted, bursts advanced
  analytically, and invalidations, for tests and the perf harness.

The region is deliberately passive: governors
(:class:`repro.workloads.train.FluidGovernor`) consult it at every
planning point; it never schedules events itself.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.sim.engine import Environment

#: A steady interval never exceeds this fraction (1/N) of the
#: measurement window, so run_until_converged still sees fresh
#: estimates every slice and a mid-run rate change is observed within
#: one slice.  8 slices bound the fault-observation lag at 12.5% of the
#: window while letting the fig08 quick point coalesce ~50-burst
#: intervals (16 slices left a third of the possible speedup on the
#: table for no measurable fidelity gain — deviations are identical to
#: three decimal places either way).
WALL_SLICES = 8

#: Absolute ceiling on a steady interval's simulated wall span.  The
#: window-relative cap above assumes the nominal duration *is* the
#: horizon, but some experiments stop early on an external condition
#: (fig13 runs I/O streams with a long nominal duration and stops when
#: the colocated PageRank finishes); without an absolute bound a
#: governor could charge traffic far past the point where the run
#: actually ends, inflating rate meters and outrunning contention that
#: the co-runner should have observed.  It also bounds the error a
#: windowed rate sampler sees (fig14 samples per-PF bytes over 50 ms
#: windows): a coalesced train books its bytes at one instant, so each
#: window edge can gain or lose at most one interval's worth of
#: traffic — 1 ms caps that at 2% of a 50 ms window.
MAX_INTERVAL_WALL_NS = 1_000_000


class FluidRegion:
    """Coordinates closed-form steady-interval service for one
    :class:`~repro.sim.engine.Environment`."""

    def __init__(self, env: Environment):
        self.env = env
        #: Number of fluid governors subscribed.
        self.flows = 0
        #: Steady intervals granted (plans with k > 1).
        self.steady_intervals = 0
        #: Bursts advanced analytically instead of event-by-event.
        self.bursts_advanced = 0
        #: Token mismatches that forced a de-coalesce back to k=1.
        self.invalidations = 0

    # -- subscription -----------------------------------------------------

    def register(self) -> None:
        self.flows += 1

    # -- invalidation tokens ----------------------------------------------

    def token(self, flow_token) -> tuple:
        """The flow token extended with every region-wide invalidation
        input (currently the global rate epoch)."""
        return (flow_token, self.env.rate_epoch)

    # -- interval sizing ---------------------------------------------------

    def wall_cap_ns(self, warmup_ns: int, duration_ns: int) -> int:
        """Longest steady interval (in simulated wall time) allowed for
        a run with this measurement window."""
        cap = (int(duration_ns) - int(warmup_ns)) // WALL_SLICES
        return max(1, min(cap, MAX_INTERVAL_WALL_NS))

    @contextmanager
    def interval(self, span_ns: int, flow_id: int = 0):
        """Mark the charges issued inside the block as one steady
        interval of flow ``flow_id`` spanning ``span_ns`` of simulated
        wall time.

        While active, ``RateEstimator`` registers the bytes as a
        per-flow rate reservation over the span, so concurrent flows'
        load-factor reads see the interval's *average* rate — the
        closed-form rate-share semantics — instead of the instantaneous
        spike a lump-sum bucket deposit would produce.
        ``BandwidthServer`` queue backlog is deliberately *not*
        discounted: the coalesced charge is real aggregate service, and
        flows sharing the server (a colocated analytics job crossing
        the same interconnect, say) must still queue behind it exactly
        as they would behind the equivalent burst sequence.  Nested
        intervals keep the innermost span.
        """
        env = self.env
        prev_span = env.fluid_span_ns
        prev_flow = env.fluid_flow_id
        env.fluid_span_ns = max(0, int(span_ns))
        env.fluid_flow_id = flow_id
        try:
            yield
        finally:
            env.fluid_span_ns = prev_span
            env.fluid_flow_id = prev_flow

    # -- accounting ---------------------------------------------------------

    def grant(self, nbursts: int) -> None:
        self.steady_intervals += 1
        self.bursts_advanced += nbursts

    def invalidated(self) -> None:
        self.invalidations += 1


def fluid_region(env: Environment) -> FluidRegion:
    """The environment's (lazily created) fluid coordinator."""
    region = getattr(env, "_fluid_region", None)
    if region is None:
        region = FluidRegion(env)
        env._fluid_region = region
    return region
