"""The regression corpus: shrunk repros serialized for replay.

Layout: one JSON file per entry in the corpus directory (the repo
commits ``tests/corpus/``).  An entry records everything needed to
re-run the case bit-identically and to notice drift::

    {
      "case":        { ... FuzzCase.to_dict() ... },
      "invariants":  ["conservation", ...],   # what was checked
      "violations":  ["no_reorder"],          # names seen when recorded
                                              # ([] = regression now fixed
                                              #  or determinism pin)
      "fingerprint": "sha256...",             # exact-mode observation
      "found": {"master_seed": 0, "index": 17}
    }

Replay re-runs the case with the recorded invariant selection and
demands (a) the same violation *names* and (b) a byte-identical
observation fingerprint — the same policy as the determinism goldens: a
changed fingerprint is a behaviour change someone must explain.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, List, Optional

from repro.fuzz.runner import run_case

_SAFE = re.compile(r"[^A-Za-z0-9._-]")


def entry_path(directory: str, case_id: str) -> str:
    return os.path.join(directory, f"{_SAFE.sub('_', case_id)}.json")


def save_entry(directory: str, entry: Dict) -> str:
    os.makedirs(directory, exist_ok=True)
    path = entry_path(directory, entry["case"]["case_id"])
    with open(path, "w") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_corpus(directory: str) -> List[Dict]:
    if not os.path.isdir(directory):
        return []
    entries = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(directory, name)) as handle:
            entry = json.load(handle)
        entry["_file"] = name
        entries.append(entry)
    return entries


def replay_entry(entry: Dict) -> Dict:
    """Re-run one corpus entry; returns ``{ok, mismatches, result}``."""
    result = run_case(entry["case"], invariants=entry.get("invariants"))
    mismatches: List[str] = []
    want_names = sorted(set(entry.get("violations", [])))
    got_names = sorted({v["invariant"] for v in result["violations"]})
    if want_names != got_names:
        mismatches.append(f"violations changed: recorded {want_names}, "
                          f"replay got {got_names}")
    recorded = entry.get("fingerprint")
    if recorded and result["fingerprint"] != recorded:
        mismatches.append(f"fingerprint changed: recorded "
                          f"{recorded[:16]}..., replay got "
                          f"{result['fingerprint'][:16]}...")
    return {"ok": not mismatches, "mismatches": mismatches,
            "result": result}


def replay_corpus(directory: str,
                  entries: Optional[List[Dict]] = None) -> Dict:
    """Replay every committed repro; returns a summary dict."""
    entries = load_corpus(directory) if entries is None else entries
    replays = []
    for entry in entries:
        outcome = replay_entry(entry)
        replays.append({"case_id": entry["case"]["case_id"],
                        "file": entry.get("_file"),
                        "ok": outcome["ok"],
                        "mismatches": outcome["mismatches"]})
    return {"total": len(replays),
            "failed": sum(1 for r in replays if not r["ok"]),
            "replays": replays}
