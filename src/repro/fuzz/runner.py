"""Execute one fuzz case and collect the observation the invariants need.

:func:`run_case` is a module-level function with JSON-able kwargs, so the
harness can fan cases across workers through the same
:func:`repro.experiments.sweep.sweep_map` executor the figures use.

One *execution* builds a fresh seeded testbed for the case, attaches the
fault injector(s) and the tracer, runs to the case horizon (catching
simulator crashes — a dead standard-firmware netdev is a legitimate
outcome, not a harness error), and distils everything the invariant
catalogue inspects into a plain-JSON *observation* dict.  A SHA-256
fingerprint over the canonical observation JSON is the unit of replay
comparison: same case, same fingerprint, byte for byte.
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import Dict, List, Optional

from repro.core.configurations import Testbed, attach_octossd
from repro.experiments.runners import system_for, warmup_of
from repro.faults.injector import FaultInjector
from repro.fuzz.case import FuzzCase
from repro.nic.packet import Flow
from repro.nvme.driver import NvmeDriver
from repro.sim.errors import SimulationError
from repro.sim.rng import SimRandom
from repro.units import KB
from repro.workloads.fio import FioReader
from repro.workloads.memcached import MemcachedServer
from repro.workloads.netperf import TcpRr, TcpStream
from repro.workloads.pktgen import Pktgen

#: Slack past every fault's recovery so post-recovery state settles.
RECOVERY_SLACK_NS = 200_000

_RESIDUAL = re.compile(r"residual=(\d+)")


# ----------------------------------------------------------------- build

def _build(case: FuzzCase, accuracy: str, trace: bool,
           blame_collector=None):
    testbed = Testbed(system=system_for(case.config, case.components),
                      seed=case.seed, accuracy=accuracy)
    if trace:
        for machine in (testbed.server.machine, testbed.client.machine):
            machine.tracer.enabled = True
            machine.tracer.flows = True
    if blame_collector is not None:
        for machine in (testbed.server.machine, testbed.client.machine):
            machine.tracer.enabled = True
            machine.tracer.blame = blame_collector
    server = testbed.server
    warmup = warmup_of(case.duration_ns)
    workloads: Dict[str, object] = {}
    nvme_ctrl = None
    nvme_driver = None
    params = case.params

    if case.has_nvme:
        octo = case.config == "ioctopus"
        nvme_ctrl = attach_octossd(server.machine, octo, name="fuzz-ssd")
        nvme_driver = NvmeDriver(server.machine, nvme_ctrl,
                                 octo_mode=octo)

    if case.workload == "pktgen":
        workloads["pktgen"] = Pktgen(
            server, testbed.server_core(0), params["packet_bytes"],
            case.duration_ns, warmup)
    elif case.workload == "tcp_stream":
        workloads["stream"] = TcpStream(
            server, testbed.server_core(0), Flow.make(0),
            params["message_bytes"], params["direction"],
            case.duration_ns, warmup)
    elif case.workload == "tcp_rr":
        workloads["rr"] = TcpRr(testbed, params["message_bytes"],
                                case.duration_ns, warmup)
    elif case.workload == "memcached":
        cores = [testbed.server_core(i) for i in range(params["workers"])]
        workloads["memcached"] = MemcachedServer(
            server, cores, params["set_fraction"], case.duration_ns,
            warmup, value_bytes=params["value_bytes"])
    elif case.workload == "fio":
        for i in range(params["threads"]):
            workloads[f"fio{i}"] = FioReader(
                server, testbed.server_core(i), nvme_driver,
                case.duration_ns, warmup,
                block_bytes=params["block_bytes"],
                iodepth=params["iodepth"])
    else:  # colocated: TCP_STREAM rx + one fio thread on the same box.
        workloads["stream"] = TcpStream(
            server, testbed.server_core(0), Flow.make(0),
            params["message_bytes"], "rx", case.duration_ns, warmup)
        workloads["fio0"] = FioReader(
            server, testbed.server_core(1), nvme_driver,
            case.duration_ns, warmup,
            block_bytes=params["block_bytes"],
            iodepth=params["iodepth"])

    injectors: List[FaultInjector] = []
    nic_plan = case.fault_plan("nic")
    if len(nic_plan):
        injectors.append(FaultInjector(
            testbed.env, nic_plan, device=server.nic, wire=testbed.wire,
            machine=server.machine,
            rng=SimRandom(case.seed, name="fuzz-faults-nic")))
    ssd_plan = case.fault_plan("ssd")
    if len(ssd_plan):
        injectors.append(FaultInjector(
            testbed.env, ssd_plan, device=nvme_ctrl,
            machine=server.machine,
            rng=SimRandom(case.seed, name="fuzz-faults-ssd")))
    for injector in injectors:
        injector.start()

    return testbed, workloads, injectors, nvme_ctrl, nvme_driver


def _horizon_ns(case: FuzzCase) -> int:
    end = case.duration_ns + case.duration_ns // 5
    for fault in case.faults:
        end = max(end, fault["at_ns"] + fault["duration_ns"]
                  + RECOVERY_SLACK_NS)
    return end


# --------------------------------------------------------------- observe

def _nic_side(host) -> Dict:
    queues = host.driver.queues
    device = host.nic
    stack = host.stack
    return {
        "rx_packets": sum(q.packets_total for q in queues.rx),
        "rx_bytes": sum(q.bytes_total for q in queues.rx),
        "tx_packets": sum(q.packets_total for q in queues.tx),
        "tx_bytes": sum(q.bytes_total for q in queues.tx),
        "rx_outstanding": sum(q.outstanding for q in queues.rx),
        "tx_outstanding": sum(q.outstanding for q in queues.tx),
        "pf_rx_bytes": sum(device.pf_rx_bytes(pf.pf_id)
                           for pf in device.pfs),
        "pf_tx_bytes": sum(device.pf_tx_bytes(pf.pf_id)
                           for pf in device.pfs),
        "sock_rx_bytes": sum(s.rx_payload_bytes for s in stack.sockets),
        "sock_tx_bytes": sum(s.tx_payload_bytes for s in stack.sockets),
        "sockets": len(stack.sockets),
    }


def _flow_errors(tracer) -> List[str]:
    """Well-formedness of flow staircases: one opening step, at most one
    terminal step, non-decreasing time cursor."""
    errors: List[str] = []
    flows: Dict[int, List] = {}
    for record in tracer.records:
        if record.flow_id is not None:
            flows.setdefault(record.flow_id, []).append(record)
    for flow_id, records in flows.items():
        phases = [r.flow_phase for r in records]
        if phases[0] != "s":
            errors.append(f"flow {flow_id} does not open with 's'")
        if phases.count("s") != 1:
            errors.append(f"flow {flow_id} has {phases.count('s')} "
                          f"opening steps")
        if phases.count("f") > 1:
            errors.append(f"flow {flow_id} finishes twice")
        times = [r.time for r in records]
        if times != sorted(times):
            errors.append(f"flow {flow_id} time cursor went backwards")
    return errors


def _metrics(case: FuzzCase, workloads: Dict):
    """(metrics, records): each metric's value plus how many meter
    records produced it — the quantisation unit the agreement invariant
    gates on (a handful of coarse bursts cannot be compared across
    accuracy modes without windowing artifacts)."""
    metrics: Dict[str, Optional[float]] = {}
    records: Dict[str, int] = {}

    def read(name, fn, nrecords):
        try:
            metrics[name] = round(fn(), 9)
        except (ValueError, ZeroDivisionError):
            metrics[name] = None
        records[name] = nrecords

    params = case.params
    if "pktgen" in workloads:
        w = workloads["pktgen"]
        read("mpps", w.mpps, w.meter.messages_total // 64)
    if "stream" in workloads:
        w = workloads["stream"]
        batch = max(1, (64 * KB) // params.get("message_bytes", 4 * KB))
        read("stream_gbps", w.throughput_gbps,
             w.meter.messages_total // batch)
    if "rr" in workloads:
        w = workloads["rr"]
        read("rtt_ns", w.average_rtt_ns, len(w.latencies))
    if "memcached" in workloads:
        w = workloads["memcached"]
        read("ktps", w.transactions_ktps, w.meter.messages_total)
    fio = [w for name, w in workloads.items() if name.startswith("fio")]
    if fio:
        iodepth = max(1, params.get("iodepth", 8))
        read("fio_gbps", lambda: sum(f.throughput_gbps() for f in fio),
             sum(f.meter.messages_total for f in fio) // iodepth)
        metrics["fio_errors"] = sum(len(f.errors) for f in fio)
        records["fio_errors"] = 0
    return metrics, records


def _collect(case: FuzzCase, testbed, workloads, injectors, nvme_ctrl,
             nvme_driver, outcome: str, error: Optional[str],
             trace: bool) -> Dict:
    server, client = testbed.server, testbed.client
    wire = testbed.wire
    counts: Dict[str, int] = {}
    residuals: List[int] = []
    flow_errors: List[str] = []
    injector_records = 0
    if trace:
        for machine in (server.machine, client.machine):
            tracer = machine.tracer
            for event, n in tracer.counts().items():
                counts[event] = counts.get(event, 0) + n
            for record in tracer.records:
                if record.event in ("failover.applied",
                                    "recovery.applied", "steer.applied"):
                    match = _RESIDUAL.search(str(record.payload))
                    if match:
                        residuals.append(int(match.group(1)))
                if record.source == "fault-injector":
                    injector_records += 1
            flow_errors.extend(_flow_errors(tracer))

    fault_events: List[str] = []
    for injector in injectors:
        fault_events.extend(injector.rendered_events())

    obs: Dict = {
        "outcome": outcome,
        "error": error,
        "end_ns": testbed.env.now,
        "accuracy": testbed.accuracy,
        "wire": {
            "packets_offered_a_to_b": wire.packets_offered["a_to_b"],
            "packets_offered_b_to_a": wire.packets_offered["b_to_a"],
            "bytes_offered_a_to_b": wire.payload_bytes_offered["a_to_b"],
            "bytes_offered_b_to_a": wire.payload_bytes_offered["b_to_a"],
            "drops": wire.drops_total,
            "corruptions": wire.corruptions_total,
            "retransmits": wire.retransmitted_packets,
        },
        "server": _nic_side(server),
        "client": _nic_side(client),
        "drivers": {
            "failovers": (getattr(server.driver, "failovers", 0)
                          + (nvme_driver.failovers if nvme_driver else 0)),
            "recoveries": (getattr(server.driver, "recoveries", 0)
                           + (nvme_driver.recoveries if nvme_driver
                              else 0)),
            "retries": (server.driver.retries
                        + (nvme_driver.retries if nvme_driver else 0)),
            "steering_updates": (server.driver.steering_updates
                                 + client.driver.steering_updates),
        },
        "faults": sorted(fault_events),
        "trace": {
            "counts": counts,
            "residuals": residuals,
            "flow_errors": flow_errors,
            "injector_records": injector_records,
        },
    }
    obs["metrics"], obs["metrics_records"] = _metrics(case, workloads)
    if nvme_ctrl is not None:
        qps = list(nvme_driver._qps.values())
        obs["nvme"] = {
            "read_bytes": nvme_ctrl.read_bytes,
            "write_bytes": nvme_ctrl.write_bytes,
            "pf_read_bytes": sum(nvme_ctrl.pf_read_bytes(pf.pf_id)
                                 for pf in nvme_ctrl.pfs),
            "qp_bytes": sum(qp.bytes_total for qp in qps),
            "qp_outstanding": sum(qp.outstanding for qp in qps),
        }
    else:
        obs["nvme"] = None
    return obs


def fingerprint(obs: Dict) -> str:
    """SHA-256 over the canonical observation JSON (replay unit)."""
    payload = json.dumps(obs, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


# --------------------------------------------------------------- execute

def execute(case: FuzzCase, accuracy: str = "exact",
            trace: bool = True, blame_collector=None) -> Dict:
    """One simulation of ``case``; returns the observation dict."""
    testbed, workloads, injectors, nvme_ctrl, nvme_driver = _build(
        case, accuracy, trace, blame_collector)
    outcome, error = "ok", None
    try:
        testbed.run(_horizon_ns(case))
    except SimulationError as exc:
        outcome = "crashed"
        error = (f"{type(exc).__name__} at {testbed.env.now}ns: "
                 f"{exc}")
    return _collect(case, testbed, workloads, injectors, nvme_ctrl,
                    nvme_driver, outcome, error, trace)


def run_case(case: Dict, invariants: Optional[List[str]] = None,
             agreement_rel: float = 0.1) -> Dict:
    """Run one case dict and check the selected invariants.

    Module-level and JSON-in/JSON-out so ``sweep_map`` can ship it to a
    worker process.  Returns ``{case, outcome, fingerprint, metrics,
    violations}`` where each violation is ``{"invariant", "detail"}``.
    Fleet topology cases dispatch to :func:`run_fleet_case`.
    """
    if case.get("workload") == "fleet":
        return run_fleet_case(case, invariants=invariants)
    # Imported here (not at module top) to keep runner importable from
    # invariants without a cycle.
    from repro.fuzz.invariants import (DEFAULT_INVARIANTS, check,
                                       needs_adaptive_run)
    names = list(invariants) if invariants else list(DEFAULT_INVARIANTS)
    fuzz_case = FuzzCase.from_dict(case)
    obs = execute(fuzz_case, "exact")
    violations = check(case, obs, names)

    if "replay" in names:
        replay_obs = execute(fuzz_case, "exact")
        want, got = fingerprint(obs), fingerprint(replay_obs)
        if want != got:
            violations.append({
                "invariant": "replay",
                "detail": f"same seed diverged: {want[:16]} != "
                          f"{got[:16]}"})

    if "blame_conservation" in names:
        # Re-run with a blame collector attached: stage charges must sum
        # to each sealed flow's end-to-end latency exactly, and the
        # attachment must not perturb the observation (obs stays
        # read-only with respect to the model).
        from repro.obs.blame import BlameCollector
        collector = BlameCollector()
        blame_obs = execute(fuzz_case, "exact",
                            blame_collector=collector)
        if not collector.conservation_ok:
            first = (collector.conservation_errors[0]
                     if collector.conservation_errors else "")
            violations.append({
                "invariant": "blame_conservation",
                "detail": f"{collector.violations} flows broke stage-sum"
                          f" == end-to-end; first: {first}"})
        want, got = fingerprint(obs), fingerprint(blame_obs)
        if want != got:
            violations.append({
                "invariant": "blame_conservation",
                "detail": f"blame collection perturbed the run: "
                          f"{want[:16]} != {got[:16]}"})

    if "agreement" in names and needs_adaptive_run(case, obs):
        # Every perf-only case is replayed under each fast accuracy
        # tier; both must tell the exact mode's performance story.
        for accuracy in ("adaptive", "fluid"):
            fast_obs = execute(fuzz_case, accuracy, trace=False)
            violations.extend(_check_agreement(obs, fast_obs,
                                               agreement_rel, accuracy))

    return {
        "case": case,
        "outcome": obs["outcome"],
        "error": obs["error"],
        "fingerprint": fingerprint(obs),
        "metrics": obs["metrics"],
        "violations": violations,
    }


# ----------------------------------------------------------- fleet cases

#: Fleet agreement: exact and fluid tiers must plan and serve identical
#: transaction counts; merged tail percentiles may differ within this.
FLEET_AGREEMENT_P99_REL = 0.5


def _fleet_violations(spec, fleet, names: List[str]) -> List[Dict]:
    """The invariant catalogue, mapped onto a merged fleet result.

    ``conservation`` is the transaction ledger (planned = served +
    lost, digests account for every served transaction), ``drained``
    is "deaths are the only loss channel", and ``obs_consistency``
    checks that the merged registry/rollups, the per-shard obs payloads
    and the failure bookkeeping all tell the same story.
    """
    out: List[Dict] = []

    def bad(invariant, detail):
        out.append({"invariant": invariant, "detail": detail})

    if "conservation" in names:
        if fleet.planned != fleet.served + fleet.lost:
            bad("conservation",
                f"planned {fleet.planned} != served {fleet.served} + "
                f"lost {fleet.lost}")
        if fleet.digest.count != fleet.served:
            bad("conservation",
                f"digest count {fleet.digest.count} != served "
                f"{fleet.served}")
        epoch_total = sum(d.count for d in fleet.epoch_digests.values())
        if epoch_total != fleet.served:
            bad("conservation",
                f"epoch digest counts sum to {epoch_total}, served "
                f"{fleet.served}")
        for shard in fleet.servers:
            if shard["planned"] != shard["served"] + shard["lost"]:
                bad("conservation",
                    f"server {shard['server']}: planned "
                    f"{shard['planned']} != served {shard['served']} + "
                    f"lost {shard['lost']}")

    if "drained" in names:
        # Loss has exactly one legitimate channel: arrivals planned for
        # a server the LB had not yet noticed was dead.
        if not fleet.dead_servers() and fleet.lost:
            bad("drained", f"{fleet.lost} transactions lost with every "
                           f"server alive")
        for shard in fleet.servers:
            if shard["died_at"] is None and shard["lost"]:
                bad("drained", f"server {shard['server']} alive but "
                               f"lost {shard['lost']} transactions")

    if "obs_consistency" in names:
        expected_dead = sorted(
            server for server in range(spec.servers)
            if spec.death_ns(server) is not None)
        if fleet.dead_servers() != expected_dead:
            bad("obs_consistency",
                f"dead servers {fleet.dead_servers()} != spec "
                f"prediction {expected_dead}")
        values = fleet.registry().collect()
        if values.get("fleet.txn.served") != fleet.served:
            bad("obs_consistency",
                f"registry rollup fleet.txn.served "
                f"{values.get('fleet.txn.served')} != merged "
                f"{fleet.served}")
        for shard in fleet.servers:
            if not shard["obs"]:
                bad("obs_consistency",
                    f"server {shard['server']} shipped no obs values")
            flap = spec.flap_for(shard["server"])
            # A survivable flap must really have driven the team
            # driver: one failover applied, one recovery applied.
            if flap is not None and shard["failover_events"] != 2:
                bad("obs_consistency",
                    f"server {shard['server']}: pf flap logged "
                    f"{shard['failover_events']} fault events, "
                    f"expected 2 (failover + recovery)")
    return out


def run_fleet_case(case: Dict,
                   invariants: Optional[List[str]] = None) -> Dict:
    """Run one fleet topology case and check the fleet invariants.

    The fleet runs inline (``jobs=1``) because :func:`run_case` itself
    already executes inside a sweep worker during campaigns — nesting
    process pools buys nothing.  The replay unit is the fleet
    fingerprint (canonical sha256 over every shard); agreement replays
    the fleet under the exact tier and holds the transaction counts
    identical (the plan is tier-independent) and the merged p99 within
    :data:`FLEET_AGREEMENT_P99_REL` — skipped when the scenario kills a
    server, where truncation timing legitimately differs across tiers.
    """
    from repro.cluster import FleetSpec, run_fleet
    from repro.fuzz.invariants import DEFAULT_INVARIANTS, validate_names
    names = list(invariants) if invariants else list(DEFAULT_INVARIANTS)
    validate_names(names)
    spec = FleetSpec.from_dict(case["params"])
    outcome, error = "ok", None
    violations: List[Dict] = []
    metrics: Dict = {}
    fleet_fingerprint = ""
    try:
        fleet = run_fleet(spec, master_seed=case["seed"],
                          accuracy="fluid", jobs=1)
    except SimulationError as exc:
        outcome = "crashed"
        error = f"{type(exc).__name__}: {exc}"
    else:
        fleet_fingerprint = fleet.fingerprint()
        violations = _fleet_violations(spec, fleet, names)
        metrics = {"served": fleet.served, "lost": fleet.lost,
                   "ktps": round(fleet.ktps, 3),
                   "p99_ns": (fleet.percentile(99)
                              if fleet.digest.count else None)}

        if "replay" in names:
            again = run_fleet(spec, master_seed=case["seed"],
                              accuracy="fluid", jobs=1)
            if again.fingerprint() != fleet_fingerprint:
                violations.append({
                    "invariant": "replay",
                    "detail": f"same fleet diverged: "
                              f"{fleet_fingerprint[:16]} != "
                              f"{again.fingerprint()[:16]}"})

        no_deaths = (spec.server_down is None and spec.pf_flap is None)
        if "agreement" in names and no_deaths:
            exact = run_fleet(spec, master_seed=case["seed"],
                              accuracy="exact", jobs=1)
            for key in ("planned", "served"):
                want, got = getattr(exact, key), getattr(fleet, key)
                if want != got:
                    violations.append({
                        "invariant": "agreement",
                        "detail": f"fleet {key}: exact={want} "
                                  f"fluid={got}"})
            if exact.digest.count:
                want = exact.percentile(99)
                got = fleet.percentile(99)
                if abs(got - want) > FLEET_AGREEMENT_P99_REL * want:
                    violations.append({
                        "invariant": "agreement",
                        "detail": f"fleet p99: exact={want} fluid={got} "
                                  f"(tolerance "
                                  f"{FLEET_AGREEMENT_P99_REL:.0%})"})

    return {
        "case": case,
        "outcome": outcome,
        "error": error,
        "fingerprint": fleet_fingerprint,
        "metrics": metrics,
        "violations": violations,
    }


#: Meter metrics need at least this many records before exact and
#: adaptive rates are comparable: with only a handful of coarse bursts
#: in the window, the two modes' meter alignment (fixed window vs
#: train-aligned) quantises differently by design.
MIN_AGREEMENT_RECORDS = 40

#: Full-run ledger totals are mode-independent up to end-of-run
#: truncation: the horizon can cut adaptive mode mid-train, leaving its
#: last coalesced train(s) undelivered.  Allow a couple of trains of
#: absolute slack, and beyond that hold ledgers much tighter than the
#: meter rates.
LEDGER_AGREEMENT_REL = 0.02
LEDGER_AGREEMENT_SLACK_BYTES = 2 * 64 * KB


def _check_agreement(exact: Dict, adaptive: Dict, rel: float,
                     mode: str = "adaptive") -> List[Dict]:
    """Exact and a fast accuracy tier (``mode``: adaptive or fluid)
    must tell the same performance story.

    Two layers: full-run byte ledgers (tight — trains conserve bytes, so
    totals must match almost exactly) and workload meter rates (looser,
    and only when the meter saw enough records to be windowing-robust).
    """
    violations: List[Dict] = []
    if adaptive["outcome"] != exact["outcome"]:
        violations.append({
            "invariant": "agreement",
            "detail": f"outcome differs: exact={exact['outcome']} "
                      f"{mode}={adaptive['outcome']}"})
        return violations

    def close(want, got, tolerance):
        if abs(want) < 1e-6:
            return abs(got) < 1e-6
        return abs(got - want) / abs(want) <= tolerance

    ledgers = [("server rx bytes", exact["server"]["rx_bytes"],
                adaptive["server"]["rx_bytes"]),
               ("server tx bytes", exact["server"]["tx_bytes"],
                adaptive["server"]["tx_bytes"])]
    if exact.get("nvme") and adaptive.get("nvme"):
        ledgers.append(("nvme QP bytes", exact["nvme"]["qp_bytes"],
                        adaptive["nvme"]["qp_bytes"]))
    for label, want, got in ledgers:
        slack = max(LEDGER_AGREEMENT_SLACK_BYTES,
                    LEDGER_AGREEMENT_REL * abs(want))
        if abs(got - want) > slack:
            violations.append({
                "invariant": "agreement",
                "detail": f"{label}: exact={want} {mode}={got} "
                          f"(tolerance {LEDGER_AGREEMENT_REL:.0%} or "
                          f"{LEDGER_AGREEMENT_SLACK_BYTES} B)"})

    for name, want in exact["metrics"].items():
        got = adaptive["metrics"].get(name)
        if want is None or got is None or name == "fio_errors":
            continue
        if exact["metrics_records"].get(name, 0) < MIN_AGREEMENT_RECORDS:
            continue
        if not close(want, got, rel):
            violations.append({
                "invariant": "agreement",
                "detail": f"{name}: exact={want} {mode}={got} "
                          f"(tolerance {rel:.0%})"})
    return violations
