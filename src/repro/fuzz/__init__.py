"""Property-based fault/traffic fuzzing with invariant checking.

The harness expands a single master seed into whole test cases —
topology variant x workload mix x overlapping fault plan — runs each on
a fresh seeded testbed, and checks a catalogue of global invariants
after every run (byte conservation wire->app, the §4.2 no-reorder rule,
bit-identical replay, exact-vs-adaptive agreement, observability
consistency).  Failing cases are shrunk to minimal repros and
serialized into a corpus replayed as regression tests.

Entry points: ``ioctopus-repro fuzz`` (CLI), :func:`fuzz` (the campaign
driver), :func:`run_case` (one case), :func:`generate_case` (the
generator), :func:`replay_corpus` (regression replay).
"""

from repro.fuzz.case import FuzzCase, generate_case
from repro.fuzz.corpus import load_corpus, replay_corpus, replay_entry
from repro.fuzz.harness import fuzz
from repro.fuzz.invariants import (ALL_INVARIANTS, DEFAULT_INVARIANTS,
                                   INVARIANTS)
from repro.fuzz.runner import execute, fingerprint, run_case
from repro.fuzz.shrink import shrink

__all__ = [
    "ALL_INVARIANTS",
    "DEFAULT_INVARIANTS",
    "FuzzCase",
    "INVARIANTS",
    "execute",
    "fingerprint",
    "fuzz",
    "generate_case",
    "load_corpus",
    "replay_corpus",
    "replay_entry",
    "run_case",
    "shrink",
]
