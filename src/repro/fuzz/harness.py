"""The fuzz campaign driver: generate, run, shrink, serialize.

Cases fan out across workers through the figures' own
:func:`~repro.experiments.sweep.sweep_map` executor (``--jobs``), in
chunks so a wall-clock time budget can stop a campaign between chunks
without losing finished results.  Every failing case is shrunk to a
minimal repro and (optionally) serialized into the corpus directory for
replay as a regression test.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.experiments.sweep import sweep_map
from repro.fuzz.case import generate_case, generate_fleet_case
from repro.fuzz.corpus import save_entry
from repro.fuzz.invariants import DEFAULT_INVARIANTS, validate_names
from repro.fuzz.runner import run_case
from repro.fuzz.shrink import DEFAULT_BUDGET, shrink

#: Cases per sweep chunk: large enough to amortise worker startup, small
#: enough that a time budget reacts within a few seconds.
CHUNK = 8

#: Every Nth campaign index becomes a *fleet topology* case (rack-scale
#: LB + multi-server invariants) instead of a single-box case.  Fleet
#: cases draw from their own RNG streams, so the regular cases at the
#: other indices are exactly the ones a fleet-free campaign would run.
FLEET_EVERY = 5


def fuzz(master_seed: int = 0, cases: int = 25,
         invariants: Optional[List[str]] = None,
         jobs: Optional[int] = None,
         time_budget_s: Optional[float] = None,
         corpus_dir: Optional[str] = None,
         shrink_budget: int = DEFAULT_BUDGET,
         fleet_every: Optional[int] = FLEET_EVERY,
         log=None) -> Dict:
    """Run one fuzz campaign; returns a summary dict.

    ``invariants=None`` selects :data:`DEFAULT_INVARIANTS`.  When
    ``corpus_dir`` is given, each shrunk repro is written there.
    Every ``fleet_every``-th case is a fleet topology case (0/None
    disables); fleet interleaving is skipped when ``mutation_smoke`` is
    selected — that invariant probes the single-box device-fault path,
    which fleet cases do not exercise.
    """
    names = list(invariants) if invariants else list(DEFAULT_INVARIANTS)
    validate_names(names)
    say = log or (lambda message: None)
    started = time.time()

    fleet_ok = bool(fleet_every) and "mutation_smoke" not in names

    def _case(index: int):
        if fleet_ok and (index + 1) % fleet_every == 0:
            return generate_fleet_case(master_seed, index)
        return generate_case(master_seed, index)

    points = [{"case": _case(i).to_dict(), "invariants": names}
              for i in range(cases)]
    results: List[Dict] = []
    truncated = False
    for lo in range(0, len(points), CHUNK):
        if time_budget_s and time.time() - started > time_budget_s:
            truncated = True
            say(f"time budget hit after {len(results)}/{cases} cases; "
                f"dropping the remaining {cases - len(results)}")
            break
        results.extend(sweep_map(run_case, points[lo:lo + CHUNK],
                                 jobs=jobs))
        say(f"{len(results)}/{cases} cases run, "
            f"{sum(1 for r in results if r['violations'])} failing")

    failures = [r for r in results if r["violations"]]
    repros: List[Dict] = []
    for failure in failures:
        violated = {v["invariant"] for v in failure["violations"]}
        say(f"shrinking {failure['case']['case_id']} "
            f"(violated: {sorted(violated)})")
        minimal, final, used = shrink(failure["case"], violated, names,
                                      budget=shrink_budget)
        entry = {
            "case": minimal,
            "invariants": names,
            "violations": sorted({v["invariant"]
                                  for v in final["violations"]}),
            "details": [v["detail"] for v in final["violations"]],
            "fingerprint": final["fingerprint"],
            "found": {"master_seed": master_seed,
                      "original_case_id": failure["case"]["case_id"]},
        }
        if corpus_dir:
            path = save_entry(corpus_dir, entry)
            say(f"  minimal repro ({len(minimal['faults'])} faults, "
                f"{used} shrink runs) -> {path}")
        repros.append(entry)

    return {
        "cases_run": len(results),
        "cases_requested": cases,
        "truncated": truncated,
        "crashed": sum(1 for r in results if r["outcome"] == "crashed"),
        "failures": len(failures),
        "invariants": names,
        "repros": repros,
        "results": results,
        "elapsed_s": round(time.time() - started, 3),
    }
