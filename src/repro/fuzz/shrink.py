"""Failing-case shrinking: reduce a violating case to a minimal repro.

Greedy delta-debugging over the case structure.  Candidate edits, in
order of how much they simplify the repro:

1. re-enable one switched-off registry component;
2. drop one fault entirely;
3. halve one fault's duration;
4. halve the case duration (faults clipped to stay inside it);
5. replace the workload with a simpler one (colocated/memcached/tcp_rr
   collapse toward a single TCP_STREAM flow);
6. reduce traffic (fewer fio threads / memcached workers, shallower
   iodepth).

Fleet topology cases shrink along their own axes instead: drop the
failure scenario, halve the rack / the client fleet / the run, strip
the behaviour knobs.

A candidate is accepted when re-running it still violates at least one
of the *originally*-violated invariants — the shrunk case must fail for
the same reason, not a new one.  Each accepted edit restarts the pass,
so the loop runs to a fixpoint bounded by an execution budget.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterator, List, Set, Tuple

from repro.fuzz.runner import run_case

#: Shortest case duration the shrinker will try.
MIN_DURATION_NS = 250_000

#: Default cap on candidate executions per shrink.
DEFAULT_BUDGET = 48

#: Workload simplification ladder (applied only while still failing).
SIMPLER_WORKLOAD = {
    "colocated": "tcp_stream",
    "memcached": "tcp_stream",
    "tcp_rr": "tcp_stream",
    "tcp_stream": "pktgen",
}


def _clip_faults(case: Dict) -> None:
    """Keep every fault inside the (possibly shortened) run."""
    horizon = case["duration_ns"]
    kept = []
    for fault in case["faults"]:
        if fault["at_ns"] >= horizon:
            continue
        fault = dict(fault)
        fault["duration_ns"] = max(1, min(fault["duration_ns"], horizon))
        kept.append(fault)
    case["faults"] = kept


def _simplified_params(workload: str, params: Dict) -> Dict:
    if workload == "tcp_stream":
        return {"message_bytes": params.get("message_bytes", 4096),
                "direction": params.get("direction", "rx")}
    if workload == "pktgen":
        return {"packet_bytes": 256}
    return params


def _fleet_candidates(case: Dict) -> Iterator[Dict]:
    """One-step simplifications of a fleet topology case: drop the
    failure scenario, shrink the rack, thin the clients, shorten the
    run, then strip the behaviour knobs (workers, incast, slow
    readers)."""
    params = case["params"]
    for key in ("server_down", "pf_flap"):
        if params.get(key) is not None:
            cand = copy.deepcopy(case)
            cand["params"][key] = None
            yield cand
    if params["servers"] > 2:
        cand = copy.deepcopy(case)
        cand["params"]["servers"] = max(2, params["servers"] // 2)
        for key in ("server_down", "pf_flap"):
            event = cand["params"].get(key)
            if event is not None and event[0] >= cand["params"]["servers"]:
                event[0] = 0
        yield cand
    if params["connections"] > 512:
        cand = copy.deepcopy(case)
        cand["params"]["connections"] = params["connections"] // 2
        yield cand
    if case["duration_ns"] > MIN_DURATION_NS:
        cand = copy.deepcopy(case)
        duration = max(MIN_DURATION_NS, case["duration_ns"] // 2)
        cand["duration_ns"] = duration
        inner = cand["params"]
        inner["duration_ns"] = duration
        inner["epochs"] = min(inner["epochs"], duration)
        for key in ("server_down", "pf_flap"):
            event = inner.get(key)
            if event is None:
                continue
            if event[1] >= duration:
                inner[key] = None
            elif key == "pf_flap":
                event[2] = max(1, min(event[2], duration))
        yield cand
    for knob, floor in (("workers", 1), ("incast_per_epoch", 0),
                        ("slow_fraction", 0.0)):
        if params.get(knob, floor) > floor:
            cand = copy.deepcopy(case)
            cand["params"][knob] = floor
            yield cand


def candidates(case: Dict) -> Iterator[Dict]:
    """Every one-step simplification of ``case``, most aggressive first."""
    if case["workload"] == "fleet":
        yield from _fleet_candidates(case)
        return
    # Re-enabling one switched-off component simplifies the repro as
    # much as dropping a fault does: it removes a whole mechanism delta.
    for name in sorted(case.get("components", {})):
        cand = copy.deepcopy(case)
        del cand["components"][name]
        if not cand["components"]:
            del cand["components"]
        yield cand
    for i in range(len(case["faults"])):
        cand = copy.deepcopy(case)
        del cand["faults"][i]
        yield cand
    for i, fault in enumerate(case["faults"]):
        if fault["duration_ns"] > 1_000:
            cand = copy.deepcopy(case)
            cand["faults"][i]["duration_ns"] = fault["duration_ns"] // 2
            yield cand
    if case["duration_ns"] > MIN_DURATION_NS:
        cand = copy.deepcopy(case)
        cand["duration_ns"] = max(MIN_DURATION_NS,
                                  case["duration_ns"] // 2)
        _clip_faults(cand)
        yield cand
    simpler = SIMPLER_WORKLOAD.get(case["workload"])
    if simpler is not None:
        cand = copy.deepcopy(case)
        cand["workload"] = simpler
        cand["params"] = _simplified_params(simpler, case["params"])
        # An SSD-targeted fault has no target without the NVMe side.
        cand["faults"] = [f for f in cand["faults"]
                          if f["target"] == "nic"]
        yield cand
    for knob, floor in (("threads", 1), ("workers", 1), ("iodepth", 8)):
        if case["params"].get(knob, floor) > floor:
            cand = copy.deepcopy(case)
            cand["params"][knob] = floor
            yield cand


def shrink(case: Dict, violated: Set[str], invariants: List[str],
           budget: int = DEFAULT_BUDGET) -> Tuple[Dict, Dict, int]:
    """Minimise ``case`` while it still violates one of ``violated``.

    Returns ``(minimal_case, final_result, executions_used)`` where
    ``final_result`` is the :func:`run_case` result of the minimal case.
    """
    current = copy.deepcopy(case)
    final = None
    executions = 0
    improved = True
    while improved and executions < budget:
        improved = False
        for cand in candidates(current):
            if executions >= budget:
                break
            result = run_case(cand, invariants=invariants)
            executions += 1
            names = {v["invariant"] for v in result["violations"]}
            if names & violated:
                cand["case_id"] = case["case_id"] + "-min"
                current = cand
                final = result
                improved = True
                break
    if final is None:
        final = run_case(current, invariants=invariants)
        executions += 1
    return current, final, executions
