"""Fuzz-case generation: one seed expands to a whole test case.

A :class:`FuzzCase` is the unit the harness runs: a topology variant
(the paper's ``local``/``remote``/``ioctopus`` configurations), one
workload mix (NIC traffic, NVMe traffic, or both colocated), a simulated
duration, and a fault plan of possibly-overlapping transient faults,
each tagged with the device it targets (``nic`` or ``ssd``).

Generation is a pure function of ``(master_seed, index)``: every draw
comes from a named :class:`~repro.sim.rng.SimRandom` child stream, so
the same seed always regenerates byte-identical cases — which is what
makes a recorded corpus entry replayable with nothing but its numbers.

The grammar (what a generated case can contain):

* ``config``    — ``local`` | ``remote`` | ``ioctopus``
* ``workload``  — ``pktgen`` | ``tcp_stream`` | ``tcp_rr`` |
  ``memcached`` | ``fio`` | ``colocated`` (TCP_STREAM rx + fio on one
  server, the §5.4-style NIC+NVMe colocation)
* ``duration``  — one of :data:`DURATIONS_NS`
* ``faults``    — 0..:data:`MAX_FAULTS` transient faults drawn from
  :data:`NIC_FAULT_KINDS` / :data:`SSD_FAULT_KINDS`, injected anywhere
  in the first 80% of the run so recoveries land inside the horizon.
* ``components``— random *off* toggles of fault-safe registry
  components (:mod:`repro.components`), drawn from their own
  ``components-{index}`` child stream so every pre-existing corpus
  entry regenerates byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.components import fault_safe_component_names
from repro.faults.plan import FaultPlan, FaultSpec
from repro.sim.rng import SimRandom
from repro.units import KB

#: Workload mixes the harness knows how to build.
WORKLOADS = ("pktgen", "tcp_stream", "tcp_rr", "memcached", "fio",
             "colocated")

#: Topology variants (the paper's evaluated configurations).
CONFIGS = ("local", "remote", "ioctopus")

#: Simulated durations a case may run for.
DURATIONS_NS = (1_000_000, 2_000_000, 4_000_000)

#: Most faults one generated case may carry (overlap is the point).
MAX_FAULTS = 3

#: Fault kinds available per target device.
NIC_FAULT_KINDS = ("pf_down", "pcie_link_down", "pcie_degrade",
                   "wire_loss", "qpi_throttle")
SSD_FAULT_KINDS = ("pf_down", "pcie_link_down", "pcie_degrade")

#: Per-component chance that a generated case switches one of the
#: fault-safe registry components off.
COMPONENT_OFF_PROBABILITY = 0.15

# ---- fleet-case grammar (rack-scale topology cases) -------------------
#: Workload name of a fleet case.  Deliberately *not* in
#: :data:`WORKLOADS`: that tuple feeds ``rng.choice`` in
#: :func:`generate_case`, and committed corpus entries pin its stream.
FLEET_WORKLOAD = "fleet"

#: Rack sizes / fleet-wide connection counts the fleet fuzzer explores
#: (small: a fleet case simulates every server, twice for replay, plus
#: an exact-tier leg for agreement).
FLEET_SERVERS = (2, 3, 4)
FLEET_CONNECTIONS = (1024, 2048, 4096)
FLEET_DURATIONS_NS = (2_000_000, 4_000_000)

#: Failure scenarios the LB grammar can draw: nothing, a whole-server
#: death, or a serving-PF flap (survivable under ioctopus only).
FLEET_SCENARIOS = ("none", "server_down", "pf_flap")


@dataclass
class FuzzCase:
    """One generated case; a plain value object, JSON round-trippable."""

    case_id: str
    seed: int
    config: str
    workload: str
    params: Dict
    duration_ns: int
    #: Fault dicts: FaultSpec fields plus a ``target`` ("nic" | "ssd").
    faults: List[Dict] = field(default_factory=list)
    #: Registry components this case switches *off* (name -> False).
    #: Restricted to the fault-safe subset: the invariant catalogue's
    #: expectations (no-reorder, survivable PF faults) assume the
    #: unsafe components stay at their defaults.
    components: Dict[str, bool] = field(default_factory=dict)

    def __post_init__(self):
        if self.config not in CONFIGS:
            raise ValueError(f"config must be one of {CONFIGS}, "
                             f"got {self.config!r}")
        if self.workload not in WORKLOADS + (FLEET_WORKLOAD,):
            raise ValueError(f"workload must be one of "
                             f"{WORKLOADS + (FLEET_WORKLOAD,)}, "
                             f"got {self.workload!r}")
        if self.duration_ns < 100_000:
            raise ValueError(f"duration_ns too short: {self.duration_ns}")
        safe = set(fault_safe_component_names())
        for name, enabled in self.components.items():
            if name not in safe:
                raise ValueError(f"component toggle {name!r} is not "
                                 f"fault-safe; allowed: {sorted(safe)}")
            if enabled is not False:
                raise ValueError(f"component toggles are off-only, got "
                                 f"{name}={enabled!r}")
        if self.workload == FLEET_WORKLOAD:
            self._validate_fleet()
            return
        for fault in self.faults:
            if fault.get("target") not in ("nic", "ssd"):
                raise ValueError(f"fault needs target nic|ssd: {fault}")
            # Constructing the spec runs the full kind-specific
            # validation, so a malformed corpus entry fails loudly here.
            self._spec_of(fault)

    def _validate_fleet(self) -> None:
        """Fleet cases carry a whole FleetSpec in ``params`` and their
        failure scenario inside it — never device-level faults."""
        # Local import: the fleet grammar must not drag the cluster
        # package (and the simulator core behind it) into every
        # corpus-level use of this module.
        from repro.cluster.spec import FleetSpec
        if self.faults:
            raise ValueError("fleet cases carry their failure scenario "
                             "in params (server_down / pf_flap), not in "
                             "the device fault list")
        if self.components:
            raise ValueError("fleet cases do not carry component "
                             "toggles (the fleet runner builds stock "
                             "testbeds)")
        spec = FleetSpec.from_dict(self.params)
        if spec.duration_ns != self.duration_ns:
            raise ValueError(
                f"fleet case duration {self.duration_ns} != spec "
                f"duration {spec.duration_ns}")
        if spec.config != self.config:
            raise ValueError(f"fleet case config {self.config!r} != "
                             f"spec config {spec.config!r}")

    # ----------------------------------------------------- serialization

    def to_dict(self) -> Dict:
        data = {
            "case_id": self.case_id,
            "seed": self.seed,
            "config": self.config,
            "workload": self.workload,
            "params": dict(self.params),
            "duration_ns": self.duration_ns,
            "faults": [dict(f) for f in self.faults],
        }
        # Omitted when empty so pre-component corpus files round-trip
        # byte-identically.
        if self.components:
            data["components"] = dict(self.components)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "FuzzCase":
        return cls(case_id=data["case_id"], seed=data["seed"],
                   config=data["config"], workload=data["workload"],
                   params=dict(data["params"]),
                   duration_ns=data["duration_ns"],
                   faults=[dict(f) for f in data.get("faults", [])],
                   components=dict(data.get("components", {})))

    # ----------------------------------------------------------- queries

    @property
    def has_nvme(self) -> bool:
        return self.workload in ("fio", "colocated")

    @property
    def has_nic_traffic(self) -> bool:
        return self.workload != "fio"

    @staticmethod
    def _spec_of(fault: Dict) -> FaultSpec:
        return FaultSpec(**{k: v for k, v in fault.items()
                            if k != "target"})

    def fault_plan(self, target: str) -> FaultPlan:
        """The case's faults against one device as a runnable plan."""
        return FaultPlan([self._spec_of(f) for f in self.faults
                          if f["target"] == target])

    def fault_kinds(self) -> List[str]:
        return sorted({f["kind"] for f in self.faults})

    def describe(self) -> str:
        faults = "; ".join(
            f"{f['target']}:{self._spec_of(f).describe()}"
            for f in self.faults) or "no faults"
        off = "".join(f" -{name}" for name in sorted(self.components))
        return (f"{self.case_id}: {self.config}/{self.workload} "
                f"{self.duration_ns}ns [{faults}]{off}")


# ------------------------------------------------------------- generation

def _workload_params(rng: SimRandom, workload: str) -> Dict:
    if workload == "pktgen":
        return {"packet_bytes": rng.choice([64, 256, 1024])}
    if workload == "tcp_stream":
        return {"message_bytes": rng.choice([256, 4 * KB, 16 * KB]),
                "direction": rng.choice(["rx", "tx"])}
    if workload == "tcp_rr":
        return {"message_bytes": rng.choice([64, 256, 1024])}
    if workload == "memcached":
        return {"value_bytes": rng.choice([1 * KB, 4 * KB]),
                "set_fraction": rng.choice([0.1, 0.5]),
                "workers": rng.choice([1, 2])}
    if workload == "fio":
        return {"block_bytes": rng.choice([32 * KB, 128 * KB]),
                "iodepth": rng.choice([8, 32]),
                "threads": rng.choice([1, 2])}
    # colocated: one TCP_STREAM rx flow plus one fio thread.
    return {"message_bytes": rng.choice([4 * KB, 16 * KB]),
            "block_bytes": rng.choice([32 * KB, 128 * KB]),
            "iodepth": 8}


def _random_fault(rng: SimRandom, case_duration_ns: int, has_nvme: bool,
                  config: str) -> Dict:
    target = "ssd" if has_nvme and rng.random() < 0.4 else "nic"
    kinds = NIC_FAULT_KINDS if target == "nic" else SSD_FAULT_KINDS
    kind = rng.choice(list(kinds))
    at_ns = rng.randint(0, int(case_duration_ns * 0.8))
    duration = max(1, min(int(rng.expovariate(6.0 / case_duration_ns)),
                          case_duration_ns))
    # PF counts: server NIC is always bifurcated into 2 PFs; the SSD is
    # dual-ported only under the ioctopus configuration.
    num_pfs = 2 if (target == "nic" or config == "ioctopus") else 1
    fault: Dict = {"target": target, "kind": kind, "at_ns": at_ns,
                   "duration_ns": duration}
    if kind in ("pf_down", "pcie_link_down"):
        fault["pf_id"] = rng.randint(0, num_pfs - 1)
    elif kind == "pcie_degrade":
        fault["pf_id"] = rng.randint(0, num_pfs - 1)
        fault["lanes"] = rng.choice([1, 2, 4])
    elif kind == "wire_loss":
        fault["loss_probability"] = round(rng.uniform(0.001, 0.05), 6)
        fault["corrupt_probability"] = round(rng.uniform(0.0, 0.01), 6)
    else:  # qpi_throttle
        fault["src_node"] = rng.randint(0, 1)
        fault["dst_node"] = 1 - fault["src_node"]
        fault["throttle_factor"] = round(rng.uniform(0.1, 0.9), 6)
    return fault


def generate_case(master_seed: int, index: int) -> FuzzCase:
    """Expand ``(master_seed, index)`` into one case, reproducibly.

    Each case draws from its own child stream, so inserting or removing
    cases never perturbs the others — corpus entries stay replayable.
    """
    rng = SimRandom(master_seed, name="fuzz").child(f"case-{index}")
    config = rng.choice(list(CONFIGS))
    workload = rng.choice(list(WORKLOADS))
    duration_ns = rng.choice(list(DURATIONS_NS))
    params = _workload_params(rng, workload)
    has_nvme = workload in ("fio", "colocated")
    nfaults = rng.randint(0, MAX_FAULTS)
    faults = [_random_fault(rng, duration_ns, has_nvme, config)
              for _ in range(nfaults)]
    # Component off-toggles draw from their own child stream — disjoint
    # from ``case-{index}`` above — so the core draws (and with them
    # every committed corpus entry) stay byte-identical.
    crng = SimRandom(master_seed, name="fuzz").child(f"components-{index}")
    components = {name: False for name in fault_safe_component_names()
                  if crng.random() < COMPONENT_OFF_PROBABILITY}
    return FuzzCase(case_id=f"s{master_seed}-c{index}",
                    seed=master_seed * 1_000_003 + index,
                    config=config, workload=workload, params=params,
                    duration_ns=duration_ns, faults=faults,
                    components=components)


def generate_fleet_case(master_seed: int, index: int) -> FuzzCase:
    """Expand ``(master_seed, index)`` into one *fleet* topology case.

    Fleet cases draw from their own ``fleet-{index}`` child stream —
    disjoint from the ``case-{index}`` streams of :func:`generate_case`
    — so interleaving them into a campaign never perturbs the regular
    cases, and committed corpus entries stay byte-identical.
    """
    from repro.cluster.spec import FleetSpec
    rng = SimRandom(master_seed, name="fuzz").child(f"fleet-{index}")
    servers = rng.choice(list(FLEET_SERVERS))
    duration_ns = rng.choice(list(FLEET_DURATIONS_NS))
    spec = {
        "servers": servers,
        "connections": rng.choice(list(FLEET_CONNECTIONS)),
        "config": rng.choice(list(CONFIGS)),
        "duration_ns": duration_ns,
        "epochs": rng.choice([2, 4]),
        "workers": rng.choice([1, 2]),
        "conn_rate_tps": rng.choice([2.0, 8.0]),
        "zipf_s": rng.choice([0.0, 1.1]),
        "slow_fraction": rng.choice([0.0, 0.05]),
        "incast_per_epoch": rng.choice([0, 1]),
        "incast_fanin": rng.choice([16, 64]),
    }
    scenario = rng.choice(list(FLEET_SCENARIOS))
    victim = rng.randint(0, servers - 1)
    # Strike inside the middle of the run so the LB's epoch-quantized
    # reaction and the post-death epochs both land inside the horizon.
    at_ns = rng.randint(duration_ns // 4, (duration_ns * 3) // 4)
    if scenario == "server_down":
        spec["server_down"] = [victim, at_ns]
    elif scenario == "pf_flap":
        spec["pf_flap"] = [victim, at_ns, max(1, duration_ns // 4)]
    # Round-trip through FleetSpec: validates the draw and normalizes
    # the params dict to the full field set.
    params = FleetSpec.from_dict(spec).to_dict()
    return FuzzCase(case_id=f"s{master_seed}-f{index}",
                    seed=master_seed * 1_000_003 + index,
                    config=params["config"], workload=FLEET_WORKLOAD,
                    params=params, duration_ns=duration_ns, faults=[])
