"""``ioctopus-repro fuzz``: the property-based fault/traffic fuzzer.

Examples::

    ioctopus-repro fuzz --seed 0 --cases 25
    ioctopus-repro fuzz --cases 100 --jobs 4 --time-budget 120
    ioctopus-repro fuzz --invariants conservation,replay --cases 10
    ioctopus-repro fuzz --mutate --cases 10 --corpus-dir /tmp/corpus
    ioctopus-repro fuzz --replay-corpus tests/corpus
    ioctopus-repro fuzz --list-invariants
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.sweep import configure
from repro.fuzz.invariants import ALL_INVARIANTS, DEFAULT_INVARIANTS
from repro.fuzz.shrink import DEFAULT_BUDGET


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ioctopus-repro fuzz",
        description="Property-based fault/traffic fuzzing with "
                    "invariant checking and failing-case shrinking")
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed; every case derives from it "
                             "(default 0)")
    parser.add_argument("--cases", type=int, default=25,
                        help="case budget (default 25)")
    parser.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="stop generating new chunks after this much "
                             "wall time")
    parser.add_argument("--invariants", default=None, metavar="A,B,C",
                        help="comma-separated invariant selection "
                             "(default: all standard ones)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="run cases across N worker processes")
    parser.add_argument("--corpus-dir", default=None, metavar="DIR",
                        help="write shrunk minimal repros into DIR")
    parser.add_argument("--replay-corpus", default=None, metavar="DIR",
                        help="replay committed repros from DIR and "
                             "verify recorded violations + fingerprints")
    parser.add_argument("--fleet-every", type=int, default=None,
                        metavar="N",
                        help="make every Nth case a rack-scale fleet "
                             "topology case (default 5; 0 disables)")
    parser.add_argument("--shrink-budget", type=int,
                        default=DEFAULT_BUDGET, metavar="N",
                        help=f"max executions per shrink "
                             f"(default {DEFAULT_BUDGET})")
    parser.add_argument("--mutate", action="store_true",
                        help="mutation smoke test: add the deliberately "
                             "broken 'mutation_smoke' invariant to prove "
                             "the harness catches and shrinks")
    parser.add_argument("--list-invariants", action="store_true",
                        help="list invariant names and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(
        sys.argv[1:] if argv is None else argv)

    if args.list_invariants:
        for name in ALL_INVARIANTS:
            marker = "*" if name in DEFAULT_INVARIANTS else " "
            print(f" {marker} {name}")
        print(" (* = in the default selection)")
        return 0

    if args.jobs is not None:
        configure(jobs=args.jobs)

    if args.replay_corpus:
        from repro.fuzz.corpus import replay_corpus
        summary = replay_corpus(args.replay_corpus)
        for replay in summary["replays"]:
            status = "ok" if replay["ok"] else "MISMATCH"
            print(f"[{status}] {replay['case_id']} ({replay['file']})")
            for mismatch in replay["mismatches"]:
                print(f"    {mismatch}")
        print(f"replayed {summary['total']} corpus entries, "
              f"{summary['failed']} mismatched")
        return 2 if summary["failed"] else 0

    invariants = None
    if args.invariants:
        invariants = [n.strip() for n in args.invariants.split(",")
                      if n.strip()]
    if args.mutate:
        invariants = list(invariants or DEFAULT_INVARIANTS)
        if "mutation_smoke" not in invariants:
            invariants.append("mutation_smoke")

    from repro.fuzz.harness import FLEET_EVERY, fuzz
    fleet_every = (FLEET_EVERY if args.fleet_every is None
                   else args.fleet_every)
    summary = fuzz(master_seed=args.seed, cases=args.cases,
                   invariants=invariants, jobs=args.jobs,
                   time_budget_s=args.time_budget,
                   corpus_dir=args.corpus_dir,
                   shrink_budget=args.shrink_budget,
                   fleet_every=fleet_every,
                   log=print)

    print(f"\n{summary['cases_run']}/{summary['cases_requested']} cases "
          f"in {summary['elapsed_s']}s "
          f"({summary['crashed']} crashed legitimately), "
          f"{summary['failures']} invariant failures")
    for repro in summary["repros"]:
        case = repro["case"]
        print(f"  repro {case['case_id']}: {case['config']}/"
              f"{case['workload']} faults={len(case['faults'])} "
              f"violates {repro['violations']}")
        for detail in repro["details"]:
            print(f"    {detail}")
    return 1 if summary["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
