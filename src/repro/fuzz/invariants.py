"""The invariant catalogue: what must hold after *every* fuzzed run.

Each checker is a pure function ``(case_dict, observation) -> [detail]``
over the observation collected by :mod:`repro.fuzz.runner`; an empty
list means the invariant held.  The catalogue:

* ``conservation`` — byte/packet conservation across layers: what the
  wire was offered toward the server equals what landed in the server's
  Rx queue ledgers, equals the per-PF device ledgers, equals the
  socket-level app ledgers; transmit mirrors it; NVMe conserves
  controller bytes against its queue-pair and per-PF ledgers; wire
  retransmits equal drops + corruptions.  Skipped (except the wire
  identity) when the run crashed mid-call.
* ``drained``   — every NIC queue and NVMe QP ends with zero
  outstanding entries (nothing leaked in flight).  Skipped on crash.
* ``no_reorder`` — §4.2's rule: every deferred re-steer (ARFS update,
  failover, recovery) applied with ``residual=0`` packets left in the
  queue it was draining.
* ``obs_consistency`` — the observability layers agree: driver
  failover/recovery counters match the tracer's ``*.applied`` record
  counts, the injector's event list matches its tracer mirror, and
  every trace flow is well-formed.
* ``replay``    — (harness-level, in :func:`repro.fuzz.runner.run_case`)
  running the same case twice gives byte-identical observations.
* ``blame_conservation`` — (harness-level) the case re-runs with a
  latency-blame collector attached: every sealed flow's stage charges
  must sum to its end-to-end latency exactly, and attaching blame must
  not perturb the observation fingerprint (observability stays
  read-only).
* ``agreement`` — (harness-level) exact and each fast accuracy tier
  (adaptive and fluid) agree on
  every primary metric within tolerance.  Only checked for cases whose
  faults are performance-only (degrade/loss/throttle): topology-killing
  faults land at different event boundaries under train coalescing, so
  crash/failover timing is allowed to differ there.
* ``mutation_smoke`` — intentionally-broken invariant used to prove the
  harness catches and shrinks: it *fails* whenever a PF-level fault
  actually fired.  Never in the default set.

Fleet topology cases (workload ``fleet``) map the same names onto
rack-scale properties in :func:`repro.fuzz.runner.run_fleet_case`:
``conservation`` is the transaction ledger, ``drained`` is "deaths are
the only loss channel", ``obs_consistency`` is merged-registry /
shard-obs / failure-bookkeeping coherence, ``replay`` is the fleet
fingerprint, and ``agreement`` holds exact and fluid tiers to the same
counts and tails.
"""

from __future__ import annotations

from typing import Callable, Dict, List

#: Fault kinds that only change performance, never topology.
PERF_ONLY_FAULTS = {"pcie_degrade", "wire_loss", "qpi_throttle"}


def _crashed(obs: Dict) -> bool:
    return obs["outcome"] != "ok"


# ------------------------------------------------------------- catalogue

def check_conservation(case: Dict, obs: Dict) -> List[str]:
    out: List[str] = []
    wire = obs["wire"]
    if wire["retransmits"] != wire["drops"] + wire["corruptions"]:
        out.append(f"wire retransmits {wire['retransmits']} != drops "
                   f"{wire['drops']} + corruptions "
                   f"{wire['corruptions']}")
    if _crashed(obs):
        # A crash aborts mid-call between the wire charge and the queue
        # account; only the monotonic wire identity above is owed.
        return out
    server, client = obs["server"], obs["client"]

    def eq(label, a, b):
        if a != b:
            out.append(f"{label}: {a} != {b}")

    # Receive path, wire -> device -> queue -> app (server side; every
    # workload's inbound traffic crosses a_to_b exactly once).
    eq("wire a->b packets vs server rx-queue packets",
       wire["packets_offered_a_to_b"], server["rx_packets"])
    eq("wire a->b bytes vs server rx-queue bytes",
       wire["bytes_offered_a_to_b"], server["rx_bytes"])
    eq("server rx-queue bytes vs per-PF rx ledger",
       server["rx_bytes"], server["pf_rx_bytes"])
    eq("server rx-queue bytes vs socket rx ledger",
       server["rx_bytes"], server["sock_rx_bytes"])

    # Transmit path: every server tx goes device.tx -> wire b_to_a.
    eq("server tx-queue bytes vs per-PF tx ledger",
       server["tx_bytes"], server["pf_tx_bytes"])
    eq("wire b->a bytes vs server tx-queue bytes",
       wire["bytes_offered_b_to_a"], server["tx_bytes"])
    if case["workload"] != "pktgen":
        # pktgen transmits below the socket layer by design.
        eq("server tx-queue bytes vs socket tx ledger",
           server["tx_bytes"], server["sock_tx_bytes"])

    # Client mirror (only TCP_RR drives the client machine).
    eq("client rx-queue bytes vs per-PF rx ledger",
       client["rx_bytes"], client["pf_rx_bytes"])
    eq("client rx-queue bytes vs socket rx ledger",
       client["rx_bytes"], client["sock_rx_bytes"])
    eq("client tx-queue bytes vs per-PF tx ledger",
       client["tx_bytes"], client["pf_tx_bytes"])

    # NVMe: submission-to-completion conservation across layers.
    nvme = obs.get("nvme")
    if nvme is not None:
        eq("nvme controller bytes vs QP ledger",
           nvme["read_bytes"] + nvme["write_bytes"], nvme["qp_bytes"])
        eq("nvme read bytes vs per-PF read ledger",
           nvme["read_bytes"], nvme["pf_read_bytes"])
    return out


def check_drained(case: Dict, obs: Dict) -> List[str]:
    if _crashed(obs):
        return []
    out: List[str] = []
    for side in ("server", "client"):
        for direction in ("rx", "tx"):
            left = obs[side][f"{direction}_outstanding"]
            if left:
                out.append(f"{side} {direction} queues end with "
                           f"{left} outstanding")
    nvme = obs.get("nvme")
    if nvme is not None and nvme["qp_outstanding"]:
        out.append(f"nvme QPs end with {nvme['qp_outstanding']} "
                   f"outstanding")
    return out


def check_no_reorder(case: Dict, obs: Dict) -> List[str]:
    bad = [r for r in obs["trace"]["residuals"] if r != 0]
    if bad:
        return [f"{len(bad)} deferred re-steers applied with packets "
                f"still queued (residuals {bad[:5]})"]
    return []


def check_obs_consistency(case: Dict, obs: Dict) -> List[str]:
    out: List[str] = []
    counts = obs["trace"]["counts"]
    drivers = obs["drivers"]
    if drivers["failovers"] != counts.get("failover.applied", 0):
        out.append(f"driver failovers {drivers['failovers']} != traced "
                   f"failover.applied {counts.get('failover.applied', 0)}")
    if drivers["recoveries"] != counts.get("recovery.applied", 0):
        out.append(f"driver recoveries {drivers['recoveries']} != traced "
                   f"recovery.applied "
                   f"{counts.get('recovery.applied', 0)}")
    if len(obs["faults"]) != obs["trace"]["injector_records"]:
        out.append(f"injector recorded {len(obs['faults'])} events but "
                   f"mirrored {obs['trace']['injector_records']} to the "
                   f"tracer")
    out.extend(obs["trace"]["flow_errors"])
    return out


def check_mutation_smoke(case: Dict, obs: Dict) -> List[str]:
    """Deliberately broken: 'no PF-level fault may ever fire'."""
    fired = [e for e in obs["faults"]
             if "fault.pf_down" in e or "fault.pcie_link_down" in e]
    if fired:
        return [f"pf-level fault fired: {fired[0]}"]
    return []


#: Observation-level checkers, by invariant name.
INVARIANTS: Dict[str, Callable[[Dict, Dict], List[str]]] = {
    "conservation": check_conservation,
    "drained": check_drained,
    "no_reorder": check_no_reorder,
    "obs_consistency": check_obs_consistency,
    "mutation_smoke": check_mutation_smoke,
}

#: Harness-level invariants needing extra executions (see runner).
EXECUTION_INVARIANTS = ("replay", "agreement", "blame_conservation")

#: What ``ioctopus-repro fuzz`` checks by default.
DEFAULT_INVARIANTS = ("conservation", "drained", "no_reorder",
                      "obs_consistency", "replay", "agreement",
                      "blame_conservation")

ALL_INVARIANTS = tuple(INVARIANTS) + EXECUTION_INVARIANTS


def validate_names(names: List[str]) -> None:
    unknown = [n for n in names if n not in ALL_INVARIANTS]
    if unknown:
        raise ValueError(f"unknown invariants {unknown}; "
                         f"known: {sorted(ALL_INVARIANTS)}")


def check(case: Dict, obs: Dict, names: List[str]) -> List[Dict]:
    """Run every selected observation-level checker; returns violation
    dicts ``{"invariant", "detail"}`` (execution-level ones are handled
    by the runner)."""
    validate_names(names)
    violations: List[Dict] = []
    for name in names:
        checker = INVARIANTS.get(name)
        if checker is None:
            continue
        for detail in checker(case, obs):
            violations.append({"invariant": name, "detail": detail})
    return violations


def needs_adaptive_run(case: Dict, obs: Dict) -> bool:
    """Whether the agreement invariant applies to this case: the exact
    run finished, and every fault was performance-only (topology faults
    legitimately shift event boundaries under train coalescing)."""
    if obs["outcome"] != "ok":
        return False
    return all(f["kind"] in PERF_ONLY_FAULTS for f in case["faults"])
