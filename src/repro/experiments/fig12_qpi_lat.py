"""Figure 12 (§5.2): 64-byte UDP latency under QPI congestion."""

from __future__ import annotations

from repro.core.configurations import Testbed
from repro.experiments.base import Experiment, ExperimentResult, register
from repro.experiments.runners import run_with_slack, warmup_of
from repro.workloads.sockperf import UdpPingPong
from repro.workloads.stream_bench import spawn_stream_pairs

STREAM_PAIRS = [1, 2, 3, 4, 5, 6]


def run_udp_latency(config: str, pairs: int, duration_ns: int) -> float:
    testbed = Testbed(config)
    workload = UdpPingPong(testbed, 64, duration_ns, warmup_of(duration_ns))
    spawn_stream_pairs(testbed.server, pairs, duration_ns,
                       skip_cores=[testbed.server_core(0)])
    run_with_slack(testbed, duration_ns)
    return workload.average_one_way_us()


@register
class Fig12QpiLatency(Experiment):
    name = "fig12"
    paper_ref = "Figure 12, §5.2"
    description = ("sockperf 64 B UDP latency co-located with STREAM "
                   "pairs: ioct stays flat, remote grows with congestion "
                   "(ioct 10-22% lower)")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = self.duration_ns(fidelity)
        result = self.result(
            ["stream_pairs", "ioct_us", "remote_us",
             "ioct_over_remote"],
            notes="one-way latency; paper's 0.90/0.81/0.78 annotations "
                  "are ioct/remote ratios")
        runs = self.sweep(run_udp_latency, [
            dict(config=config, pairs=pairs, duration_ns=duration)
            for pairs in STREAM_PAIRS
            for config in ("ioctopus", "remote")])
        for i, pairs in enumerate(STREAM_PAIRS):
            ioct, remote = runs[2 * i:2 * i + 2]
            result.add(pairs, round(ioct, 2), round(remote, 2),
                       round(ioct / remote, 2))
        return result
