"""Ablations over the design choices DESIGN.md calls out.

These are not paper figures; they probe the knobs the paper's design
discussion turns on:

* ``abl_wiring`` — §3.2's three wiring options: per-operation latency,
  lane and power cost of bifurcation vs. a programmable PCIe switch.
* ``abl_sg``     — §3.3's IOctoSG: transmits whose fragments span NUMA
  nodes, with and without per-fragment PF hints.
* ``abl_octossd``— §5.4's future work: the fio-vs-STREAM experiment with
  dual-port octoSSDs instead of single-port drives.
* ``abl_mixed_io``— NIC + NVMe colocation: TCP Rx and remote fio share
  socket 1 while both devices attach per configuration; with standard
  single-socket attachment the SSD fleet's DMA starves the TCP stream
  on the shared UPI direction, one PF per socket removes the contention.
* ``abl_ddio``   — sensitivity of local multi-flow Rx to LLC capacity
  (and with it the DDIO slice).
* ``abl_window`` — sensitivity of congested remote Rx to the DMA
  engine's outstanding-transaction window.
* ``abl_scale``  — IOctopus on a 4-socket machine (one x4 PF per socket).

Component-level leave-one-out ablation (which *mechanism* earns its
cost) is a separate engine: :mod:`repro.experiments.ablate`.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.configurations import (
    Testbed,
    TestbedBuilder,
    attach_octossd_fleet,
)
from repro.core.sg import (
    SgFragment,
    plan_fragments,
    transmit_with_hints,
    transmit_without_hints,
)
from repro.experiments.base import Experiment, ExperimentResult, register
from repro.experiments.fig15_nvme import run_fio_point
from repro.experiments.runners import MembwProbe, warmup_of
from repro.nic.packet import Flow
from repro.nic.wire import EthernetWire
from repro.sim.engine import Environment
from repro.topology.constants import dell_r730_spec
from repro.units import KB, MB
from repro.workloads.fio import spawn_fio_fleet
from repro.workloads.netperf import TcpStream
from repro.workloads.pktgen import Pktgen
from repro.workloads.stream_bench import spawn_stream_pairs


@register
class AblWiring(Experiment):
    name = "abl_wiring"
    paper_ref = "§3.2 wiring alternatives"
    description = ("bifurcation vs programmable PCIe switch: pktgen rate, "
                   "per-op latency tax, lanes and power")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = self.duration_ns(fidelity)
        result = self.result(
            ["wiring", "pktgen_mpps", "doorbell_ns", "lanes", "power_w"],
            notes="the switch trades per-operation latency, lanes and "
                  "power for runtime flexibility (reattach, P2P DMA)")
        for wiring in ("bifurcation", "switch"):
            env = Environment()
            wire = EthernetWire(env)
            host = (TestbedBuilder("ioctopus").wiring(wiring)
                    .pf_name("octo").build_host(env=env, wire=wire))
            machine = host.machine
            core = machine.cores_on_node(0)[0]
            workload = Pktgen(host, core, 1500, duration,
                              warmup_of(duration))
            env.run(until=duration + duration // 5)
            result.add(wiring, round(workload.mpps(), 2),
                       host.nic.pfs[0].mmio_latency(0),
                       host.wiring_lanes, host.wiring_power_w)
        return result


@register
class AblSg(Experiment):
    name = "abl_sg"
    paper_ref = "§3.3 IOctoSG"
    description = ("transmit buffers spanning NUMA nodes (sendfile-style): "
                   "per-fragment PF hints vs a single fixed PF")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        testbed = Testbed("ioctopus")
        machine = testbed.server.machine
        device = testbed.server.nic
        result = self.result(
            ["fragments", "hinted_delay_us", "fixed_pf_delay_us",
             "speedup", "interconnect_bytes_fixed"],
            notes="hinted reads never cross the interconnect; a fixed PF "
                  "pulls half its fragments across it")
        for n_fragments in (2, 8, 32, 128):
            frag_bytes = 64 * KB
            fragments = [
                SgFragment(machine.alloc_region(f"pg{i}", i % 2,
                                                frag_bytes), frag_bytes)
                for i in range(n_fragments)]
            hints = plan_fragments(device, fragments)
            hinted = transmit_with_hints(device, hints)
            before = sum(link.server.bytes_total
                         for link in machine.interconnect.links())
            fixed = transmit_without_hints(device, 0, hints)
            crossed = sum(link.server.bytes_total
                          for link in machine.interconnect.links()) - before
            result.add(n_fragments, round(hinted / 1000, 2),
                       round(fixed / 1000, 2),
                       round(fixed / max(hinted, 1), 2), crossed)
        return result


@register
class AblOctoSsd(Experiment):
    name = "abl_octossd"
    paper_ref = "§5.4 future work (octoSSD)"
    description = ("the Fig 15 scenario with dual-port octoSSDs: storage "
                   "NUDMA disappears like the NIC's did")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = self.duration_ns(fidelity) * 2
        result = self.result(
            ["streams", "single_port_norm", "octossd_norm"],
            notes="normalised to each arrangement running alone")
        stream_counts = (0, 3, 5, 10)
        runs = self.sweep(run_fio_point, [
            dict(n_streams=streams, duration_ns=duration,
                 octo_mode=octo_mode)
            for streams in stream_counts for octo_mode in (False, True)])
        # stream_counts starts at 0, so the unloaded baselines are the
        # first pair (deterministic: same points, same metrics).
        base_std = runs[0]["fio_gbps"]
        base_octo = runs[1]["fio_gbps"]
        for i, streams in enumerate(stream_counts):
            std, octo = runs[2 * i:2 * i + 2]
            result.add(streams, round(std["fio_gbps"] / base_std, 2),
                       round(octo["fio_gbps"] / base_octo, 2))
        return result


MIXED_SSDS = 4
MIXED_FIO_THREADS = 8


def run_mixed_io_point(config: str, duration_ns: int) -> dict:
    """One colocation point: TCP Rx netperf plus fio on socket 1.

    With ``config='remote'`` the NIC and the SSD fleet attach to socket
    0 only, so the TCP payload DMA and the SSD read DMA share the same
    UPI direction toward the workloads.  With ``config='ioctopus'`` both
    devices have one PF per socket and neither transfer crosses it.
    """
    octo = config == "ioctopus"
    testbed = Testbed(config)
    host = testbed.server
    machine = host.machine
    warmup = duration_ns // 5
    tcp = TcpStream(host, machine.cores_on_node(1)[0], Flow.make(0),
                    64 * KB, "rx", duration_ns, warmup)
    drivers = attach_octossd_fleet(machine, octo, MIXED_SSDS)
    fio_cores = machine.cores_on_node(1)[1:1 + MIXED_FIO_THREADS]
    fleet = spawn_fio_fleet(host, fio_cores, drivers, duration_ns, warmup)
    testbed.run(duration_ns + warmup)
    return {
        "tcp_gbps": tcp.throughput_gbps(),
        "fio_gbps": sum(f.throughput_gbps() for f in fleet),
    }


@register
class AblMixedIo(Experiment):
    name = "abl_mixed_io"
    paper_ref = "§2.2 + §5.4 (NUDMA compounds across devices)"
    description = ("TCP Rx and remote fio colocated on one socket with "
                   "the NIC and the SSD fleet attached standard (socket "
                   "0 only) vs IOctopus (one PF per socket): on the "
                   "shared UPI direction the SSD DMA starves the TCP "
                   "stream; per-socket PFs restore it while fio stays "
                   "flash-bound throughout")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = self.duration_ns(fidelity) * 2
        runs = self.sweep(run_mixed_io_point, [
            dict(config=config, duration_ns=duration)
            for config in ("remote", "ioctopus")])
        result = self.result(
            ["config", "tcp_gbps", "fio_gbps", "combined_gbps"],
            notes="TCP Rx (64 KB messages) on core 1/0 plus "
                  f"{MIXED_FIO_THREADS} fio threads over {MIXED_SSDS} "
                  "SSDs on the same socket")
        for config, point in zip(("remote", "ioctopus"), runs):
            result.add(config, round(point["tcp_gbps"], 1),
                       round(point["fio_gbps"], 1),
                       round(point["tcp_gbps"] + point["fio_gbps"], 1))
        return result


@register
class AblDdio(Experiment):
    name = "abl_ddio"
    paper_ref = "§2.2 DDIO sensitivity"
    description = ("8 local TCP Rx flows vs the LLC slice DDIO may "
                   "allocate into: a starved slice reintroduces memory "
                   "traffic even for local DMA")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = self.duration_ns(fidelity)
        result = self.result(
            ["llc_total_mb", "aggregate_rx_gbps", "local_membw_gbps",
             "membw_per_gbit"],
            notes="shrinking the LLC (and with it the DDIO slice and "
                  "consumer windows) pushes local DMA toward remote-like "
                  "memory behaviour; paper §5.1.1 multi-core shows the "
                  "full-size case")
        for llc_mb in (70, 35, 18, 9):
            spec = dell_r730_spec()
            spec = replace(spec, cpu=replace(spec.cpu,
                                             llc_bytes=llc_mb * MB))
            testbed = Testbed("local", spec=spec)
            host = testbed.server
            cores = host.machine.cores_on_node(0)[:8]
            warmup = warmup_of(duration)
            workloads = [TcpStream(host, core, Flow.make(i), 64 * KB,
                                   "rx", duration, warmup)
                         for i, core in enumerate(cores)]
            probe = MembwProbe(testbed, duration)
            testbed.run(duration + duration // 5)
            total = sum(w.throughput_gbps() for w in workloads)
            result.add(llc_mb, round(total, 2), round(probe.gbps, 2),
                       round(probe.gbps / total, 3) if total else 0.0)
        return result


@register
class AblWindow(Experiment):
    name = "abl_window"
    paper_ref = "§5.2 DMA-window sensitivity"
    description = ("remote TCP Rx under 6 STREAM pairs vs the DMA "
                   "engine's outstanding-line window")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = self.duration_ns(fidelity)
        result = self.result(
            ["outstanding_lines", "remote_rx_gbps"],
            notes="a deeper window hides more of the congested "
                  "interconnect's latency, exactly like MLP in a core")
        for window in (8, 16, 32, 64, 128):
            testbed = Testbed("remote")
            testbed.server.machine.memory.dma_outstanding_lines = window
            testbed.client.machine.memory.dma_outstanding_lines = window
            warmup = warmup_of(duration)
            workload = TcpStream(testbed.server, testbed.server_core(0),
                                 Flow.make(0), 64 * KB, "rx", duration,
                                 warmup)
            spawn_stream_pairs(testbed.server, 6, duration, warmup,
                               skip_cores=[testbed.server_core(0)])
            testbed.run(duration + duration // 5)
            result.add(window, round(workload.throughput_gbps(), 2))
        return result


@register
class AblScale(Experiment):
    name = "abl_scale"
    paper_ref = "§3.2 (multi-socket generality)"
    description = ("IOctopus on a 4-socket machine: one x4 PF per socket "
                   "still makes every placement local")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = self.duration_ns(fidelity)
        spec = dell_r730_spec()
        spec = replace(spec, num_nodes=4)
        result = self.result(
            ["workload_node", "standard_pf0_gbps", "octo_gbps"],
            notes="standard = single PF on node 0; octo = one PF per "
                  "socket via the team driver")
        for node in range(4):
            rates = {}
            for arrangement in ("standard", "octo"):
                env = Environment()
                wire = EthernetWire(env)
                if arrangement == "octo":
                    builder = (TestbedBuilder("ioctopus").spec(spec)
                               .pf_name("o4"))
                else:
                    builder = (TestbedBuilder("local").spec(spec)
                               .attach_nodes([0]).pf_name("s4"))
                host = builder.build_host(env=env, wire=wire)
                machine = host.machine
                core = machine.cores_on_node(node)[0]
                workload = TcpStream(host, core, Flow.make(0), 64 * KB,
                                     "rx", duration, warmup_of(duration))
                env.run(until=duration + duration // 5)
                rates[arrangement] = workload.throughput_gbps()
            result.add(node, round(rates["standard"], 2),
                       round(rates["octo"], 2))
        return result
