"""Shared experiment runners (build a testbed, run one workload point).

Every runner takes an ``accuracy`` mode (``None`` = the process default,
see :func:`repro.sim.engine.default_accuracy`):

* ``"exact"`` — the full run: every burst is its own event, metrics are
  probed over the fixed measurement window.  Bit-identical to the
  pre-train behaviour (the determinism goldens pin this).
* ``"adaptive"`` — the quick-fidelity fast path: workloads coalesce
  steady-state packet trains (``repro.workloads.train``) and the runner
  stops the point early once its primary estimate has converged
  (:func:`run_until_converged`), reading metrics over the train-aligned
  covered time instead of the full window.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from repro.components import SystemConfig
from repro.core.configurations import Testbed
from repro.nic.packet import Flow
from repro.units import gbps
from repro.workloads.netperf import TcpRr, TcpStream
from repro.workloads.pktgen import Pktgen
from repro.workloads.stream_bench import spawn_stream_pairs

#: Fraction of the run used as warmup before measurement starts.
WARMUP_FRACTION = 0.15

#: Extra simulated slack after the measured window (as a divisor of the
#: duration) so in-flight work can drain before metrics are read.
SLACK_DIVISOR = 5

#: Adaptive early termination: the measurement window is sliced this many
#: times; after each slice the primary estimate is re-read.
CONVERGE_SLICES = 16
#: Minimum slices before an early stop may trigger (guards against a
#: lucky flat start).
CONVERGE_MIN_SLICES = 4
#: The last this-many estimates must agree ...  (5, not 3: workloads
#: with coarse per-sample quantisation — memcached's ~100 us
#: transactions — drift at the percent scale for several slices, and a
#: 3-slice window can sit flat on a transient plateau.)
CONVERGE_WINDOW = 5
#: ... to within this relative half-width for the point to stop early.
CONVERGE_REL = 0.005


def warmup_of(duration_ns: int) -> int:
    return int(duration_ns * WARMUP_FRACTION)


def system_for(config: str,
               components: Optional[Mapping[str, bool]] = None,
               ) -> SystemConfig:
    """Preset + optional component-override map (the ablation engine
    passes plain dicts so points stay JSON-serialisable for the sweep
    cache) as a SystemConfig."""
    system = SystemConfig(preset=config)
    for name, enabled in sorted((components or {}).items()):
        system = system.with_override(name, bool(enabled))
    return system


def run_with_slack(testbed: Testbed, duration_ns: int) -> None:
    """Run the testbed for the measured window plus drain slack."""
    testbed.run(duration_ns + duration_ns // SLACK_DIVISOR)


def server_membw_gbps(testbed: Testbed, duration_ns: int) -> float:
    """Server DRAM read+write traffic in Gb/s over the whole run."""
    total = sum(d.read_bytes + d.write_bytes
                for d in testbed.server.machine.memory.drams)
    return total * 8 / duration_ns


# --------------------------------------------------------------- adaptive

def _converged(estimates: List[Optional[float]]) -> bool:
    """True when the last CONVERGE_WINDOW estimates agree to within a
    CONVERGE_REL relative half-width."""
    if len(estimates) < CONVERGE_WINDOW:
        return False
    tail = estimates[-CONVERGE_WINDOW:]
    if any(e is None for e in tail):
        return False
    lo, hi = min(tail), max(tail)
    mid = (lo + hi) / 2
    if mid == 0:
        return hi == lo
    return (hi - lo) / 2 <= CONVERGE_REL * abs(mid)


def run_until_converged(testbed: Testbed, duration_ns: int,
                        estimate: Callable[[], float]) -> int:
    """Adaptive steady-state early termination for one point.

    Runs the warmup, resets the measurement windows, then advances the
    testbed one slice of the measurement window at a time, re-reading the
    primary ``estimate`` after each.  Stops as soon as the estimate has
    converged (or the full window elapses).  Returns the warmup ns.
    """
    warmup = warmup_of(duration_ns)
    testbed.run(warmup)
    testbed.server.machine.reset_measurement_windows()
    window = duration_ns - warmup
    estimates: List[Optional[float]] = []
    for i in range(1, CONVERGE_SLICES + 1):
        testbed.run(warmup + window * i // CONVERGE_SLICES)
        try:
            estimates.append(estimate())
        except ValueError:
            # Nothing measured yet (meter unfinished / no samples).
            estimates.append(None)
        if i >= CONVERGE_MIN_SLICES and _converged(estimates):
            break
    return warmup


def window_membw_gbps(testbed: Testbed, elapsed_ns: int) -> float:
    drams = testbed.server.machine.memory.drams
    return sum(d.window_bytes() for d in drams) * 8 / elapsed_ns


def meter_elapsed(meter) -> int:
    """Covered time of an adaptive run: first record to the (train-
    aligned, progressively finished) end.  Adaptive workload bodies snap
    ``start_ns`` to their first recorded train and project ``end_ns``
    past their last, so dividing window counters by this — instead of
    env.now − warmup — cancels both boundary effects: the dead gap
    before the first post-warmup train and the charge-ahead of the last
    one."""
    end = meter.end_ns if meter.end_ns is not None else meter.start_ns
    return max(1, end - meter.start_ns)


class MembwProbe:
    """Measures server DRAM bandwidth and per-core CPU utilisation over
    exactly the measurement window (warmup..duration), excluding both
    cold-start transients (first fill of the skb pools) and the idle tail
    after workloads stop."""

    def __init__(self, testbed: Testbed, duration_ns: int):
        self.gbps = 0.0
        self._cpu_by_core = {}
        # Resolve the machine (and its DRAM controllers) once up front
        # instead of re-walking testbed.server.machine inside the probe.
        machine = self._machine = testbed.server.machine
        drams = machine.memory.drams
        warmup = warmup_of(duration_ns)

        def probe():
            yield machine.env.timeout(warmup)
            machine.reset_measurement_windows()
            yield machine.env.timeout(duration_ns - warmup)
            total = sum(d.window_bytes() for d in drams)
            self.gbps = total * 8 / (duration_ns - warmup)
            self._cpu_by_core = {core.core_id: core.window_utilization()
                                 for core in machine.cores}

        machine.env.process(probe(), name="membw-probe")

    def cpu(self, core) -> float:
        return self._cpu_by_core.get(core.core_id, 0.0)


# ---------------------------------------------------------------- runners

def run_tcp_stream(config: str, message_bytes: int, direction: str,
                   duration_ns: int, stream_pairs: int = 0,
                   seed: int = 0,
                   accuracy: Optional[str] = None,
                   components: Optional[Dict[str, bool]] = None,
                   obs=None) -> Dict[str, float]:
    """One netperf TCP_STREAM point; returns throughput/membw/cpu."""
    testbed = Testbed(system=system_for(config, components), seed=seed,
                      accuracy=accuracy)
    if obs is not None:
        obs.attach(testbed, horizon_ns=duration_ns)
    host = testbed.server
    warmup = warmup_of(duration_ns)
    workload = TcpStream(host, testbed.server_core(0), Flow.make(0),
                         message_bytes, direction, duration_ns, warmup)
    if stream_pairs:
        spawn_stream_pairs(host, stream_pairs, duration_ns, warmup,
                           skip_cores=[testbed.server_core(0)])
    if testbed.env.adaptive:
        run_until_converged(testbed, duration_ns,
                            workload.meter.gbps)
        elapsed = meter_elapsed(workload.meter)
        return {
            "throughput_gbps": workload.throughput_gbps(),
            "membw_gbps": window_membw_gbps(testbed, elapsed),
            "cpu_cores": min(1.0, workload.thread.core.window_busy_ns
                             / elapsed),
        }
    probe = MembwProbe(testbed, duration_ns)
    run_with_slack(testbed, duration_ns)
    return {
        "throughput_gbps": workload.throughput_gbps(),
        "membw_gbps": probe.gbps,
        "cpu_cores": probe.cpu(workload.thread.core),
    }


def run_pktgen(config: str, packet_bytes: int, duration_ns: int,
               ring_home_node: Optional[int] = None,
               seed: int = 0,
               accuracy: Optional[str] = None,
               components: Optional[Dict[str, bool]] = None,
               obs=None) -> Dict[str, float]:
    """One pktgen point."""
    testbed = Testbed(system=system_for(config, components), seed=seed,
                      accuracy=accuracy)
    if obs is not None:
        obs.attach(testbed, horizon_ns=duration_ns)
    workload = Pktgen(testbed.server, testbed.server_core(0), packet_bytes,
                      duration_ns, warmup_of(duration_ns),
                      ring_home_node=ring_home_node)
    if testbed.env.adaptive:
        run_until_converged(testbed, duration_ns, workload.meter.mpps)
        elapsed = meter_elapsed(workload.meter)
        return {
            "throughput_gbps": workload.throughput_gbps(),
            "mpps": workload.mpps(),
            "membw_gbps": window_membw_gbps(testbed, elapsed),
        }
    probe = MembwProbe(testbed, duration_ns)
    run_with_slack(testbed, duration_ns)
    return {
        "throughput_gbps": workload.throughput_gbps(),
        "mpps": workload.mpps(),
        "membw_gbps": probe.gbps,
    }


def run_tcp_rr(server_config: str, client_config: str, ddio: bool,
               message_bytes: int, duration_ns: int,
               seed: int = 0, accuracy: Optional[str] = None,
               components: Optional[Dict[str, bool]] = None,
               obs=None) -> float:
    """One TCP_RR point; returns average RTT in ns."""
    system = system_for(server_config, components)
    if not ddio:
        system = system.with_override("ddio", False)
    testbed = Testbed(system=system, client_config=client_config,
                      seed=seed, accuracy=accuracy)
    if obs is not None:
        obs.attach(testbed, horizon_ns=duration_ns)
    workload = TcpRr(testbed, message_bytes, duration_ns,
                     warmup_of(duration_ns))
    if testbed.env.adaptive:
        # No trains on the latency path (coalescing is disabled there by
        # construction); early termination alone does the saving — the
        # per-iteration RTT is nearly deterministic, so the average
        # settles within a few convergence slices.
        run_until_converged(testbed, duration_ns,
                            workload.latencies.average)
        return workload.average_rtt_ns()
    run_with_slack(testbed, duration_ns)
    return workload.average_rtt_ns()
