"""Shared experiment runners (build a testbed, run one workload point)."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.configurations import Testbed
from repro.nic.packet import Flow
from repro.units import gbps
from repro.workloads.netperf import TcpRr, TcpStream
from repro.workloads.pktgen import Pktgen
from repro.workloads.stream_bench import spawn_stream_pairs

#: Fraction of the run used as warmup before measurement starts.
WARMUP_FRACTION = 0.15

#: Extra simulated slack after the measured window (as a divisor of the
#: duration) so in-flight work can drain before metrics are read.
SLACK_DIVISOR = 5


def warmup_of(duration_ns: int) -> int:
    return int(duration_ns * WARMUP_FRACTION)


def run_with_slack(testbed: Testbed, duration_ns: int) -> None:
    """Run the testbed for the measured window plus drain slack."""
    testbed.run(duration_ns + duration_ns // SLACK_DIVISOR)


def server_membw_gbps(testbed: Testbed, duration_ns: int) -> float:
    """Server DRAM read+write traffic in Gb/s over the whole run."""
    total = sum(d.read_bytes + d.write_bytes
                for d in testbed.server.machine.memory.drams)
    return total * 8 / duration_ns


class MembwProbe:
    """Measures server DRAM bandwidth and per-core CPU utilisation over
    exactly the measurement window (warmup..duration), excluding both
    cold-start transients (first fill of the skb pools) and the idle tail
    after workloads stop."""

    def __init__(self, testbed: Testbed, duration_ns: int):
        self.gbps = 0.0
        self._cpu_by_core = {}
        # Resolve the machine (and its DRAM controllers) once up front
        # instead of re-walking testbed.server.machine inside the probe.
        machine = self._machine = testbed.server.machine
        drams = machine.memory.drams
        warmup = warmup_of(duration_ns)

        def probe():
            yield machine.env.timeout(warmup)
            machine.reset_measurement_windows()
            yield machine.env.timeout(duration_ns - warmup)
            total = sum(d.window_bytes() for d in drams)
            self.gbps = total * 8 / (duration_ns - warmup)
            self._cpu_by_core = {core.core_id: core.window_utilization()
                                 for core in machine.cores}

        machine.env.process(probe(), name="membw-probe")

    def cpu(self, core) -> float:
        return self._cpu_by_core.get(core.core_id, 0.0)


def run_tcp_stream(config: str, message_bytes: int, direction: str,
                   duration_ns: int, stream_pairs: int = 0,
                   seed: int = 0) -> Dict[str, float]:
    """One netperf TCP_STREAM point; returns throughput/membw/cpu."""
    testbed = Testbed(config, seed=seed)
    host = testbed.server
    warmup = warmup_of(duration_ns)
    workload = TcpStream(host, testbed.server_core(0), Flow.make(0),
                         message_bytes, direction, duration_ns, warmup)
    if stream_pairs:
        spawn_stream_pairs(host, stream_pairs, duration_ns, warmup,
                           skip_cores=[testbed.server_core(0)])
    probe = MembwProbe(testbed, duration_ns)
    run_with_slack(testbed, duration_ns)
    return {
        "throughput_gbps": workload.throughput_gbps(),
        "membw_gbps": probe.gbps,
        "cpu_cores": probe.cpu(workload.thread.core),
    }


def run_pktgen(config: str, packet_bytes: int, duration_ns: int,
               ring_home_node: Optional[int] = None,
               seed: int = 0) -> Dict[str, float]:
    """One pktgen point."""
    testbed = Testbed(config, seed=seed)
    workload = Pktgen(testbed.server, testbed.server_core(0), packet_bytes,
                      duration_ns, warmup_of(duration_ns),
                      ring_home_node=ring_home_node)
    probe = MembwProbe(testbed, duration_ns)
    run_with_slack(testbed, duration_ns)
    return {
        "throughput_gbps": workload.throughput_gbps(),
        "mpps": workload.mpps(),
        "membw_gbps": probe.gbps,
    }


def run_tcp_rr(server_config: str, client_config: str, ddio: bool,
               message_bytes: int, duration_ns: int,
               seed: int = 0) -> float:
    """One TCP_RR point; returns average RTT in ns."""
    testbed = Testbed(server_config, client_config=client_config,
                      ddio=ddio, seed=seed)
    workload = TcpRr(testbed, message_bytes, duration_ns,
                     warmup_of(duration_ns))
    run_with_slack(testbed, duration_ns)
    return workload.average_rtt_ns()
