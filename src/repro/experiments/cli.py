"""Command-line entry point: run any experiment and print its table.

Examples::

    ioctopus-repro --list
    ioctopus-repro fig08
    ioctopus-repro fig06 fig07 --fidelity quick
    ioctopus-repro --all --fidelity quick
    ioctopus-repro obs --workload rr --trace /tmp/rr.json
    ioctopus-repro ablate --figure fig08 --fidelity quick
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.base import all_experiment_names, get_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ioctopus-repro",
        description="Reproduce the IOctopus (ASPLOS'20) evaluation on "
                    "the NUDMA simulator")
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--fidelity", default="normal",
                        choices=("quick", "normal", "long"),
                        help="simulated duration per data point")
    parser.add_argument("--accuracy", default=None,
                        choices=("exact", "adaptive", "fluid"),
                        help="exact: per-burst simulation (bit-identical "
                             "goldens); adaptive: coalesce steady-state "
                             "packet trains and stop converged points "
                             "early; fluid: additionally advance whole "
                             "steady intervals in closed form (fastest, "
                             "metrics within ~2%% of exact) (default: "
                             "adaptive for --fidelity quick, exact "
                             "otherwise)")
    parser.add_argument("--report", action="store_true",
                        help="emit a markdown report (tables + claim "
                             "verdicts) instead of plain tables")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="run independent sweep points across N "
                             "worker processes (default: serial)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache finished sweep points in DIR, keyed "
                             "by code+parameter hash")
    parser.add_argument("--servers", type=int, default=None, metavar="N",
                        help="fleet experiments (fig16): servers behind "
                             "the load balancer (default 8)")
    parser.add_argument("--connections", type=int, default=None,
                        metavar="N",
                        help="fleet experiments (fig16): fleet-wide "
                             "client connections (default 1048576)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "obs":
        from repro.obs.cli import main as obs_main
        return obs_main(argv[1:])
    if argv and argv[0] == "fuzz":
        from repro.fuzz.cli import main as fuzz_main
        return fuzz_main(argv[1:])
    if argv and argv[0] == "ablate":
        from repro.experiments.ablate import main as ablate_main
        return ablate_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.jobs is not None or args.cache_dir is not None:
        from repro.experiments.sweep import configure
        configure(jobs=args.jobs, cache_dir=args.cache_dir)
    if args.accuracy is not None:
        from repro.experiments.base import configure_accuracy
        configure_accuracy(args.accuracy)
    if args.servers is not None or args.connections is not None:
        from repro.experiments.fig16_fleet import configure_fleet
        configure_fleet(servers=args.servers,
                        connections=args.connections)
    if args.list:
        for name in all_experiment_names():
            experiment = get_experiment(name)
            print(f"{name:8s} {experiment.paper_ref:30s} "
                  f"{experiment.description}")
        return 0
    names = all_experiment_names() if args.all else args.experiments
    if not names:
        print("nothing to run: pass experiment names, --all, or --list",
              file=sys.stderr)
        return 2
    if args.report:
        from repro.analysis import run_report
        print(run_report(names=names, fidelity=args.fidelity))
        return 0
    for name in names:
        experiment = get_experiment(name)
        print(experiment.run(fidelity=args.fidelity).table())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
