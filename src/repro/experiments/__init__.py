"""Experiments: one registered module per paper table/figure."""

from repro.experiments import (  # noqa: F401  (registration side effects)
    ablations,
    fig02_trends,
    fig06_tcp_rx,
    fig07_tcp_tx,
    fig08_pktgen,
    fig09_latency,
    fig10_memcached,
    fig11_qpi_tput,
    fig12_qpi_lat,
    fig13_colocation,
    fig14_migration,
    fig15_nvme,
    fig16_fleet,
    fig_failover,
    sec24_remote_ddio,
    sec511_multicore,
)
from repro.experiments.base import (
    Experiment,
    ExperimentResult,
    all_experiment_names,
    get_experiment,
    register,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "all_experiment_names",
    "get_experiment",
    "register",
]
