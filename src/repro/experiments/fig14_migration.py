"""Figure 14 (§5.3): the steering switch under thread migration.

A TCP Rx netperf process is migrated to the other socket mid-run; per-PF
throughput is sampled every 50 ms.  With the octoNIC, IOctoRFS moves the
flow to the newly-local PF at full speed; with standard firmware the flow
is pinned to its PF and throughput drops to the remote level.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.configurations import Testbed
from repro.experiments.base import Experiment, ExperimentResult, register
from repro.metrics.collect import TimeSeries
from repro.nic.packet import Flow
from repro.units import KB
from repro.workloads.netperf import TcpStream

SAMPLE_NS = 50_000_000  # 50 ms, as in the paper


def run_migration(config: str, duration_ns: int,
                  migrate_at_ns: int) -> Dict[str, TimeSeries]:
    testbed = Testbed(config)
    host = testbed.server
    start_core = host.machine.cores_on_node(0)[0]
    target_core = host.machine.cores_on_node(1)[0]
    workload = TcpStream(host, start_core, Flow.make(0), 64 * KB, "rx",
                         duration_ns)

    def migrator():
        yield testbed.env.timeout(migrate_at_ns)
        host.scheduler.set_affinity(workload.thread, target_core)

    series = {f"pf{pf.pf_id}": TimeSeries(f"pf{pf.pf_id}")
              for pf in host.nic.pfs}

    def sampler():
        while testbed.env.now < duration_ns:
            host.nic.reset_pf_windows()
            yield testbed.env.timeout(SAMPLE_NS)
            for pf in host.nic.pfs:
                series[f"pf{pf.pf_id}"].sample(
                    testbed.env.now, host.nic.pf_window_rx_gbps(pf.pf_id))

    testbed.env.process(migrator(), name="migrator")
    testbed.env.process(sampler(), name="sampler")
    testbed.run(duration_ns + SAMPLE_NS)
    return series


@register
class Fig14Migration(Experiment):
    name = "fig14"
    paper_ref = "Figure 14, §5.3"
    description = ("per-PF throughput while a netperf TCP Rx process "
                   "migrates across sockets: octoNIC re-steers at full "
                   "speed, standard NIC drops to remote level")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = max(self.duration_ns(fidelity) * 10, 8 * SAMPLE_NS)
        migrate_at = duration // 2
        result = self.result(
            ["config", "time_ms", "pf0_gbps", "pf1_gbps"],
            notes=f"migration at {migrate_at / 1e6:.0f} ms; samples every "
                  f"{SAMPLE_NS / 1e6:.0f} ms")
        configs = ("ioctopus", "local")
        runs = self.sweep(run_migration, [
            dict(config=config, duration_ns=duration,
                 migrate_at_ns=migrate_at)
            for config in configs])
        for config, series in zip(configs, runs):
            label = "octoNIC" if config == "ioctopus" else "ethNIC"
            for t, pf0, pf1 in zip(series["pf0"].times_ns,
                                   series["pf0"].values,
                                   series["pf1"].values):
                result.add(label, round(t / 1e6, 1), round(pf0, 2),
                           round(pf1, 2))
        return result
