"""Automated component ablation: which mechanism earns its keep?

The paper argues IOctopus from a stack of cooperating mechanisms —
per-socket PFs, flow steering, DDIO, drain-before-resteer, adaptive
moderation.  This engine measures each one's *importance*: it runs a
figure's representative point under the baseline
:class:`~repro.components.SystemConfig`, then once per registered
component with that component switched off (leave-one-out, optionally
all pairs), and ranks the components by how much the metric degrades
without them.

Every matrix row is one :class:`SystemConfig` with a stable
content-hash :meth:`~repro.components.SystemConfig.run_id`, and rows
execute through the same :func:`~repro.experiments.sweep.sweep_map`
executor the figures use — so ``--jobs`` fans them out and a configured
``--cache-dir`` makes a re-run (or another process generating the same
matrix) pure cache hits.

CLI::

    ioctopus-repro ablate --figure fig08 --fidelity quick
    ioctopus-repro ablate --figure fig09 --pairwise --jobs 4 --json
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.components import SystemConfig, loo_matrix
from repro.experiments.base import DURATIONS_MS
from repro.experiments.runners import (run_pktgen, run_tcp_rr,
                                       run_tcp_stream)
from repro.units import KB

#: Leave-one-out deltas smaller than this (relative to baseline) are
#: noise, not importance: the component is reported as inert for the
#: figure rather than ranked above/below a genuinely load-bearing one.
INERT_REL = 0.002


@dataclass(frozen=True)
class AblationTarget:
    """One figure's representative point, as an ablatable metric."""

    figure: str
    metric: str
    unit: str
    #: False for latency-style metrics where lower is better.
    higher_is_better: bool
    #: Module-level point runner (picklable by path for sweep workers).
    fn: Callable
    #: Fixed kwargs of the representative point; the engine adds
    #: ``duration_ns``/``seed``/``accuracy``/``components``.
    base_params: Tuple[Tuple[str, object], ...]
    #: Key of ``metric`` in the runner's result dict; None when the
    #: runner returns the scalar itself (run_tcp_rr).
    result_key: Optional[str]
    description: str


_TARGETS: Dict[str, AblationTarget] = {}


def register_target(target: AblationTarget) -> AblationTarget:
    if target.figure in _TARGETS:
        raise ValueError(f"duplicate ablation target {target.figure!r}")
    _TARGETS[target.figure] = target
    return target


def get_target(figure: str) -> AblationTarget:
    try:
        return _TARGETS[figure]
    except KeyError:
        raise KeyError(f"no ablation target for {figure!r}; "
                       f"known: {sorted(_TARGETS)}") from None


def target_names() -> List[str]:
    return sorted(_TARGETS)


register_target(AblationTarget(
    figure="fig08", metric="mpps", unit="Mpps", higher_is_better=True,
    fn=run_pktgen,
    base_params=(("config", "ioctopus"), ("packet_bytes", 64)),
    result_key="mpps",
    description="single-core 64 B pktgen rate (§5.1.1)"))

register_target(AblationTarget(
    figure="fig06", metric="throughput_gbps", unit="Gb/s",
    higher_is_better=True, fn=run_tcp_stream,
    base_params=(("config", "ioctopus"), ("message_bytes", 16 * KB),
                 ("direction", "rx")),
    result_key="throughput_gbps",
    description="single-flow 16 KB TCP Rx throughput (§5.1.2)"))

register_target(AblationTarget(
    figure="fig07", metric="throughput_gbps", unit="Gb/s",
    higher_is_better=True, fn=run_tcp_stream,
    base_params=(("config", "ioctopus"), ("message_bytes", 16 * KB),
                 ("direction", "tx")),
    result_key="throughput_gbps",
    description="single-flow 16 KB TCP Tx throughput (§5.1.2)"))

register_target(AblationTarget(
    figure="fig09", metric="rtt_ns", unit="ns", higher_is_better=False,
    fn=run_tcp_rr,
    base_params=(("server_config", "ioctopus"),
                 ("client_config", "local"), ("ddio", True),
                 ("message_bytes", 64)),
    result_key=None,
    description="64 B TCP_RR round-trip latency (§5.1.3)"))


# ----------------------------------------------------------------- engine

def _duration_ns(fidelity: str) -> int:
    try:
        return DURATIONS_MS[fidelity] * 1_000_000
    except KeyError:
        raise ValueError(f"fidelity must be one of {sorted(DURATIONS_MS)},"
                         f" got {fidelity!r}") from None


def matrix_points(target: AblationTarget,
                  matrix: Sequence[SystemConfig],
                  duration_ns: int, seed: int,
                  accuracy: Optional[str]) -> List[Dict]:
    """One sweep point per matrix row.  The components dict rides in the
    point's JSON kwargs, so the sweep cache key — like the row's
    ``run_id()`` — is a pure function of the configuration content."""
    points = []
    for config in matrix:
        point = dict(target.base_params)
        point["duration_ns"] = duration_ns
        point["seed"] = seed
        point["accuracy"] = accuracy
        point["components"] = {name: enabled
                               for name, enabled in config.overrides}
        points.append(point)
    return points


def _metric_of(target: AblationTarget, result) -> float:
    if target.result_key is None:
        return float(result)
    return float(result[target.result_key])


def run_ablation(figure: str, fidelity: str = "quick",
                 accuracy: Optional[str] = None,
                 pairwise: bool = False,
                 components: Optional[Sequence[str]] = None,
                 preset: str = "ioctopus", seed: int = 0,
                 duration_ns: Optional[int] = None) -> Dict:
    """Run the full ablation matrix for ``figure`` and build the report.

    Returns a plain-JSON report dict: baseline row plus one ranked row
    per leave-one-out (and, with ``pairwise``, per pair), each carrying
    its stable ``run_id``, metric value, delta vs baseline, and a
    ``harmful`` flag when removing the component *improved* the metric.
    """
    from repro.experiments.sweep import cache_stats, sweep_map
    target = get_target(figure)
    if accuracy is None:
        accuracy = "adaptive" if fidelity == "quick" else "exact"
    if duration_ns is None:
        duration_ns = _duration_ns(fidelity)
    base = SystemConfig(preset=preset)
    matrix = loo_matrix(base, names=components, pairwise=pairwise)
    points = matrix_points(target, matrix, duration_ns, seed, accuracy)
    before = cache_stats()
    results = sweep_map(target.fn, points)
    after = cache_stats()
    lookups = after["lookups"] - before["lookups"]
    hits = after["hits"] - before["hits"]

    baseline_value = _metric_of(target, results[0])
    sign = 1.0 if target.higher_is_better else -1.0
    rows = []
    for config, result in zip(matrix[1:], results[1:]):
        value = _metric_of(target, result)
        delta = value - baseline_value
        rel = delta / baseline_value if baseline_value else 0.0
        # Importance: how much the metric *degrades* without the
        # component(s) — positive means the mechanism earns its keep.
        importance = -sign * delta
        rel_importance = -sign * rel
        rows.append({
            "components": list(config.disabled_components()),
            "label": config.label(),
            "run_id": config.run_id(),
            "value": value,
            "delta": delta,
            "rel_delta": rel,
            "importance": importance,
            "rel_importance": rel_importance,
            "inert": abs(rel) <= INERT_REL,
            "harmful": rel_importance < -INERT_REL,
        })
    rows.sort(key=lambda row: (-row["rel_importance"],
                               row["label"]))
    for rank, row in enumerate(rows, start=1):
        row["rank"] = rank
    return {
        "figure": figure,
        "description": target.description,
        "metric": target.metric,
        "unit": target.unit,
        "higher_is_better": target.higher_is_better,
        "preset": preset,
        "fidelity": fidelity,
        "accuracy": accuracy,
        "seed": seed,
        "duration_ns": duration_ns,
        "pairwise": pairwise,
        "baseline": {"label": base.label(), "run_id": base.run_id(),
                     "value": baseline_value},
        "rows": rows,
        "cache": {"lookups": lookups, "hits": hits,
                  "hit_rate": hits / lookups if lookups else 0.0},
    }


# -------------------------------------------------------------- rendering

def render_json(report: Dict) -> str:
    return json.dumps(report, indent=2, sort_keys=True)


def render_text(report: Dict) -> str:
    """Ranked importance table, baseline first."""
    better = "higher" if report["higher_is_better"] else "lower"
    unit = report["unit"]
    base = report["baseline"]
    lines = [
        f"ablation {report['figure']}: {report['description']}",
        f"  metric {report['metric']} [{unit}] ({better} is better), "
        f"preset {report['preset']}, fidelity {report['fidelity']}, "
        f"accuracy {report['accuracy']}",
        f"  baseline {base['label']} [{base['run_id']}]: "
        f"{base['value']:.4g} {unit}",
        "",
        f"  {'rank':>4}  {'removed':28s} {'run_id':12s} "
        f"{'value':>10} {'delta':>10} {'rel':>8}  verdict",
    ]
    for row in report["rows"]:
        removed = "+".join(row["components"]) or "(none)"
        if row["harmful"]:
            verdict = "HARMFUL (metric improves without it)"
        elif row["inert"]:
            verdict = "inert here"
        else:
            verdict = "load-bearing"
        lines.append(
            f"  {row['rank']:>4}  {removed:28s} {row['run_id']:12s} "
            f"{row['value']:>10.4g} {row['delta']:>+10.4g} "
            f"{row['rel_delta']:>+8.1%}  {verdict}")
    cache = report.get("cache") or {}
    if cache.get("lookups"):
        lines.append("")
        lines.append(f"  sweep cache: {cache['hits']}/{cache['lookups']} "
                     f"hits ({cache['hit_rate']:.0%})")
    return "\n".join(lines)


# -------------------------------------------------------------------- CLI

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ioctopus-repro ablate",
        description="Leave-one-out component ablation with importance "
                    "ranking over the registered figure targets")
    parser.add_argument("--figure", default="fig08",
                        help=f"figure target ({', '.join(target_names())})")
    parser.add_argument("--fidelity", default="quick",
                        choices=tuple(sorted(DURATIONS_MS)),
                        help="simulated duration per matrix row")
    parser.add_argument("--accuracy", default=None,
                        choices=("exact", "adaptive", "fluid"),
                        help="accuracy tier (default: adaptive for "
                             "quick, exact otherwise)")
    parser.add_argument("--pairwise", action="store_true",
                        help="also ablate every component pair")
    parser.add_argument("--components", default=None, metavar="A,B,...",
                        help="restrict the matrix to these components "
                             "(default: every registered component)")
    parser.add_argument("--preset", default="ioctopus",
                        choices=("local", "remote", "ioctopus"),
                        help="baseline system preset")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="fan matrix rows across N worker processes")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="sweep cache directory (stable run IDs "
                             "make re-runs pure cache hits)")
    parser.add_argument("--json", action="store_true",
                        help="emit the raw JSON report")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="also write the JSON report to FILE")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.jobs is not None or args.cache_dir is not None:
        from repro.experiments.sweep import configure
        configure(jobs=args.jobs, cache_dir=args.cache_dir)
    components = None
    if args.components:
        components = [name.strip()
                      for name in args.components.split(",") if name.strip()]
    try:
        report = run_ablation(args.figure, fidelity=args.fidelity,
                              accuracy=args.accuracy,
                              pairwise=args.pairwise,
                              components=components, preset=args.preset,
                              seed=args.seed)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(render_json(report) + "\n")
    print(render_json(report) if args.json else render_text(report))
    return 0


if __name__ == "__main__":
    sys.exit(main())
