"""Fig 16 (fleet extension): rack-scale projection of the NUDMA story.

The paper evaluates one dual-socket server; this experiment asks the
datacenter question the introduction motivates — what does nonuniform
DMA cost a *fleet*?  N octoNIC servers stand behind a deterministic L4
load balancer serving a million-connection client fleet (Zipf-skewed
request weights, connection churn, a diurnal load curve, slow readers,
incast bursts), and three scenarios run under both the ``ioctopus`` and
``remote`` arrangements:

* ``baseline``   — steady fleet: the ioct/remote latency gap at scale;
* ``pf-flap``    — server 0's *serving* PF is surprise-removed mid-run:
  the octoNIC team driver fails over (a latency blip, zero loss), while
  standard firmware loses the netdev — the LB declares the server dead
  an epoch later and survivors absorb its blocks;
* ``server-down`` — server 0 dies outright under both arrangements
  (the LB reaction path itself, no failover story).

Each server simulates in its own worker process (``--jobs``), and the
merged fleet digests/metrics carry a determinism fingerprint: the same
``--servers/--connections`` and master seed reproduce the identical
fleet, at any jobs count.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.cluster import FleetSpec, run_fleet
from repro.experiments import base
from repro.experiments.base import Experiment, ExperimentResult, register
from repro.experiments.sweep import current_jobs

DEFAULT_SERVERS = 8
DEFAULT_CONNECTIONS = 1_048_576

#: CLI overrides (ioctopus-repro fig16 --servers 8 --connections ...).
_servers_override: Optional[int] = None
_connections_override: Optional[int] = None


def configure_fleet(servers: Optional[int] = None,
                    connections: Optional[int] = None) -> None:
    """Set (or clear, with None) the fleet size overrides."""
    global _servers_override, _connections_override
    if servers is not None and servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if connections is not None and connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")
    _servers_override = servers
    _connections_override = connections


@register
class Fig16Fleet(Experiment):
    name = "fig16"
    paper_ref = "fleet extension (rack-scale projection)"
    description = ("N octoNIC servers behind a deterministic LB serving "
                   "a ~1M-connection client fleet: fleet p50/p99 with "
                   "and without IOctopus, plus whole-PF and whole-server "
                   "failover under load (one worker process per server)")

    def accuracy(self) -> str:
        """Like the base resolution, but the fidelity default is
        ``fluid`` at every fidelity — a fleet point is a whole server
        simulation, and the closed-form tier is what makes six fleet
        runs interactive.  Explicit --accuracy / REPRO_ACCURACY still
        win."""
        if base._accuracy_override is not None:
            return base._accuracy_override
        if os.environ.get("REPRO_ACCURACY"):
            return super().accuracy()
        return "fluid"

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = self.duration_ns(fidelity)
        servers = _servers_override or DEFAULT_SERVERS
        connections = _connections_override or DEFAULT_CONNECTIONS
        accuracy = self.accuracy()
        jobs = current_jobs()
        result = self.result(
            ["scenario", "config", "served", "lost", "dead",
             "ktps", "p50_us", "p99_us"],
            notes=f"{servers} servers x {connections} connections, "
                  f"{duration / 1e6:.0f} ms, accuracy={accuracy}, "
                  f"jobs={jobs}; pf-flap removes server 0's serving PF "
                  f"mid-run (ioctopus fails over; standard firmware "
                  f"loses the server)")
        scenarios = (
            ("baseline", {}),
            ("pf-flap", {"pf_flap": (0, duration // 3, duration // 4)}),
            ("server-down", {"server_down": (0, duration // 2)}),
        )
        for scenario, faults in scenarios:
            for config in ("ioctopus", "remote"):
                spec = FleetSpec(servers=servers,
                                 connections=connections,
                                 config=config, duration_ns=duration,
                                 **faults)
                fleet = run_fleet(spec, master_seed=0,
                                  accuracy=accuracy, jobs=jobs)
                summary = fleet.summary()
                result.add(
                    scenario, config, summary["served"], summary["lost"],
                    summary["dead_servers"], round(summary["ktps"], 1),
                    round(summary.get("p50_ns", 0) / 1e3, 1),
                    round(summary.get("p99_ns", 0) / 1e3, 1),
                )
        return result
