"""§2.4 micro-experiment: remote DDIO will not solve NUDMA.

pktgen with the completion ring placed (a) on the workload's node, the
default, vs (b) on the NIC's node — where the NIC's DMA writes allocate
into the *NIC-side* LLC, approximating a remote-DDIO design.  The paper
found only a marginal (<= 2%) improvement, because the CPU still has to
pull the line across the interconnect.
"""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult, register
from repro.experiments.runners import run_pktgen
from repro.units import MTU


@register
class Sec24RemoteDdio(Experiment):
    name = "sec24"
    paper_ref = "§2.4"
    description = ("pktgen with the response ring local to the NIC and "
                   "remote to the CPU: at most ~2% improvement over "
                   "plain remote")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = self.duration_ns(fidelity)
        result = self.result(
            ["ring_placement", "mpps", "gbps", "vs_default_remote"],
            notes="paper: marginal improvement of up to 2%")
        # Ring on node 0 = local to the NIC, remote to the CPU (node 1).
        default, nic_side = self.sweep(run_pktgen, [
            dict(config="remote", packet_bytes=MTU, duration_ns=duration),
            dict(config="remote", packet_bytes=MTU, duration_ns=duration,
                 ring_home_node=0)])
        result.add("cpu-node (default)", round(default["mpps"], 3),
                   round(default["throughput_gbps"], 2), 1.0)
        result.add("nic-node (remote DDIO)", round(nic_side["mpps"], 3),
                   round(nic_side["throughput_gbps"], 2),
                   round(nic_side["mpps"] / default["mpps"], 3))
        return result
