"""Figure 9 (§5.1.2): TCP RR latency, rr and llnd normalised to ll.

:func:`run_breakdown` augments the figure with the paper's latency
*analysis*: the same RR variants run with blame collection attached, so
the rr-over-ll gap decomposes into named stages (QPI doorbell/DMA/IRQ
transit, DDIO-miss completion and payload reads) instead of a single
ratio.  ``ioctopus-repro obs blame --workload rr`` is the one-variant
view; this is all three side by side.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments.base import DURATIONS_MS, Experiment, \
    ExperimentResult, register
from repro.experiments.runners import run_tcp_rr
from repro.units import KB

MESSAGE_SIZES = [1, 64, 256, 1 * KB, 4 * KB, 16 * KB, 64 * KB]

#: The figure's variants as (label, server, client, ddio): both-local,
#: both-remote, and local with DDIO off in hardware.
BREAKDOWN_VARIANTS: Tuple[Tuple[str, str, str, bool], ...] = (
    ("ll", "local", "local", True),
    ("rr", "remote", "remote", True),
    ("llnd", "local", "local", False),
)


def run_breakdown(message_bytes: int = 64, fidelity: str = "quick",
                  accuracy: str = "exact", seed: int = 0) -> Dict:
    """Per-stage latency budgets for the figure's three RR variants."""
    from repro.obs.blame import run_blame_point
    duration = DURATIONS_MS[fidelity] * 1_000_000
    variants = {}
    for label, server, client, ddio in BREAKDOWN_VARIANTS:
        variants[label] = run_blame_point(
            "rr", server, size=message_bytes, duration_ns=duration,
            seed=seed, accuracy=accuracy, client_config=client, ddio=ddio)
    return {"figure": "fig09", "message_bytes": message_bytes,
            "fidelity": fidelity, "accuracy": accuracy, "seed": seed,
            "variants": variants}


def render_breakdown(breakdown: Dict) -> str:
    """Paper-style stage table: one column per variant, mean ns per
    round trip, NUDMA stages starred."""
    from repro.obs.blame import is_nudma_stage
    variants = breakdown["variants"]
    labels = list(variants)
    stages: List[str] = []
    for report in variants.values():
        for row in report["stages"]:
            if row["stage"] not in stages:
                stages.append(row["stage"])
    stages.sort()
    means = {label: {row["stage"]: row["mean_ns"]
                     for row in report["stages"]}
             for label, report in variants.items()}
    lines = [
        f"fig09 latency breakdown: {breakdown['message_bytes']} B RR, "
        f"{breakdown['fidelity']}/{breakdown['accuracy']} "
        f"(mean ns per flow)",
        "",
        "  " + f"{'stage':16s}" + "".join(f"{label:>10}"
                                          for label in labels),
    ]
    for stage in stages:
        mark = " *" if is_nudma_stage(stage) else ""
        lines.append("  " + f"{stage:16s}" + "".join(
            f"{means[label].get(stage, 0.0):>10.1f}"
            for label in labels) + mark)
    lines.append("  " + f"{'e2e mean':16s}" + "".join(
        f"{variants[label]['e2e']['mean_ns']:>10.1f}"
        for label in labels))
    lines.append("  " + f"{'rtt (result)':16s}" + "".join(
        f"{variants[label]['result']['rtt_ns']:>10.0f}"
        for label in labels))
    ok = all(variants[label]["conservation"]["ok"] for label in labels)
    lines.append("")
    lines.append("  conservation: " + ("exact in all variants" if ok
                                       else "VIOLATED"))
    lines.append("  * = NUDMA stage (QPI transit or DDIO-miss/remote "
                 "DRAM)")
    return "\n".join(lines)


@register
class Fig09Latency(Experiment):
    name = "fig09"
    paper_ref = "Figure 9, §5.1.2"
    description = ("netperf TCP RR: NUDMA on the critical path adds "
                   "10-25%; the QPI crossing alone (llnd) is 5-15%")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = self.duration_ns(fidelity)
        result = self.result(
            ["msg_bytes", "ll_us", "rr_us", "llnd_us",
             "rr_over_ll", "llnd_over_ll"],
            notes="ll/rr: both sides local/remote; nd: DDIO disabled in "
                  "hardware on both sides")
        variants = (("local", "local", True), ("remote", "remote", True),
                    ("local", "local", False))
        runs = self.sweep(run_tcp_rr, [
            dict(server_config=server, client_config=client, ddio=ddio,
                 message_bytes=msg, duration_ns=duration)
            for msg in MESSAGE_SIZES
            for server, client, ddio in variants])
        for i, msg in enumerate(MESSAGE_SIZES):
            ll, rr, llnd = runs[3 * i:3 * i + 3]
            result.add(
                msg,
                round(ll / 1000, 2),
                round(rr / 1000, 2),
                round(llnd / 1000, 2),
                round(rr / ll, 3),
                round(llnd / ll, 3),
            )
        return result
