"""Figure 9 (§5.1.2): TCP RR latency, rr and llnd normalised to ll."""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult, register
from repro.experiments.runners import run_tcp_rr
from repro.units import KB

MESSAGE_SIZES = [1, 64, 256, 1 * KB, 4 * KB, 16 * KB, 64 * KB]


@register
class Fig09Latency(Experiment):
    name = "fig09"
    paper_ref = "Figure 9, §5.1.2"
    description = ("netperf TCP RR: NUDMA on the critical path adds "
                   "10-25%; the QPI crossing alone (llnd) is 5-15%")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = self.duration_ns(fidelity)
        result = self.result(
            ["msg_bytes", "ll_us", "rr_us", "llnd_us",
             "rr_over_ll", "llnd_over_ll"],
            notes="ll/rr: both sides local/remote; nd: DDIO disabled in "
                  "hardware on both sides")
        variants = (("local", "local", True), ("remote", "remote", True),
                    ("local", "local", False))
        runs = self.sweep(run_tcp_rr, [
            dict(server_config=server, client_config=client, ddio=ddio,
                 message_bytes=msg, duration_ns=duration)
            for msg in MESSAGE_SIZES
            for server, client, ddio in variants])
        for i, msg in enumerate(MESSAGE_SIZES):
            ll, rr, llnd = runs[3 * i:3 * i + 3]
            result.add(
                msg,
                round(ll / 1000, 2),
                round(rr / 1000, 2),
                round(llnd / 1000, 2),
                round(rr / ll, 3),
                round(llnd / ll, 3),
            )
        return result
