"""Figure 8 (§5.1.1): single-core pktgen packet rates."""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult, register
from repro.experiments.runners import run_pktgen
from repro.units import MTU

PACKET_SIZES = [64, 128, 256, 512, 1024, MTU]


@register
class Fig08Pktgen(Experiment):
    name = "fig08"
    paper_ref = "Figure 8, §5.1.1"
    description = ("single-core pktgen: local ~4.1 Mpps vs remote "
                   "~3.08 Mpps at every size (one ~80 ns completion miss "
                   "per packet); remote membw ~= its throughput")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = self.duration_ns(fidelity)
        result = self.result(
            ["pkt_bytes", "ioct_gbps", "remote_gbps", "ratio",
             "ioct_mpps", "remote_mpps", "ioct_membw_gbps",
             "remote_membw_gbps"],
            notes="paper: ratio 1.30-1.39; 4.1 vs 3.08 Mpps; DDIO keeps "
                  "local membw ~0")
        runs = self.sweep(run_pktgen, [
            dict(config=config, packet_bytes=pkt, duration_ns=duration)
            for pkt in PACKET_SIZES for config in ("ioctopus", "remote")])
        for i, pkt in enumerate(PACKET_SIZES):
            ioct, remote = runs[2 * i:2 * i + 2]
            result.add(
                pkt,
                round(ioct["throughput_gbps"], 2),
                round(remote["throughput_gbps"], 2),
                round(ioct["throughput_gbps"]
                      / remote["throughput_gbps"], 2),
                round(ioct["mpps"], 2),
                round(remote["mpps"], 2),
                round(ioct["membw_gbps"], 2),
                round(remote["membw_gbps"], 2),
            )
        return result
