"""PF failover (robustness extension, Fig-14-style presentation).

A TCP Rx netperf process runs on socket 1 of the `ioctopus`
configuration, so the octoNIC serves it through PF1.  Mid-run PF1 is
surprise-removed; the team driver fails the socket's queues over to PF0
and the flow degrades to nonuniform-DMA (`remote`-level) throughput
instead of dying.  When PF1 comes back the driver re-homes the queues
and full-speed local DMA resumes.  Per-PF throughput is sampled every
50 ms, exactly like Figure 14's steering-switch plot.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.configurations import Testbed
from repro.experiments.base import Experiment, ExperimentResult, register
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.metrics.collect import TimeSeries
from repro.nic.packet import Flow
from repro.units import KB
from repro.workloads.netperf import TcpStream

SAMPLE_NS = 50_000_000  # 50 ms, as in Fig 14
#: The PF the fault removes: PF1, local to the workload's socket.
FAILED_PF = 1


class FailoverRun:
    """Everything one faulted run produces."""

    def __init__(self, series: Dict[str, TimeSeries],
                 injector: FaultInjector, workload: TcpStream,
                 trace: List[str], team):
        self.series = series
        self.injector = injector
        self.workload = workload
        self.trace = trace
        self.team = team


def run_failover(duration_ns: int, fail_at_ns: Optional[int] = None,
                 recover_at_ns: Optional[int] = None,
                 seed: int = 0) -> FailoverRun:
    """One `ioctopus` run with an optional PF1 outage window."""
    testbed = Testbed("ioctopus", seed=seed)
    host = testbed.server
    host.machine.tracer.enabled = True
    core = host.machine.cores_on_node(1)[0]
    workload = TcpStream(host, core, Flow.make(0), 64 * KB, "rx",
                         duration_ns)

    plan = FaultPlan()
    if fail_at_ns is not None:
        duration = (None if recover_at_ns is None
                    else recover_at_ns - fail_at_ns)
        plan.add(FaultSpec("pf_down", fail_at_ns, duration,
                           pf_id=FAILED_PF))
    injector = FaultInjector(testbed.env, plan, device=host.nic,
                             wire=testbed.wire, machine=host.machine,
                             rng=host.machine.rng)
    injector.start()

    series = {f"pf{pf.pf_id}": TimeSeries(f"pf{pf.pf_id}")
              for pf in host.nic.pfs}

    def sampler():
        while testbed.env.now < duration_ns:
            host.nic.reset_pf_windows()
            yield testbed.env.timeout(SAMPLE_NS)
            for pf in host.nic.pfs:
                series[f"pf{pf.pf_id}"].sample(
                    testbed.env.now, host.nic.pf_window_rx_gbps(pf.pf_id))

    testbed.env.process(sampler(), name="sampler")
    testbed.run(duration_ns + SAMPLE_NS)

    trace = injector.rendered_events() + [
        str(record) for record in host.machine.tracer.records]
    return FailoverRun(series, injector, workload, trace, host.driver)


@register
class FigFailover(Experiment):
    name = "failover"
    paper_ref = "robustness extension (Fig 14 presentation)"
    description = ("per-PF throughput while PF1 is surprise-removed and "
                   "later recovered: the octoNIC degrades to remote-level "
                   "DMA through PF0 instead of dying, then returns to "
                   "full speed")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = max(self.duration_ns(fidelity) * 10, 12 * SAMPLE_NS)
        fail_at = duration // 3
        recover_at = 2 * duration // 3
        result = self.result(
            ["scenario", "time_ms", "pf0_gbps", "pf1_gbps", "total_gbps"],
            notes=f"PF{FAILED_PF} removed at {fail_at / 1e6:.0f} ms, "
                  f"recovered at {recover_at / 1e6:.0f} ms; samples every "
                  f"{SAMPLE_NS / 1e6:.0f} ms")
        scenarios = (
            ("baseline", None, None),
            ("pf1-outage", fail_at, recover_at),
        )
        for label, fail, recover in scenarios:
            run = run_failover(duration, fail, recover)
            for t, pf0, pf1 in zip(run.series["pf0"].times_ns,
                                   run.series["pf0"].values,
                                   run.series["pf1"].values):
                result.add(label, round(t / 1e6, 1), round(pf0, 2),
                           round(pf1, 2), round(pf0 + pf1, 2))
        return result
