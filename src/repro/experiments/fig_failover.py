"""PF failover (robustness extension, Fig-14-style presentation).

A TCP Rx netperf process runs on socket 1 of the `ioctopus`
configuration, so the octoNIC serves it through PF1.  Mid-run PF1 is
surprise-removed; the team driver fails the socket's queues over to PF0
and the flow degrades to nonuniform-DMA (`remote`-level) throughput
instead of dying.  When PF1 comes back the driver re-homes the queues
and full-speed local DMA resumes.  Per-PF throughput is sampled every
50 ms, exactly like Figure 14's steering-switch plot.

The octoSSD variant (``failover_ssd``) runs the same scenario against
the storage personality of the octo-device core: dual-port NVMe drives
serve remote-socket fio while STREAM antagonists congest the UPI (the
Fig 15 setup); losing the fio socket's port re-homes every queue pair
onto the other port, so throughput degrades to the single-port
(remote-DMA) plateau instead of dropping to zero, and recovers when the
port returns.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.configurations import Testbed
from repro.experiments.base import Experiment, ExperimentResult, register
from repro.experiments.fig15_nvme import FIO_THREADS, build_nvme_host
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.metrics.collect import TimeSeries
from repro.nic.packet import Flow
from repro.units import KB
from repro.workloads.fio import spawn_fio_fleet
from repro.workloads.netperf import TcpStream
from repro.workloads.stream_bench import StreamThread

SAMPLE_NS = 50_000_000  # 50 ms, as in Fig 14
#: The PF the fault removes: PF1, local to the workload's socket.
FAILED_PF = 1
#: STREAM antagonists congesting the UPI during the octoSSD scenario
#: (without congestion, flash is the bottleneck and remote DMA is free).
SSD_STREAMS = 6


class FailoverRun:
    """Everything one faulted run produces."""

    def __init__(self, series: Dict[str, TimeSeries],
                 injector: FaultInjector, workload: TcpStream,
                 trace: List[str], team):
        self.series = series
        self.injector = injector
        self.workload = workload
        self.trace = trace
        self.team = team


def run_failover(duration_ns: int, fail_at_ns: Optional[int] = None,
                 recover_at_ns: Optional[int] = None,
                 seed: int = 0) -> FailoverRun:
    """One `ioctopus` run with an optional PF1 outage window."""
    testbed = Testbed("ioctopus", seed=seed)
    host = testbed.server
    host.machine.tracer.enabled = True
    core = host.machine.cores_on_node(1)[0]
    workload = TcpStream(host, core, Flow.make(0), 64 * KB, "rx",
                         duration_ns)

    plan = FaultPlan()
    if fail_at_ns is not None:
        duration = (None if recover_at_ns is None
                    else recover_at_ns - fail_at_ns)
        plan.add(FaultSpec("pf_down", fail_at_ns, duration,
                           pf_id=FAILED_PF))
    injector = FaultInjector(testbed.env, plan, device=host.nic,
                             wire=testbed.wire, machine=host.machine,
                             rng=host.machine.rng)
    injector.start()

    series = {f"pf{pf.pf_id}": TimeSeries(f"pf{pf.pf_id}")
              for pf in host.nic.pfs}

    def sampler():
        while testbed.env.now < duration_ns:
            host.nic.reset_pf_windows()
            yield testbed.env.timeout(SAMPLE_NS)
            for pf in host.nic.pfs:
                series[f"pf{pf.pf_id}"].sample(
                    testbed.env.now, host.nic.pf_window_rx_gbps(pf.pf_id))

    testbed.env.process(sampler(), name="sampler")
    testbed.run(duration_ns + SAMPLE_NS)

    trace = injector.rendered_events() + [
        str(record) for record in host.machine.tracer.records]
    return FailoverRun(series, injector, workload, trace, host.driver)


class SsdFailoverRun:
    """Everything one faulted octoSSD run produces."""

    def __init__(self, series: Dict[str, TimeSeries],
                 injectors: List[FaultInjector], fleet: list,
                 trace: List[str], drivers: list):
        self.series = series
        self.injectors = injectors
        self.fleet = fleet
        self.trace = trace
        self.drivers = drivers


def run_ssd_failover(duration_ns: int, fail_at_ns: Optional[int] = None,
                     recover_at_ns: Optional[int] = None,
                     n_streams: int = SSD_STREAMS,
                     sample_ns: int = SAMPLE_NS) -> SsdFailoverRun:
    """One octoSSD run (Fig 15 setup) with an optional PF1 outage.

    The outage removes the fio socket's port on **every** drive — the
    shared-riser failure mode — so the whole fleet re-homes onto port 0
    and DMAs across the congested UPI until recovery.
    """
    host, drivers = build_nvme_host(octo_mode=True, dual_port=True)
    machine = host.machine
    machine.tracer.enabled = True
    controllers = [driver.controller for driver in drivers]
    fio_cores = machine.cores_on_node(1)[:FIO_THREADS]
    fleet = spawn_fio_fleet(host, fio_cores, drivers, duration_ns)
    for i in range(n_streams):
        StreamThread(host, machine.cores_on_node(0)[i], target_node=1,
                     kind="write", duration_ns=duration_ns)

    plan = FaultPlan()
    if fail_at_ns is not None:
        duration = (None if recover_at_ns is None
                    else recover_at_ns - fail_at_ns)
        plan.add(FaultSpec("pf_down", fail_at_ns, duration,
                           pf_id=FAILED_PF))
    injectors = [FaultInjector(machine.env, plan, device=ssd,
                               machine=machine,
                               rng=machine.rng.child(ssd.name))
                 for ssd in controllers]
    for injector in injectors:
        injector.start()

    series = {"pf0": TimeSeries("pf0"), "pf1": TimeSeries("pf1")}

    def sampler():
        while machine.env.now < duration_ns:
            for ssd in controllers:
                ssd.reset_pf_windows()
            yield machine.env.timeout(sample_ns)
            for pf_id, name in ((0, "pf0"), (1, "pf1")):
                series[name].sample(
                    machine.env.now,
                    sum(ssd.pf_window_read_gbps(pf_id)
                        for ssd in controllers))

    machine.env.process(sampler(), name="ssd-sampler")
    machine.env.run(until=duration_ns + sample_ns)

    trace = [event for injector in injectors
             for event in injector.rendered_events()]
    trace += [str(record) for record in machine.tracer.records]
    return SsdFailoverRun(series, injectors, fleet, trace, drivers)


@register
class FigFailover(Experiment):
    name = "failover"
    paper_ref = "robustness extension (Fig 14 presentation)"
    description = ("per-PF throughput while PF1 is surprise-removed and "
                   "later recovered: the octoNIC degrades to remote-level "
                   "DMA through PF0 instead of dying, then returns to "
                   "full speed")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = max(self.duration_ns(fidelity) * 10, 12 * SAMPLE_NS)
        fail_at = duration // 3
        recover_at = 2 * duration // 3
        result = self.result(
            ["scenario", "time_ms", "pf0_gbps", "pf1_gbps", "total_gbps"],
            notes=f"PF{FAILED_PF} removed at {fail_at / 1e6:.0f} ms, "
                  f"recovered at {recover_at / 1e6:.0f} ms; samples every "
                  f"{SAMPLE_NS / 1e6:.0f} ms")
        scenarios = (
            ("baseline", None, None),
            ("pf1-outage", fail_at, recover_at),
        )
        for label, fail, recover in scenarios:
            run = run_failover(duration, fail, recover)
            for t, pf0, pf1 in zip(run.series["pf0"].times_ns,
                                   run.series["pf0"].values,
                                   run.series["pf1"].values):
                result.add(label, round(t / 1e6, 1), round(pf0, 2),
                           round(pf1, 2), round(pf0 + pf1, 2))
        return result


@register
class FigFailoverSsd(Experiment):
    name = "failover_ssd"
    paper_ref = "§5.4 + robustness extension"
    description = ("per-port fio throughput while the remote socket's "
                   "NVMe port is surprise-removed and later recovered, "
                   "under UPI congestion: the octoSSD degrades to "
                   "single-port (remote-DMA) throughput through port 0 "
                   "instead of dying, then returns to full speed")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = max(self.duration_ns(fidelity) * 10, 12 * SAMPLE_NS)
        fail_at = duration // 3
        recover_at = 2 * duration // 3
        result = self.result(
            ["scenario", "time_ms", "pf0_gbps", "pf1_gbps", "total_gbps"],
            notes=f"port {FAILED_PF} of every drive removed at "
                  f"{fail_at / 1e6:.0f} ms, recovered at "
                  f"{recover_at / 1e6:.0f} ms; {SSD_STREAMS} STREAM "
                  f"antagonists congest the UPI; samples every "
                  f"{SAMPLE_NS / 1e6:.0f} ms")
        scenarios = (
            ("baseline", None, None),
            ("pf1-outage", fail_at, recover_at),
        )
        for label, fail, recover in scenarios:
            run = run_ssd_failover(duration, fail, recover)
            for t, pf0, pf1 in zip(run.series["pf0"].times_ns,
                                   run.series["pf0"].values,
                                   run.series["pf1"].values):
                result.add(label, round(t / 1e6, 1), round(pf0, 2),
                           round(pf1, 2), round(pf0 + pf1, 2))
        return result
