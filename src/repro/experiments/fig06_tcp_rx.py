"""Figure 6 (§5.1.1): single-core TCP stream receive."""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult, register
from repro.experiments.runners import run_tcp_stream
from repro.units import KB

MESSAGE_SIZES = [64, 256, 1 * KB, 4 * KB, 16 * KB, 64 * KB]


@register
class Fig06TcpRx(Experiment):
    name = "fig06"
    paper_ref = "Figure 6, §5.1.1"
    description = ("single-core netperf TCP Rx: throughput, memory "
                   "bandwidth and CPU per message size, per configuration")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = self.duration_ns(fidelity)
        result = self.result(
            ["msg_bytes", "ioct_gbps", "local_gbps", "remote_gbps",
             "ratio_local_over_remote", "ioct_membw_gbps",
             "remote_membw_gbps", "ioct_cpu", "remote_cpu"],
            notes="paper: ratio grows ~1.08 -> ~1.26 with size; remote "
                  "membw ~3x its throughput; both CPU-bound")
        configs = ("ioctopus", "local", "remote")
        runs = self.sweep(run_tcp_stream, [
            dict(config=config, message_bytes=msg, direction="rx",
                 duration_ns=duration)
            for msg in MESSAGE_SIZES for config in configs])
        for i, msg in enumerate(MESSAGE_SIZES):
            ioct, local, remote = runs[3 * i:3 * i + 3]
            result.add(
                msg,
                round(ioct["throughput_gbps"], 2),
                round(local["throughput_gbps"], 2),
                round(remote["throughput_gbps"], 2),
                round(local["throughput_gbps"]
                      / remote["throughput_gbps"], 2),
                round(ioct["membw_gbps"], 2),
                round(remote["membw_gbps"], 2),
                round(ioct["cpu_cores"], 2),
                round(remote["cpu_cores"], 2),
            )
        return result
