"""§5.1.1 multi-core throughput: line rate, but memory traffic appears.

With a netperf instance on every core, the bottleneck shifts from the CPU
to the network/PCIe path; the octoNIC reaches line rate through both PFs,
and — unlike the single-core case — even the local/ioctopus placement
incurs memory traffic because the combined working set of all the cores
exceeds the LLC.
"""

from __future__ import annotations

from repro.core.configurations import Testbed
from repro.experiments.base import Experiment, ExperimentResult, register
from repro.experiments.runners import (MembwProbe, run_with_slack,
                                       warmup_of)
from repro.nic.packet import Flow
from repro.units import KB
from repro.workloads.netperf import TcpStream


def run_multicore(config: str, duration_ns: int) -> dict:
    testbed = Testbed(config)
    host = testbed.server
    if config == "ioctopus":
        cores = host.machine.cores  # every core of the machine
    else:
        cores = host.machine.cores_on_node(testbed.server_workload_node)
    warmup = warmup_of(duration_ns)
    workloads = [TcpStream(host, core, Flow.make(i), 64 * KB, "rx",
                           duration_ns, warmup)
                 for i, core in enumerate(cores)]
    probe = MembwProbe(testbed, duration_ns)
    run_with_slack(testbed, duration_ns)
    return {
        "cores": len(cores),
        "gbps": sum(w.throughput_gbps() for w in workloads),
        "membw_gbps": probe.gbps,
    }


@register
class Sec511Multicore(Experiment):
    name = "sec511"
    paper_ref = "§5.1.1, multi-core throughput"
    description = ("netperf TCP Rx on every core: the network (not the "
                   "CPU) is the bottleneck, and ioct/local now incurs "
                   "memory traffic (combined working set > LLC)")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = self.duration_ns(fidelity)
        result = self.result(
            ["config", "cores", "total_gbps", "membw_gbps",
             "membw_per_gbit"],
            notes="ioctopus spans both sockets through both PFs; the "
                  "standard configs are capped by one x8 PF")
        configs = ("ioctopus", "local", "remote")
        runs = self.sweep(run_multicore, [
            dict(config=config, duration_ns=duration)
            for config in configs])
        for config, point in zip(configs, runs):
            result.add(
                config, point["cores"], round(point["gbps"], 1),
                round(point["membw_gbps"], 1),
                round(point["membw_gbps"] / point["gbps"], 3)
                if point["gbps"] else 0.0,
            )
        return result
