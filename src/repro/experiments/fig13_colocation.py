"""Figure 13 (§5.2): PageRank co-located with I/O workloads.

A 16-thread PageRank job (8 threads per CPU) runs to completion while six
cores of the I/O socket run netperf TCP Rx instances or a memcached
server.  The paper's result: PR runs ~12% slower when netperf is placed
remote vs ioct/local, ~4% slower with memcached; memcached's own
throughput suffers from sharing the QPI with PR, netperf's barely.
"""

from __future__ import annotations

from repro.core.configurations import Testbed
from repro.experiments.base import Experiment, ExperimentResult, register
from repro.nic.packet import Flow
from repro.units import KB, MB
from repro.workloads.memcached import MemcachedServer
from repro.workloads.netperf import TcpStream
from repro.workloads.pagerank import PageRank

#: PageRank threads per socket (paper: 8 pinned to each CPU).
PR_PER_NODE = 8
#: Co-located I/O instances (paper: the remaining six cores per CPU).
IO_INSTANCES = 6

PR_WORK_BYTES = {"quick": 8 * MB, "normal": 24 * MB, "long": 96 * MB}


def _spawn_pagerank(testbed: Testbed, work_bytes: int) -> PageRank:
    host = testbed.server
    io_node = testbed.server_workload_node
    cores = []
    for node in range(host.machine.spec.num_nodes):
        pool = host.machine.cores_on_node(node)
        # Leave the first IO_INSTANCES cores of the I/O socket free.
        start = IO_INSTANCES if node == io_node else 0
        cores.extend(pool[start:start + PR_PER_NODE])
    return PageRank(host, cores, work_bytes)


def _run_to_completion(testbed: Testbed, pagerank: PageRank) -> int:
    slice_ns = 10_000_000
    while not pagerank.finished():
        testbed.run(testbed.env.now + slice_ns)
    return pagerank.runtime_ns()


def run_point(config: str, io_kind: str, work_bytes: int) -> dict:
    """One (configuration, I/O workload) cell of Fig 13."""
    testbed = Testbed(config)
    host = testbed.server
    io_cores = host.machine.cores_on_node(
        testbed.server_workload_node)[:IO_INSTANCES]
    io_duration = 4_000_000_000  # outlives PR; measured from warmup only
    if io_kind == "none":
        io_workloads = []
    elif io_kind == "netperf":
        io_workloads = [
            TcpStream(host, core, Flow.make(i), 64 * KB, "rx",
                      io_duration, warmup_ns=1_000_000)
            for i, core in enumerate(io_cores)]
    elif io_kind == "memcached":
        io_workloads = [MemcachedServer(host, io_cores, 0.1, io_duration,
                                        warmup_ns=1_000_000,
                                        value_bytes=256 * KB,
                                        offered_ktps=16.0)]
    else:
        raise ValueError(f"unknown io_kind {io_kind!r}")

    pagerank = _spawn_pagerank(testbed, work_bytes)
    runtime = _run_to_completion(testbed, pagerank)

    io_rate = 0.0
    for workload in io_workloads:
        meter = workload.meter
        meter.finish(testbed.env.now)
        io_rate += (meter.ktps() if io_kind == "memcached"
                    else meter.gbps())
    return {"pr_runtime_ns": runtime, "io_rate": io_rate}


@register
class Fig13Colocation(Experiment):
    name = "fig13"
    paper_ref = "Figure 13, §5.2"
    description = ("PageRank victim + co-located netperf/memcached: "
                   "remote I/O placement slows PR (~12% netperf, ~4% "
                   "memcached)")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        work = PR_WORK_BYTES[fidelity if fidelity in PR_WORK_BYTES
                             else "normal"]
        result = self.result(
            ["io_workload", "ioct_pr_ms", "remote_pr_ms",
             "pr_slowdown_remote", "ioct_io_rate", "remote_io_rate"],
            notes="io_rate: Gb/s for netperf, KT/s for memcached")
        kinds = ("netperf", "memcached")
        runs = self.sweep(run_point, [
            dict(config=config, io_kind=io_kind, work_bytes=work)
            for io_kind in kinds for config in ("ioctopus", "remote")])
        for i, io_kind in enumerate(kinds):
            ioct, remote = runs[2 * i:2 * i + 2]
            result.add(
                io_kind,
                round(ioct["pr_runtime_ns"] / 1e6, 2),
                round(remote["pr_runtime_ns"] / 1e6, 2),
                round(remote["pr_runtime_ns"]
                      / ioct["pr_runtime_ns"], 3),
                round(ioct["io_rate"], 2),
                round(remote["io_rate"], 2),
            )
        return result
