"""Experiment framework: one registered experiment per paper table/figure.

Every experiment produces an :class:`ExperimentResult` whose rows mirror
the paper's axes, so the benchmark harness can both print the table and
assert the paper's qualitative claims (who wins, by what factor).
"""

from __future__ import annotations

import inspect
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.metrics.collect import format_table
from repro.sim.engine import ACCURACY_MODES

#: Milliseconds of simulated time per configuration point, by fidelity.
DURATIONS_MS = {"quick": 10, "normal": 40, "long": 200}

#: Process-wide accuracy override, set by the CLI's --accuracy flag.
_accuracy_override: Optional[str] = None


def configure_accuracy(mode: Optional[str]) -> None:
    """Set (or clear, with None) the process-wide accuracy override."""
    global _accuracy_override
    if mode is not None and mode not in ACCURACY_MODES:
        raise ValueError(
            f"accuracy must be one of {ACCURACY_MODES}, got {mode!r}")
    _accuracy_override = mode


@dataclass
class ExperimentResult:
    """The rows an experiment regenerates."""

    experiment: str
    paper_ref: str
    headers: List[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: str = ""

    def add(self, *row) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, headers have "
                f"{len(self.headers)}")
        self.rows.append(row)

    def table(self) -> str:
        title = f"{self.experiment} ({self.paper_ref})"
        text = format_table(self.headers, self.rows, title=title)
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text

    def column(self, header: str) -> List:
        try:
            index = self.headers.index(header)
        except ValueError:
            raise KeyError(f"no column {header!r}; have {self.headers}")
        return [row[index] for row in self.rows]

    def as_dicts(self) -> List[Dict]:
        return [dict(zip(self.headers, row)) for row in self.rows]


class Experiment:
    """Base class; subclasses set metadata and implement ``run()``."""

    name = "base"
    paper_ref = ""
    description = ""

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        raise NotImplementedError

    def duration_ns(self, fidelity: str) -> int:
        try:
            duration = DURATIONS_MS[fidelity] * 1_000_000
        except KeyError:
            raise ValueError(
                f"fidelity must be one of {sorted(DURATIONS_MS)}, "
                f"got {fidelity!r}") from None
        # Remember the fidelity so accuracy() can default quick runs to
        # the adaptive fast path.
        self._fidelity = fidelity
        return duration

    def accuracy(self) -> str:
        """Accuracy mode for this experiment's sweep points.

        Resolution order: the CLI's --accuracy override, then the
        REPRO_ACCURACY environment variable, then the fidelity default —
        quick runs take the adaptive fast path (coalesced packet trains +
        early termination), normal/long runs stay exact.
        """
        if _accuracy_override is not None:
            return _accuracy_override
        mode = os.environ.get("REPRO_ACCURACY")
        if mode:
            if mode not in ACCURACY_MODES:
                raise ValueError(
                    f"REPRO_ACCURACY must be one of {ACCURACY_MODES}, "
                    f"got {mode!r}")
            return mode
        quick = getattr(self, "_fidelity", None) == "quick"
        return "adaptive" if quick else "exact"

    def result(self, headers: List[str], notes: str = "") -> (
            ExperimentResult):
        return ExperimentResult(self.name, self.paper_ref, headers,
                                notes=notes)

    def sweep(self, fn: Callable, points: Sequence[Dict]) -> List:
        """Run the figure's independent points through the sweep executor
        (parallel across --jobs workers, disk-cached when configured);
        results come back in submission order.

        Point functions that accept an ``accuracy`` parameter get this
        experiment's resolved mode injected (explicit per-point values
        win); functions without the parameter — the custom latency /
        fault / time-series runners — are left untouched and stay exact.
        """
        from repro.experiments.sweep import sweep_map
        if "accuracy" in inspect.signature(fn).parameters:
            accuracy = self.accuracy()
            points = [point if "accuracy" in point
                      else {**point, "accuracy": accuracy}
                      for point in points]
        return sweep_map(fn, points)


_REGISTRY: Dict[str, Callable[[], Experiment]] = {}


def register(cls):
    """Class decorator adding an experiment to the registry."""
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate experiment name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_experiment(name: str) -> Experiment:
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; "
                       f"known: {sorted(_REGISTRY)}") from None


def all_experiment_names() -> List[str]:
    return sorted(_REGISTRY)
