"""Figure 7 (§5.1.1): single-core TCP stream transmit (TSO enabled)."""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult, register
from repro.experiments.runners import run_tcp_stream
from repro.units import KB

MESSAGE_SIZES = [64, 256, 1 * KB, 4 * KB, 16 * KB, 64 * KB]


@register
class Fig07TcpTx(Experiment):
    name = "fig07"
    paper_ref = "Figure 7, §5.1.1"
    description = ("single-core netperf TCP Tx with TSO: local and remote "
                   "are comparable; remote membw equals its throughput")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = self.duration_ns(fidelity)
        result = self.result(
            ["msg_bytes", "ioct_gbps", "local_gbps", "remote_gbps",
             "ratio_local_over_remote", "ioct_membw_gbps",
             "remote_membw_gbps", "remote_membw_over_tput"],
            notes="paper: DMA reads are served without invalidation, so "
                  "placements tie; remote membw == throughput (parallel "
                  "DRAM probe)")
        configs = ("ioctopus", "local", "remote")
        runs = self.sweep(run_tcp_stream, [
            dict(config=config, message_bytes=msg, direction="tx",
                 duration_ns=duration)
            for msg in MESSAGE_SIZES for config in configs])
        for i, msg in enumerate(MESSAGE_SIZES):
            ioct, local, remote = runs[3 * i:3 * i + 3]
            tput = remote["throughput_gbps"]
            result.add(
                msg,
                round(ioct["throughput_gbps"], 2),
                round(local["throughput_gbps"], 2),
                round(tput, 2),
                round(local["throughput_gbps"] / tput, 2),
                round(ioct["membw_gbps"], 2),
                round(remote["membw_gbps"], 2),
                round(remote["membw_gbps"] / tput, 2) if tput else 0.0,
            )
        return result
