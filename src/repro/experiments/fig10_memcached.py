"""Figure 10 (§5.1.3): memcached throughput vs. SET ratio."""

from __future__ import annotations

from typing import Optional

from repro.core.configurations import Testbed
from repro.experiments.base import Experiment, ExperimentResult, register
from repro.experiments.runners import (MembwProbe, meter_elapsed,
                                       window_membw_gbps,
                                       run_until_converged, run_with_slack,
                                       warmup_of)
from repro.workloads.memcached import MemcachedServer

SET_RATIOS = [0.0, 0.25, 0.5, 0.75, 1.0]
#: memcached worker threads on the server (one core each).
WORKERS = 2


def run_memcached(config: str, set_fraction: float, duration_ns: int,
                  accuracy: Optional[str] = None) -> dict:
    testbed = Testbed(config, accuracy=accuracy)
    host = testbed.server
    cores = host.machine.cores_on_node(
        testbed.server_workload_node)[:WORKERS]
    server = MemcachedServer(host, cores, set_fraction, duration_ns,
                             warmup_of(duration_ns))
    if testbed.env.adaptive:
        run_until_converged(testbed, duration_ns, server.meter.ktps)
        elapsed = meter_elapsed(server.meter)
        return {
            "ktps": server.transactions_ktps(),
            "membw_gbps": window_membw_gbps(testbed, elapsed),
        }
    probe = MembwProbe(testbed, duration_ns)
    run_with_slack(testbed, duration_ns)
    return {
        "ktps": server.transactions_ktps(),
        "membw_gbps": probe.gbps,
    }


@register
class Fig10Memcached(Experiment):
    name = "fig10"
    paper_ref = "Figure 10, §5.1.3"
    description = ("memcached with 256 B keys / 512 KB values served to "
                   "14 memslap clients: the ioct/local advantage grows "
                   "with the SET ratio (Rx traffic suffers NUDMA)")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = self.duration_ns(fidelity) * 3  # txns are ~100 us each
        result = self.result(
            ["set_pct", "ioct_ktps", "remote_ktps", "ratio",
             "ioct_membw_gbps", "remote_membw_gbps"],
            notes="paper: advantage grows to ~1.16x at 100% SET; remote "
                  "uses more memory bandwidth")
        runs = self.sweep(run_memcached, [
            dict(config=config, set_fraction=ratio, duration_ns=duration)
            for ratio in SET_RATIOS for config in ("ioctopus", "remote")])
        for i, ratio in enumerate(SET_RATIOS):
            ioct, remote = runs[2 * i:2 * i + 2]
            result.add(
                int(ratio * 100),
                round(ioct["ktps"], 2),
                round(remote["ktps"], 2),
                round(ioct["ktps"] / remote["ktps"], 2)
                if remote["ktps"] else 0.0,
                round(ioct["membw_gbps"], 2),
                round(remote["membw_gbps"], 2),
            )
        return result
