"""Parallel sweep executor with an on-disk result cache.

Every paper figure is a sweep of *independent* simulation points: each
point builds its own seeded :class:`~repro.core.configurations.Testbed`,
runs it, and returns plain metrics.  That makes the figures embarrassingly
parallel, so :func:`sweep_map` fans the points across ``multiprocessing``
workers (``--jobs N`` on the CLI) and — optionally — memoises finished
points on disk keyed by a **code + parameters** hash, so re-running a
figure after an unrelated edit is a cache hit and changing any simulator
source invalidates everything.

Determinism: point functions take all their randomness from their
explicit ``seed`` parameter, so a point's metrics are identical whether it
runs inline, in a worker, or comes from the cache.  Results are returned
in submission order.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

#: Process-wide defaults, set once by the CLI (or tests) via configure().
_jobs = int(os.environ.get("REPRO_SWEEP_JOBS", "1") or 1)
_cache_dir: Optional[str] = os.environ.get("REPRO_SWEEP_CACHE") or None

_code_fingerprint: Optional[str] = None

#: Persistent worker pool, reused across sweep_map calls so a figure
#: sequence pays process startup once, not per sweep.
_pool: Optional[ProcessPoolExecutor] = None
_pool_jobs = 0

#: Below this many uncached points a process fan-out costs more (worker
#: startup, pickling, module re-import) than it saves; run them inline.
MIN_PARALLEL_POINTS = 4

#: Process-wide cache statistics (counted only when a cache dir is
#: configured): how many points were served from disk vs executed.
_cache_hits = 0
_cache_misses = 0


def cache_stats() -> Dict[str, int]:
    """Cache hits/misses since process start (or the last reset), plus
    the hit rate over all cache lookups."""
    looked_up = _cache_hits + _cache_misses
    return {"hits": _cache_hits, "misses": _cache_misses,
            "lookups": looked_up,
            "hit_rate": _cache_hits / looked_up if looked_up else 0.0}


def reset_cache_stats() -> None:
    global _cache_hits, _cache_misses
    _cache_hits = 0
    _cache_misses = 0


def would_parallelize(npoints: int, jobs: Optional[int] = None) -> bool:
    """Whether :func:`sweep_map` would fan ``npoints`` uncached points
    out to worker processes (as opposed to taking the inline serial
    fallback).  The single predicate the executor uses, exposed so the
    perf harness can tell a *structural* serial fallback (single-CPU
    host, too few points, jobs=1 — parallel leg runs the identical
    serial code, any measured "speedup" is pure timing noise) from a
    real parallel run whose speedup is worth gating on."""
    jobs = _jobs if jobs is None else jobs
    return (jobs > 1 and (os.cpu_count() or 1) > 1
            and npoints >= MIN_PARALLEL_POINTS)


def _get_pool(jobs: int) -> ProcessPoolExecutor:
    global _pool, _pool_jobs
    if _pool is None or _pool_jobs != jobs:
        shutdown_pool()
        _pool = ProcessPoolExecutor(max_workers=jobs)
        _pool_jobs = jobs
    return _pool


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (tests / interpreter exit)."""
    global _pool, _pool_jobs
    if _pool is not None:
        _pool.shutdown(wait=True)
        _pool = None
        _pool_jobs = 0


def configure(jobs: Optional[int] = None,
              cache_dir: Optional[str] = None) -> None:
    """Set process-wide sweep defaults (the CLI's --jobs/--cache-dir)."""
    global _jobs, _cache_dir
    if jobs is not None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        _jobs = jobs
    if cache_dir is not None:
        _cache_dir = cache_dir


def current_jobs() -> int:
    return _jobs


def code_fingerprint() -> str:
    """Hash of every simulator source file; part of each cache key, so
    any code change invalidates all cached points."""
    global _code_fingerprint
    if _code_fingerprint is None:
        root = Path(__file__).resolve().parents[1]  # src/repro
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


def _fn_path(fn: Callable) -> str:
    return f"{fn.__module__}:{fn.__qualname__}"


def _point_key(fn_path: str, params: Dict) -> str:
    payload = json.dumps({"fn": fn_path, "params": params},
                         sort_keys=True, default=repr)
    return hashlib.sha256(
        (code_fingerprint() + payload).encode()).hexdigest()


def _cache_load(cache_dir: str, key: str) -> Optional[Dict]:
    path = os.path.join(cache_dir, f"{key}.json")
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def _cache_store(cache_dir: str, key: str, fn_path: str, params: Dict,
                 result) -> None:
    try:
        payload = json.dumps({"fn": fn_path, "params": params,
                              "result": result}, sort_keys=True)
    except TypeError:
        return  # non-JSON result (e.g. TimeSeries): run uncached
    os.makedirs(cache_dir, exist_ok=True)
    path = os.path.join(cache_dir, f"{key}.json")
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        handle.write(payload)
    os.replace(tmp, path)  # atomic: concurrent workers race benignly


def _invoke(fn_path: str, params: Dict):
    """Worker-side entry: resolve the dotted function path and call it.

    Shipping the path instead of the function object keeps the submission
    picklable under every multiprocessing start method.
    """
    import importlib
    module_name, qualname = fn_path.split(":", 1)
    fn = importlib.import_module(module_name)
    for part in qualname.split("."):
        fn = getattr(fn, part)
    return fn(**params)


def sweep_map(fn: Callable, points: Sequence[Dict],
              jobs: Optional[int] = None,
              cache_dir: Optional[str] = None,
              parallel_when: Optional[Callable[[int, int], bool]] = None,
              ) -> List:
    """Run ``fn(**kwargs)`` for every kwargs dict in ``points``.

    Results come back in submission order.  ``fn`` must be a module-level
    function (picklable by path) whose kwargs are JSON-representable —
    true of every experiment point runner.

    ``parallel_when(npoints, jobs)`` overrides the fan-out predicate
    (default :func:`would_parallelize`).  The fleet executor passes its
    own: a fleet point is a whole server simulation, heavy enough that
    process fan-out is worth it whenever more than one worker is asked
    for — including on hosts where the figure sweeps would fall back to
    serial.
    """
    global _cache_hits, _cache_misses
    jobs = _jobs if jobs is None else jobs
    cache_dir = _cache_dir if cache_dir is None else cache_dir
    fn_path = _fn_path(fn)
    results: List = [None] * len(points)
    pending = []  # (index, params, cache key or None)
    for index, params in enumerate(points):
        key = None
        if cache_dir:
            key = _point_key(fn_path, params)
            hit = _cache_load(cache_dir, key)
            if hit is not None:
                _cache_hits += 1
                results[index] = hit["result"]
                continue
            _cache_misses += 1
        pending.append((index, params, key))

    # Fan out only when it can actually win: multiple workers requested,
    # more than one CPU to run them on, and enough uncached points to
    # amortise worker startup.  Everything else runs inline — on a
    # single-CPU host the pool only adds overhead (measured 0.75x).
    should_parallelize = parallel_when or would_parallelize
    if should_parallelize(len(pending), jobs):
        pool = _get_pool(jobs)
        futures = [(index, params, key,
                    pool.submit(_invoke, fn_path, params))
                   for index, params, key in pending]
        for index, params, key, future in futures:
            value = future.result()
            results[index] = value
            if key:
                _cache_store(cache_dir, key, fn_path, params, value)
    else:
        for index, params, key in pending:
            value = fn(**params)
            results[index] = value
            if key:
                _cache_store(cache_dir, key, fn_path, params, value)
    return results
