"""Figure 2 (§2.6): NIC bandwidth vs. what one CPU can consume.

A data model, not a simulation: the paper's argument is that a single
NIC's full-duplex bandwidth has outgrown what all the cores of one CPU
can push through TCP, so sharing one device across sockets is enough.
Data points follow the paper's cited sources (Ethernet generations,
Intel/AMD top core counts, and the two per-core rate assumptions).
"""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult, register

#: Ethernet generation shipping per year -> single-port full-duplex Gb/s.
NIC_GBPS_BY_YEAR = {
    2008: 10, 2010: 10, 2012: 40, 2014: 40, 2016: 100, 2018: 200,
    2020: 400,
}

#: Highest per-CPU core count available that year (Intel/AMD).
CORES_BY_YEAR = {
    2008: 4, 2010: 8, 2012: 10, 2014: 12, 2016: 18, 2018: 28, 2020: 48,
}

#: Per-core TCP consumption assumptions (§2.6).
CLOUD_MBPS_PER_CORE = 513        # EC2 high-spec upper bound
BARE_METAL_GBPS_PER_CORE = 10.0  # aggressive netperf bare-metal rate


@register
class Fig02Trends(Experiment):
    name = "fig02"
    paper_ref = "Figure 2, §2.6"
    description = ("NIC bandwidth vs. CPU consumption trend, 2008-2020: "
                   "one NIC satisfies every CPU in the server")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        result = self.result(
            ["year", "nic_single_gbps", "nic_dual_gbps", "cores",
             "cpu_cloud_gbps", "cpu_baremetal_gbps",
             "nic_covers_cloud_cpus", "nic_covers_baremetal_cpus"],
            notes="full-duplex NIC bandwidth = 2x line rate; dual-port = "
                  "2 ports")
        for year in sorted(NIC_GBPS_BY_YEAR):
            line = NIC_GBPS_BY_YEAR[year]
            single = 2 * line          # full duplex
            dual = 2 * single          # dual-port
            cores = CORES_BY_YEAR[year]
            cloud = cores * CLOUD_MBPS_PER_CORE / 1000.0
            bare = cores * BARE_METAL_GBPS_PER_CORE
            result.add(year, single, dual, cores, round(cloud, 2),
                       round(bare, 1),
                       round(single / cloud, 1) if cloud else 0.0,
                       round(single / bare, 2) if bare else 0.0)
        return result
