"""Figure 15 (§5.4): NVMe throughput under interconnect congestion.

Four SSDs attached to socket 0 serve 8 fio threads pinned to socket 1
(remote, direct I/O) while STREAM instances on socket 0 write into socket
1's memory, congesting the same UPI direction as the SSD DMA.
"""

from __future__ import annotations

from typing import List

from repro.core.configurations import Host
from repro.experiments.base import Experiment, ExperimentResult, register
from repro.nic.device import NicDevice
from repro.nic.firmware import StandardFirmware
from repro.nvme.device import NvmeController
from repro.nvme.driver import NvmeDriver
from repro.os_model.driver import StandardDriver
from repro.pcie.fabric import bifurcate
from repro.topology import dell_skylake
from repro.workloads.fio import spawn_fio_fleet
from repro.workloads.stream_bench import StreamThread

N_SSDS = 4
FIO_THREADS = 8
STREAM_COUNTS = [0, 1, 2, 3, 4, 5, 6, 8, 10]


def build_nvme_host(octo_mode: bool = False,
                    dual_port: bool = False) -> tuple:
    """A Skylake server with 4 SSDs on socket 0 (or dual-ported)."""
    machine = dell_skylake()
    nic = NicDevice(machine, bifurcate(machine, 16, [0], name="mgmt"),
                    StandardFirmware(1))
    host = Host(machine, nic, StandardDriver(machine, nic, 0))
    attach = [0, 1] if dual_port else [0]
    controllers = [
        NvmeController(machine, bifurcate(machine, 8 * len(attach), attach,
                                          name=f"ssd{i}"), name=f"ssd{i}")
        for i in range(N_SSDS)]
    drivers = [NvmeDriver(machine, ssd, octo_mode=octo_mode)
               for ssd in controllers]
    return host, drivers


def run_fio_point(n_streams: int, duration_ns: int, remote: bool = True,
                  octo_mode: bool = False) -> dict:
    host, drivers = build_nvme_host(octo_mode=octo_mode,
                                    dual_port=octo_mode)
    machine = host.machine
    warmup = duration_ns // 5
    fio_node = 1 if remote else 0
    fio_cores = machine.cores_on_node(fio_node)[N_SSDS + 2:][:FIO_THREADS] \
        if not remote else machine.cores_on_node(1)[:FIO_THREADS]
    fleet = spawn_fio_fleet(host, fio_cores, drivers, duration_ns, warmup)
    antagonists: List[StreamThread] = []
    for i in range(n_streams):
        antagonists.append(StreamThread(
            host, machine.cores_on_node(0)[i], target_node=1,
            kind="write", duration_ns=duration_ns, warmup_ns=warmup))
    machine.env.run(until=duration_ns + duration_ns // 5)
    return {
        "fio_gbps": sum(f.throughput_gbps() for f in fleet),
        "stream_gbps": sum(s.bandwidth_gbps() for s in antagonists),
    }


@register
class Fig15Nvme(Experiment):
    name = "fig15"
    paper_ref = "Figure 15, §5.4"
    description = ("remote fio (8 threads, 128 KB async direct reads, "
                   "iodepth 32) vs UPI-congesting STREAM: fio degrades "
                   "by up to ~24%, flattening once the UPI saturates; "
                   "local fio is unaffected")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = self.duration_ns(fidelity) * 2  # flash ops are slow
        runs = self.sweep(run_fio_point, [
            dict(n_streams=n, duration_ns=duration)
            for n in STREAM_COUNTS])
        # STREAM_COUNTS starts at 0, so the unloaded baseline is runs[0]
        # (deterministic: same point, same metrics).
        base = runs[0]["fio_gbps"]
        stream_alone = (run_fio_point_stream_alone(duration)
                        if base else 0.0)
        result = self.result(
            ["streams", "fio_gbps", "fio_normalized",
             "stream_normalized"],
            notes="normalised to each benchmark running alone, as in the "
                  "paper's figure")
        for n, point in zip(STREAM_COUNTS, runs):
            per_stream = (point["stream_gbps"] / n) if n else 0.0
            result.add(
                n,
                round(point["fio_gbps"], 1),
                round(point["fio_gbps"] / base, 2) if base else 0.0,
                round(per_stream / stream_alone, 2)
                if n and stream_alone else 1.0,
            )
        return result


def run_fio_point_stream_alone(duration_ns: int) -> float:
    """Bandwidth of a single STREAM instance with no fio running."""
    host, _ = build_nvme_host()
    machine = host.machine
    warmup = duration_ns // 5
    solo = StreamThread(host, machine.cores_on_node(0)[0], target_node=1,
                        kind="write", duration_ns=duration_ns,
                        warmup_ns=warmup)
    machine.env.run(until=duration_ns + duration_ns // 5)
    return solo.bandwidth_gbps()
