"""Figure 11 (§5.2): TCP Rx throughput under QPI congestion."""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult, register
from repro.experiments.runners import run_tcp_stream
from repro.units import KB

STREAM_PAIRS = [1, 2, 3, 4, 5, 6]


@register
class Fig11QpiThroughput(Experiment):
    name = "fig11"
    paper_ref = "Figure 11, §5.2"
    description = ("single-core TCP Rx co-located with STREAM pairs "
                   "loading the QPI: ioct/local sustains 1.82-2.67x the "
                   "remote throughput")

    def run(self, fidelity: str = "normal") -> ExperimentResult:
        duration = self.duration_ns(fidelity)
        result = self.result(
            ["stream_pairs", "ioct_gbps", "remote_gbps", "ratio",
             "ioct_membw_gbps", "remote_membw_gbps"],
            notes="paper: both configurations degrade with STREAM "
                  "activity, remote much faster")
        runs = self.sweep(run_tcp_stream, [
            dict(config=config, message_bytes=64 * KB, direction="rx",
                 duration_ns=duration, stream_pairs=pairs)
            for pairs in STREAM_PAIRS
            for config in ("ioctopus", "remote")])
        for i, pairs in enumerate(STREAM_PAIRS):
            ioct, remote = runs[2 * i:2 * i + 2]
            result.add(
                pairs,
                round(ioct["throughput_gbps"], 2),
                round(remote["throughput_gbps"], 2),
                round(ioct["throughput_gbps"]
                      / remote["throughput_gbps"], 2),
                round(ioct["membw_gbps"], 2),
                round(remote["membw_gbps"], 2),
            )
        return result
