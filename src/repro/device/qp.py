"""The generic DMA queue pair: a descriptor ring plus data regions.

Every octo-device queue — NIC Tx/Rx rings, NVMe submission/completion
pairs — owns a ring region allocated on the node of the core it serves
(the XPS/ARFS locality policy, §2.3) and is *served by* exactly one PF
at a time.  The serving PF is mutable: teaming re-homes queues onto a
surviving PF when theirs is hot-unplugged.
"""

from __future__ import annotations

from repro.device.moderation import AdaptiveCoalescing
from repro.units import CACHELINE


class DmaQueuePair:
    """Base class for device queues (ring + per-queue moderation)."""

    direction = "?"

    def __init__(self, queue_id: int, core, machine, pf=None, *,
                 ring_name: str, ring_entries: int):
        if ring_entries < 1:
            raise ValueError(
                f"ring needs >= 1 entry, got {ring_entries}")
        self.queue_id = queue_id
        self.core = core
        self.machine = machine
        #: The PF this queue is currently served by (set by the driver).
        self.pf = pf
        self.ring_entries = ring_entries
        self.ring = machine.alloc_region(
            ring_name, core.node_id, ring_entries * CACHELINE)
        #: Per-queue adaptive interrupt moderation (§5: enabled for the
        #: throughput experiments, disabled for latency).
        self.moderation = AdaptiveCoalescing()
        #: Outstanding descriptors not yet consumed (for drain tracking).
        self.outstanding = 0
        #: High-water mark of ``outstanding`` — the queue-depth figure the
        #: observability layer reports per PF (devices update it inline
        #: when they post descriptors; a plain compare, no instrument).
        self.outstanding_hwm = 0
        self.bytes_total = 0
        self.packets_total = 0

    @property
    def node_id(self) -> int:
        return self.core.node_id

    def is_drained(self) -> bool:
        """True when no descriptors are outstanding — the precondition
        both XPS and ARFS wait for before re-steering a socket, to avoid
        out-of-order delivery (§2.3)."""
        return self.outstanding == 0

    def account(self, npackets: int, nbytes: int) -> None:
        self.packets_total += npackets
        self.bytes_total += nbytes

    def descriptors_until_wrap(self) -> int:
        """Descriptors left before the producer index wraps the ring.

        A coalesced packet train must not cross a queue wrap: the wrap is
        where real drivers re-arm doorbells and recycle completions, so
        the train planner caps a train at this many descriptors.
        """
        return self.ring_entries - (self.packets_total % self.ring_entries)

    def completion_read_ns(self, node: int) -> int:
        """CPU cost of reading one completion entry from this queue's
        ring on ``node``: free when DDIO kept the line hot, ~80 ns when
        the DMA landed remotely (§5.1.1)."""
        return self.machine.memory.read_fresh_dma_line(node, self.ring)

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.queue_id} "
                f"core={self.core.core_id} "
                f"pf={getattr(self.pf, 'name', None)}>")
