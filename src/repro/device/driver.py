"""Host-side driver base shared by every octo-device personality.

The pieces of :mod:`repro.os_model.driver` that never mentioned a
packet: retry backoff against dead hardware (the PCIe AER/hotplug
recovery discipline), the asynchronous kernel worker that applies
deferred steering updates, and the standard counters every driver
exposes to tests and metrics.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.device.paths import CompletionPath, DoorbellPath
from repro.sim.errors import DeviceGoneError, RetriesExhausted


class DeviceDriver:
    """Base class for host-side drivers of a :class:`MultiPfDevice`."""

    name = "base"

    #: The §4.2 no-reorder rule: deferred steering updates (migration
    #: re-steers, failover/recovery re-steer plans) wait for the old
    #: queue(s) to drain.  The ``no_reorder_resteer`` component clears
    #: this to model the unsafe immediate-re-steer baseline.
    no_reorder_resteer = True

    def __init__(self, machine, device):
        self.machine = machine
        self.device = device
        self.env = machine.env
        #: Submission/completion cost paths (shared across this driver's
        #: queues; per-queue state lives on the queues themselves).
        self.doorbell = DoorbellPath(machine)
        self.completion = CompletionPath(machine,
                                         machine.spec.software.irq_ns)
        #: Count of steering updates applied (exposed for tests/metrics).
        self.steering_updates = 0
        #: Count of backed-off retries against dead hardware.
        self.retries = 0

    # -------------------------------------------------------------- API

    def call_with_retry(self, operation: Callable, max_attempts: int = 6,
                        base_backoff_ns: int = 2_000,
                        deadline_ns: Optional[int] = None):
        """Run ``operation`` with exponential backoff on dead hardware.

        A generator for use inside sim processes::

            result = yield from driver.call_with_retry(
                lambda: device.tx(queue, region, n, size))

        Each :class:`DeviceGoneError` attempt backs off twice as long as
        the previous one (the PCIe AER/hotplug recovery discipline).  The
        retry budget is explicitly bounded two ways: after
        ``max_attempts`` failures, or — when ``deadline_ns`` is given —
        once the next backoff would push past ``deadline_ns`` of
        simulated time since the call started, the operation is
        abandoned with :class:`RetriesExhausted` (a
        :class:`~repro.sim.errors.DeviceTimeoutError` subtype), so a
        permanent fault fails loudly instead of hanging the run.
        """
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if deadline_ns is not None and deadline_ns < 0:
            raise ValueError(f"deadline_ns must be >= 0, got {deadline_ns}")
        started_ns = self.env.now
        last_error: Optional[DeviceGoneError] = None
        attempts = 0
        for attempt in range(max_attempts):
            attempts = attempt + 1
            try:
                return operation()
            except DeviceGoneError as error:
                last_error = error
            if attempt == max_attempts - 1:
                break
            backoff = base_backoff_ns << attempt
            if (deadline_ns is not None
                    and self.env.now - started_ns + backoff > deadline_ns):
                break
            self.retries += 1
            yield self.env.timeout(backoff)
        raise RetriesExhausted(
            f"{self.name}: operation still failing after {attempts} "
            f"attempts over {self.env.now - started_ns} ns "
            f"({last_error})",
            attempts=attempts,
            elapsed_ns=self.env.now - started_ns,
            last_error=last_error)

    # --------------------------------------------------------- internals

    def _apply_after(self, delay_ns: int, apply_fn) -> None:
        """Run ``apply_fn`` after ``delay_ns`` via an asynchronous kernel
        worker — the deferred-steering discipline of §4.2."""
        def worker():
            yield self.env.timeout(delay_ns)
            apply_fn()
            self.steering_updates += 1
        self.env.process(worker(), name=f"{self.name}-steer-worker")
