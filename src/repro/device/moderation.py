"""Adaptive interrupt coalescing.

The paper's setup enables "Linux adaptive interrupt coalescing" for the
throughput experiments and disables it for the latency ones (§5, §5.1.2).
The adaptive scheme mirrors the Mellanox/`DIM` behaviour: at low packet
rates every packet interrupts (latency first); as the observed rate
rises, the NIC batches completions up to a frame budget (throughput
first).
"""

from __future__ import annotations

#: Frames coalesced per interrupt at full rate (Linux/mlx5 default scale).
MAX_COALESCED_FRAMES = 64
#: Above this packet rate the moderator reaches full coalescing.
HIGH_RATE_PPS = 300_000.0
#: Below this rate every packet fires its own interrupt.
LOW_RATE_PPS = 20_000.0
#: EWMA smoothing for the observed rate.
_ALPHA = 0.5


class AdaptiveCoalescing:
    """Per-queue interrupt moderation state."""

    def __init__(self, enabled: bool = True,
                 max_frames: int = MAX_COALESCED_FRAMES):
        if max_frames < 1:
            raise ValueError(f"max_frames must be >= 1, got {max_frames}")
        self.enabled = enabled
        self.max_frames = max_frames
        self._ewma_pps = 0.0
        self._last_update_ns = None
        self.interrupts_total = 0

    # ------------------------------------------------------------ control

    def disable(self) -> None:
        """`ethtool -C adaptive-rx off rx-usecs 0` — the latency setup."""
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    # ------------------------------------------------------------- query

    @property
    def observed_pps(self) -> float:
        return self._ewma_pps

    def current_budget(self) -> int:
        """Frames per interrupt at the currently observed rate."""
        if not self.enabled or self._ewma_pps <= LOW_RATE_PPS:
            return 1
        if self._ewma_pps >= HIGH_RATE_PPS:
            return self.max_frames
        # Linear ramp between the two thresholds.
        span = HIGH_RATE_PPS - LOW_RATE_PPS
        fraction = (self._ewma_pps - LOW_RATE_PPS) / span
        return max(1, int(self.max_frames * fraction))

    # ------------------------------------------------------------ update

    def interrupts_for(self, npackets: int, now_ns: int) -> int:
        """Interrupts raised for a batch arriving at ``now_ns``."""
        return self.interrupts_for_train(npackets, 1, now_ns)

    def interrupts_for_train(self, npackets: int, nbursts: int,
                             now_ns: int) -> int:
        """Interrupts for a coalesced train of ``nbursts`` back-to-back
        bursts of ``npackets`` each.

        The rate estimator observes the train's full packet count (the
        same aggregate rate the per-burst path would have produced), but
        the interrupt count is ``nbursts`` times the per-burst value so a
        train charges exactly what its constituent bursts would have at a
        steady budget.  ``nbursts=1`` is bit-identical to the historical
        per-batch path.
        """
        if npackets < 1:
            raise ValueError(f"npackets must be >= 1, got {npackets}")
        if nbursts < 1:
            raise ValueError(f"nbursts must be >= 1, got {nbursts}")
        self._observe(npackets * nbursts, now_ns)
        budget = self.current_budget()
        return nbursts * max(1, npackets // budget)

    def _observe(self, npackets: int, now_ns: int) -> None:
        if self._last_update_ns is None:
            self._last_update_ns = now_ns
            return
        elapsed = now_ns - self._last_update_ns
        if elapsed <= 0:
            # Same-instant batches: accumulate into the running estimate.
            self._ewma_pps += npackets * _ALPHA * 1e3
            return
        instantaneous = npackets * 1e9 / elapsed
        self._ewma_pps = ((1 - _ALPHA) * self._ewma_pps
                          + _ALPHA * instantaneous)
        self._last_update_ns = now_ns
