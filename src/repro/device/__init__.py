"""The generic octo-device core (§5.4, §6).

The IOctopus principle is not NIC-specific: any DMA device with one PCIe
physical function per socket can steer every command and data transfer
through the PF local to the submitting core.  This package holds the
device-generic layer both personalities (the octoNIC and the octoSSD)
plug into:

* :class:`MultiPfDevice`   — PFs, hot-unplug/replug notification fan-out.
* :class:`DmaQueuePair`    — ring + data regions with DDIO-aware
  completion reads and per-queue interrupt moderation.
* :class:`DoorbellPath`    — MMIO submission cost through the serving PF.
* :class:`CompletionPath`  — DMA completion write + interrupt-or-poll
  delivery.
* :class:`OctoTeam`        — per-core queues bound to the socket-local
  PF, PF hot-unplug re-homing with drain-before-resteer, recovery.
* :class:`DeviceDriver`    — host-side driver base (retry backoff,
  deferred steering workers, counters).
"""

from repro.device.base import MultiPfDevice
from repro.device.driver import DeviceDriver
from repro.device.paths import CompletionPath, DoorbellPath
from repro.device.qp import DmaQueuePair
from repro.device.team import OctoTeam

__all__ = [
    "CompletionPath",
    "DeviceDriver",
    "DmaQueuePair",
    "DoorbellPath",
    "MultiPfDevice",
    "OctoTeam",
]
