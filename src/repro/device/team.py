"""Generic multi-PF teaming: the IOctopus policy for any device (§4.2).

An :class:`OctoTeam` presents a multi-PF device as **one** logical
device.  Per-core queues are bound to the PF local to each core's
socket, so every doorbell, DMA and completion stays on-socket; the NIC
and NVMe personalities differ only in what rides on top (steering rule
tables for the NIC, nothing extra for NVMe).

Fault tolerance is device-generic: the team registers for the device's
PF hot-unplug notifications.  When a PF dies its queues are re-homed
onto a surviving PF immediately (the hot-unplug handler), and any
per-flow re-steering a personality needs is deferred until the dead
PF's queues drain — §4.2's no-reorder rule.  On PF recovery the mapping
is undone the same way and full octopus locality returns.

Personalities implement four hooks:

* :meth:`_team_queues`            — every queue the team manages.
* :meth:`_drainable`              — which of a moved set gate the
  deferred re-steer (the NIC drains Rx only; NVMe drains every QP).
* :meth:`_after_rehome`           — device-side re-registration (the
  NIC re-registers per-PF default RSS queue lists).
* :meth:`_plan_failover_resteer` / :meth:`_plan_recovery_resteer` —
  the deferred rule updates, returned as ``(apply_fn, detail)`` where
  ``detail`` is the trace payload logged when the plan applies.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.pcie.fabric import PhysicalFunction
from repro.sim.errors import DeviceGoneError

#: A deferred re-steer: the mutation to run after the drain, plus the
#: trace detail recorded when it applies.
ResteerPlan = Tuple[Callable[[], None], str]


class OctoTeam:
    """Mixin holding the generic teaming policy over a MultiPfDevice.

    Mixed into a driver class that provides ``machine``, ``device``,
    ``env``, ``name``, ``steering_updates`` and ``_apply_after`` (see
    :class:`repro.device.driver.DeviceDriver`).
    """

    #: Label used in configuration/error messages ("octoNIC", "octoSSD").
    team_label = "octo-device"
    #: What the team presents to its consumers — traced when the last PF
    #: dies ("netdev" for the NIC, "device" for storage).
    team_noun = "device"

    def _init_team(self, machine, device, allow_degraded: bool) -> None:
        """Validate PF coverage and reset the failover counters.  Call
        before building queues; pair with :meth:`_team_listen` once the
        queues exist."""
        missing = [n for n in range(machine.spec.num_nodes)
                   if device.pf_local_to(n) is None
                   or not device.pf_local_to(n).alive]
        if missing and not allow_degraded:
            raise ValueError(
                f"{self.team_label} needs a PF on every node; missing "
                f"{missing} (pass allow_degraded=True to run those "
                f"sockets through a remote PF)")
        if not device.alive_pfs:
            raise ValueError(
                f"{self.team_label} has no usable PF at all")
        #: Completed PF failovers / recoveries (exposed for tests/metrics).
        self.failovers = 0
        self.recoveries = 0

    def _team_listen(self) -> None:
        """Register for the device's PF hot-unplug notifications."""
        self.device.add_pf_listener(on_failure=self._on_pf_failure,
                                    on_recovery=self._on_pf_recovery)

    # ----------------------------------------------------- queue homing

    def _pf_for_core(self, core) -> PhysicalFunction:
        """The PF serving ``core``: its socket's PF when alive, else the
        lowest-numbered surviving PF (nonuniform, but functional)."""
        local = self.device.pf_local_to(core.node_id)
        if local is not None and local.alive:
            return local
        fallback = self._fallback_pf()
        if fallback is None:
            raise DeviceGoneError(
                f"{self.team_label}: no surviving PF to serve core "
                f"{core.core_id}")
        return fallback

    def _fallback_pf(self, exclude: Optional[PhysicalFunction] = None) -> (
            Optional[PhysicalFunction]):
        for pf in self.device.pfs:
            if pf.alive and pf is not exclude:
                return pf
        return None

    # ------------------------------------------------------- PF failover

    def _on_pf_failure(self, pf: PhysicalFunction) -> None:
        """Device callback: ``pf`` was surprise-removed.

        Queue re-homing and device-side re-registration are immediate
        (the hot-unplug handler); the personality's re-steer plan is
        deferred until the dead PF's queues drain, preserving §4.2's
        no-reorder rule.
        """
        fallback = self._fallback_pf(exclude=pf)
        if fallback is None:
            self._trace(f"failover.dead_{self.team_noun}",
                        f"pf{pf.pf_id} was the last PF; "
                        f"{self.team_noun} down")
            return
        moved = [q for q in self._team_queues() if q.pf is pf]
        for queue in moved:
            queue.pf = fallback
        self._after_rehome()

        apply_resteer, detail = self._plan_failover_resteer(pf, fallback)
        gating = self._drainable(moved)
        drain = (max((self._drain_delay_ns(q) for q in gating), default=0)
                 if self.no_reorder_resteer else 0)

        def apply():
            # No-reorder rule (§4.2): by the time the re-steer applies,
            # the drain-gated queues must be empty.  Record the residual
            # so the fuzz invariants can check it from the trace alone.
            residual = sum(q.outstanding for q in gating)
            apply_resteer()
            self.failovers += 1
            self._trace("failover.applied",
                        f"pf{pf.pf_id}->pf{fallback.pf_id} {detail} "
                        f"residual={residual}")

        self._trace("failover.begin",
                    f"pf{pf.pf_id}->pf{fallback.pf_id} "
                    f"queues={len(moved)} "
                    f"drain_ns={drain}")
        self._apply_after(drain, apply)

    def _on_pf_recovery(self, pf: PhysicalFunction) -> None:
        """Device callback: ``pf`` came back.  Re-home the queues it is
        the home PF for and re-steer their flows, again after a drain."""
        back = [q for q in self._team_queues()
                if self._is_home_pf(pf, q) and q.pf is not pf]
        for queue in back:
            queue.pf = pf
        self._after_rehome()

        drainable = self._drainable(back)
        apply_resteer, detail = self._plan_recovery_resteer(pf, drainable)
        drain = (max((self._drain_delay_ns(q) for q in drainable),
                     default=0)
                 if self.no_reorder_resteer else 0)

        def apply():
            residual = sum(q.outstanding for q in drainable)
            apply_resteer()
            self.recoveries += 1
            self._trace("recovery.applied",
                        f"pf{pf.pf_id} {detail} residual={residual}")

        self._trace("recovery.begin",
                    f"pf{pf.pf_id} queues={len(back)} "
                    f"drain_ns={drain}")
        self._apply_after(drain, apply)

    def _trace(self, event: str, detail: str) -> None:
        self.machine.tracer.emit(self.env.now, self.name, event, detail)

    # ------------------------------------------------- personality hooks

    def _team_queues(self) -> List:
        """Every queue the team manages (each has ``.pf`` and ``.core``)."""
        raise NotImplementedError

    def _is_home_pf(self, pf: PhysicalFunction, queue) -> bool:
        """Whether ``pf`` is the queue's home under the octopus policy
        (the PF local to its core's socket)."""
        return queue.core.node_id == pf.attach_node

    def _drainable(self, queues: List) -> List:
        """The subset of ``queues`` whose drain gates the deferred
        re-steer (receive-direction queues for the NIC)."""
        return queues

    def _after_rehome(self) -> None:
        """Device-side re-registration after queues changed PF."""

    def _plan_failover_resteer(self, pf: PhysicalFunction,
                               fallback: PhysicalFunction) -> ResteerPlan:
        """Snapshot the rules living on ``pf`` and return the deferred
        move onto ``fallback``."""
        return (lambda: None), ""

    def _plan_recovery_resteer(self, pf: PhysicalFunction,
                               drainable: List) -> ResteerPlan:
        """Return the deferred move of rules back onto recovered ``pf``."""
        return (lambda: None), ""

    # ``_drain_delay_ns(queue)`` is deliberately NOT stubbed here: the
    # host class (a DeviceDriver subclass) provides it, and a stub would
    # shadow it under cooperative MRO (OctoTeam precedes the driver).
