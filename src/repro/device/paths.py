"""Submission and completion paths shared by every octo-device.

The two halves of any DMA device's command loop, with the costs the
paper's analysis decomposes (§5.1.1):

* :class:`DoorbellPath` — the posted MMIO write that tells the device
  new work is queued.  Crossing the interconnect to reach a remote PF is
  one of the nonuniform interactions Fig 1 depicts.
* :class:`CompletionPath` — the device's DMA write of completion
  entries into the queue's ring, plus the host's cost of consuming
  them: interrupt delivery (moderated per queue) and the completion
  reads that hit in DDIO when the serving PF is local and miss (~80 ns)
  when it is not.
"""

from __future__ import annotations

from repro.units import CACHELINE


class DoorbellPath:
    """MMIO doorbell writes through each queue's serving PF."""

    def __init__(self, machine):
        self.machine = machine
        #: Doorbells rung (exposed for tests/metrics).
        self.rings = 0

    def ring(self, queue, from_node: int, times: int = 1) -> int:
        """CPU ns for ``times`` identical doorbell writes from a core on
        ``from_node``.  One latency sample is taken and scaled — the
        writes are identical posted TLPs on the same route."""
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        self.rings += times
        cost = times * queue.pf.mmio_latency(from_node)
        flow = self.machine.tracer.active_flow
        if flow is not None:
            stage = None
            if self.machine.tracer.blame is not None:
                loc = "local" if queue.pf.is_local_to(from_node) else "qpi"
                stage = f"doorbell.{loc}"
            flow.step(f"{queue.pf.name}.mmio", "doorbell.ring", cost,
                      {"times": times, "from_node": from_node},
                      stage=stage)
        return cost


class CompletionPath:
    """Completion delivery: DMA write-back plus host-side consumption."""

    def __init__(self, machine, irq_ns: int):
        self.machine = machine
        self.irq_ns = irq_ns
        #: Interrupts delivered / completion entries consumed.
        self.interrupts = 0
        self.entries = 0

    # ----------------------------------------------------- device side

    def write_back(self, queue, ndesc: int) -> int:
        """Device-side delay of DMA-writing ``ndesc`` completion entries
        into the queue's ring through its serving PF."""
        if ndesc < 1:
            raise ValueError(f"ndesc must be >= 1, got {ndesc}")
        cost = queue.pf.dma_write(queue.ring, ndesc * CACHELINE)
        flow = self.machine.tracer.active_flow
        if flow is not None:
            stage = None
            if self.machine.tracer.blame is not None:
                loc = ("local" if queue.pf.is_local_to(queue.node_id)
                       else "qpi")
                stage = f"dma.{loc}"
            flow.step(f"{queue.pf.name}.dma", "cq.write_back", cost,
                      {"ndesc": ndesc}, stage=stage)
        return cost

    # ------------------------------------------------------- host side

    def consume(self, queue, ndesc: int, node: int) -> int:
        """CPU ns to read ``ndesc`` completion entries on ``node``
        (poll-mode consumption; DDIO decides hit or miss)."""
        self.entries += ndesc
        flow = self.machine.tracer.active_flow
        stage = None
        if flow is not None and self.machine.tracer.blame is not None:
            # Classify *before* the charged read flips counters: DDIO
            # hit vs miss (remote-LLC forward / DRAM / remote DRAM).
            tag = self.machine.memory.dma_read_class(node, queue.ring)
            stage = "cq.hit" if tag == "ddio_hit" else "cq.miss"
        cost = ndesc * queue.completion_read_ns(node)
        if flow is not None:
            flow.step(f"core{node}.cq", "cq.consume", cost,
                      {"ndesc": ndesc, "via": queue.pf.name},
                      stage=stage)
        return cost

    def interrupt(self, queue, nper_burst: int, nbursts: int,
                  now_ns: int) -> int:
        """CPU ns of interrupt delivery for ``nbursts`` back-to-back
        bursts of ``nper_burst`` completions, moderated by the queue's
        adaptive coalescing state."""
        interrupts = queue.moderation.interrupts_for_train(
            nper_burst, nbursts, now_ns)
        self.interrupts += interrupts
        cost = interrupts * self.irq_ns
        flow = self.machine.tracer.active_flow
        if flow is not None and interrupts:
            # Moderated delivery: the coalescing budget holds completions
            # back, so the charge per train is what survives the hold.
            flow.step(f"core{queue.node_id}.irq", "irq.deliver", cost,
                      {"interrupts": interrupts}, stage="irq.hold")
        return cost
