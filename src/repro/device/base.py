"""Device-generic base: a device occupying one PF per attachment point.

Everything here used to live in :mod:`repro.nic.device`; it is the part
of the NIC model that never looked at a packet — PF bookkeeping, the
hot-unplug/replug notification fan-out, and the liveness queries drivers
use for failover.  The NVMe controller shares it unchanged, which is
what lets one :class:`~repro.faults.injector.FaultInjector` fire
``pf_down``/``pcie_link_down``/``pcie_degrade`` plans at either device.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.pcie.fabric import PhysicalFunction


class MultiPfDevice:
    """A DMA device present on one or more PCIe physical functions."""

    #: Trace-event prefix; subclasses set it ("nic", "nvme", ...).
    kind = "dev"

    def __init__(self, machine, pfs: List[PhysicalFunction],
                 name: str = "dev"):
        if not pfs:
            raise ValueError(
                f"a {self.kind} device needs at least one PF")
        self.machine = machine
        self.pfs = pfs
        self.name = name
        for pf in pfs:
            pf.device = self
        #: Drivers register here to learn about PF hot-unplug/replug.
        self._pf_failure_callbacks: List[Callable] = []
        self._pf_recovery_callbacks: List[Callable] = []

    # ------------------------------------------------------------ helpers

    @property
    def env(self):
        return self.machine.env

    def pf(self, pf_id: int) -> PhysicalFunction:
        return self.pfs[pf_id]

    def pf_local_to(self, node: int) -> Optional[PhysicalFunction]:
        for pf in self.pfs:
            if pf.attach_node == node:
                return pf
        return None

    @property
    def dual_port(self) -> bool:
        return len(self.pfs) > 1

    # ------------------------------------------------------- fault model

    @property
    def alive_pfs(self) -> List[PhysicalFunction]:
        return [pf for pf in self.pfs if pf.alive]

    def pf_alive(self, pf_id: int) -> bool:
        return self.pfs[pf_id].alive

    def add_pf_listener(self, on_failure: Optional[Callable] = None,
                        on_recovery: Optional[Callable] = None) -> None:
        """Register driver callbacks for PF removal/recovery.  Each is
        called with the affected :class:`PhysicalFunction`."""
        if on_failure is not None:
            self._pf_failure_callbacks.append(on_failure)
        if on_recovery is not None:
            self._pf_recovery_callbacks.append(on_recovery)

    def surprise_remove(self, pf_id: int,
                        cause: str = "surprise-remove") -> None:
        """Hot-unplug one PF: its PCIe presence vanishes mid-run.

        The PF and device-side state stop accepting work through it,
        then the registered drivers get a chance to fail over.
        """
        pf = self.pfs[pf_id]
        if not pf.alive:
            raise ValueError(f"PF {pf_id} is already removed")
        pf.fail()
        self._pf_failed(pf_id)
        self.machine.tracer.emit(self.env.now, self.name,
                                 f"{self.kind}.pf_down",
                                 f"pf{pf_id} cause={cause}")
        for callback in self._pf_failure_callbacks:
            callback(pf)

    def recover_pf(self, pf_id: int) -> None:
        """Replug a removed PF (link retrained, function re-enumerated)."""
        pf = self.pfs[pf_id]
        if pf.alive:
            raise ValueError(f"PF {pf_id} is not removed")
        pf.recover()
        self._pf_recovered(pf_id)
        self.machine.tracer.emit(self.env.now, self.name,
                                 f"{self.kind}.pf_up", f"pf{pf_id}")
        for callback in self._pf_recovery_callbacks:
            callback(pf)

    # ------------------------------------------------------------- hooks

    def _pf_failed(self, pf_id: int) -> None:
        """Device-side reaction to a PF removal (e.g. firmware tables)."""

    def _pf_recovered(self, pf_id: int) -> None:
        """Device-side reaction to a PF replug."""

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.name} "
                f"pfs={[pf.attach_node for pf in self.pfs]}>")
