"""Shared size/unit constants (import-cycle-free leaf module)."""

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: x86 cache line size.
CACHELINE = 64

#: Ethernet MTU used throughout the paper's experiments.
MTU = 1500

#: TSO aggregates this much data per segment handed to the NIC (§5.1.1).
TSO_SEGMENT = 64 * KB


def gbps(bytes_per_sec: float) -> float:
    """Convert bytes/sec to gigabits/sec (the paper's throughput unit)."""
    return bytes_per_sec * 8 / 1e9


def bytes_per_sec(gigabits_per_sec: float) -> float:
    """Convert gigabits/sec to bytes/sec."""
    return gigabits_per_sec * 1e9 / 8
