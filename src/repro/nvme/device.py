"""NVMe controllers (§5.4).

A :class:`NvmeController` models a PM1725a-class SSD: an internal flash
pipeline (a bandwidth server) behind one or two PCIe PFs.  Dual-port
drives — the NVMe spec's multi-PF controllers — can attach one port per
socket, which is the "octoSSD" the paper leaves to future work; we build
both the standard single-port path and the octoSSD steering mode.

PF bookkeeping, hot-unplug/replug notifications and per-PF liveness come
from the generic :class:`~repro.device.base.MultiPfDevice`, and each
queue pair is a :class:`~repro.device.qp.DmaQueuePair` — the same core
the NIC runs on, which is what makes ``pf_down``/``pcie_link_down``/
``pcie_degrade`` fault plans and PF failover work identically for both
devices.
"""

from __future__ import annotations

from typing import Dict, List

from repro.device.base import MultiPfDevice
from repro.device.qp import DmaQueuePair
from repro.pcie.fabric import PhysicalFunction
from repro.sim.resources import BandwidthServer
from repro.units import CACHELINE, KB

#: PM1725a-class sequential read bandwidth.
FLASH_BYTES_PER_SEC = 6.2e9
#: Flash read latency (device-internal, per command batch; at fio-style
#: queue depths later commands' flash latency hides behind the DMA).
FLASH_READ_LATENCY_NS = 80_000
#: Submission/completion ring depth (NVMe drivers default to 1024).
NVME_RING_ENTRIES = 1024
#: Default per-QP data-buffer capacity: iodepth 32 x 128 KB blocks,
#: doubled for double-buffering.
DEFAULT_QP_DATA_BYTES = 8 * 1024 * KB


class NvmeQueuePair(DmaQueuePair):
    """A submission/completion queue pair plus its data buffers."""

    direction = "nvme"

    def __init__(self, qp_id: int, core, machine, pf=None, *,
                 data_bytes: int = DEFAULT_QP_DATA_BYTES):
        if data_bytes < CACHELINE:
            raise ValueError(
                f"QP data region needs >= one cacheline ({CACHELINE} B), "
                f"got {data_bytes}")
        super().__init__(qp_id, core, machine, pf,
                         ring_name=f"nvme-qp{qp_id}-ring",
                         ring_entries=NVME_RING_ENTRIES)
        self.data = machine.alloc_region(
            f"nvme-qp{qp_id}-data", core.node_id, data_bytes)

    @property
    def qp_id(self) -> int:
        return self.queue_id


class NvmeController(MultiPfDevice):
    """One NVMe SSD, possibly dual-port (one PF per socket)."""

    kind = "nvme"

    def __init__(self, machine, pfs: List[PhysicalFunction],
                 name: str = "nvme",
                 flash_bytes_per_sec: float = FLASH_BYTES_PER_SEC):
        if not pfs:
            raise ValueError("an NVMe controller needs at least one PF")
        super().__init__(machine, pfs, name)
        self.flash = BandwidthServer(machine.env, flash_bytes_per_sec,
                                     name=f"{name}.flash")
        self.read_bytes = 0
        self.write_bytes = 0
        self._pf_read_bytes: Dict[int, int] = {pf.pf_id: 0 for pf in pfs}
        self._pf_window_read: Dict[int, int] = {pf.pf_id: 0 for pf in pfs}
        self._window_start = machine.env.now

    # ---------------------------------------------------------- commands

    def _serving_pf(self, qp: NvmeQueuePair) -> PhysicalFunction:
        """The PF a command batch on ``qp`` travels through: the QP's
        serving PF (set by the driver's homing policy), falling back to
        port 0 for driverless QPs (unit tests, admin queues)."""
        return qp.pf if qp.pf is not None else self.pfs[0]

    @staticmethod
    def _check_cmd(nbytes: int, ncmds: int) -> None:
        if nbytes <= 0:
            raise ValueError(f"command size must be > 0, got {nbytes}")
        if ncmds < 1:
            raise ValueError(f"ncmds must be >= 1, got {ncmds}")

    def read(self, qp: NvmeQueuePair, nbytes: int, ncmds: int = 1) -> int:
        """``ncmds`` identical read commands posted as one batch: fetch
        from flash, DMA into the QP's buffers through its serving PF,
        write one completion entry per command.  Returns the device-side
        delay in ns."""
        self._check_cmd(nbytes, ncmds)
        pf = self._serving_pf(qp)
        total = ncmds * nbytes
        flash_delay = FLASH_READ_LATENCY_NS + self.flash.account(total)
        dma_delay = pf.dma_write(qp.data, total)
        dma_delay = max(dma_delay, pf.dma_write(qp.ring, ncmds * CACHELINE))
        flow_trace = self.machine.tracer.active_flow
        if flow_trace is not None:
            dma_stage = None
            if self.machine.tracer.blame is not None:
                loc = "local" if pf.is_local_to(qp.node_id) else "qpi"
                dma_stage = f"dma.{loc}"
            # Flash and DMA overlap: flash owns its full time, the DMA
            # stage owns only what flash did not hide, so the charges
            # sum to the returned max(flash, dma).
            flow_trace.step(f"{self.name}.flash", "flash.read", flash_delay,
                            {"cmds": ncmds, "bytes": total}, stage="flash")
            flow_trace.step(f"{self.name}.{pf.name}", "dma.rx", dma_delay,
                            stage=dma_stage,
                            blame_ns=max(0, dma_delay - flash_delay))
        qp.outstanding += ncmds
        if qp.outstanding > qp.outstanding_hwm:
            qp.outstanding_hwm = qp.outstanding
        qp.account(ncmds, total)
        self.read_bytes += total
        self._pf_read_bytes[pf.pf_id] += total
        self._pf_window_read[pf.pf_id] += total
        return max(flash_delay, dma_delay)

    def write(self, qp: NvmeQueuePair, nbytes: int, ncmds: int = 1) -> int:
        """``ncmds`` identical write commands posted as one batch: DMA
        from host buffers into flash, completion entries back."""
        self._check_cmd(nbytes, ncmds)
        pf = self._serving_pf(qp)
        total = ncmds * nbytes
        flash_delay = self.flash.account(total)
        dma_delay = pf.dma_read(qp.data, total)
        dma_delay = max(dma_delay, pf.dma_write(qp.ring, ncmds * CACHELINE))
        flow_trace = self.machine.tracer.active_flow
        if flow_trace is not None:
            dma_stage = None
            if self.machine.tracer.blame is not None:
                loc = "local" if pf.is_local_to(qp.node_id) else "qpi"
                dma_stage = f"dma.{loc}"
            # Mirror of read(): the DMA owns its full time, flash only the
            # residual it does not hide behind the transfer.
            flow_trace.step(f"{self.name}.{pf.name}", "dma.tx", dma_delay,
                            stage=dma_stage)
            flow_trace.step(f"{self.name}.flash", "flash.write", flash_delay,
                            {"cmds": ncmds, "bytes": total}, stage="flash",
                            blame_ns=max(0, flash_delay - dma_delay))
        qp.outstanding += ncmds
        if qp.outstanding > qp.outstanding_hwm:
            qp.outstanding_hwm = qp.outstanding
        qp.account(ncmds, total)
        self.write_bytes += total
        return max(flash_delay, dma_delay)

    # -------------------------------------------------------- accounting

    def pf_read_bytes(self, pf_id: int) -> int:
        return self._pf_read_bytes[pf_id]

    def reset_pf_windows(self) -> None:
        self._window_start = self.env.now
        for pf_id in self._pf_window_read:
            self._pf_window_read[pf_id] = 0

    def pf_window_read_gbps(self, pf_id: int) -> float:
        """Per-PF read throughput since the last window reset — what the
        octoSSD failover experiment samples every 50 ms."""
        elapsed = self.env.now - self._window_start
        if elapsed <= 0:
            return 0.0
        return self._pf_window_read[pf_id] * 8 / elapsed

    def __repr__(self) -> str:
        return (f"<NvmeController {self.name} ports={len(self.pfs)} "
                f"nodes={[pf.attach_node for pf in self.pfs]}>")
