"""NVMe controllers (§5.4).

A :class:`NvmeController` models a PM1725a-class SSD: an internal flash
pipeline (a bandwidth server) behind one or two PCIe PFs.  Dual-port
drives — the NVMe spec's multi-PF controllers — can attach one port per
socket, which is the "octoSSD" the paper leaves to future work; we build
both the standard single-port path and the octoSSD steering mode.
"""

from __future__ import annotations

from typing import List, Optional

from repro.memory.region import Region
from repro.pcie.fabric import PhysicalFunction
from repro.sim.resources import BandwidthServer
from repro.units import CACHELINE, KB

#: PM1725a-class sequential read bandwidth.
FLASH_BYTES_PER_SEC = 6.2e9
#: Flash read latency (device-internal, per command).
FLASH_READ_LATENCY_NS = 80_000


class NvmeQueuePair:
    """A submission/completion queue pair plus its data buffers."""

    def __init__(self, qp_id: int, core, machine):
        self.qp_id = qp_id
        self.core = core
        self.ring = machine.alloc_region(
            f"nvme-qp{qp_id}-ring", core.node_id, 1024 * CACHELINE)
        self.data = machine.alloc_region(
            f"nvme-qp{qp_id}-data", core.node_id, 8 * 1024 * KB)

    @property
    def node_id(self) -> int:
        return self.core.node_id


class NvmeController:
    """One NVMe SSD, possibly dual-port (one PF per socket)."""

    def __init__(self, machine, pfs: List[PhysicalFunction],
                 name: str = "nvme",
                 flash_bytes_per_sec: float = FLASH_BYTES_PER_SEC):
        if not pfs:
            raise ValueError("an NVMe controller needs at least one PF")
        self.machine = machine
        self.pfs = pfs
        self.name = name
        self.flash = BandwidthServer(machine.env, flash_bytes_per_sec,
                                     name=f"{name}.flash")
        for pf in pfs:
            pf.device = self
        self.read_bytes = 0
        self.write_bytes = 0

    @property
    def dual_port(self) -> bool:
        return len(self.pfs) > 1

    def pf_local_to(self, node: int) -> Optional[PhysicalFunction]:
        for pf in self.pfs:
            if pf.attach_node == node:
                return pf
        return None

    def pick_pf(self, node: int, octo_mode: bool) -> PhysicalFunction:
        """Standard mode always uses port 0; octoSSD mode uses the port
        local to the submitting core's node when one exists."""
        if octo_mode:
            local = self.pf_local_to(node)
            if local is not None:
                return local
        return self.pfs[0]

    def read(self, qp: NvmeQueuePair, nbytes: int,
             octo_mode: bool = False) -> int:
        """One read command: fetch from flash, DMA into the QP's buffers,
        write a completion.  Returns the device-side delay in ns."""
        if nbytes <= 0:
            raise ValueError(f"read size must be > 0, got {nbytes}")
        pf = self.pick_pf(qp.node_id, octo_mode)
        flash_delay = FLASH_READ_LATENCY_NS + self.flash.account(nbytes)
        dma_delay = pf.dma_write(qp.data, nbytes)
        dma_delay = max(dma_delay, pf.dma_write(qp.ring, CACHELINE))
        self.read_bytes += nbytes
        return max(flash_delay, dma_delay)

    def write(self, qp: NvmeQueuePair, nbytes: int,
              octo_mode: bool = False) -> int:
        """One write command: DMA from host buffers into flash."""
        if nbytes <= 0:
            raise ValueError(f"write size must be > 0, got {nbytes}")
        pf = self.pick_pf(qp.node_id, octo_mode)
        flash_delay = self.flash.account(nbytes)
        dma_delay = pf.dma_read(qp.data, nbytes)
        dma_delay = max(dma_delay, pf.dma_write(qp.ring, CACHELINE))
        self.write_bytes += nbytes
        return max(flash_delay, dma_delay)

    def __repr__(self) -> str:
        return (f"<NvmeController {self.name} ports={len(self.pfs)} "
                f"nodes={[pf.attach_node for pf in self.pfs]}>")
