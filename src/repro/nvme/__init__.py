"""NVMe models: controllers (dual-port capable) and the block driver."""

from repro.nvme.device import (
    FLASH_BYTES_PER_SEC,
    FLASH_READ_LATENCY_NS,
    NvmeController,
    NvmeQueuePair,
)
from repro.nvme.driver import NvmeDriver

__all__ = [
    "FLASH_BYTES_PER_SEC",
    "FLASH_READ_LATENCY_NS",
    "NvmeController",
    "NvmeDriver",
    "NvmeQueuePair",
]
