"""NVMe models: controllers (dual-port capable) and the block driver."""

from repro.nvme.device import (
    DEFAULT_QP_DATA_BYTES,
    FLASH_BYTES_PER_SEC,
    FLASH_READ_LATENCY_NS,
    NVME_RING_ENTRIES,
    NvmeController,
    NvmeQueuePair,
)
from repro.nvme.driver import NvmeDriver

__all__ = [
    "DEFAULT_QP_DATA_BYTES",
    "FLASH_BYTES_PER_SEC",
    "FLASH_READ_LATENCY_NS",
    "NVME_RING_ENTRIES",
    "NvmeController",
    "NvmeDriver",
    "NvmeQueuePair",
]
