"""NVMe block driver: per-core queue pairs and the submission path."""

from __future__ import annotations

from typing import Dict

from repro.nvme.device import NvmeController, NvmeQueuePair
from repro.topology.machine import Core, Machine
from repro.units import CACHELINE


class NvmeDriver:
    """Host-side NVMe driver for one controller.

    ``octo_mode=True`` applies the IOctopus principle to storage: commands
    are issued through (and data DMAed via) the port local to the
    submitting core's socket — the octoSSD of §5.4.
    """

    def __init__(self, machine: Machine, controller: NvmeController,
                 octo_mode: bool = False):
        if octo_mode and not controller.dual_port:
            raise ValueError("octo_mode needs a dual-port controller")
        self.machine = machine
        self.controller = controller
        self.octo_mode = octo_mode
        self._qps: Dict[int, NvmeQueuePair] = {}
        self._next_qp = 0

    def qp_for_core(self, core: Core) -> NvmeQueuePair:
        qp = self._qps.get(core.core_id)
        if qp is None:
            qp = NvmeQueuePair(self._next_qp, core, self.machine)
            self._next_qp += 1
            self._qps[core.core_id] = qp
        return qp

    def submit_read(self, core: Core, nbytes: int) -> tuple:
        """Issue one read; returns (cpu_ns, dev_ns)."""
        qp = self.qp_for_core(core)
        node = core.node_id
        memory = self.machine.memory
        pf = self.controller.pick_pf(node, self.octo_mode)
        cpu = self.machine.spec.software.fio_request_ns
        cpu += pf.mmio_latency(node)                      # SQ doorbell
        dev = self.controller.read(qp, nbytes, self.octo_mode)
        cpu += memory.read_fresh_dma_line(node, qp.ring)  # CQ entry
        return cpu, dev

    def submit_write(self, core: Core, nbytes: int) -> tuple:
        """Issue one write; returns (cpu_ns, dev_ns)."""
        qp = self.qp_for_core(core)
        node = core.node_id
        memory = self.machine.memory
        pf = self.controller.pick_pf(node, self.octo_mode)
        cpu = self.machine.spec.software.fio_request_ns
        cpu += pf.mmio_latency(node)
        dev = self.controller.write(qp, nbytes, self.octo_mode)
        cpu += memory.read_fresh_dma_line(node, qp.ring)
        return cpu, dev
