"""NVMe block driver: per-core queue pairs and the submission path.

The driver is the storage personality of the octo-device core: the
submission path rings doorbells through the shared
:class:`~repro.device.paths.DoorbellPath`, completions arrive as
moderated per-QP interrupts through the shared
:class:`~repro.device.paths.CompletionPath`, and ``octo_mode`` mixes in
the generic :class:`~repro.device.team.OctoTeam` so the dual-port
octoSSD gets the same PF failover (re-home to the surviving port, drain,
recover) the octoNIC has.
"""

from __future__ import annotations

from typing import Dict, List

from repro.device.driver import DeviceDriver
from repro.device.team import OctoTeam, ResteerPlan
from repro.nvme.device import (
    DEFAULT_QP_DATA_BYTES,
    NvmeController,
    NvmeQueuePair,
)
from repro.pcie.fabric import PhysicalFunction
from repro.topology.machine import Core, Machine


class NvmeDriver(OctoTeam, DeviceDriver):
    """Host-side NVMe driver for one controller.

    ``octo_mode=True`` applies the IOctopus principle to storage:
    commands are issued through (and data DMAed via) the port local to
    the submitting core's socket — the octoSSD of §5.4 — and the team
    fails over to the surviving port when one is hot-unplugged.
    ``octo_mode=False`` is the stock single-port discipline: every QP
    homes on port 0, and losing it means losing the blockdev until the
    port recovers.
    """

    name = "nvme-driver"
    team_label = "octoSSD"
    team_noun = "blockdev"

    def __init__(self, machine: Machine, controller: NvmeController,
                 octo_mode: bool = False, allow_degraded: bool = False,
                 qp_data_bytes: int = DEFAULT_QP_DATA_BYTES):
        if octo_mode and not controller.dual_port:
            raise ValueError("octo_mode needs a dual-port controller")
        DeviceDriver.__init__(self, machine, controller)
        self.octo_mode = octo_mode
        self.qp_data_bytes = qp_data_bytes
        self._qps: Dict[int, NvmeQueuePair] = {}
        self._next_qp = 0
        if octo_mode:
            self._init_team(machine, controller, allow_degraded)
            self._team_listen()
        else:
            self.failovers = 0
            self.recoveries = 0

    @property
    def controller(self) -> NvmeController:
        return self.device

    # ------------------------------------------------------- queue pairs

    def qp_for_core(self, core: Core) -> NvmeQueuePair:
        qp = self._qps.get(core.core_id)
        if qp is None:
            qp = NvmeQueuePair(self._next_qp, core, self.machine,
                               self._home_pf(core),
                               data_bytes=self.qp_data_bytes)
            self._next_qp += 1
            self._qps[core.core_id] = qp
        return qp

    def _home_pf(self, core: Core) -> PhysicalFunction:
        if self.octo_mode:
            return self._pf_for_core(core)
        return self.device.pfs[0]

    # -------------------------------------------------------- submission

    def _submit(self, core: Core, nbytes: int, op: str,
                ncmds: int = 1) -> tuple:
        """Issue ``ncmds`` identical commands as one submission batch;
        returns (cpu_ns, dev_ns).

        The CPU side is one SQ doorbell for the whole batch, a moderated
        completion interrupt, and one CQ-entry read per command (DDIO-hot
        when the serving PF is local, ~80 ns misses when it is not).
        """
        if ncmds < 1:
            raise ValueError(f"ncmds must be >= 1, got {ncmds}")
        qp = self.qp_for_core(core)
        node = core.node_id
        # One flow per submission batch: the doorbell/completion paths and
        # the controller contribute their steps while it is active.
        flow = self.machine.tracer.begin_flow(self.machine.now)
        prep = ncmds * self.machine.spec.software.fio_request_ns
        if flow is not None:
            flow.step(f"core{node}.app", f"nvme.{op}.submit", prep,
                      {"cmds": ncmds, "bytes": nbytes}, stage="stack")
        cpu = prep
        cpu += self.doorbell.ring(qp, node)
        if op == "read":
            dev = self.device.read(qp, nbytes, ncmds=ncmds)
        elif op == "write":
            dev = self.device.write(qp, nbytes, ncmds=ncmds)
        else:
            raise ValueError(f"unknown NVMe op {op!r}")
        cpu += self.completion.interrupt(qp, ncmds, 1, self.machine.now)
        cpu += self.completion.consume(qp, ncmds, node)
        qp.outstanding = max(0, qp.outstanding - ncmds)
        if flow is not None:
            flow.finish(f"core{node}.app", f"nvme.{op}.complete", 0,
                        {"cpu_ns": cpu, "dev_ns": dev})
            flow.seal(cpu + dev)
        return cpu, dev

    def submit_read(self, core: Core, nbytes: int, ncmds: int = 1) -> tuple:
        """Issue read commands; returns (cpu_ns, dev_ns)."""
        return self._submit(core, nbytes, "read", ncmds)

    def submit_write(self, core: Core, nbytes: int,
                     ncmds: int = 1) -> tuple:
        """Issue write commands; returns (cpu_ns, dev_ns)."""
        return self._submit(core, nbytes, "write", ncmds)

    # ------------------------------------------------- teaming personality

    def _team_queues(self) -> List[NvmeQueuePair]:
        return list(self._qps.values())

    # NVMe has no steering rule tables: re-homing the QPs *is* the whole
    # failover, so the deferred plans are no-ops (the drain still gates
    # the "applied" event and the failover/recovery counters).

    def _plan_failover_resteer(self, pf: PhysicalFunction,
                               fallback: PhysicalFunction) -> ResteerPlan:
        return (lambda: None), "resteer=none"

    def _plan_recovery_resteer(self, pf: PhysicalFunction,
                               drainable: List) -> ResteerPlan:
        return (lambda: None), "resteer=none"

    def _drain_delay_ns(self, queue: NvmeQueuePair) -> int:
        """Time until the QP's outstanding commands complete, plus the
        worker's update cost."""
        costs = self.machine.spec.software
        return (costs.steering_update_ns
                + queue.outstanding * costs.fio_request_ns)
