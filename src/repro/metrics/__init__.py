"""Measurement: throughput meters, latency recorders, time series."""

from repro.metrics.collect import (
    LatencyRecorder,
    ThroughputMeter,
    TimeSeries,
    format_table,
)

__all__ = [
    "LatencyRecorder",
    "ThroughputMeter",
    "TimeSeries",
    "format_table",
]
