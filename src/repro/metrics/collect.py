"""Measurement primitives: counters, time series, percentiles, reports."""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class ThroughputMeter:
    """Accumulates (bytes, messages) over a measurement window."""

    start_ns: int = 0
    bytes_total: int = 0
    messages_total: int = 0
    end_ns: Optional[int] = None

    def record(self, nbytes: int, nmessages: int = 1) -> None:
        self.bytes_total += nbytes
        self.messages_total += nmessages

    def finish(self, now_ns: int) -> None:
        self.end_ns = now_ns

    @property
    def elapsed_ns(self) -> int:
        if self.end_ns is None:
            raise ValueError("finish() not called")
        return max(1, self.end_ns - self.start_ns)

    def gbps(self) -> float:
        return self.bytes_total * 8 / self.elapsed_ns

    def mpps(self) -> float:
        return self.messages_total * 1e3 / self.elapsed_ns

    def ktps(self) -> float:
        """Kilo-transactions/sec (memcached's unit in Fig 10)."""
        return self.messages_total * 1e6 / self.elapsed_ns


class LatencyRecorder:
    """Collects latency samples; reports average and percentiles."""

    def __init__(self):
        self.samples: List[int] = []
        # Cached ascending view for percentile(); invalidated on record()
        # so repeated percentile reads sort at most once per new sample
        # batch instead of once per call.
        self._sorted: Optional[List[int]] = None

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency {latency_ns}")
        self.samples.append(latency_ns)
        self._sorted = None

    def __len__(self) -> int:
        return len(self.samples)

    def average(self) -> float:
        if not self.samples:
            raise ValueError("no samples recorded")
        return sum(self.samples) / len(self.samples)

    def percentile(self, p: float) -> int:
        """Nearest-rank percentile, p in [0, 100]."""
        if not self.samples:
            raise ValueError("no samples recorded")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        ordered = self._sorted
        if ordered is None:
            ordered = self._sorted = sorted(self.samples)
        rank = max(1, math.ceil(p / 100 * len(ordered)))
        return ordered[rank - 1]

    def min(self) -> int:
        if not self.samples:
            raise ValueError("no samples recorded")
        return min(self.samples)

    def max(self) -> int:
        if not self.samples:
            raise ValueError("no samples recorded")
        return max(self.samples)

    def merge(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """Fold another recorder's samples into this one.

        Percentiles over the merged recorder are *exactly* the
        percentiles of the concatenated sample sets — this is the
        reference the compact :class:`LatencyDigest` merge is tested
        against."""
        self.samples.extend(other.samples)
        self._sorted = None
        return self


#: Log-bucket resolution: buckets per octave (power of two).  16 per
#: octave bounds any bucket's relative width — and therefore any digest
#: percentile's relative error — to 2**(1/16) - 1 < 4.5%.
DIGEST_BUCKETS_PER_OCTAVE = 16

_DIGEST_GAMMA = 2.0 ** (1.0 / DIGEST_BUCKETS_PER_OCTAVE)
_DIGEST_LOG_GAMMA = math.log(_DIGEST_GAMMA)


class DigestError(ValueError):
    """A :class:`LatencyDigest` operation on unusable input (e.g.
    percentile of an empty digest)."""


class DigestMergeError(DigestError):
    """Merging digests whose bucket bases differ: bucket indices of one
    digest mean different latencies in the other, so adding counts
    would silently corrupt percentiles."""


class LatencyDigest:
    """Compact mergeable latency histogram (log-spaced buckets).

    Workers ship digests instead of raw samples: a digest is a sparse
    ``bucket index -> count`` map plus exact count/sum/min/max, so a
    million-sample tail costs a few hundred integers on the wire.
    Merging digests is bucket-count addition, which makes the merge
    associative and order-independent — the fleet's per-server shards
    combine into one view whose percentiles match the single-process
    percentiles to within one bucket's relative width
    (< ``2**(1/DIGEST_BUCKETS_PER_OCTAVE) - 1``, about 4.4%).
    """

    __slots__ = ("buckets", "count", "sum", "min", "max",
                 "buckets_per_octave", "_log_gamma")

    def __init__(self, buckets_per_octave: int = DIGEST_BUCKETS_PER_OCTAVE):
        if buckets_per_octave < 1:
            raise DigestError(
                f"buckets_per_octave must be >= 1, got {buckets_per_octave}")
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self.buckets_per_octave = buckets_per_octave
        self._log_gamma = (_DIGEST_LOG_GAMMA
                           if buckets_per_octave == DIGEST_BUCKETS_PER_OCTAVE
                           else math.log(2.0) / buckets_per_octave)

    @staticmethod
    def bucket_of(value_ns: int) -> int:
        """Index of the log bucket holding ``value_ns`` (0 and 1 ns share
        bucket 0) at the default resolution."""
        if value_ns <= 1:
            return 0
        return int(math.log(value_ns) / _DIGEST_LOG_GAMMA) + 1

    @staticmethod
    def bucket_value(index: int) -> int:
        """Representative latency of bucket ``index`` (geometric mean of
        its edges) at the default resolution, the value percentiles
        report."""
        if index <= 0:
            return 1
        return int(round(_DIGEST_GAMMA ** (index - 0.5)))

    def _bucket_of(self, value_ns: int) -> int:
        if value_ns <= 1:
            return 0
        return int(math.log(value_ns) / self._log_gamma) + 1

    def _bucket_value(self, index: int) -> int:
        if index <= 0:
            return 1
        return int(round(math.exp(self._log_gamma * (index - 0.5))))

    def record(self, latency_ns: int, n: int = 1) -> None:
        """Record ``latency_ns``; ``n > 1`` records it with weight ``n``
        (how adaptive/fluid packet trains apportion one coalesced
        measurement across the requests it represents)."""
        if latency_ns < 0:
            raise ValueError(f"negative latency {latency_ns}")
        if n < 1:
            raise ValueError(f"weight must be >= 1, got {n}")
        index = self._bucket_of(latency_ns)
        self.buckets[index] = self.buckets.get(index, 0) + n
        self.count += n
        self.sum += latency_ns * n
        if self.min is None or latency_ns < self.min:
            self.min = latency_ns
        if self.max is None or latency_ns > self.max:
            self.max = latency_ns

    def __len__(self) -> int:
        return self.count

    @classmethod
    def from_recorder(cls, recorder: LatencyRecorder) -> "LatencyDigest":
        digest = cls()
        for sample in recorder.samples:
            digest.record(sample)
        return digest

    def merge(self, other: "LatencyDigest") -> "LatencyDigest":
        """Fold ``other`` into this digest (bucket-count addition).

        Raises :class:`DigestMergeError` when the digests use different
        bucket bases — their indices are not comparable."""
        if other.buckets_per_octave != self.buckets_per_octave:
            raise DigestMergeError(
                f"cannot merge digests with different bucket bases: "
                f"{self.buckets_per_octave} vs "
                f"{other.buckets_per_octave} buckets/octave")
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.count += other.count
        self.sum += other.sum
        if other.min is not None:
            self.min = (other.min if self.min is None
                        else min(self.min, other.min))
        if other.max is not None:
            self.max = (other.max if self.max is None
                        else max(self.max, other.max))
        return self

    def average(self) -> float:
        if not self.count:
            raise ValueError("no samples recorded")
        return self.sum / self.count

    def percentile(self, p: float) -> int:
        """Nearest-rank percentile, p in [0, 100]; exact at the extremes
        (min/max are tracked exactly) and whenever every sample landed
        in one bucket (interpolated between the exact min and max
        instead of reporting the bucket's representative value, which
        could exceed both), within one bucket width elsewhere."""
        if not self.count:
            raise DigestError("no samples recorded")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        rank = max(1, math.ceil(p / 100 * self.count))
        if rank >= self.count:
            return self.max
        if rank <= 1:
            return self.min
        if len(self.buckets) == 1:
            # All mass in one bucket: min/max bound it exactly, so
            # interpolate by rank instead of answering the bucket's
            # geometric midpoint (which p50 of near-identical samples
            # used to overshoot).
            span = self.max - self.min
            return self.min + round(span * (rank - 1) / (self.count - 1))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return max(self.min, min(self.max,
                                         self._bucket_value(index)))
        return self.max  # unreachable: counts sum to self.count

    # ----------------------------------------------------- serialization

    def to_dict(self) -> Dict:
        """Plain-JSON form (sparse buckets keyed by str for JSON).  The
        bucket base rides along only when non-default, so existing
        serialized digests (and fingerprints over them) are unchanged."""
        data = {
            "buckets": {str(k): v
                        for k, v in sorted(self.buckets.items())},
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }
        if self.buckets_per_octave != DIGEST_BUCKETS_PER_OCTAVE:
            data["bpo"] = self.buckets_per_octave
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "LatencyDigest":
        digest = cls(int(data.get("bpo", DIGEST_BUCKETS_PER_OCTAVE)))
        digest.buckets = {int(k): int(v)
                          for k, v in data["buckets"].items()}
        digest.count = int(data["count"])
        digest.sum = int(data["sum"])
        digest.min = None if data["min"] is None else int(data["min"])
        digest.max = None if data["max"] is None else int(data["max"])
        if sum(digest.buckets.values()) != digest.count:
            raise DigestError("digest bucket counts do not sum to count")
        return digest


@dataclass
class TimeSeries:
    """(time, value) samples — e.g. Fig 14's per-PF throughput curves."""

    name: str
    times_ns: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def sample(self, time_ns: int, value: float) -> None:
        self.times_ns.append(time_ns)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def value_at(self, time_ns: int) -> float:
        """Value of the latest sample at or before ``time_ns``.

        Samples arrive in sim-time order, so ``times_ns`` is sorted and a
        bisect replaces the former linear scan.
        """
        i = bisect_right(self.times_ns, time_ns) - 1
        if i < 0:
            raise ValueError(f"no sample at or before {time_ns}")
        return self.values[i]

    def _slice(self, t_from: int, t_to: Optional[int]) -> List[float]:
        lo = bisect_left(self.times_ns, t_from)
        hi = (len(self.times_ns) if t_to is None
              else bisect_right(self.times_ns, t_to))
        picked = self.values[lo:hi]
        if not picked:
            raise ValueError("no samples in range")
        return picked

    def mean(self, t_from: int = 0, t_to: Optional[int] = None) -> float:
        picked = self._slice(t_from, t_to)
        return sum(picked) / len(picked)

    def min(self, t_from: int = 0, t_to: Optional[int] = None) -> float:
        """Smallest sample in [t_from, t_to] — e.g. a failover dip."""
        return min(self._slice(t_from, t_to))

    def max(self, t_from: int = 0, t_to: Optional[int] = None) -> float:
        return max(self._slice(t_from, t_to))


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Plain-text table in the style of the paper's figure captions."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([f"{v:.2f}" if isinstance(v, float) else str(v)
                      for v in row])
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(w)
                               for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
