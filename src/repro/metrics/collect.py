"""Measurement primitives: counters, time series, percentiles, reports."""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class ThroughputMeter:
    """Accumulates (bytes, messages) over a measurement window."""

    start_ns: int = 0
    bytes_total: int = 0
    messages_total: int = 0
    end_ns: Optional[int] = None

    def record(self, nbytes: int, nmessages: int = 1) -> None:
        self.bytes_total += nbytes
        self.messages_total += nmessages

    def finish(self, now_ns: int) -> None:
        self.end_ns = now_ns

    @property
    def elapsed_ns(self) -> int:
        if self.end_ns is None:
            raise ValueError("finish() not called")
        return max(1, self.end_ns - self.start_ns)

    def gbps(self) -> float:
        return self.bytes_total * 8 / self.elapsed_ns

    def mpps(self) -> float:
        return self.messages_total * 1e3 / self.elapsed_ns

    def ktps(self) -> float:
        """Kilo-transactions/sec (memcached's unit in Fig 10)."""
        return self.messages_total * 1e6 / self.elapsed_ns


class LatencyRecorder:
    """Collects latency samples; reports average and percentiles."""

    def __init__(self):
        self.samples: List[int] = []
        # Cached ascending view for percentile(); invalidated on record()
        # so repeated percentile reads sort at most once per new sample
        # batch instead of once per call.
        self._sorted: Optional[List[int]] = None

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency {latency_ns}")
        self.samples.append(latency_ns)
        self._sorted = None

    def __len__(self) -> int:
        return len(self.samples)

    def average(self) -> float:
        if not self.samples:
            raise ValueError("no samples recorded")
        return sum(self.samples) / len(self.samples)

    def percentile(self, p: float) -> int:
        """Nearest-rank percentile, p in [0, 100]."""
        if not self.samples:
            raise ValueError("no samples recorded")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        ordered = self._sorted
        if ordered is None:
            ordered = self._sorted = sorted(self.samples)
        rank = max(1, math.ceil(p / 100 * len(ordered)))
        return ordered[rank - 1]

    def min(self) -> int:
        if not self.samples:
            raise ValueError("no samples recorded")
        return min(self.samples)

    def max(self) -> int:
        if not self.samples:
            raise ValueError("no samples recorded")
        return max(self.samples)


@dataclass
class TimeSeries:
    """(time, value) samples — e.g. Fig 14's per-PF throughput curves."""

    name: str
    times_ns: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def sample(self, time_ns: int, value: float) -> None:
        self.times_ns.append(time_ns)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def value_at(self, time_ns: int) -> float:
        """Value of the latest sample at or before ``time_ns``.

        Samples arrive in sim-time order, so ``times_ns`` is sorted and a
        bisect replaces the former linear scan.
        """
        i = bisect_right(self.times_ns, time_ns) - 1
        if i < 0:
            raise ValueError(f"no sample at or before {time_ns}")
        return self.values[i]

    def _slice(self, t_from: int, t_to: Optional[int]) -> List[float]:
        lo = bisect_left(self.times_ns, t_from)
        hi = (len(self.times_ns) if t_to is None
              else bisect_right(self.times_ns, t_to))
        picked = self.values[lo:hi]
        if not picked:
            raise ValueError("no samples in range")
        return picked

    def mean(self, t_from: int = 0, t_to: Optional[int] = None) -> float:
        picked = self._slice(t_from, t_to)
        return sum(picked) / len(picked)

    def min(self, t_from: int = 0, t_to: Optional[int] = None) -> float:
        """Smallest sample in [t_from, t_to] — e.g. a failover dip."""
        return min(self._slice(t_from, t_to))

    def max(self, t_from: int = 0, t_to: Optional[int] = None) -> float:
        return max(self._slice(t_from, t_to))


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Plain-text table in the style of the paper's figure captions."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([f"{v:.2f}" if isinstance(v, float) else str(v)
                      for v in row])
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(w)
                               for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
