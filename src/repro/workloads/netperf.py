"""netperf: TCP_STREAM (Rx and Tx) and TCP_RR (§5.1).

``TcpStream`` is the single-core throughput benchmark: the process and all
OS networking activity (interrupts included) run on one core.  ``TcpRr``
is the request/response latency benchmark with interrupt coalescing
disabled, run across the testbed's two machines.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.collect import LatencyRecorder
from repro.nic.packet import Flow, packets_for
from repro.os_model.netstack import MSS
from repro.units import KB
from repro.workloads.base import Workload, measured_meter
from repro.workloads.train import make_governor

#: Default burst sizing: batch messages up to this many bytes per loop.
BURST_BYTES = 64 * KB


class TcpStream(Workload):
    """netperf TCP_STREAM, receive or transmit side on the server."""

    def __init__(self, host, core, flow: Flow, message_bytes: int,
                 direction: str, duration_ns: int, warmup_ns: int = 0,
                 driver=None):
        super().__init__(host, duration_ns, warmup_ns)
        if direction not in ("rx", "tx"):
            raise ValueError(f"direction must be 'rx' or 'tx', "
                             f"got {direction!r}")
        if message_bytes < 1:
            raise ValueError(f"message_bytes must be >= 1")
        self.core = core
        self.flow = flow
        self.message_bytes = message_bytes
        self.direction = direction
        self.driver = driver or host.driver
        self.meter = measured_meter(self)
        self.batch = max(1, BURST_BYTES // message_bytes)
        #: Packet-train coalescing state (drives the adaptive/fluid fast
        #: paths; idle in exact mode).  Tests read its counters.
        self.governor = make_governor(host.machine.env)
        self.thread = self._spawn(f"netperf-{direction}", self._body, core)

    def _body(self, thread):
        sock = self.host.stack.open_socket(
            thread, self.driver, self.flow,
            app_buffer_bytes=max(64 * KB, self.message_bytes))
        burst = (self.host.stack.rx_burst if self.direction == "rx"
                 else self.host.stack.tx_burst)
        if self.env.adaptive:
            yield from self._train_body(thread, sock, burst)
            return
        while not self.done():
            cpu, dev = burst(sock, self.batch, self.message_bytes)
            if self.in_measurement():
                self.meter.record(self.batch * self.message_bytes,
                                  self.batch)
            yield thread.overlap(cpu, dev)
        self.meter.finish(min(self.env.now, self.duration_ns))

    def _train_body(self, thread, sock, burst):
        """Adaptive fast path: K identical bursts per event while the
        socket's steady-state token holds (see NetworkStack.steady_token).
        The burst call scales every count by ``ntrains``, preserving the
        per-burst quantisation, so a train charges exactly what K
        individual bursts would."""
        governor = self.governor
        stack = self.host.stack
        burst_bytes = self.batch * self.message_bytes
        burst_packets = self.batch * packets_for(self.message_bytes, MSS)
        byte_cap = max(1, governor.max_train_bytes // burst_bytes)
        while not self.done():
            token = stack.steady_token(sock)
            rxq = sock.driver.rx_queue_for_core(thread.core)
            queue = rxq if self.direction == "rx" else sock.tx_queue
            cap = min(governor.max_bursts, byte_cap)
            if not governor.cross_ring_wraps:
                cap = min(cap, max(1, queue.descriptors_until_wrap()
                                   // burst_packets))
            cap = governor.clip_to_boundaries(cap, self.env.now,
                                              self.warmup_ns,
                                              self.duration_ns)
            k = governor.plan(token, cap)
            with governor.interval(k):
                cpu, dev = burst(sock, self.batch, self.message_bytes,
                                 ntrains=k)
            wall = max(cpu, dev)
            if self.in_measurement():
                # Progressive start/finish: bytes are recorded at train
                # start; align the meter's window to [first train start,
                # projected last train end] so an early-terminated run
                # reads a train-covered rate with no dead gap after
                # warmup.
                if self.meter.messages_total == 0:
                    self.meter.start_ns = self.env.now
                self.meter.record(k * burst_bytes, k * self.batch)
                self.meter.finish(min(self.env.now + wall,
                                      self.duration_ns))
            governor.observe(wall, k)
            yield thread.overlap(cpu, dev)
        self.meter.finish(min(self.env.now, self.duration_ns))

    def throughput_gbps(self) -> float:
        return self.meter.gbps()


class TcpRr(Workload):
    """netperf TCP_RR across the testbed: client <-> server round trips.

    The round-trip time is the sum of the four critical paths (client tx,
    server rx, server tx, client rx); the wire is charged once per
    direction.  Coalescing is disabled, as in §5.1.2.
    """

    def __init__(self, testbed, message_bytes: int, duration_ns: int,
                 warmup_ns: int = 0):
        super().__init__(testbed.client, duration_ns, warmup_ns)
        self.testbed = testbed
        self.message_bytes = message_bytes
        self.latencies = LatencyRecorder()

        server = testbed.server
        flow = Flow.make(1)

        # The server side of the connection is owned by an idle thread
        # pinned to the server's workload core; the client thread drives
        # the whole round trip.
        def server_body(thread):
            self._server_sock = server.stack.open_socket(
                thread, server.driver, flow.reversed(),
                app_buffer_bytes=max(64 * KB, message_bytes))
            if False:  # a generator that never runs again
                yield None

        self._server_thread = server.scheduler.spawn(
            "netperf-rr-server", server_body, core=testbed.server_core(0))

        self.thread = self._spawn("netperf-rr-client", self._client_body,
                                  testbed.client_core(0))

    def _client_body(self, thread):
        client = self.testbed.client
        server = self.testbed.server
        sock = client.stack.open_socket(
            thread, client.driver, Flow.make(1),
            app_buffer_bytes=max(64 * KB, self.message_bytes))
        msg = self.message_bytes
        while not self.done():
            rtt = client.stack.latency_tx(sock, msg)
            rtt += server.stack.latency_rx(self._server_sock, msg,
                                           charge_wire=False)
            rtt += server.stack.latency_tx(self._server_sock, msg)
            rtt += client.stack.latency_rx(sock, msg, charge_wire=False)
            if self.in_measurement():
                self.latencies.record(rtt)
            yield thread.sleep(rtt)

    def average_rtt_ns(self) -> float:
        return self.latencies.average()

    def p99_rtt_ns(self) -> int:
        return self.latencies.percentile(99)
