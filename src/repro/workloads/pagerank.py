"""GAP PageRank as the co-location victim (§5.2, Fig 13).

16 threads, 8 pinned to each CPU, scan a graph whose pages are spread
across both nodes — so half their traffic crosses the interconnect and is
slowed by whatever the co-located I/O workload does to the QPI and the
memory controllers.  The benchmark has a **fixed amount of work**; the
reported metric is completion time.
"""

from __future__ import annotations

from typing import List, Optional

from repro.units import MB
from repro.workloads.base import Workload

#: Bytes of graph each thread scans per iteration chunk.
CHUNK = 64 * 1024
#: Per-thread graph partition (half local, half remote).
PARTITION_BYTES = 192 * MB


class PageRank(Workload):
    """Fixed-work parallel PageRank; measures completion time."""

    def __init__(self, host, cores, work_bytes_per_thread: int,
                 duration_ns: int = 10_000_000_000):
        # duration_ns here is only a safety cap; PR finishes by work.
        super().__init__(host, duration_ns)
        if not cores:
            raise ValueError("need at least one core")
        self.work_bytes_per_thread = int(work_bytes_per_thread)
        self.completion_times: List[int] = []
        for i, core in enumerate(cores):
            self._spawn(f"pagerank-{i}", self._make_body(i), core)

    def _make_body(self, index: int):
        def body(thread):
            machine = self.host.machine
            costs = machine.spec.software
            node = thread.core.node_id
            other = 1 - node
            local_part = machine.alloc_region(
                f"pr-local-{index}", node, PARTITION_BYTES)
            remote_part = machine.alloc_region(
                f"pr-remote-{index}", other, PARTITION_BYTES)
            dram_local = machine.memory.drams[node]
            dram_remote = machine.memory.drams[other]
            dram_local.enter()
            dram_remote.enter()
            try:
                remaining = self.work_bytes_per_thread
                while remaining > 0 and not self.done():
                    # Streaming halves: local scores, remote neighbours.
                    half = CHUNK // 2
                    cpu = int(CHUNK * costs.pagerank_cpu_ns_per_byte)
                    stall = machine.memory.cpu_stream_read(
                        node, local_part, half)
                    stall += machine.memory.cpu_stream_read(
                        node, remote_part, half)
                    # PageRank's neighbour gathers are random: a fraction
                    # of lines are latency-bound demand misses that feel
                    # the full (congestion-inflated) fill latency.  This
                    # is what makes PR a NUMA-sensitive victim (§5.2).
                    random_lines = CHUNK // 64 // 8
                    local_fill = dram_local.loaded_miss_latency()
                    remote_fill = (dram_remote.loaded_miss_latency()
                                   + machine.interconnect
                                   .loaded_round_trip_ns(node, other))
                    latency_stall = (random_lines // 2) * (local_fill
                                                           + remote_fill)
                    dram_remote.read(random_lines * 32)
                    dram_local.read(random_lines * 32)
                    remaining -= CHUNK
                    yield thread.compute(max(cpu, stall) + latency_stall)
            finally:
                dram_local.leave()
                dram_remote.leave()
            self.completion_times.append(self.env.now)
        return body

    def finished(self) -> bool:
        return len(self.completion_times) == len(self.threads)

    def runtime_ns(self) -> int:
        """Completion time of the slowest thread (the job's runtime)."""
        if not self.finished():
            raise ValueError("PageRank has not finished")
        return max(self.completion_times)
