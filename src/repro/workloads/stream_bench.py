"""STREAM antagonists (§5.2): interconnect and memory-bandwidth load.

A :class:`StreamPair` is one reader + one writer thread, each targeting
memory **remote** to its CPU, exactly as the paper loads the QPI.  Arrays
are far larger than the LLC so every access streams from DRAM across the
interconnect; writers use non-temporal stores like the real STREAM.
"""

from __future__ import annotations

from repro.units import KB, MB
from repro.workloads.base import Workload, measured_meter

#: Bytes each loop iteration moves (small chunks so interconnect sharing
#: is fine-grained, like real flit-interleaved QPI traffic).
CHUNK = 4 * KB
#: STREAM working-set array size (>> LLC).
ARRAY_BYTES = 256 * MB


class StreamThread(Workload):
    """One STREAM kernel thread (read or write) targeting a remote node."""

    def __init__(self, host, core, target_node: int, kind: str,
                 duration_ns: int, warmup_ns: int = 0):
        super().__init__(host, duration_ns, warmup_ns)
        if kind not in ("read", "write"):
            raise ValueError(f"kind must be 'read' or 'write', got {kind!r}")
        self.kind = kind
        self.target_node = target_node
        self.meter = measured_meter(self)
        self.core = core
        self.thread = self._spawn(f"stream-{kind}", self._body, core)

    def _body(self, thread):
        machine = self.host.machine
        costs = machine.spec.software
        node = thread.core.node_id
        array = machine.alloc_region(
            f"stream-{self.kind}-{thread.core.core_id}", self.target_node,
            ARRAY_BYTES, non_temporal=(self.kind == "write"))
        dram = machine.memory.drams[self.target_node]
        dram.enter()  # long-running bandwidth consumer
        try:
            while not self.done():
                base = int(CHUNK * costs.stream_cpu_ns_per_byte)
                if self.kind == "read":
                    stall = machine.memory.cpu_stream_read(node, array,
                                                           CHUNK)
                else:
                    stall = machine.memory.cpu_stream_write(node, array,
                                                            CHUNK)
                if self.in_measurement():
                    self.meter.record(CHUNK)
                yield thread.compute(max(base, stall))
        finally:
            dram.leave()
        self.meter.finish(min(self.env.now, self.duration_ns))

    def bandwidth_gbps(self) -> float:
        return self.meter.gbps()


class StreamPair:
    """A reader + writer pair, both remote-targeted (§5.2 setup)."""

    def __init__(self, host, read_core, write_core, duration_ns: int,
                 warmup_ns: int = 0):
        read_target = 1 - read_core.node_id
        write_target = 1 - write_core.node_id
        self.reader = StreamThread(host, read_core, read_target, "read",
                                   duration_ns, warmup_ns)
        self.writer = StreamThread(host, write_core, write_target, "write",
                                   duration_ns, warmup_ns)

    def bandwidth_gbps(self) -> float:
        return self.reader.bandwidth_gbps() + self.writer.bandwidth_gbps()


def spawn_stream_pairs(host, n_pairs: int, duration_ns: int,
                       warmup_ns: int = 0, skip_cores=()):
    """Place ``n_pairs`` pairs on free cores, alternating sockets so both
    interconnect directions are loaded (the paper occupies "the other
    server cores" with pairs)."""
    skip_ids = {c.core_id for c in skip_cores}
    free = [c for c in host.scheduler.free_cores()
            if c.core_id not in skip_ids]
    needed = 2 * n_pairs
    if len(free) < needed:
        raise RuntimeError(f"need {needed} free cores, have {len(free)}")
    # Both members of a pair sit on the SAME socket: the reader pulls
    # remote data one way, the writer pushes the other way, so every pair
    # loads both interconnect directions.  Pairs alternate sockets.
    node0 = [c for c in free if c.node_id == 0]
    node1 = [c for c in free if c.node_id == 1]
    pairs = []
    for i in range(n_pairs):
        preferred = node0 if i % 2 == 0 else node1
        fallback = node1 if i % 2 == 0 else node0
        source = preferred if len(preferred) >= 2 else fallback
        if len(source) < 2:
            source = preferred + fallback  # last resort: split the pair
        read_core, write_core = source.pop(0), source.pop(0)
        for pool in (node0, node1):
            for core in (read_core, write_core):
                if core in pool:
                    pool.remove(core)
        pairs.append(StreamPair(host, read_core, write_core, duration_ns,
                                warmup_ns))
    return pairs
