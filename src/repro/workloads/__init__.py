"""Workload models: the benchmarks the paper evaluates with."""

from repro.workloads.base import Workload
from repro.workloads.fio import BLOCK_BYTES, IODEPTH, FioReader, spawn_fio_fleet
from repro.workloads.memcached import (
    CLIENT_INSTANCES,
    KEY_BYTES,
    VALUE_BYTES,
    MemcachedServer,
)
from repro.workloads.netperf import TcpRr, TcpStream
from repro.workloads.pagerank import PageRank
from repro.workloads.pktgen import Pktgen
from repro.workloads.sockperf import UdpPingPong
from repro.workloads.stream_bench import (
    StreamPair,
    StreamThread,
    spawn_stream_pairs,
)

__all__ = [
    "BLOCK_BYTES",
    "CLIENT_INSTANCES",
    "FioReader",
    "IODEPTH",
    "KEY_BYTES",
    "MemcachedServer",
    "PageRank",
    "Pktgen",
    "StreamPair",
    "StreamThread",
    "TcpRr",
    "TcpStream",
    "UdpPingPong",
    "VALUE_BYTES",
    "Workload",
    "spawn_fio_fleet",
    "spawn_stream_pairs",
]
