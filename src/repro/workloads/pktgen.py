"""pktgen: the in-kernel packet generator (§5.1.1, Fig 8).

pktgen repeatedly transmits the *same* packet without touching its data,
so the per-packet cost is dominated by descriptor/doorbell work plus the
completion-entry read — an LLC hit with a local PF (DDIO), a ~80 ns DRAM
miss with a remote one.  That single miss is the paper's entire 4.1 vs
3.08 Mpps story, and it emerges here from the memory system.
"""

from __future__ import annotations

from repro.nic.packet import Flow
from repro.workloads.base import Workload, measured_meter
from repro.workloads.train import make_governor

#: pktgen posts descriptors in bursts of this many packets.
BURST_PKTS = 64


class Pktgen(Workload):
    """Single-core pktgen transmit loop."""

    def __init__(self, host, core, packet_bytes: int, duration_ns: int,
                 warmup_ns: int = 0, driver=None,
                 ring_home_node: int = None):
        super().__init__(host, duration_ns, warmup_ns)
        if packet_bytes < 20:
            raise ValueError(f"packet too small: {packet_bytes}")
        self.core = core
        self.packet_bytes = packet_bytes
        self.driver = driver or host.driver
        self.meter = measured_meter(self)
        self._ring_home_node = ring_home_node
        #: Packet-train coalescing state (drives the adaptive/fluid fast
        #: paths; idle in exact mode).  Tests read its counters.
        self.governor = make_governor(host.machine.env)
        self.thread = self._spawn("pktgen", self._body, core)

    def _body(self, thread):
        machine = self.host.machine
        costs = machine.spec.software
        txq = self.driver.tx_queue_for_core(thread.core)
        if self._ring_home_node is not None:
            # §2.4 experiment: place the completion ring on a chosen node
            # (e.g. local to the NIC, remote to the CPU) to probe whether
            # remote DDIO-like placement helps.
            txq.ring = machine.alloc_region(
                "pktgen-ring", self._ring_home_node, txq.ring.size)
        node = thread.core.node_id
        device = self.driver.device

        # pktgen transmits the SAME packet over and over: a tiny buffer
        # that stays pinned in the LLC (and is never touched per send).
        packet = machine.alloc_region("pktgen-pkt", node,
                                      self.packet_bytes)
        machine.memory.cpu_stream_write(node, packet, self.packet_bytes)

        if self.env.adaptive:
            yield from self._train_body(thread, machine, costs, txq, node,
                                        device, packet)
            return

        while not self.done():
            bflow = machine.tracer.begin_blame(self.env.now)
            stack = BURST_PKTS * costs.pktgen_pkt_ns
            door = txq.pf.mmio_latency(node)  # doorbell per burst
            cpu = stack + door
            dev = device.tx(txq, packet, BURST_PKTS, self.packet_bytes,
                            ndesc=BURST_PKTS)
            cq = BURST_PKTS * machine.memory.read_fresh_dma_line(
                node, txq.ring)
            cpu += cq
            if bflow is not None:
                self._charge_burst(bflow, machine, txq, node, stack, door,
                                   cq, cpu + dev, 1)
            if self.in_measurement():
                self.meter.record(BURST_PKTS * self.packet_bytes,
                                  BURST_PKTS)
            yield thread.overlap(cpu, dev)
        self.meter.finish(min(self.env.now, self.duration_ns))

    @staticmethod
    def _charge_burst(bflow, machine, txq, node, stack, door, cq, total,
                      represented):
        """Blame charges for one pktgen burst (or K-burst train): loop
        CPU work, the doorbell MMIO, and the completion-entry reads; the
        device DMA/wire stages were charged inside ``device.tx``."""
        bflow.charge("stack", stack)
        loc = "local" if txq.pf.is_local_to(node) else "qpi"
        bflow.charge(f"doorbell.{loc}", door)
        tag = machine.memory.dma_read_class(node, txq.ring)
        bflow.charge("cq.hit" if tag == "ddio_hit" else "cq.miss", cq)
        bflow.seal(total, represented=represented)

    def _train_body(self, thread, machine, costs, txq, node, device, packet):
        """Adaptive fast path: coalesce K identical bursts per event.

        Every cost below is the exact per-burst charge scaled by K (the
        model layer is closed-form in the packet count), so the train is
        numerically the sum of K exact bursts; only the event count —
        and the doorbell/propagation amortisation the paper's drivers
        also batch away — changes.
        """
        governor = self.governor
        wire = device.wire
        byte_cap = max(1, governor.max_train_bytes
                       // (BURST_PKTS * self.packet_bytes))
        while not self.done():
            token = (thread.core, txq, txq.pf, txq.pf.alive,
                     device.firmware.steering_epoch(),
                     wire.is_impaired if wire is not None else False)
            cap = min(governor.max_bursts, byte_cap)
            if not governor.cross_ring_wraps:
                cap = min(cap, max(1, txq.descriptors_until_wrap()
                                   // BURST_PKTS))
            cap = governor.clip_to_boundaries(cap, self.env.now,
                                              self.warmup_ns,
                                              self.duration_ns)
            k = governor.plan(token, cap)
            pkts = k * BURST_PKTS
            bflow = machine.tracer.begin_blame(self.env.now)
            with governor.interval(k):
                stack = pkts * costs.pktgen_pkt_ns
                door = k * txq.pf.mmio_latency(node)
                cpu = stack + door
                dev = device.tx(txq, packet, pkts, self.packet_bytes,
                                ndesc=pkts, nbursts=k)
                cq = pkts * machine.memory.read_fresh_dma_line(
                    node, txq.ring)
                cpu += cq
            if bflow is not None:
                self._charge_burst(bflow, machine, txq, node, stack, door,
                                   cq, cpu + dev, k)
            wall = max(cpu, dev)
            if self.in_measurement():
                # Progressive start/finish: the train's bytes are
                # recorded at its *start*, so align the meter's window
                # to [first train start, projected last train end] — the
                # convergence loop may stop the run mid-train, and the
                # first post-warmup train may start a little after
                # warmup.
                if self.meter.messages_total == 0:
                    self.meter.start_ns = self.env.now
                self.meter.record(pkts * self.packet_bytes, pkts)
                self.meter.finish(min(self.env.now + wall,
                                      self.duration_ns))
            governor.observe(wall, k)
            yield thread.overlap(cpu, dev)
        self.meter.finish(min(self.env.now, self.duration_ns))

    def throughput_gbps(self) -> float:
        return self.meter.gbps()

    def mpps(self) -> float:
        return self.meter.mpps()
