"""fio: asynchronous direct reads against NVMe SSDs (§5.4, Fig 15).

8 threads, each continuously keeping 32 asynchronous 128 KB read requests
outstanding against an SSD remote from their CPU — direct I/O, so every
byte is DMA-written across the interconnect into the threads' node.
"""

from __future__ import annotations

from typing import List

from repro.nvme.driver import NvmeDriver
from repro.sim.errors import RetriesExhausted
from repro.units import KB
from repro.workloads.base import Workload, measured_meter

BLOCK_BYTES = 128 * KB
IODEPTH = 32


class FioReader(Workload):
    """One fio job: async direct reads at a fixed iodepth."""

    def __init__(self, host, core, driver: NvmeDriver, duration_ns: int,
                 warmup_ns: int = 0, block_bytes: int = BLOCK_BYTES,
                 iodepth: int = IODEPTH):
        super().__init__(host, duration_ns, warmup_ns)
        self.driver = driver
        self.block_bytes = block_bytes
        self.iodepth = iodepth
        self.meter = measured_meter(self)
        #: Abandoned-submission messages (port gone past the retry budget).
        self.errors: List[str] = []
        self.thread = self._spawn("fio", self._body, core)

    def _body(self, thread):
        # Steady state with iodepth N: the thread always has N requests in
        # flight; each loop submits one batch of N and waits for the
        # batch, which keeps the device pipeline full while CPU cost stays
        # per request.  A hot-unplugged port raises DeviceGoneError inside
        # the submission; the retry discipline backs off until the team
        # fails over (octoSSD) or the retry budget runs out (single-port).
        while not self.done():
            try:
                cpu, dev = yield from self.driver.call_with_retry(
                    lambda: self.driver.submit_read(
                        thread.core, self.block_bytes,
                        ncmds=self.iodepth))
            except RetriesExhausted as error:
                self.errors.append(str(error))
                break
            if self.in_measurement():
                self.meter.record(self.iodepth * self.block_bytes,
                                  self.iodepth)
            yield thread.overlap(cpu, dev)
        self.meter.finish(min(self.env.now, self.duration_ns))

    def throughput_gbps(self) -> float:
        return self.meter.gbps()


def spawn_fio_fleet(host, cores, drivers: List[NvmeDriver],
                    duration_ns: int, warmup_ns: int = 0) -> List[FioReader]:
    """The paper's job layout: threads spread round-robin over the SSDs."""
    if not drivers:
        raise ValueError("need at least one NVMe driver")
    return [FioReader(host, core, drivers[i % len(drivers)], duration_ns,
                      warmup_ns)
            for i, core in enumerate(cores)]
