"""Common workload machinery."""

from __future__ import annotations

from typing import Optional

from repro.metrics.collect import ThroughputMeter
from repro.os_model.thread import SimThread


class Workload:
    """Base class: a workload spawns one or more threads on a Host."""

    def __init__(self, host, duration_ns: int, warmup_ns: int = 0):
        if duration_ns <= warmup_ns:
            raise ValueError(
                f"duration {duration_ns} must exceed warmup {warmup_ns}")
        self.host = host
        self.duration_ns = int(duration_ns)
        self.warmup_ns = int(warmup_ns)
        self.threads: list = []

    @property
    def env(self):
        return self.host.machine.env

    def in_measurement(self) -> bool:
        return self.warmup_ns <= self.env.now < self.duration_ns

    def done(self) -> bool:
        return self.env.now >= self.duration_ns

    def _spawn(self, name: str, body, core) -> SimThread:
        thread = self.host.scheduler.spawn(name, body, core=core)
        self.threads.append(thread)
        return thread


def measured_meter(workload: Workload) -> ThroughputMeter:
    """A throughput meter covering the post-warmup window."""
    return ThroughputMeter(start_ns=workload.warmup_ns)
