"""sockperf: UDP ping-pong latency (§5.2, Fig 12).

64-byte UDP messages bounce between client and server while antagonists
load the interconnect; the remote configuration's round trip crosses the
loaded QPI on every DMA and so inflates with congestion.
"""

from __future__ import annotations

from repro.metrics.collect import LatencyRecorder
from repro.nic.packet import Flow
from repro.units import KB
from repro.workloads.base import Workload


class UdpPingPong(Workload):
    """sockperf ping-pong between the testbed's client and server."""

    def __init__(self, testbed, message_bytes: int, duration_ns: int,
                 warmup_ns: int = 0):
        super().__init__(testbed.client, duration_ns, warmup_ns)
        self.testbed = testbed
        self.message_bytes = message_bytes
        self.latencies = LatencyRecorder()

        server = testbed.server
        flow = Flow.make(2, protocol="udp")

        def server_body(thread):
            self._server_sock = server.stack.open_socket(
                thread, server.driver, flow.reversed(),
                app_buffer_bytes=4 * KB)
            if False:
                yield None

        self._server_thread = server.scheduler.spawn(
            "sockperf-server", server_body, core=testbed.server_core(0))
        self.thread = self._spawn("sockperf-client", self._client_body,
                                  testbed.client_core(0))

    def _client_body(self, thread):
        client = self.testbed.client
        server = self.testbed.server
        sock = client.stack.open_socket(
            thread, client.driver, Flow.make(2, protocol="udp"),
            app_buffer_bytes=4 * KB)
        msg = self.message_bytes
        while not self.done():
            rtt = client.stack.latency_tx(sock, msg, udp=True)
            rtt += server.stack.latency_rx(self._server_sock, msg,
                                           charge_wire=False)
            rtt += server.stack.latency_tx(self._server_sock, msg, udp=True)
            rtt += client.stack.latency_rx(sock, msg, charge_wire=False)
            if self.in_measurement():
                self.latencies.record(rtt)
            yield thread.sleep(rtt)

    def average_rtt_ns(self) -> float:
        return self.latencies.average()

    def average_one_way_us(self) -> float:
        """sockperf reports one-way latency (RTT/2) in microseconds."""
        return self.latencies.average() / 2 / 1000.0
