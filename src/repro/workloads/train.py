"""Packet-train coalescing for steady-state flows (adaptive accuracy).

A workload loop in ``exact`` mode yields one event per burst: every burst
re-walks wire -> NIC ring -> DMA/LLC -> netstack even when nothing about
the flow is changing.  In ``adaptive`` mode the :class:`TrainGovernor`
watches a *steady-state token* — a fingerprint of every decision a burst
depends on (core, queues, serving PF and its liveness, the firmware
steering epoch, interrupt-moderation budget, wire impairment) — and,
while the token holds and the per-burst wall time is stable, lets the
workload coalesce K back-to-back bursts into a single *train* event.

The model layer is already closed-form in the batch size (every
``*_burst``/``tx``/``rx_deliver`` call takes an ``npackets``/``nmessages``
count and the bandwidth/DRAM/interconnect servers are linear in bytes),
so a train is simply the same calls with K-scaled counts: it charges the
same aggregate wire bandwidth, PCIe TLP routing, DDIO/LLC allocation and
ring/descriptor accounting the K individual bursts would have, while the
event kernel dispatches one event instead of K.

De-coalescing is automatic: any token change (ARFS migration, PF
failover, impairment episode, moderation budget shift, etc.) resets the
train length to one burst, and per-train caps keep a single train from
crossing a queue wrap, overrunning the DDIO slice, or spanning a
measurement boundary.

``fluid`` accuracy extends trains to whole *steady intervals* via
:class:`FluidGovernor`: once settled, the train length jumps straight to
the cap (no geometric ramp), the per-train byte budget is lifted (the
memory layer charges DDIO absorption per burst in closed form, so a
giant interval cannot spill where exact would not — see
``MemorySystem.dma_write(nbursts=)``), intervals may span ring wraps
(the exact model attaches no cost to a wrap; doorbells, completions and
interrupts stay per-burst), and the wall cap scales with the measurement
window instead of a fixed 250 us.  The steady token is additionally
extended with the environment-wide rate epoch through the
:class:`~repro.sim.fluid.FluidRegion` coordinator, so *any*
``BandwidthServer.set_rate`` (fault throttle, link retraining) ends
every in-flight steady interval at its next planning point.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Optional

from repro.sim.fluid import FluidRegion, fluid_region

#: Hard cap on bursts per train (grows geometrically 2, 4, ... up to this).
MAX_TRAIN_BURSTS = 32
#: Hard cap on a single train's wall time.  This bounds both the latency
#: of reacting to an injected fault (a fault lands mid-train at most this
#: late) and the record-ahead quantisation of the throughput meters.
MAX_TRAIN_WALL_NS = 250_000
#: Hard cap on a single train's payload bytes (kept below the ~3.5 MB
#: DDIO LLC slice; see MemorySystem.ddio_slice_bytes).
MAX_TRAIN_BYTES = 2 * 1024 * 1024
#: Consecutive stable per-burst wall observations required before a train
#: may grow.
SETTLE_OBSERVATIONS = 2
#: Relative tolerance for "the per-burst wall time is stable".
STABLE_REL_TOL = 0.02

#: Fluid tier: hard safety cap on bursts per steady interval (the real
#: bind is the window-scaled wall cap from FluidRegion.wall_cap_ns).
FLUID_MAX_TRAIN_BURSTS = 4096
#: Fluid tier: only flows whose per-burst wall time is below this are
#: coalesced into steady intervals.  A burst within a few RateEstimator
#: sampling buckets (20 us each) blends into the rolling utilization
#: estimate much like its average rate would, so replacing a run of
#: such bursts with a closed-form steady interval is faithful — while
#: coalescing much coarser bursts (e.g. a 300 us memcached
#: transaction) erases burst-phase contention the exact schedule
#: really exhibits, for little event savings (the events are already
#: coarse, so per-event overhead is not what limits those runs).
FLUID_COALESCE_WALL_NS = 100_000
#: Fluid tier: per-interval byte budget.  Far above the DDIO slice on
#: purpose — the batched memory path preserves per-burst absorption, so
#: the 2 MB adaptive cap is unnecessary; this only bounds integer sizes.
FLUID_MAX_TRAIN_BYTES = 256 * 1024 * 1024


class TrainGovernor:
    """Decides how many back-to-back bursts the next event may coalesce.

    Protocol, once per workload loop iteration::

        k = governor.plan(token, cap)   # bursts to coalesce now
        ... run the k-burst train through the model layer ...
        governor.observe(wall_ns, k)    # feed back the train's wall time

    ``plan`` returns 1 until the token has been steady and the observed
    per-burst wall time stable for :data:`SETTLE_OBSERVATIONS` rounds,
    then grows the train geometrically up to ``min(cap, max_bursts)``.
    Any token change de-coalesces (K returns to 1 immediately).
    """

    def __init__(self, max_bursts: int = MAX_TRAIN_BURSTS,
                 settle: int = SETTLE_OBSERVATIONS,
                 rel_tol: float = STABLE_REL_TOL):
        if max_bursts < 1:
            raise ValueError(f"max_bursts must be >= 1, got {max_bursts}")
        self.max_bursts = max_bursts
        self.settle = settle
        self.rel_tol = rel_tol
        #: Per-train byte budget the workload divides by its burst size.
        self.max_train_bytes = MAX_TRAIN_BYTES
        #: Whether a train may span descriptor-ring wraps.
        self.cross_ring_wraps = False
        self._token = None
        self._streak = 0
        self._next_k = 1
        self._per_burst_wall: Optional[float] = None
        # -- counters (tests and the perf harness read these) --
        self.trains = 0
        self.coalesced_bursts = 0
        self.decoalesce_events = 0
        self.max_bursts_seen = 1

    # ------------------------------------------------------------- query

    @property
    def per_burst_wall_ns(self) -> Optional[float]:
        """Latest observed wall time per burst (None before the first
        observation or right after a de-coalesce)."""
        return self._per_burst_wall

    # ----------------------------------------------------------- protocol

    def plan(self, token, cap: Optional[int] = None) -> int:
        """Bursts the next train may coalesce under ``token``.

        ``cap`` is the caller's per-train ceiling for *this* iteration
        (ring wrap, byte budget, boundary clipping); it limits the train
        without resetting the learned steady state.
        """
        if token != self._token:
            if self._token is not None:
                self.decoalesce_events += 1
            self._token = token
            self._streak = 0
            self._next_k = 1
            self._per_burst_wall = None
        k = self._next_k if self._streak >= self.settle else 1
        if cap is not None and k > cap:
            k = cap if cap >= 1 else 1
        self.trains += 1
        self.coalesced_bursts += k
        if k > self.max_bursts_seen:
            self.max_bursts_seen = k
        return k

    def observe(self, wall_ns: int, k: int) -> None:
        """Feed back the wall time of the train ``plan`` sized as ``k``."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        per_burst = wall_ns / k
        previous = self._per_burst_wall
        self._per_burst_wall = per_burst
        if (previous is None
                or abs(per_burst - previous) > self.rel_tol * previous):
            # Unstable (or first look at this token): hold at one burst.
            self._streak = 0
            self._next_k = 1
            return
        self._streak += 1
        if self._streak >= self.settle:
            self._next_k = self._grown_k()

    def _grown_k(self) -> int:
        """Next train length once steady: geometric ramp (adaptive)."""
        return min(self._next_k * 2, self.max_bursts)

    def interval(self, k: int):
        """Context manager wrapping the charges of a k-burst train.

        The adaptive tier charges trains at an instant (they are capped
        at 250 us of wall time, small enough that the transient is in
        the noise), so this is a no-op; :class:`FluidGovernor` overrides
        it to publish the interval's span to the environment."""
        return nullcontext()

    # ------------------------------------------------------------ helpers

    def clip_to_boundaries(self, cap: int, now_ns: int, warmup_ns: int,
                           duration_ns: int) -> int:
        """Tighten ``cap`` so the projected train does not cross the
        warmup or duration boundary, nor the governor's wall cap
        (:data:`MAX_TRAIN_WALL_NS`, or window-scaled for fluid).

        Uses the learned per-burst wall estimate; before any observation
        the train is one burst anyway, so no clipping is needed.
        """
        estimate = self._per_burst_wall
        if not estimate or estimate <= 0:
            return cap
        wall_cap = self._wall_cap_ns(warmup_ns, duration_ns)
        cap = min(cap, max(1, int(wall_cap / estimate)))
        for boundary in (warmup_ns, duration_ns):
            if now_ns < boundary:
                cap = min(cap, max(1, int((boundary - now_ns) / estimate)))
                break
        return cap

    def _wall_cap_ns(self, warmup_ns: int, duration_ns: int) -> int:
        """Longest wall time one train may cover."""
        return MAX_TRAIN_WALL_NS


class FluidGovernor(TrainGovernor):
    """Steady-interval planner for ``fluid`` accuracy.

    Same protocol as :class:`TrainGovernor`, with four policy changes:

    * the steady token is extended with the environment-wide rate epoch
      (via :class:`~repro.sim.fluid.FluidRegion`), so any
      ``BandwidthServer.set_rate`` de-coalesces every fluid flow;
    * once the per-burst wall has settled, the interval length jumps
      straight to the cap instead of ramping geometrically;
    * intervals may span ring wraps and carry up to
      :data:`FLUID_MAX_TRAIN_BYTES` (per-burst DDIO/PCIe charging in the
      model layer keeps giant intervals faithful);
    * the wall cap is ``1/8`` of the measurement window, bounded by an
      absolute ceiling (:meth:`FluidRegion.wall_cap_ns`), instead of a
      fixed 250 us, so convergence sampling and fault-observation lag
      stay bounded relative to the run.
    """

    def __init__(self, region: FluidRegion,
                 max_bursts: int = FLUID_MAX_TRAIN_BURSTS,
                 settle: int = SETTLE_OBSERVATIONS,
                 rel_tol: float = STABLE_REL_TOL):
        super().__init__(max_bursts=max_bursts, settle=settle,
                         rel_tol=rel_tol)
        self.region = region
        self.max_train_bytes = FLUID_MAX_TRAIN_BYTES
        self.cross_ring_wraps = True
        region.register()

    def plan(self, token, cap: Optional[int] = None) -> int:
        before = self.decoalesce_events
        k = super().plan(self.region.token(token), cap)
        if self.decoalesce_events > before:
            self.region.invalidated()
        if k > 1:
            self.region.grant(k)
        return k

    def _grown_k(self) -> int:
        """Closed-form service needs no ramp: jump straight to the cap
        (plan() still clips per iteration) — but only for fine-grained
        flows (see :data:`FLUID_COALESCE_WALL_NS`)."""
        if (self._per_burst_wall is not None
                and self._per_burst_wall > FLUID_COALESCE_WALL_NS):
            return 1
        return self.max_bursts

    def interval(self, k: int):
        """Publish the steady interval's projected wall span while its
        charges land, so rate estimators register the interval's bytes
        as an average-rate reservation over the span instead of a
        lump-sum bucket deposit — without this, a coalesced interval
        shows *concurrent* flows a utilisation spike that exact
        execution never exhibits.  (Queue backlog is *not* spread: see
        :meth:`FluidRegion.interval`.)

        Singles keep exact charging: a k=1 burst lands within one
        estimator bucket anyway, so spreading it would only perturb the
        phase statistics it already matches."""
        estimate = self._per_burst_wall
        if k <= 1 or not estimate:
            return nullcontext()
        return self.region.interval(int(k * estimate), flow_id=id(self))

    def _wall_cap_ns(self, warmup_ns: int, duration_ns: int) -> int:
        return self.region.wall_cap_ns(warmup_ns, duration_ns)


def make_governor(env) -> TrainGovernor:
    """The per-flow governor matching the environment's accuracy mode
    (exact mode constructs one too, but never plans k > 1 because the
    workloads only consult it when ``env.adaptive``).

    The ``train_coalescing`` component clears ``env.train_coalescing``:
    the governor then never coalesces (max one burst per train), which
    in the adaptive/fluid tiers reverts every flow to per-burst events
    — and is inert in exact mode, where trains never form anyway."""
    if not getattr(env, "train_coalescing", True):
        return TrainGovernor(max_bursts=1)
    if getattr(env, "fluid", False):
        return FluidGovernor(fluid_region(env))
    return TrainGovernor()
