"""Packet-train coalescing for steady-state flows (adaptive accuracy).

A workload loop in ``exact`` mode yields one event per burst: every burst
re-walks wire -> NIC ring -> DMA/LLC -> netstack even when nothing about
the flow is changing.  In ``adaptive`` mode the :class:`TrainGovernor`
watches a *steady-state token* — a fingerprint of every decision a burst
depends on (core, queues, serving PF and its liveness, the firmware
steering epoch, interrupt-moderation budget, wire impairment) — and,
while the token holds and the per-burst wall time is stable, lets the
workload coalesce K back-to-back bursts into a single *train* event.

The model layer is already closed-form in the batch size (every
``*_burst``/``tx``/``rx_deliver`` call takes an ``npackets``/``nmessages``
count and the bandwidth/DRAM/interconnect servers are linear in bytes),
so a train is simply the same calls with K-scaled counts: it charges the
same aggregate wire bandwidth, PCIe TLP routing, DDIO/LLC allocation and
ring/descriptor accounting the K individual bursts would have, while the
event kernel dispatches one event instead of K.

De-coalescing is automatic: any token change (ARFS migration, PF
failover, impairment episode, moderation budget shift, etc.) resets the
train length to one burst, and per-train caps keep a single train from
crossing a queue wrap, overrunning the DDIO slice, or spanning a
measurement boundary.
"""

from __future__ import annotations

from typing import Optional

#: Hard cap on bursts per train (grows geometrically 2, 4, ... up to this).
MAX_TRAIN_BURSTS = 32
#: Hard cap on a single train's wall time.  This bounds both the latency
#: of reacting to an injected fault (a fault lands mid-train at most this
#: late) and the record-ahead quantisation of the throughput meters.
MAX_TRAIN_WALL_NS = 250_000
#: Hard cap on a single train's payload bytes (kept below the ~3.5 MB
#: DDIO LLC slice; see MemorySystem.ddio_slice_bytes).
MAX_TRAIN_BYTES = 2 * 1024 * 1024
#: Consecutive stable per-burst wall observations required before a train
#: may grow.
SETTLE_OBSERVATIONS = 2
#: Relative tolerance for "the per-burst wall time is stable".
STABLE_REL_TOL = 0.02


class TrainGovernor:
    """Decides how many back-to-back bursts the next event may coalesce.

    Protocol, once per workload loop iteration::

        k = governor.plan(token, cap)   # bursts to coalesce now
        ... run the k-burst train through the model layer ...
        governor.observe(wall_ns, k)    # feed back the train's wall time

    ``plan`` returns 1 until the token has been steady and the observed
    per-burst wall time stable for :data:`SETTLE_OBSERVATIONS` rounds,
    then grows the train geometrically up to ``min(cap, max_bursts)``.
    Any token change de-coalesces (K returns to 1 immediately).
    """

    def __init__(self, max_bursts: int = MAX_TRAIN_BURSTS,
                 settle: int = SETTLE_OBSERVATIONS,
                 rel_tol: float = STABLE_REL_TOL):
        if max_bursts < 1:
            raise ValueError(f"max_bursts must be >= 1, got {max_bursts}")
        self.max_bursts = max_bursts
        self.settle = settle
        self.rel_tol = rel_tol
        self._token = None
        self._streak = 0
        self._next_k = 1
        self._per_burst_wall: Optional[float] = None
        # -- counters (tests and the perf harness read these) --
        self.trains = 0
        self.coalesced_bursts = 0
        self.decoalesce_events = 0
        self.max_bursts_seen = 1

    # ------------------------------------------------------------- query

    @property
    def per_burst_wall_ns(self) -> Optional[float]:
        """Latest observed wall time per burst (None before the first
        observation or right after a de-coalesce)."""
        return self._per_burst_wall

    # ----------------------------------------------------------- protocol

    def plan(self, token, cap: Optional[int] = None) -> int:
        """Bursts the next train may coalesce under ``token``.

        ``cap`` is the caller's per-train ceiling for *this* iteration
        (ring wrap, byte budget, boundary clipping); it limits the train
        without resetting the learned steady state.
        """
        if token != self._token:
            if self._token is not None:
                self.decoalesce_events += 1
            self._token = token
            self._streak = 0
            self._next_k = 1
            self._per_burst_wall = None
        k = self._next_k if self._streak >= self.settle else 1
        if cap is not None and k > cap:
            k = cap if cap >= 1 else 1
        self.trains += 1
        self.coalesced_bursts += k
        if k > self.max_bursts_seen:
            self.max_bursts_seen = k
        return k

    def observe(self, wall_ns: int, k: int) -> None:
        """Feed back the wall time of the train ``plan`` sized as ``k``."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        per_burst = wall_ns / k
        previous = self._per_burst_wall
        self._per_burst_wall = per_burst
        if (previous is None
                or abs(per_burst - previous) > self.rel_tol * previous):
            # Unstable (or first look at this token): hold at one burst.
            self._streak = 0
            self._next_k = 1
            return
        self._streak += 1
        if self._streak >= self.settle:
            self._next_k = min(self._next_k * 2, self.max_bursts)

    # ------------------------------------------------------------ helpers

    def clip_to_boundaries(self, cap: int, now_ns: int, warmup_ns: int,
                           duration_ns: int) -> int:
        """Tighten ``cap`` so the projected train does not cross the
        warmup or duration boundary, nor :data:`MAX_TRAIN_WALL_NS`.

        Uses the learned per-burst wall estimate; before any observation
        the train is one burst anyway, so no clipping is needed.
        """
        estimate = self._per_burst_wall
        if not estimate or estimate <= 0:
            return cap
        cap = min(cap, max(1, int(MAX_TRAIN_WALL_NS / estimate)))
        for boundary in (warmup_ns, duration_ns):
            if now_ns < boundary:
                cap = min(cap, max(1, int((boundary - now_ns) / estimate)))
                break
        return cap
