"""memcached + memslap (§5.1.3, Fig 10).

One memcached server is accessed by 14 memslap client instances.  Keys are
256 B, values 512 KB (the paper cites recent production key/value sizing).
The GET path is transmit-heavy; the SET path receives 512 KB values over
TCP Rx and therefore suffers the full NUDMA penalty — which is why the
ioct/local advantage grows with the SET ratio.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import List

from repro.nic.packet import Flow
from repro.units import GB, KB
from repro.workloads.base import Workload, measured_meter
from repro.workloads.train import make_governor

KEY_BYTES = 256
VALUE_BYTES = 512 * KB
ACK_BYTES = 64
#: memslap client instances (one per client-CPU core, §5.1.3).
CLIENT_INSTANCES = 14


class MemcachedServer(Workload):
    """The server side: worker threads serving memslap connections."""

    def __init__(self, host, cores, set_fraction: float, duration_ns: int,
                 warmup_ns: int = 0, value_bytes: int = VALUE_BYTES,
                 connections: int = CLIENT_INSTANCES,
                 offered_ktps: float = 0.0):
        super().__init__(host, duration_ns, warmup_ns)
        if not 0.0 <= set_fraction <= 1.0:
            raise ValueError(f"set_fraction out of [0,1]: {set_fraction}")
        if not cores:
            raise ValueError("need at least one worker core")
        self.set_fraction = set_fraction
        self.value_bytes = value_bytes
        # Client-side offered load (memslap's aggregate request rate);
        # 0 = closed loop at full speed.
        self._txn_interval_ns = (int(1e6 / offered_ktps * len(cores))
                                 if offered_ktps else 0)
        self.meter = measured_meter(self)
        #: Adaptive mode: each worker's first recorded transaction start
        #: and projected end of its last one.  The shared meter is
        #: aligned to the mean of each, so an early-terminated run
        #: divides by time that matches what all workers actually
        #: covered — neither the dead gap between warmup and the first
        #: post-warmup transaction nor the charge-ahead of the last one
        #: biases the rate (a single worker's projection would over- or
        #: under-count the others' in-flight transactions).
        self._record_starts: dict = {}
        self._projected_ends: dict = {}
        node = cores[0].node_id
        # The slab heap is far larger than the LLC: GETs stream values
        # from DRAM, as a real memcached with a production dataset does.
        self.heap = host.machine.alloc_region("memcached-heap", node,
                                              2 * GB)
        per_worker = max(1, connections // len(cores))
        for i, core in enumerate(cores):
            self._spawn(f"memcached-{i}",
                        self._worker_body(i, per_worker), core)

    def _same_type_run(self, set_accum: float, is_set: bool,
                       limit: int) -> int:
        """How many consecutive transactions (including the current one)
        share the current type, unrolling the SET accumulator in closed
        form from state ``set_accum``.  Bounded by ``limit``."""
        f = self.set_fraction
        if f <= 0.0:
            return limit if not is_set else 1
        if f >= 1.0:
            return limit if is_set else 1
        n = 1
        a = set_accum
        while n < limit:
            a += f
            nxt = a >= 1.0
            if nxt != is_set:
                break
            if nxt:
                a -= 1.0
            n += 1
        return n

    def _worker_body(self, worker_id: int, connections: int):
        def body(thread):
            host = self.host
            node = thread.core.node_id
            machine = host.machine
            costs = machine.spec.software
            socks = [host.stack.open_socket(
                thread, host.driver,
                Flow.make(100 + worker_id * 32 + c),
                app_buffer_bytes=self.value_bytes)
                for c in range(connections)]
            # Fluid accuracy coalesces runs of consecutive same-type
            # transactions into one steady-interval event (each run stays
            # on one socket; ledger sums across the connection set are
            # unchanged).  Disabled under offered-load pacing, where the
            # inter-transaction idle gap dominates and coalescing would
            # blur the pacing boundary.
            governor = (make_governor(self.env)
                        if self.env.fluid and not self._txn_interval_ns
                        else None)
            set_accum = 0.0
            txn = 0
            while not self.done():
                sock = socks[txn % len(socks)]
                set_accum += self.set_fraction
                is_set = set_accum >= 1.0
                if is_set:
                    set_accum -= 1.0
                n = 1
                if governor is not None:
                    run = self._same_type_run(set_accum, is_set,
                                              governor.max_bursts)
                    token = (host.stack.steady_token(sock), is_set)
                    cap = governor.clip_to_boundaries(
                        run, self.env.now, self.warmup_ns,
                        self.duration_ns)
                    n = governor.plan(token, cap)
                    # Advance the accumulator past the n-1 coalesced
                    # transactions (all the same type by construction).
                    for _ in range(n - 1):
                        set_accum += self.set_fraction
                        if set_accum >= 1.0:
                            set_accum -= 1.0
                with (governor.interval(n) if governor is not None
                      else nullcontext()):
                    cpu = n * costs.memcached_req_ns
                    if is_set:
                        # Receive key+value, store into the slab heap.
                        rx_cpu, dev = host.stack.rx_burst(
                            sock, 1, KEY_BYTES + self.value_bytes,
                            ntrains=n)
                        cpu += rx_cpu
                        cpu += n * int(self.value_bytes
                                       * costs.copy_ns_per_byte)
                        cpu += machine.memory.cpu_stream_write(
                            node, self.heap, n * self.value_bytes)
                        tx_cpu, dev2 = host.stack.tx_burst(
                            sock, 1, ACK_BYTES, ntrains=n)
                        cpu += tx_cpu
                        dev = max(dev, dev2)
                    else:
                        # Receive the GET request, stream the value out.
                        rx_cpu, dev = host.stack.rx_burst(
                            sock, 1, KEY_BYTES, ntrains=n)
                        cpu += rx_cpu
                        cpu += machine.memory.cpu_stream_read(
                            node, self.heap, n * self.value_bytes)
                        tx_cpu, dev2 = host.stack.tx_burst(
                            sock, 1, self.value_bytes, ntrains=n)
                        cpu += tx_cpu
                        dev = max(dev, dev2)
                txn += n
                busy = max(cpu, dev)
                wall = max(busy, self._txn_interval_ns)
                if governor is not None:
                    governor.observe(wall, n)
                if self.in_measurement():
                    self.meter.record(n * self.value_bytes, n)
                    if self.env.adaptive:
                        # Progressive start/finish: keep the meter's
                        # window aligned with the workers' recorded
                        # transactions, so the convergence loop can stop
                        # the run early and still read a covered-time
                        # rate.
                        if worker_id not in self._record_starts:
                            self._record_starts[worker_id] = self.env.now
                            starts = self._record_starts.values()
                            self.meter.start_ns = int(
                                sum(starts) / len(starts))
                        self._projected_ends[worker_id] = min(
                            self.env.now + wall, self.duration_ns)
                        ends = self._projected_ends.values()
                        self.meter.finish(int(sum(ends) / len(ends)))
                if self._txn_interval_ns > busy:
                    # Offered-load pacing: idle until the clients send the
                    # next request.
                    thread.core.charge(busy)
                    yield thread.sleep(self._txn_interval_ns)
                else:
                    yield thread.overlap(cpu, dev)
            self.meter.finish(min(self.env.now, self.duration_ns))
        return body

    def transactions_ktps(self) -> float:
        return self.meter.ktps()

    def throughput_gbps(self) -> float:
        return self.meter.gbps()
