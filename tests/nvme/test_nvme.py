"""Tests for the NVMe controller and driver."""

import pytest

from repro.nvme import NvmeController, NvmeDriver, NvmeQueuePair
from repro.pcie.fabric import bifurcate
from repro.topology import dell_skylake


@pytest.fixture
def machine():
    return dell_skylake()


def single_port(machine, name="ssd"):
    return NvmeController(machine, bifurcate(machine, 8, [0], name=name),
                          name=name)


def dual_port(machine, name="octossd"):
    return NvmeController(machine, bifurcate(machine, 16, [0, 1],
                                             name=name), name=name)


def test_controller_needs_a_pf(machine):
    with pytest.raises(ValueError):
        NvmeController(machine, [])


def test_dual_port_detection(machine):
    assert not single_port(machine).dual_port
    assert dual_port(machine).dual_port


def test_read_charges_flash_and_memory(machine):
    ssd = single_port(machine)
    core = machine.cores_on_node(0)[0]
    qp = NvmeQueuePair(0, core, machine)
    delay = ssd.read(qp, 128 * 1024)
    assert delay > 0
    assert ssd.flash.bytes_total == 128 * 1024
    assert ssd.read_bytes == 128 * 1024


def test_read_validates_size(machine):
    ssd = single_port(machine)
    qp = NvmeQueuePair(0, machine.cores_on_node(0)[0], machine)
    with pytest.raises(ValueError):
        ssd.read(qp, 0)
    with pytest.raises(ValueError):
        ssd.write(qp, -1)


def test_local_read_completion_is_fresh(machine):
    ssd = single_port(machine)
    core = machine.cores_on_node(0)[0]
    driver = NvmeDriver(machine, ssd)
    cpu, dev = driver.submit_read(core, 128 * 1024)
    # Local port + DDIO: completion read costs nothing beyond the base.
    qp = driver.qp_for_core(core)
    assert machine.memory.read_fresh_dma_line(0, qp.ring) == 0


def test_remote_read_crosses_interconnect(machine):
    ssd = single_port(machine)  # attached to node 0
    core = machine.cores_on_node(1)[0]
    driver = NvmeDriver(machine, ssd)
    link = machine.interconnect.link(0, 1)
    driver.submit_read(core, 128 * 1024)
    assert link.server.bytes_total >= 128 * 1024


def test_octo_mode_requires_dual_port(machine):
    with pytest.raises(ValueError):
        NvmeDriver(machine, single_port(machine), octo_mode=True)


def test_octo_mode_picks_local_port(machine):
    ssd = dual_port(machine)
    assert ssd.pick_pf(0, octo_mode=True).attach_node == 0
    assert ssd.pick_pf(1, octo_mode=True).attach_node == 1
    # Standard mode always port 0.
    assert ssd.pick_pf(1, octo_mode=False).attach_node == 0


def test_octossd_avoids_interconnect_for_far_node(machine):
    ssd = dual_port(machine)
    driver = NvmeDriver(machine, ssd, octo_mode=True)
    core = machine.cores_on_node(1)[0]
    driver.submit_read(core, 128 * 1024)
    for link in machine.interconnect.links():
        assert link.server.bytes_total == 0


def test_driver_reuses_queue_pairs(machine):
    ssd = single_port(machine)
    driver = NvmeDriver(machine, ssd)
    core = machine.cores_on_node(0)[0]
    assert driver.qp_for_core(core) is driver.qp_for_core(core)
    other = machine.cores_on_node(0)[1]
    assert driver.qp_for_core(core) is not driver.qp_for_core(other)


def test_write_path(machine):
    ssd = single_port(machine)
    driver = NvmeDriver(machine, ssd)
    core = machine.cores_on_node(0)[0]
    cpu, dev = driver.submit_write(core, 64 * 1024)
    assert cpu > 0 and dev > 0
    assert ssd.write_bytes == 64 * 1024
