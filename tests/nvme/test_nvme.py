"""Tests for the NVMe controller and driver."""

import pytest

from repro.nvme import (
    DEFAULT_QP_DATA_BYTES,
    NvmeController,
    NvmeDriver,
    NvmeQueuePair,
)
from repro.pcie.fabric import bifurcate
from repro.sim.errors import DeviceGoneError
from repro.topology import dell_skylake
from repro.units import CACHELINE


@pytest.fixture
def machine():
    return dell_skylake()


def single_port(machine, name="ssd"):
    return NvmeController(machine, bifurcate(machine, 8, [0], name=name),
                          name=name)


def dual_port(machine, name="octossd"):
    return NvmeController(machine, bifurcate(machine, 16, [0, 1],
                                             name=name), name=name)


def test_controller_needs_a_pf(machine):
    with pytest.raises(ValueError):
        NvmeController(machine, [])


def test_dual_port_detection(machine):
    assert not single_port(machine).dual_port
    assert dual_port(machine).dual_port


def test_read_charges_flash_and_memory(machine):
    ssd = single_port(machine)
    core = machine.cores_on_node(0)[0]
    qp = NvmeQueuePair(0, core, machine)
    delay = ssd.read(qp, 128 * 1024)
    assert delay > 0
    assert ssd.flash.bytes_total == 128 * 1024
    assert ssd.read_bytes == 128 * 1024


def test_read_validates_size(machine):
    ssd = single_port(machine)
    qp = NvmeQueuePair(0, machine.cores_on_node(0)[0], machine)
    with pytest.raises(ValueError):
        ssd.read(qp, 0)
    with pytest.raises(ValueError):
        ssd.write(qp, -1)


def test_local_read_completion_is_fresh(machine):
    ssd = single_port(machine)
    core = machine.cores_on_node(0)[0]
    driver = NvmeDriver(machine, ssd)
    cpu, dev = driver.submit_read(core, 128 * 1024)
    # Local port + DDIO: completion read costs nothing beyond the base.
    qp = driver.qp_for_core(core)
    assert machine.memory.read_fresh_dma_line(0, qp.ring) == 0


def test_remote_read_crosses_interconnect(machine):
    ssd = single_port(machine)  # attached to node 0
    core = machine.cores_on_node(1)[0]
    driver = NvmeDriver(machine, ssd)
    link = machine.interconnect.link(0, 1)
    driver.submit_read(core, 128 * 1024)
    assert link.server.bytes_total >= 128 * 1024


def test_octo_mode_requires_dual_port(machine):
    with pytest.raises(ValueError):
        NvmeDriver(machine, single_port(machine), octo_mode=True)


def test_octo_mode_homes_qps_on_local_port(machine):
    ssd = dual_port(machine)
    octo = NvmeDriver(machine, ssd, octo_mode=True)
    assert octo.qp_for_core(
        machine.cores_on_node(0)[0]).pf.attach_node == 0
    assert octo.qp_for_core(
        machine.cores_on_node(1)[0]).pf.attach_node == 1
    # Standard mode always homes on port 0.
    std = NvmeDriver(machine, dual_port(machine, name="std"))
    assert std.qp_for_core(
        machine.cores_on_node(1)[0]).pf.attach_node == 0


def test_octossd_avoids_interconnect_for_far_node(machine):
    ssd = dual_port(machine)
    driver = NvmeDriver(machine, ssd, octo_mode=True)
    core = machine.cores_on_node(1)[0]
    driver.submit_read(core, 128 * 1024)
    for link in machine.interconnect.links():
        assert link.server.bytes_total == 0


def test_driver_reuses_queue_pairs(machine):
    ssd = single_port(machine)
    driver = NvmeDriver(machine, ssd)
    core = machine.cores_on_node(0)[0]
    assert driver.qp_for_core(core) is driver.qp_for_core(core)
    other = machine.cores_on_node(0)[1]
    assert driver.qp_for_core(core) is not driver.qp_for_core(other)


def test_write_path(machine):
    ssd = single_port(machine)
    driver = NvmeDriver(machine, ssd)
    core = machine.cores_on_node(0)[0]
    cpu, dev = driver.submit_write(core, 64 * 1024)
    assert cpu > 0 and dev > 0
    assert ssd.write_bytes == 64 * 1024


def test_qp_data_region_size_is_configurable(machine):
    core = machine.cores_on_node(0)[0]
    assert NvmeQueuePair(0, core, machine).data.size == \
        DEFAULT_QP_DATA_BYTES
    assert NvmeQueuePair(1, core, machine,
                         data_bytes=256 * 1024).data.size == 256 * 1024
    with pytest.raises(ValueError):
        NvmeQueuePair(2, core, machine, data_bytes=CACHELINE - 1)


def test_driver_threads_qp_data_bytes_through(machine):
    driver = NvmeDriver(machine, single_port(machine),
                        qp_data_bytes=512 * 1024)
    qp = driver.qp_for_core(machine.cores_on_node(0)[0])
    assert qp.data.size == 512 * 1024


def test_batched_submission_accounting(machine):
    ssd = single_port(machine)
    driver = NvmeDriver(machine, ssd)
    core = machine.cores_on_node(0)[0]
    driver.submit_read(core, 128 * 1024, ncmds=32)
    qp = driver.qp_for_core(core)
    assert ssd.read_bytes == 32 * 128 * 1024
    assert qp.packets_total == 32
    assert qp.outstanding == 0  # the batch completed synchronously
    assert driver.doorbell.rings == 1  # one doorbell for the whole batch
    assert driver.completion.entries == 32  # one CQ entry per command


def test_submit_validates_args(machine):
    driver = NvmeDriver(machine, single_port(machine))
    core = machine.cores_on_node(0)[0]
    with pytest.raises(ValueError):
        driver.submit_read(core, 128 * 1024, ncmds=0)
    with pytest.raises(ValueError):
        driver._submit(core, 128 * 1024, "trim")


def test_standard_mode_dies_with_port0(machine):
    ssd = single_port(machine)
    driver = NvmeDriver(machine, ssd)
    core = machine.cores_on_node(0)[0]
    driver.submit_read(core, 128 * 1024)
    ssd.surprise_remove(0)
    with pytest.raises(DeviceGoneError):
        driver.submit_read(core, 128 * 1024)
    assert driver.failovers == 0  # no team: nothing to fail over to


def test_octossd_fails_over_and_recovers(machine):
    ssd = dual_port(machine)
    driver = NvmeDriver(machine, ssd, octo_mode=True)
    core = machine.cores_on_node(1)[0]
    qp = driver.qp_for_core(core)
    assert qp.pf.attach_node == 1

    ssd.surprise_remove(1)
    # Re-homing is immediate; submissions keep working through port 0.
    assert qp.pf.attach_node == 0
    driver.submit_read(core, 128 * 1024)
    assert ssd.pf_read_bytes(0) == 128 * 1024
    machine.env.run(until=machine.env.now + 10_000_000)
    assert driver.failovers == 1  # deferred until the drain elapsed

    ssd.recover_pf(1)
    assert qp.pf.attach_node == 1
    machine.env.run(until=machine.env.now + 10_000_000)
    assert driver.recoveries == 1


def test_octo_never_slower_than_standard_for_remote_cores():
    """Property: for a remote-socket submitter the octoSSD path costs no
    more than the standard single-home path at every swept size — the
    octopus removes the interconnect crossing, it never adds one."""
    KB = 1024
    for nbytes in (4 * KB, 16 * KB, 64 * KB, 128 * KB, 512 * KB,
                   1024 * KB):
        results = {}
        for mode in (False, True):
            machine = dell_skylake()
            driver = NvmeDriver(machine, dual_port(machine),
                                octo_mode=mode)
            results[mode] = driver.submit_read(
                machine.cores_on_node(1)[0], nbytes, ncmds=8)
        octo_cpu, octo_dev = results[True]
        std_cpu, std_dev = results[False]
        assert octo_cpu <= std_cpu, f"cpu regressed at {nbytes}"
        assert octo_dev <= std_dev, f"dev regressed at {nbytes}"
