"""Tests for adaptive interrupt coalescing."""

import pytest

from repro.nic.moderation import (
    HIGH_RATE_PPS,
    MAX_COALESCED_FRAMES,
    AdaptiveCoalescing,
)


def test_first_batch_interrupts_per_packet():
    moderation = AdaptiveCoalescing()
    # No rate history yet: latency-first, one interrupt per packet.
    assert moderation.interrupts_for(10, now_ns=0) == 10


def test_high_rate_reaches_full_coalescing():
    moderation = AdaptiveCoalescing()
    now = 0
    for _ in range(50):
        moderation.interrupts_for(64, now_ns=now)
        now += 10_000  # 64 pkts / 10 us = 6.4 Mpps
    assert moderation.observed_pps > HIGH_RATE_PPS
    assert moderation.current_budget() == MAX_COALESCED_FRAMES
    assert moderation.interrupts_for(128, now_ns=now) == 2


def test_low_rate_stays_per_packet():
    moderation = AdaptiveCoalescing()
    now = 0
    for _ in range(50):
        moderation.interrupts_for(1, now_ns=now)
        now += 1_000_000  # 1 kpps
    assert moderation.current_budget() == 1
    assert moderation.interrupts_for(4, now_ns=now) == 4


def test_budget_ramps_between_thresholds():
    moderation = AdaptiveCoalescing()
    now = 0
    for _ in range(200):
        moderation.interrupts_for(1, now_ns=now)
        now += 4_000  # 250 kpps: between LOW and HIGH
    budget = moderation.current_budget()
    assert 1 < budget < MAX_COALESCED_FRAMES


def test_disable_forces_per_packet_even_at_high_rate():
    moderation = AdaptiveCoalescing()
    now = 0
    for _ in range(50):
        moderation.interrupts_for(64, now_ns=now)
        now += 10_000
    moderation.disable()
    assert moderation.current_budget() == 1
    moderation.enable()
    assert moderation.current_budget() == MAX_COALESCED_FRAMES


def test_rate_decays_when_traffic_slows():
    moderation = AdaptiveCoalescing()
    now = 0
    for _ in range(50):
        moderation.interrupts_for(64, now_ns=now)
        now += 10_000
    fast = moderation.observed_pps
    for _ in range(50):
        moderation.interrupts_for(1, now_ns=now)
        now += 10_000_000
    assert moderation.observed_pps < fast / 10


def test_same_instant_batches_accumulate():
    moderation = AdaptiveCoalescing()
    moderation.interrupts_for(64, now_ns=100)
    before = moderation.observed_pps
    moderation.interrupts_for(64, now_ns=100)  # zero elapsed
    assert moderation.observed_pps >= before


def test_validation():
    with pytest.raises(ValueError):
        AdaptiveCoalescing(max_frames=0)
    moderation = AdaptiveCoalescing()
    with pytest.raises(ValueError):
        moderation.interrupts_for(0, now_ns=0)


def test_queues_carry_moderation_state():
    from repro.core import Testbed
    testbed = Testbed("local")
    queue = testbed.server.driver.rx_queue_for_core(testbed.server_core(0))
    assert isinstance(queue.moderation, AdaptiveCoalescing)
    assert queue.moderation.enabled
