"""Tests for flows and packet arithmetic."""

import pytest

from repro.nic.packet import (
    FRAMING_BYTES,
    HEADER_BYTES,
    Flow,
    packets_for,
    wire_bytes,
)


def test_flow_make_is_deterministic():
    assert Flow.make(3) == Flow.make(3)
    assert Flow.make(3) != Flow.make(4)


def test_flow_reversed_swaps_endpoints():
    flow = Flow.make(1)
    back = flow.reversed()
    assert back.src_ip == flow.dst_ip
    assert back.src_port == flow.dst_port
    assert back.reversed() == flow


def test_flow_validates_ports():
    with pytest.raises(ValueError):
        Flow("a", 0, "b", 80)
    with pytest.raises(ValueError):
        Flow("a", 80, "b", 70000)


def test_flow_validates_protocol():
    with pytest.raises(ValueError):
        Flow("a", 1, "b", 2, protocol="sctp")
    assert Flow.make(0, protocol="udp").protocol == "udp"


def test_flow_hashable_and_usable_as_key():
    table = {Flow.make(i): i for i in range(10)}
    assert table[Flow.make(5)] == 5


def test_wire_bytes_includes_overheads():
    assert wire_bytes(1500) == 1500 + HEADER_BYTES + FRAMING_BYTES


def test_wire_bytes_pads_small_frames():
    assert wire_bytes(1) == 46 + HEADER_BYTES + FRAMING_BYTES


def test_wire_bytes_rejects_negative():
    with pytest.raises(ValueError):
        wire_bytes(-1)


def test_packets_for_ceil_division():
    assert packets_for(1, 1448) == 1
    assert packets_for(1448, 1448) == 1
    assert packets_for(1449, 1448) == 2
    assert packets_for(65536, 1448) == 46


def test_packets_for_zero_message():
    assert packets_for(0, 1448) == 1
