"""Tests for the Ethernet wire."""

import pytest

from repro.nic.packet import wire_bytes
from repro.nic.wire import EthernetWire
from repro.sim import Environment


def test_wire_delay_includes_propagation_and_service():
    wire = EthernetWire(Environment(), gigabits=100, propagation_ns=600)
    delay = wire.send("a_to_b", 1, 1500)
    service = int(round(wire_bytes(1500) * 8 / 100))  # ns at 100 Gb/s
    assert delay == 600 + service


def test_wire_directions_independent():
    wire = EthernetWire(Environment(), gigabits=100)
    wire.send("a_to_b", 1000, 1500)
    # Reverse direction sees no backlog.
    baseline = wire.send("b_to_a", 1, 1500)
    assert baseline < 2000


def test_wire_backlog_accumulates_same_direction():
    wire = EthernetWire(Environment(), gigabits=100)
    first = wire.send("a_to_b", 64, 1500)
    second = wire.send("a_to_b", 64, 1500)
    assert second > first


def test_wire_line_rate_packets_per_sec():
    wire = EthernetWire(Environment(), gigabits=100)
    rate = wire.line_rate_packets_per_sec(1500)
    # ~7.8 Mpps for MTU frames at 100 GbE
    assert 7e6 < rate < 9e6


def test_wire_rejects_bad_args():
    env = Environment()
    with pytest.raises(ValueError):
        EthernetWire(env, gigabits=0)
    wire = EthernetWire(env)
    with pytest.raises(ValueError):
        wire.send("sideways", 1, 100)
    with pytest.raises(ValueError):
        wire.send("a_to_b", -1, 100)


def test_impairment_validates_probabilities():
    from repro.nic.wire import WireImpairment
    from repro.sim.rng import SimRandom
    rng = SimRandom(0)
    with pytest.raises(ValueError):
        WireImpairment(rng, loss_probability=1.5)
    with pytest.raises(ValueError):
        WireImpairment(rng, corrupt_probability=-0.1)
    with pytest.raises(ValueError):
        WireImpairment(rng, loss_probability=0.6, corrupt_probability=0.6)


def test_impairment_losses_are_seed_deterministic():
    from repro.nic.wire import WireImpairment
    from repro.sim.rng import SimRandom
    a = WireImpairment(SimRandom(5), loss_probability=0.3,
                       corrupt_probability=0.1)
    b = WireImpairment(SimRandom(5), loss_probability=0.3,
                       corrupt_probability=0.1)
    assert [a.losses(100) for _ in range(5)] == \
        [b.losses(100) for _ in range(5)]


def test_impairment_batch_draw_matches_per_packet_reference():
    """The vectorised losses() must consume the identical RNG stream and
    classify each draw exactly like the original per-packet loop."""
    from repro.nic.wire import WireImpairment
    from repro.sim.rng import SimRandom
    p_loss, p_corrupt = 0.05, 0.03
    imp = WireImpairment(SimRandom(9), loss_probability=p_loss,
                         corrupt_probability=p_corrupt)
    reference = SimRandom(9)
    for npackets in (1, 7, 64, 1000):
        lost = corrupted = 0
        for _ in range(npackets):
            draw = reference.random()
            if draw < p_loss:
                lost += 1
            elif draw < p_loss + p_corrupt:
                corrupted += 1
        assert imp.losses(npackets) == (lost, corrupted)


def test_impairment_losses_zero_packets():
    from repro.nic.wire import WireImpairment
    from repro.sim.rng import SimRandom
    imp = WireImpairment(SimRandom(3), loss_probability=0.5)
    assert imp.losses(0) == (0, 0)


def test_impaired_wire_charges_retransmits():
    from repro.sim.rng import SimRandom
    env = Environment()
    clean = EthernetWire(env, gigabits=100)
    clean_delay = clean.send("a_to_b", 1000, 1500)

    lossy = EthernetWire(Environment(), gigabits=100)
    lossy.start_impairment(SimRandom(1), loss_probability=0.2)
    lossy_delay = lossy.send("a_to_b", 1000, 1500)
    assert lossy.drops_total > 0
    assert lossy.retransmitted_packets == \
        lossy.drops_total + lossy.corruptions_total
    # Retransmitted bytes plus one extra propagation round cost time.
    assert lossy_delay > clean_delay


def test_stop_impairment_restores_clean_wire():
    from repro.sim.rng import SimRandom
    wire = EthernetWire(Environment(), gigabits=100)
    wire.start_impairment(SimRandom(2), loss_probability=0.5)
    assert wire.is_impaired
    wire.send("a_to_b", 100, 1500)
    dropped = wire.drops_total
    assert dropped > 0
    wire.stop_impairment()
    assert not wire.is_impaired
    wire.send("a_to_b", 100, 1500)
    assert wire.drops_total == dropped
