"""Tests for the Ethernet wire."""

import pytest

from repro.nic.packet import wire_bytes
from repro.nic.wire import EthernetWire
from repro.sim import Environment


def test_wire_delay_includes_propagation_and_service():
    wire = EthernetWire(Environment(), gigabits=100, propagation_ns=600)
    delay = wire.send("a_to_b", 1, 1500)
    service = int(round(wire_bytes(1500) * 8 / 100))  # ns at 100 Gb/s
    assert delay == 600 + service


def test_wire_directions_independent():
    wire = EthernetWire(Environment(), gigabits=100)
    wire.send("a_to_b", 1000, 1500)
    # Reverse direction sees no backlog.
    baseline = wire.send("b_to_a", 1, 1500)
    assert baseline < 2000


def test_wire_backlog_accumulates_same_direction():
    wire = EthernetWire(Environment(), gigabits=100)
    first = wire.send("a_to_b", 64, 1500)
    second = wire.send("a_to_b", 64, 1500)
    assert second > first


def test_wire_line_rate_packets_per_sec():
    wire = EthernetWire(Environment(), gigabits=100)
    rate = wire.line_rate_packets_per_sec(1500)
    # ~7.8 Mpps for MTU frames at 100 GbE
    assert 7e6 < rate < 9e6


def test_wire_rejects_bad_args():
    env = Environment()
    with pytest.raises(ValueError):
        EthernetWire(env, gigabits=0)
    wire = EthernetWire(env)
    with pytest.raises(ValueError):
        wire.send("sideways", 1, 100)
    with pytest.raises(ValueError):
        wire.send("a_to_b", -1, 100)
