"""Tests for the NIC device: delivery, transmit, per-PF accounting."""

import pytest

from repro.nic.device import NicDevice
from repro.nic.firmware import OctoFirmware, StandardFirmware
from repro.nic.packet import Flow
from repro.nic.rings import RxQueue, TxQueue
from repro.nic.wire import EthernetWire
from repro.pcie.fabric import bifurcate
from repro.topology import dell_r730


@pytest.fixture
def machine():
    return dell_r730()


def make_octonic(machine, wire=None):
    pfs = bifurcate(machine, 16, [0, 1], name="octo")
    device = NicDevice(machine, pfs, OctoFirmware(2), wire=wire,
                       wire_side="b", name="octoNIC")
    return device


def test_device_requires_matching_pf_count(machine):
    pfs = bifurcate(machine, 16, [0, 1])
    with pytest.raises(ValueError):
        NicDevice(machine, pfs, StandardFirmware(1))
    with pytest.raises(ValueError):
        NicDevice(machine, [], StandardFirmware(1))


def test_device_validates_wire_side(machine):
    pfs = bifurcate(machine, 16, [0])
    with pytest.raises(ValueError):
        NicDevice(machine, pfs, StandardFirmware(1), wire_side="c")


def test_mac_for_pf_octo_vs_standard(machine):
    octo = make_octonic(machine)
    assert octo.mac_for_pf(0) == octo.mac_for_pf(1) == OctoFirmware.MAC
    pfs = bifurcate(machine, 16, [0, 1], name="std")
    std = NicDevice(machine, pfs, StandardFirmware(2))
    assert std.mac_for_pf(0) != std.mac_for_pf(1)


def test_pf_local_to(machine):
    device = make_octonic(machine)
    assert device.pf_local_to(0).attach_node == 0
    assert device.pf_local_to(1).attach_node == 1


def test_rx_deliver_steers_and_accounts(machine):
    device = make_octonic(machine)
    core0 = machine.cores_on_node(0)[0]
    queue = RxQueue(0, core0, machine, pf=device.pf(0))
    device.firmware.register_default_queues(0, [queue])
    device.firmware.register_default_queues(1, [])
    flow = Flow.make(0)
    delivered, delay = device.rx_deliver(flow, OctoFirmware.MAC, 10, 1500)
    assert delivered is queue
    assert delay > 0
    assert queue.outstanding == 10
    assert queue.packets_total == 10
    assert device.pf_rx_bytes(0) == 15000
    assert device.pf_rx_bytes(1) == 0


def test_rx_deliver_validates_packets(machine):
    device = make_octonic(machine)
    device.firmware.register_default_queues(0, ["q"])
    with pytest.raises(ValueError):
        device.rx_deliver(Flow.make(0), OctoFirmware.MAC, 0, 1500)


def test_rx_deliver_wire_charged_once(machine):
    wire = EthernetWire(machine.env)
    device = make_octonic(machine, wire=wire)
    core0 = machine.cores_on_node(0)[0]
    queue = RxQueue(0, core0, machine, pf=device.pf(0))
    device.firmware.register_default_queues(0, [queue])
    device.rx_deliver(Flow.make(0), OctoFirmware.MAC, 4, 1500)
    assert wire.a_to_b.bytes_total > 0
    before = wire.a_to_b.bytes_total
    device.rx_deliver(Flow.make(0), OctoFirmware.MAC, 4, 1500,
                      charge_wire=False)
    assert wire.a_to_b.bytes_total == before


def test_tx_requires_bound_pf(machine):
    device = make_octonic(machine)
    core0 = machine.cores_on_node(0)[0]
    queue = TxQueue(0, core0, machine, pf=None)
    with pytest.raises(ValueError):
        device.tx(queue, queue.skbs, 1, 1500)


def test_tx_accounts_per_pf(machine):
    device = make_octonic(machine)
    core1 = machine.cores_on_node(1)[0]
    queue = TxQueue(0, core1, machine, pf=device.pf(1))
    delay = device.tx(queue, queue.skbs, 8, 1500)
    assert delay > 0
    assert device.pf_tx_bytes(1) == 8 * 1500
    assert device.pf_tx_bytes(0) == 0


def test_tx_local_completion_is_ddio_fresh(machine):
    device = make_octonic(machine)
    core0 = machine.cores_on_node(0)[0]
    queue = TxQueue(0, core0, machine, pf=device.pf(0))
    device.tx(queue, queue.skbs, 1, 1500)
    assert machine.memory.read_fresh_dma_line(0, queue.ring) == 0


def test_tx_remote_completion_misses(machine):
    device = make_octonic(machine)
    core1 = machine.cores_on_node(1)[0]
    # Queue served by the PF on the other socket (the `remote` config).
    queue = TxQueue(0, core1, machine, pf=device.pf(0))
    device.tx(queue, queue.skbs, 1, 1500)
    latency = machine.memory.read_fresh_dma_line(1, queue.ring)
    assert 60 <= latency <= 150


def test_pf_window_throughput(machine):
    device = make_octonic(machine)
    core0 = machine.cores_on_node(0)[0]
    queue = RxQueue(0, core0, machine, pf=device.pf(0))
    device.firmware.register_default_queues(0, [queue])
    device.reset_pf_windows()
    device.rx_deliver(Flow.make(0), OctoFirmware.MAC, 100, 1250)
    machine.env._now = 100_000  # 125000 B in 100 us => 10 Gb/s
    assert device.pf_window_rx_gbps(0) == pytest.approx(10.0, rel=0.01)
    assert device.pf_window_rx_gbps(1) == 0.0


def test_rx_deliver_validates_payload_bytes(machine):
    device = make_octonic(machine)
    device.firmware.register_default_queues(0, ["q"])
    with pytest.raises(ValueError):
        device.rx_deliver(Flow.make(0), OctoFirmware.MAC, 1, 0)
    with pytest.raises(ValueError):
        device.rx_deliver(Flow.make(0), OctoFirmware.MAC, 1, -100)


def test_tx_validates_payload_bytes(machine):
    device = make_octonic(machine)
    core0 = machine.cores_on_node(0)[0]
    queue = TxQueue(0, core0, machine, pf=device.pf(0))
    with pytest.raises(ValueError):
        device.tx(queue, queue.skbs, 1, 0)


def test_surprise_remove_and_recover(machine):
    device = make_octonic(machine)
    assert [pf.pf_id for pf in device.alive_pfs] == [0, 1]
    device.surprise_remove(1)
    assert not device.pf_alive(1)
    assert [pf.pf_id for pf in device.alive_pfs] == [0]
    assert not device.firmware.pf_alive(1)
    device.recover_pf(1)
    assert device.pf_alive(1)
    assert device.firmware.pf_alive(1)


def test_surprise_remove_twice_rejected(machine):
    device = make_octonic(machine)
    device.surprise_remove(0)
    with pytest.raises(ValueError):
        device.surprise_remove(0)
    with pytest.raises(ValueError):
        device.recover_pf(1)  # PF1 was never removed


def test_pf_listeners_fire_in_order(machine):
    device = make_octonic(machine)
    calls = []
    device.add_pf_listener(
        on_failure=lambda pf: calls.append(("down", pf.pf_id)),
        on_recovery=lambda pf: calls.append(("up", pf.pf_id)))
    device.surprise_remove(1)
    device.recover_pf(1)
    assert calls == [("down", 1), ("up", 1)]
