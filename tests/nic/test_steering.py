"""Tests for RSS, ARFS tables and the MPFS."""

import pytest

from repro.nic.packet import Flow
from repro.nic.steering import ArfsTable, Mpfs, rss_hash


# --------------------------------------------------------------- RSS

def test_rss_hash_in_range_and_stable():
    for i in range(50):
        flow = Flow.make(i)
        bucket = rss_hash(flow, 8)
        assert 0 <= bucket < 8
        assert bucket == rss_hash(flow, 8)


def test_rss_hash_spreads_flows():
    buckets = {rss_hash(Flow.make(i), 8) for i in range(100)}
    assert len(buckets) > 4  # not all in one bucket


def test_rss_hash_rejects_zero_buckets():
    with pytest.raises(ValueError):
        rss_hash(Flow.make(0), 0)


# -------------------------------------------------------------- ARFS

def test_arfs_lookup_after_update():
    table = ArfsTable()
    flow = Flow.make(0)
    table.update(flow, "queue-3", now=10)
    assert table.lookup(flow, now=11) == "queue-3"


def test_arfs_lookup_missing_returns_none():
    assert ArfsTable().lookup(Flow.make(0)) is None


def test_arfs_update_repoints_existing_rule():
    table = ArfsTable()
    flow = Flow.make(0)
    table.update(flow, "queue-1")
    table.update(flow, "queue-2")
    assert table.lookup(flow) == "queue-2"
    assert len(table) == 1


def test_arfs_remove():
    table = ArfsTable()
    flow = Flow.make(0)
    table.update(flow, "q")
    assert table.remove(flow)
    assert not table.remove(flow)
    assert table.lookup(flow) is None


def test_arfs_expire_idle_rules():
    table = ArfsTable()
    old, fresh = Flow.make(0), Flow.make(1)
    table.update(old, "q0", now=0)
    table.update(fresh, "q1", now=900)
    expired = table.expire_idle(now=1000, idle_ns=500)
    assert expired == [old]
    assert table.lookup(fresh) is not None


def test_arfs_lookup_refreshes_idle_clock():
    table = ArfsTable()
    flow = Flow.make(0)
    table.update(flow, "q", now=0)
    table.lookup(flow, now=800)
    assert table.expire_idle(now=1000, idle_ns=500) == []


def test_arfs_capacity_evicts_coldest():
    table = ArfsTable(capacity=2)
    table.update(Flow.make(0), "q0", now=0)
    table.update(Flow.make(1), "q1", now=5)
    table.lookup(Flow.make(0), now=10)  # refresh 0: flow 1 is coldest
    table.update(Flow.make(2), "q2", now=20)
    assert table.lookup(Flow.make(1)) is None
    assert table.lookup(Flow.make(0)) == "q0"


def test_arfs_invalid_capacity():
    with pytest.raises(ValueError):
        ArfsTable(capacity=0)


# -------------------------------------------------------------- MPFS

def test_mpfs_mac_mode_steers_by_mac():
    mpfs = Mpfs(mode="mac")
    mpfs.bind_mac("aa:aa", 0)
    mpfs.bind_mac("bb:bb", 1)
    flow = Flow.make(0)
    assert mpfs.steer(flow, "aa:aa") == 0
    assert mpfs.steer(flow, "bb:bb") == 1


def test_mpfs_mac_mode_unknown_mac_default():
    mpfs = Mpfs(mode="mac", default_pf_id=7)
    assert mpfs.steer(Flow.make(0), "cc:cc") == 7


def test_mpfs_mac_mode_rejects_flow_rules():
    mpfs = Mpfs(mode="mac")
    with pytest.raises(ValueError):
        mpfs.update_flow(Flow.make(0), 1)


def test_mpfs_flow_mode_steers_by_tuple():
    mpfs = Mpfs(mode="flow")
    flow = Flow.make(0)
    mpfs.update_flow(flow, 1, now=0)
    # MAC is irrelevant in IOctoRFS mode.
    assert mpfs.steer(flow, "whatever") == 1


def test_mpfs_flow_mode_unmapped_flow_default():
    mpfs = Mpfs(mode="flow", default_pf_id=0)
    assert mpfs.steer(Flow.make(9), "x") == 0


def test_mpfs_flow_rule_repoint_and_remove():
    mpfs = Mpfs(mode="flow")
    flow = Flow.make(0)
    mpfs.update_flow(flow, 0)
    mpfs.update_flow(flow, 1)
    assert mpfs.steer(flow, "x") == 1
    assert mpfs.remove_flow(flow)
    assert mpfs.steer(flow, "x") == 0
    assert not mpfs.remove_flow(flow)


def test_mpfs_flow_expiry():
    mpfs = Mpfs(mode="flow")
    flow = Flow.make(0)
    mpfs.update_flow(flow, 1, now=0)
    assert mpfs.flow_rule_count() == 1
    expired = mpfs.expire_idle(now=10_000, idle_ns=5000)
    assert expired == [flow]
    assert mpfs.flow_rule_count() == 0


def test_mpfs_invalid_mode():
    with pytest.raises(ValueError):
        Mpfs(mode="vlan")
