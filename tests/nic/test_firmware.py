"""Tests for the standard and octo firmware personalities."""

import pytest

from repro.nic.firmware import OctoFirmware, StandardFirmware
from repro.nic.packet import Flow


def test_standard_firmware_macs_differ_per_pf():
    firmware = StandardFirmware(2)
    assert firmware.macs[0] != firmware.macs[1]


def test_standard_firmware_steers_by_mac():
    firmware = StandardFirmware(2)
    firmware.register_default_queues(0, ["q0"])
    firmware.register_default_queues(1, ["q1"])
    flow = Flow.make(0)
    assert firmware.steer_rx(flow, firmware.macs[0]) == (0, "q0")
    assert firmware.steer_rx(flow, firmware.macs[1]) == (1, "q1")


def test_standard_firmware_arfs_overrides_rss():
    firmware = StandardFirmware(1)
    firmware.register_default_queues(0, ["qa", "qb"])
    flow = Flow.make(0)
    firmware.arfs_update(0, flow, "qsteered")
    assert firmware.steer_rx(flow, firmware.macs[0])[1] == "qsteered"


def test_standard_firmware_rss_fallback_is_stable():
    firmware = StandardFirmware(1)
    firmware.register_default_queues(0, ["qa", "qb", "qc"])
    flow = Flow.make(7)
    first = firmware.steer_rx(flow, firmware.macs[0])
    assert first == firmware.steer_rx(flow, firmware.macs[0])


def test_firmware_without_queues_raises():
    firmware = StandardFirmware(1)
    with pytest.raises(LookupError):
        firmware.steer_rx(Flow.make(0), firmware.macs[0])


def test_firmware_needs_at_least_one_pf():
    with pytest.raises(ValueError):
        StandardFirmware(0)


def test_octo_firmware_single_mac():
    firmware = OctoFirmware(2)
    assert OctoFirmware.MAC == "0c:70:0c:70:0c:70"


def test_octo_firmware_ioctorfs_steers_pf_then_arfs_queue():
    firmware = OctoFirmware(2)
    firmware.register_default_queues(0, ["q0-default"])
    firmware.register_default_queues(1, ["q1-default"])
    flow = Flow.make(0)
    # Unmapped: default PF 0 + RSS.
    assert firmware.steer_rx(flow, OctoFirmware.MAC) == (0, "q0-default")
    # Map the flow to PF 1 and a specific queue there.
    firmware.ioctorfs_update(flow, 1)
    firmware.arfs_update(1, flow, "q1-core5")
    assert firmware.steer_rx(flow, OctoFirmware.MAC) == (1, "q1-core5")


def test_octo_firmware_repoints_on_migration_update():
    firmware = OctoFirmware(2)
    firmware.register_default_queues(0, ["q0"])
    firmware.register_default_queues(1, ["q1"])
    flow = Flow.make(0)
    firmware.ioctorfs_update(flow, 0)
    firmware.ioctorfs_update(flow, 1)
    assert firmware.steer_rx(flow, OctoFirmware.MAC)[0] == 1


def test_octo_firmware_validates_pf_id():
    firmware = OctoFirmware(2)
    with pytest.raises(ValueError):
        firmware.ioctorfs_update(Flow.make(0), 5)


def test_octo_firmware_remove_and_expire():
    firmware = OctoFirmware(2)
    firmware.register_default_queues(0, ["q0"])
    flow = Flow.make(0)
    firmware.ioctorfs_update(flow, 1, now=0)
    assert firmware.ioctorfs_remove(flow)
    assert firmware.steer_rx(flow, OctoFirmware.MAC)[0] == 0
    firmware.ioctorfs_update(flow, 1, now=0)
    assert firmware.expire_idle(now=10**10, idle_ns=1) == [flow]
