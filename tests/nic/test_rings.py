"""Tests for NIC queues and queue sets."""

from repro.nic.rings import RING_ENTRIES, QueueSet, RxQueue, TxQueue
from repro.pcie.fabric import bifurcate
from repro.topology import dell_r730
from repro.units import CACHELINE


def test_queue_regions_sized_and_placed():
    machine = dell_r730()
    core = machine.cores_on_node(1)[3]
    rxq = RxQueue(7, core, machine)
    assert rxq.ring.size == RING_ENTRIES * CACHELINE
    assert rxq.ring.home_node == 1
    assert rxq.buffers.home_node == 1
    txq = TxQueue(8, core, machine)
    assert txq.skbs.home_node == 1


def test_queue_accounting():
    machine = dell_r730()
    queue = RxQueue(0, machine.core(0), machine)
    queue.account(10, 15000)
    queue.account(5, 7500)
    assert queue.packets_total == 15
    assert queue.bytes_total == 22500


def test_queueset_binds_pf_per_core():
    machine = dell_r730()
    pf0, pf1 = bifurcate(machine, 16, [0, 1])
    queues = QueueSet(machine, machine.cores,
                      pf_for_core=lambda c: pf0 if c.node_id == 0 else pf1)
    assert len(queues.rx) == len(machine.cores)
    for queue in queues.rx + queues.tx:
        expected = pf0 if queue.core.node_id == 0 else pf1
        assert queue.pf is expected


def test_queueset_lookup_by_core():
    machine = dell_r730()
    queues = QueueSet(machine, machine.cores[:4])
    core = machine.core(2)
    assert queues.rx_for_core(core).core is core
    assert queues.tx_for_core(core).core is core
    assert queues.rx_for_core(machine.core(20)) is None
    assert queues.tx_for_core(machine.core(20)) is None


def test_fresh_queue_has_enabled_moderation():
    machine = dell_r730()
    queue = RxQueue(0, machine.core(0), machine)
    assert queue.moderation.enabled
    assert queue.is_drained()
