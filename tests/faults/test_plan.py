"""Tests for declarative fault plans."""

import pytest

from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec
from repro.sim.rng import SimRandom


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        FaultSpec("meteor_strike", at_ns=0)


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        FaultSpec("pf_down", at_ns=-1, pf_id=0)


def test_zero_duration_rejected():
    with pytest.raises(ValueError):
        FaultSpec("pf_down", at_ns=0, duration_ns=0, pf_id=0)


def test_pf_faults_need_pf_id():
    for kind in ("pf_down", "pcie_link_down", "pcie_degrade"):
        with pytest.raises(ValueError):
            FaultSpec(kind, at_ns=0)


def test_degrade_needs_lanes():
    with pytest.raises(ValueError):
        FaultSpec("pcie_degrade", at_ns=0, pf_id=0)
    FaultSpec("pcie_degrade", at_ns=0, pf_id=0, lanes=4)


def test_wire_loss_needs_probability():
    with pytest.raises(ValueError):
        FaultSpec("wire_loss", at_ns=0)
    FaultSpec("wire_loss", at_ns=0, loss_probability=0.01)


def test_qpi_throttle_validation():
    with pytest.raises(ValueError):
        FaultSpec("qpi_throttle", at_ns=0, src_node=0, dst_node=1)
    with pytest.raises(ValueError):
        FaultSpec("qpi_throttle", at_ns=0, src_node=0, dst_node=1,
                  throttle_factor=1.5)
    FaultSpec("qpi_throttle", at_ns=0, src_node=0, dst_node=1,
              throttle_factor=0.5)


def test_transient_vs_permanent():
    permanent = FaultSpec("pf_down", at_ns=10, pf_id=0)
    transient = FaultSpec("pf_down", at_ns=10, duration_ns=5, pf_id=0)
    assert not permanent.is_transient and permanent.ends_at_ns is None
    assert transient.is_transient and transient.ends_at_ns == 15


def test_plan_orders_by_time():
    plan = FaultPlan()
    plan.add(FaultSpec("pf_down", at_ns=300, pf_id=0))
    plan.add(FaultSpec("pf_down", at_ns=100, pf_id=1))
    plan.add(FaultSpec("wire_loss", at_ns=200, loss_probability=0.1))
    assert [s.at_ns for s in plan.ordered()] == [100, 200, 300]
    assert len(plan) == 3


def test_plan_ties_keep_insertion_order():
    first = FaultSpec("pf_down", at_ns=50, pf_id=0)
    second = FaultSpec("pf_down", at_ns=50, pf_id=1)
    plan = FaultPlan().add(first).add(second)
    assert plan.ordered() == [first, second]


def test_random_plan_is_reproducible():
    a = FaultPlan.random(SimRandom(42), horizon_ns=10**9, count=8)
    b = FaultPlan.random(SimRandom(42), horizon_ns=10**9, count=8)
    assert a.describe() == b.describe()
    assert len(a) == 8


def test_random_plan_varies_with_seed():
    a = FaultPlan.random(SimRandom(1), horizon_ns=10**9, count=8)
    b = FaultPlan.random(SimRandom(2), horizon_ns=10**9, count=8)
    assert a.describe() != b.describe()


def test_random_plan_specs_are_valid():
    plan = FaultPlan.random(SimRandom(7), horizon_ns=10**9, count=32)
    for spec in plan:
        assert spec.kind in FAULT_KINDS
        assert 0 <= spec.at_ns < 10**9
        assert spec.duration_ns >= 1


def test_random_plan_rejects_throttle_on_single_node():
    with pytest.raises(ValueError):
        FaultPlan.random(SimRandom(0), horizon_ns=10**6, count=1,
                         kinds=("qpi_throttle",), num_nodes=1)
