"""End-to-end octoSSD PF failover: fio degrades to the single-port
(remote-DMA) plateau during the outage and recovers afterwards."""

import pytest

from repro.experiments.fig15_nvme import FIO_THREADS, build_nvme_host
from repro.experiments.fig_failover import SSD_STREAMS, run_ssd_failover
from repro.workloads.fio import spawn_fio_fleet
from repro.workloads.stream_bench import StreamThread

DURATION_NS = 300_000_000
FAIL_AT_NS = 100_000_000
RECOVER_AT_NS = 200_000_000
SAMPLE_NS = 25_000_000


@pytest.fixture(scope="module")
def ssd_run():
    return run_ssd_failover(DURATION_NS, FAIL_AT_NS, RECOVER_AT_NS,
                            sample_ns=SAMPLE_NS)


def single_port_remote_gbps():
    """fio throughput when every drive has only its socket-0 port, under
    the same UPI congestion — the level failover should degrade to."""
    host, drivers = build_nvme_host(octo_mode=False, dual_port=False)
    machine = host.machine
    fio_cores = machine.cores_on_node(1)[:FIO_THREADS]
    fleet = spawn_fio_fleet(host, fio_cores, drivers, DURATION_NS)
    for i in range(SSD_STREAMS):
        StreamThread(host, machine.cores_on_node(0)[i], target_node=1,
                     kind="write", duration_ns=DURATION_NS)
    machine.env.run(until=DURATION_NS + SAMPLE_NS)
    return sum(f.throughput_gbps() for f in fleet)


def test_fleet_survives_the_outage(ssd_run):
    assert all(not f.errors for f in ssd_run.fleet)
    assert all(f.throughput_gbps() > 0 for f in ssd_run.fleet)
    assert [d.failovers for d in ssd_run.drivers] == [1] * 4
    assert [d.recoveries for d in ssd_run.drivers] == [1] * 4


def test_traffic_hands_off_between_ports(ssd_run):
    pf0, pf1 = ssd_run.series["pf0"], ssd_run.series["pf1"]
    # Before the fault remote fio is served by its local port 1.
    assert pf1.mean(SAMPLE_NS, FAIL_AT_NS) > 100.0
    assert pf0.mean(SAMPLE_NS, FAIL_AT_NS) == pytest.approx(0.0)
    # During the outage port 0 carries everything.
    assert pf0.mean(FAIL_AT_NS + SAMPLE_NS, RECOVER_AT_NS) > 100.0
    assert pf1.mean(FAIL_AT_NS + SAMPLE_NS,
                    RECOVER_AT_NS) == pytest.approx(0.0)
    # After recovery traffic returns to port 1.
    assert pf1.mean(RECOVER_AT_NS + SAMPLE_NS) > 100.0


def test_degraded_plateau_matches_single_port_remote(ssd_run):
    degraded = ssd_run.series["pf0"].mean(FAIL_AT_NS + SAMPLE_NS,
                                          RECOVER_AT_NS)
    remote = single_port_remote_gbps()
    # Losing the local port costs exactly the locality advantage: the
    # fallback is nonuniform DMA across the congested UPI, not a dead
    # blockdev.
    assert degraded == pytest.approx(remote, rel=0.05)


def test_recovery_restores_prefault_plateau(ssd_run):
    pre = ssd_run.series["pf1"].mean(SAMPLE_NS, FAIL_AT_NS)
    post = ssd_run.series["pf1"].mean(RECOVER_AT_NS + SAMPLE_NS)
    assert post == pytest.approx(pre, rel=0.05)
    # ...and the degraded plateau really was below it.
    degraded = ssd_run.series["pf0"].mean(FAIL_AT_NS + SAMPLE_NS,
                                          RECOVER_AT_NS)
    assert degraded < 0.9 * pre


def test_trace_has_fault_and_team_markers(ssd_run):
    joined = "\n".join(ssd_run.trace)
    assert "fault.pf_down" in joined
    assert "recover.pf_down" in joined
    assert "failover.begin" in joined
    assert "failover.applied" in joined
    assert "recovery.applied" in joined
    assert "nvme-driver" in joined


def test_same_seed_runs_are_byte_identical():
    a = run_ssd_failover(100_000_000, 30_000_000, 60_000_000,
                         sample_ns=SAMPLE_NS)
    b = run_ssd_failover(100_000_000, 30_000_000, 60_000_000,
                         sample_ns=SAMPLE_NS)
    assert a.trace == b.trace
    assert a.trace
    assert a.series["pf0"].values == b.series["pf0"].values
    assert a.series["pf1"].values == b.series["pf1"].values
