"""End-to-end PF failover: the octoNIC degrades gracefully, never dies."""

import pytest

from repro.core import Testbed
from repro.experiments.fig_failover import SAMPLE_NS, run_failover
from repro.nic.packet import Flow
from repro.units import KB
from repro.workloads.netperf import TcpStream

DURATION_NS = 600_000_000
FAIL_AT_NS = 200_000_000
RECOVER_AT_NS = 400_000_000


@pytest.fixture(scope="module")
def failover_run():
    return run_failover(DURATION_NS, FAIL_AT_NS, RECOVER_AT_NS, seed=0)


def remote_baseline_gbps(seed=0):
    """Steady-state throughput when DMA must cross the interconnect."""
    testbed = Testbed("remote", seed=seed)
    workload = TcpStream(testbed.server, testbed.server_core(0),
                         Flow.make(0), 64 * KB, "rx",
                         duration_ns=DURATION_NS)
    testbed.run(DURATION_NS + 50_000_000)
    return workload.throughput_gbps()


def test_failover_completes_without_raising(failover_run):
    assert failover_run.workload.meter.messages_total > 0
    assert failover_run.team.failovers == 1
    assert failover_run.team.recoveries == 1


def test_traffic_hands_off_between_pfs(failover_run):
    pf0, pf1 = failover_run.series["pf0"], failover_run.series["pf1"]
    # Before the fault all Rx lands on PF1 (local to socket 1).
    assert pf1.mean(SAMPLE_NS, FAIL_AT_NS) > 20.0
    assert pf0.mean(SAMPLE_NS, FAIL_AT_NS) == pytest.approx(0.0)
    # During the outage PF0 carries everything.
    assert pf0.mean(FAIL_AT_NS + SAMPLE_NS, RECOVER_AT_NS) > 15.0
    assert pf1.mean(FAIL_AT_NS + SAMPLE_NS,
                    RECOVER_AT_NS) == pytest.approx(0.0)
    # After recovery traffic returns to PF1.
    assert pf1.mean(RECOVER_AT_NS + SAMPLE_NS) > 20.0


def test_degraded_throughput_matches_remote_dma(failover_run):
    degraded = failover_run.series["pf0"].mean(FAIL_AT_NS + SAMPLE_NS,
                                               RECOVER_AT_NS)
    remote = remote_baseline_gbps()
    # Losing the local PF costs exactly the locality advantage: the
    # fallback path is nonuniform DMA, not a broken netdev.
    assert degraded == pytest.approx(remote, rel=0.05)


def test_recovery_restores_prefault_throughput(failover_run):
    pre = failover_run.series["pf1"].mean(SAMPLE_NS, FAIL_AT_NS)
    post = failover_run.series["pf1"].mean(RECOVER_AT_NS + SAMPLE_NS)
    assert post == pytest.approx(pre, rel=0.05)


def test_same_seed_runs_are_byte_identical():
    a = run_failover(300_000_000, 100_000_000, 200_000_000, seed=7)
    b = run_failover(300_000_000, 100_000_000, 200_000_000, seed=7)
    assert a.trace == b.trace
    assert a.trace  # non-empty: faults and recoveries were recorded
    assert a.series["pf0"].values == b.series["pf0"].values
    assert a.series["pf1"].values == b.series["pf1"].values


def test_trace_contains_fault_and_recovery_markers(failover_run):
    joined = "\n".join(failover_run.trace)
    assert "fault.pf_down" in joined
    assert "recover.pf_down" in joined
    assert "failover.begin" in joined
    assert "failover.applied" in joined
    assert "recovery.applied" in joined


def test_permanent_failure_stays_degraded():
    run = run_failover(300_000_000, fail_at_ns=100_000_000, seed=0)
    pf0 = run.series["pf0"]
    assert pf0.mean(100_000_000 + SAMPLE_NS) > 15.0
    assert run.series["pf1"].mean(100_000_000 + SAMPLE_NS) == \
        pytest.approx(0.0)
    assert run.team.failovers == 1
    assert run.team.recoveries == 0
