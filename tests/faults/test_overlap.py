"""Overlapping transient faults: nesting, recovery order, determinism.

The injector must handle faults whose active windows overlap on the same
target — e.g. a PF that dies while its link is already degraded — and
recover each fault independently, in end-time order, without leaving the
target in a mixed state.  Same plan + same seed must produce a
byte-identical event trace.
"""

from repro.core import Testbed
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.nic.packet import Flow
from repro.units import KB
from repro.workloads.netperf import TcpStream


def run_plan(plan, config="ioctopus", seed=0, until_ns=2_000_000,
             traffic=False):
    testbed = Testbed(config, seed=seed)
    if traffic:
        TcpStream(testbed.server, testbed.server_core(0), Flow.make(0),
                  64 * KB, "rx", duration_ns=until_ns)
    injector = FaultInjector(testbed.env, plan, device=testbed.server.nic,
                             wire=testbed.wire,
                             machine=testbed.server.machine,
                             rng=testbed.server.machine.rng)
    injector.start()
    testbed.run(until_ns)
    return testbed, injector


def nested_plan():
    """pf_down strictly inside a pcie_degrade window, same PF."""
    return FaultPlan([
        FaultSpec("pcie_degrade", at_ns=100_000, duration_ns=900_000,
                  pf_id=1, lanes=2),
        FaultSpec("pf_down", at_ns=300_000, duration_ns=200_000, pf_id=1),
    ])


def test_pf_down_nested_in_degrade_same_pf():
    testbed, injector = run_plan(nested_plan())
    nic = testbed.server.nic
    # Both faults fired, both recovered, and the PF ends healthy at
    # full width.
    assert nic.pf_alive(1)
    events = [(t, e) for t, e, _ in injector.events]
    assert events == [
        (100_000, "fault.pcie_degrade"),
        (300_000, "fault.pf_down"),
        (500_000, "recover.pf_down"),
        (1_000_000, "recover.pcie_degrade"),
    ]


def test_nested_recovery_keeps_outer_fault_active():
    # Stop between the inner recovery and the outer one: the PF must be
    # alive again but still degraded.
    testbed, injector = run_plan(nested_plan(), until_ns=700_000)
    nic = testbed.server.nic
    assert nic.pf_alive(1)
    assert nic.pf(1).link.is_degraded
    assert [e for _, e, _ in injector.events] == [
        "fault.pcie_degrade", "fault.pf_down", "recover.pf_down"]


def test_overlap_failover_and_recovery_under_traffic():
    # The octoNIC fails over off PF1 when it dies mid-degrade and steers
    # back after recovery; the degrade window must not confuse either.
    testbed, injector = run_plan(nested_plan(), traffic=True)
    team = testbed.server.driver
    assert team.failovers == 1
    assert team.recoveries == 1
    assert testbed.server.nic.pf_alive(1)


def test_same_seed_runs_trace_byte_identically():
    def trace(seed):
        testbed, injector = run_plan(nested_plan(), seed=seed,
                                     traffic=True)
        machine_trace = [(r.t_ns, r.source, r.event, r.detail)
                         for r in testbed.server.machine.tracer.records]
        return injector.rendered_events(), machine_trace

    first = trace(seed=7)
    second = trace(seed=7)
    assert first == second


def test_different_seeds_may_differ_but_stay_valid():
    # Determinism is per-seed, not global: another seed still fires the
    # same plan (fault times are plan-fixed), and recovers everything.
    testbed, injector = run_plan(nested_plan(), seed=11, traffic=True)
    assert [e for _, e, _ in injector.events] == [
        "fault.pcie_degrade", "fault.pf_down", "recover.pf_down",
        "recover.pcie_degrade"]
    assert testbed.server.nic.pf_alive(1)
