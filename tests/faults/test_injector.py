"""Tests for the fault injector against live testbed components."""

import pytest

from repro.core import Testbed
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.nic.packet import Flow
from repro.sim.errors import DeviceGoneError
from repro.sim.rng import SimRandom


def make_injector(plan, config="ioctopus", seed=0):
    testbed = Testbed(config, seed=seed)
    injector = FaultInjector(testbed.env, plan, device=testbed.server.nic,
                            wire=testbed.wire,
                            machine=testbed.server.machine,
                            rng=testbed.server.machine.rng)
    return testbed, injector


def test_pf_down_fires_and_recovers_on_time():
    plan = FaultPlan().add(
        FaultSpec("pf_down", at_ns=1_000, duration_ns=2_000, pf_id=1))
    testbed, injector = make_injector(plan)
    nic = testbed.server.nic
    injector.start()
    testbed.run(999)
    assert nic.pf_alive(1)
    testbed.run(1_500)
    assert not nic.pf_alive(1)
    assert not nic.pf(1).alive
    testbed.run(3_500)
    assert nic.pf_alive(1)
    assert [(t, e) for t, e, _ in injector.events] == [
        (1_000, "fault.pf_down"), (3_000, "recover.pf_down")]


def test_permanent_fault_never_recovers():
    plan = FaultPlan().add(FaultSpec("pf_down", at_ns=500, pf_id=1))
    testbed, injector = make_injector(plan)
    injector.start()
    testbed.run(1_000_000)
    assert not testbed.server.nic.pf_alive(1)
    assert len(injector.events) == 1


def test_dead_pf_rejects_dma():
    plan = FaultPlan().add(FaultSpec("pf_down", at_ns=100, pf_id=0))
    testbed, injector = make_injector(plan)
    injector.start()
    testbed.run(200)
    pf = testbed.server.nic.pf(0)
    region = testbed.server.machine.alloc_region("buf", 0, 4096)
    with pytest.raises(DeviceGoneError):
        pf.dma_write(region, 64)
    with pytest.raises(DeviceGoneError):
        pf.dma_read(region, 64)
    with pytest.raises(DeviceGoneError):
        pf.mmio_latency(0)


def test_pcie_degrade_reduces_rate_then_restores():
    plan = FaultPlan().add(
        FaultSpec("pcie_degrade", at_ns=1_000, duration_ns=1_000,
                  pf_id=0, lanes=2))
    testbed, injector = make_injector(plan)
    link = testbed.server.nic.pf(0).link
    full_rate = link.bytes_per_sec
    injector.start()
    testbed.run(1_500)
    assert link.is_degraded
    assert link.active_lanes == 2
    assert link.bytes_per_sec == pytest.approx(full_rate * 2 / 8)
    testbed.run(2_500)
    assert not link.is_degraded
    assert link.bytes_per_sec == pytest.approx(full_rate)


def test_wire_loss_burst_drops_and_stops():
    plan = FaultPlan().add(
        FaultSpec("wire_loss", at_ns=0, duration_ns=10_000,
                  loss_probability=0.5))
    testbed, injector = make_injector(plan)
    wire = testbed.wire
    injector.start()
    testbed.run(100)
    assert wire.is_impaired
    wire.send("a_to_b", 1000, 1448)
    assert wire.drops_total > 0
    assert wire.retransmitted_packets == wire.drops_total
    testbed.run(20_000)
    assert not wire.is_impaired
    before = wire.drops_total
    wire.send("a_to_b", 1000, 1448)
    assert wire.drops_total == before


def test_qpi_throttle_and_release():
    plan = FaultPlan().add(
        FaultSpec("qpi_throttle", at_ns=0, duration_ns=5_000,
                  src_node=0, dst_node=1, throttle_factor=0.25))
    testbed, injector = make_injector(plan)
    link = testbed.server.machine.interconnect.link(0, 1)
    base = link.server.bytes_per_sec
    injector.start()
    testbed.run(100)
    assert link.is_throttled
    assert link.server.bytes_per_sec == pytest.approx(base * 0.25)
    testbed.run(10_000)
    assert not link.is_throttled
    assert link.server.bytes_per_sec == pytest.approx(base)


def test_injector_validates_targets_up_front():
    plan = FaultPlan().add(FaultSpec("pf_down", at_ns=0, pf_id=7))
    testbed = Testbed("ioctopus")
    with pytest.raises(ValueError):
        FaultInjector(testbed.env, plan, device=testbed.server.nic)
    with pytest.raises(ValueError):
        FaultInjector(testbed.env,
                      FaultPlan().add(FaultSpec("wire_loss", at_ns=0,
                                                loss_probability=0.1)))


def test_injector_cannot_start_twice():
    testbed, injector = make_injector(FaultPlan())
    injector.start()
    with pytest.raises(RuntimeError):
        injector.start()


def test_same_seed_identical_event_trace():
    def run(seed):
        # Non-fatal kinds only: a random plan may down both PFs at once,
        # which is a legitimate dead-netdev outcome but not this test.
        plan = FaultPlan.random(SimRandom(seed), horizon_ns=40_000_000,
                                count=6, kinds=("pcie_degrade", "wire_loss",
                                                "qpi_throttle"))
        testbed, injector = make_injector(plan, seed=seed)
        # Live traffic so wire-loss faults actually draw from the rng.
        from repro.units import KB
        from repro.workloads.netperf import TcpStream
        TcpStream(testbed.server, testbed.server_core(0), Flow.make(0),
                  64 * KB, "rx", 40_000_000)
        injector.start()
        testbed.run(60_000_000)
        return injector.rendered_events(), testbed.wire.drops_total

    events_a, drops_a = run(3)
    events_b, drops_b = run(3)
    events_c, _ = run(4)
    assert events_a == events_b
    assert drops_a == drops_b
    assert events_a != events_c
