"""Tests for metrics collection."""

import pytest

from repro.metrics import (
    LatencyRecorder,
    ThroughputMeter,
    TimeSeries,
    format_table,
)


def test_throughput_meter_gbps():
    meter = ThroughputMeter(start_ns=0)
    meter.record(125_000, 10)  # 125 KB
    meter.finish(1_000_000)    # in 1 ms => 1 Gb/s
    assert meter.gbps() == pytest.approx(1.0)
    assert meter.mpps() == pytest.approx(0.01)
    assert meter.ktps() == pytest.approx(10.0)


def test_throughput_meter_requires_finish():
    meter = ThroughputMeter()
    meter.record(100)
    with pytest.raises(ValueError):
        meter.gbps()


def test_throughput_meter_warmup_offset():
    meter = ThroughputMeter(start_ns=500_000)
    meter.record(125_000)
    meter.finish(1_500_000)
    assert meter.gbps() == pytest.approx(1.0)


def test_latency_recorder_stats():
    recorder = LatencyRecorder()
    for value in (100, 300, 200, 400, 500):
        recorder.record(value)
    assert recorder.average() == 300
    assert recorder.min() == 100
    assert recorder.max() == 500
    assert recorder.percentile(50) == 300
    assert recorder.percentile(99) == 500
    assert recorder.percentile(0) == 100
    assert len(recorder) == 5


def test_latency_recorder_validation():
    recorder = LatencyRecorder()
    with pytest.raises(ValueError):
        recorder.record(-1)
    with pytest.raises(ValueError):
        recorder.average()
    recorder.record(10)
    with pytest.raises(ValueError):
        recorder.percentile(101)


def test_timeseries_samples_and_lookup():
    series = TimeSeries("pf0")
    series.sample(100, 1.0)
    series.sample(200, 2.0)
    series.sample(300, 3.0)
    assert len(series) == 3
    assert series.value_at(250) == 2.0
    assert series.value_at(300) == 3.0
    with pytest.raises(ValueError):
        series.value_at(50)


def test_timeseries_mean_over_window():
    series = TimeSeries("x")
    for t, v in ((0, 1.0), (100, 2.0), (200, 3.0), (300, 4.0)):
        series.sample(t, v)
    assert series.mean(t_from=100, t_to=200) == pytest.approx(2.5)
    with pytest.raises(ValueError):
        series.mean(t_from=1000)


def test_format_table_alignment():
    text = format_table(["name", "value"], [("a", 1.5), ("bb", 2.25)],
                        title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1]
    assert "1.50" in text and "2.25" in text


def test_latency_recorder_empty_errors():
    recorder = LatencyRecorder()
    for call in (recorder.average, recorder.min, recorder.max):
        with pytest.raises(ValueError, match="no samples"):
            call()
    with pytest.raises(ValueError, match="no samples"):
        recorder.percentile(50)


def test_latency_recorder_percentile_bounds():
    recorder = LatencyRecorder()
    for value in (10, 20, 30):
        recorder.record(value)
    assert recorder.percentile(0) == 10
    assert recorder.percentile(100) == 30
    with pytest.raises(ValueError, match="out of range"):
        recorder.percentile(-0.1)
    with pytest.raises(ValueError, match="out of range"):
        recorder.percentile(100.1)


def test_latency_recorder_cache_invalidated_on_record():
    recorder = LatencyRecorder()
    recorder.record(100)
    assert recorder.percentile(100) == 100
    # A later, larger sample must be visible to the cached sorted view.
    recorder.record(500)
    assert recorder.percentile(100) == 500
    assert recorder.percentile(50) == 100


def test_timeseries_value_at_exact_and_between():
    series = TimeSeries("t")
    series.sample(100, 1.0)
    series.sample(200, 2.0)
    assert series.value_at(100) == 1.0   # exact hit
    assert series.value_at(199) == 1.0   # holds until next sample
    assert series.value_at(10_000) == 2.0
    with pytest.raises(ValueError, match="no sample at or before"):
        series.value_at(99)


def test_timeseries_range_queries():
    series = TimeSeries("r")
    for t, v in ((0, 4.0), (100, 1.0), (200, 9.0), (300, 2.0)):
        series.sample(t, v)
    assert series.min(t_from=100, t_to=300) == 1.0
    assert series.max(t_from=100, t_to=200) == 9.0
    assert series.max() == 9.0
    # Inclusive bounds on both ends.
    assert series.min(t_from=300, t_to=300) == 2.0
    with pytest.raises(ValueError, match="no samples in range"):
        series.min(t_from=301, t_to=400)


def test_timeseries_empty_errors():
    series = TimeSeries("empty")
    with pytest.raises(ValueError):
        series.value_at(0)
    with pytest.raises(ValueError):
        series.mean()
