"""LatencyRecorder.merge and the compact mergeable LatencyDigest."""

import math

import pytest

from repro.metrics.collect import (DIGEST_BUCKETS_PER_OCTAVE, DigestError,
                                   DigestMergeError, LatencyDigest,
                                   LatencyRecorder)
from repro.sim.rng import SimRandom

#: Any digest percentile must sit within one log bucket of the exact
#: sample percentile.
BUCKET_REL = 2.0 ** (1.0 / DIGEST_BUCKETS_PER_OCTAVE) - 1.0


def _recorder(samples):
    recorder = LatencyRecorder()
    for sample in samples:
        recorder.record(sample)
    return recorder


def _heavy_tail(rng, n, scale=20_000):
    return [int(scale * (1.0 + 50.0 * rng.random() ** 8)) + i % 7
            for i in range(n)]


def test_recorder_merge_matches_concatenation():
    rng = SimRandom(7, "digest")
    a, b = _heavy_tail(rng, 400), _heavy_tail(rng, 700)
    merged = _recorder(a).merge(_recorder(b))
    whole = _recorder(a + b)
    for p in (0, 25, 50, 90, 99, 100):
        assert merged.percentile(p) == whole.percentile(p)
    assert merged.average() == whole.average()
    assert len(merged) == len(a) + len(b)


def test_recorder_merge_invalidates_sorted_cache():
    a = _recorder([5, 1, 9])
    assert a.percentile(50) == 5  # populates the sorted cache
    a.merge(_recorder([100, 200]))
    assert a.percentile(100) == 200


def test_digest_percentiles_within_one_bucket_of_exact():
    rng = SimRandom(3, "digest")
    samples = _heavy_tail(rng, 5000)
    recorder = _recorder(samples)
    digest = LatencyDigest.from_recorder(recorder)
    for p in (1, 10, 50, 90, 99, 99.9):
        exact = recorder.percentile(p)
        got = digest.percentile(p)
        assert abs(got - exact) <= math.ceil(BUCKET_REL * exact) + 1, (
            f"p{p}: digest {got} vs exact {exact}")
    # Extremes are tracked exactly, not bucketed.
    assert digest.percentile(0) == recorder.min()
    assert digest.percentile(100) == recorder.max()
    assert digest.average() == pytest.approx(recorder.average())


def test_digest_merge_equals_whole_digest_exactly():
    rng = SimRandom(11, "digest")
    shards = [_heavy_tail(rng, n) for n in (301, 999, 44, 2000)]
    merged = LatencyDigest()
    for shard in shards:
        merged.merge(LatencyDigest.from_recorder(_recorder(shard)))
    whole = LatencyDigest.from_recorder(
        _recorder([s for shard in shards for s in shard]))
    assert merged.to_dict() == whole.to_dict()
    for p in (50, 99):
        assert merged.percentile(p) == whole.percentile(p)


def test_digest_merge_order_independent():
    rng = SimRandom(2, "digest")
    shards = [LatencyDigest.from_recorder(_recorder(_heavy_tail(rng, n)))
              for n in (100, 500, 250)]
    forward = LatencyDigest()
    for shard in shards:
        forward.merge(shard)
    backward = LatencyDigest()
    for shard in reversed(shards):
        backward.merge(shard)
    assert forward.to_dict() == backward.to_dict()


def test_digest_round_trips_through_json_dict():
    rng = SimRandom(5, "digest")
    digest = LatencyDigest.from_recorder(
        _recorder(_heavy_tail(rng, 800)))
    clone = LatencyDigest.from_dict(digest.to_dict())
    assert clone.to_dict() == digest.to_dict()
    assert clone.percentile(99) == digest.percentile(99)


def test_digest_compactness():
    """A heavy-tailed million-ish sample set stays a few hundred
    buckets — the point of shipping digests instead of samples."""
    rng = SimRandom(9, "digest")
    digest = LatencyDigest()
    for sample in _heavy_tail(rng, 20_000, scale=1_000_000):
        digest.record(sample)
    assert digest.count == 20_000
    assert len(digest.buckets) < 200


def test_digest_validation():
    digest = LatencyDigest()
    with pytest.raises(ValueError):
        digest.record(-1)
    with pytest.raises(ValueError):
        digest.percentile(50)  # empty
    digest.record(10)
    with pytest.raises(ValueError):
        digest.percentile(101)
    bad = digest.to_dict()
    bad["count"] = 5
    with pytest.raises(ValueError):
        LatencyDigest.from_dict(bad)


def test_weighted_record_equals_repeated_records():
    weighted = LatencyDigest()
    weighted.record(5_000, n=7)
    repeated = LatencyDigest()
    for _ in range(7):
        repeated.record(5_000)
    assert weighted.to_dict() == repeated.to_dict()
    with pytest.raises(ValueError):
        weighted.record(1, n=0)


def test_empty_digest_percentile_raises_typed_error():
    with pytest.raises(DigestError):
        LatencyDigest().percentile(50)
    # DigestError subclasses ValueError, so legacy handlers still catch.
    assert issubclass(DigestError, ValueError)


def test_single_bucket_percentiles_interpolate_between_extremes():
    digest = LatencyDigest()
    digest.record(1000, n=3)
    digest.record(1001, n=3)
    assert len(digest.buckets) == 1            # 0.1% apart: same bucket
    assert digest.percentile(0) == 1000
    assert digest.percentile(100) == 1001
    # Every interior percentile sits within [min, max] — never the
    # bucket's geometric midpoint overshooting both.
    for p in (25, 50, 75, 99):
        assert 1000 <= digest.percentile(p) <= 1001
    lone = LatencyDigest()
    lone.record(4242, n=5)
    assert lone.percentile(50) == 4242


def test_merge_rejects_mismatched_bucket_bases():
    fine = LatencyDigest()
    coarse = LatencyDigest(buckets_per_octave=4)
    fine.record(100)
    coarse.record(100)
    with pytest.raises(DigestMergeError):
        fine.merge(coarse)
    # Non-default resolution round-trips through the dict form.
    clone = LatencyDigest.from_dict(coarse.to_dict())
    assert clone.buckets_per_octave == 4
    clone.merge(coarse)                        # same base: fine
    assert clone.count == 2


def test_digest_small_values_share_bucket_zero():
    digest = LatencyDigest()
    digest.record(0)
    digest.record(1)
    assert digest.buckets == {0: 2}
    assert digest.percentile(50) <= 1  # within bucket 0
    assert digest.percentile(0) == 0  # exact min
    assert digest.percentile(100) == 1  # exact max
