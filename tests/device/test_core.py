"""Unit tests for the generic octo-device core."""

import pytest

from repro.device import (
    CompletionPath,
    DmaQueuePair,
    DoorbellPath,
    MultiPfDevice,
)
from repro.pcie.fabric import bifurcate
from repro.topology import dell_skylake


@pytest.fixture
def machine():
    return dell_skylake()


def make_device(machine, nodes=(0, 1)):
    pfs = bifurcate(machine, 8 * len(nodes), list(nodes), name="dev")
    return MultiPfDevice(machine, pfs, name="dev")


def make_qp(machine, device, node=0):
    core = machine.cores_on_node(node)[0]
    return DmaQueuePair(0, core, machine, device.pf(0),
                       ring_name="ring0", ring_entries=64)


def test_device_requires_pfs(machine):
    with pytest.raises(ValueError):
        MultiPfDevice(machine, [])


def test_pf_queries(machine):
    dev = make_device(machine)
    assert dev.dual_port
    assert dev.pf_local_to(0).attach_node == 0
    assert dev.pf_local_to(1).attach_node == 1
    assert dev.pf(1) is dev.pfs[1]
    assert dev.pf_alive(0)
    for pf in dev.pfs:
        assert pf.device is dev


def test_surprise_remove_notifies_and_traces(machine):
    dev = make_device(machine)
    machine.tracer.enabled = True
    seen = []
    dev.add_pf_listener(
        on_failure=lambda pf: seen.append(("down", pf.pf_id)),
        on_recovery=lambda pf: seen.append(("up", pf.pf_id)))
    dev.surprise_remove(1, cause="test")
    assert not dev.pf_alive(1)
    assert dev.alive_pfs == [dev.pf(0)]
    dev.recover_pf(1)
    assert seen == [("down", 1), ("up", 1)]
    counts = machine.tracer.counts()
    assert counts["dev.pf_down"] == 1
    assert counts["dev.pf_up"] == 1


def test_remove_and_recover_validate_state(machine):
    dev = make_device(machine)
    dev.surprise_remove(0)
    with pytest.raises(ValueError):
        dev.surprise_remove(0)
    with pytest.raises(ValueError):
        dev.recover_pf(1)


def test_qp_validation_and_accounting(machine):
    dev = make_device(machine)
    with pytest.raises(ValueError):
        DmaQueuePair(0, machine.cores_on_node(0)[0], machine,
                     ring_name="bad", ring_entries=0)
    qp = make_qp(machine, dev)
    assert qp.node_id == 0
    assert qp.is_drained()
    qp.outstanding += 4
    assert not qp.is_drained()
    qp.account(4, 4096)
    assert qp.packets_total == 4
    assert qp.bytes_total == 4096
    assert qp.descriptors_until_wrap() == 60


def test_doorbell_scales_one_sample(machine):
    dev = make_device(machine)
    qp = make_qp(machine, dev)
    bell = DoorbellPath(machine)
    one = bell.ring(qp, 0)
    three = bell.ring(qp, 0, times=3)
    # Local route: constant half-RTT, so a scaled burst is exact.
    assert three == 3 * one
    assert bell.rings == 4
    with pytest.raises(ValueError):
        bell.ring(qp, 0, times=0)


def test_completion_path_counters(machine):
    dev = make_device(machine)
    qp = make_qp(machine, dev)
    completion = CompletionPath(machine, irq_ns=900)
    assert completion.write_back(qp, 4) >= 0
    with pytest.raises(ValueError):
        completion.write_back(qp, 0)
    completion.consume(qp, 8, node=0)
    assert completion.entries == 8
    cost = completion.interrupt(qp, 64, 1, machine.now)
    assert cost % 900 == 0
    assert completion.interrupts >= 1
