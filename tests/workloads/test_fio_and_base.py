"""Tests for the fio workload and the workload base class."""

import pytest

from repro.core.configurations import Host
from repro.nic.device import NicDevice
from repro.nic.firmware import StandardFirmware
from repro.nvme import NvmeController, NvmeDriver
from repro.os_model.driver import StandardDriver
from repro.pcie.fabric import bifurcate
from repro.topology import dell_skylake
from repro.workloads import FioReader, spawn_fio_fleet
from repro.workloads.base import Workload

DUR = 20_000_000


def make_host():
    machine = dell_skylake()
    nic = NicDevice(machine, bifurcate(machine, 16, [0], name="n"),
                    StandardFirmware(1))
    return Host(machine, nic, StandardDriver(machine, nic, 0))


def test_workload_validates_duration():
    host = make_host()
    with pytest.raises(ValueError):
        Workload(host, duration_ns=100, warmup_ns=100)


def test_fio_reader_measures_throughput():
    host = make_host()
    ssd = NvmeController(host.machine,
                         bifurcate(host.machine, 8, [0], name="ssd"))
    driver = NvmeDriver(host.machine, ssd)
    reader = FioReader(host, host.machine.cores_on_node(0)[0], driver,
                       DUR, warmup_ns=4_000_000)
    host.machine.env.run(until=DUR + 4_000_000)
    # One thread against a 6.2 GB/s drive: flash-bound ~= 49 Gb/s.
    assert 30 < reader.throughput_gbps() < 60


def test_fio_fleet_spreads_over_drives():
    host = make_host()
    ssds = [NvmeController(host.machine,
                           bifurcate(host.machine, 8, [0], name=f"s{i}"),
                           name=f"s{i}") for i in range(2)]
    drivers = [NvmeDriver(host.machine, s) for s in ssds]
    cores = host.machine.cores_on_node(1)[:4]
    fleet = spawn_fio_fleet(host, cores, drivers, DUR, 4_000_000)
    assert [f.driver.controller.name for f in fleet] == [
        "s0", "s1", "s0", "s1"]
    host.machine.env.run(until=DUR + 4_000_000)
    for ssd in ssds:
        assert ssd.read_bytes > 0


def test_fio_fleet_requires_drivers():
    host = make_host()
    with pytest.raises(ValueError):
        spawn_fio_fleet(host, host.machine.cores[:1], [], DUR)


def test_remote_fio_slower_than_local_under_congestion():
    from repro.workloads.stream_bench import StreamThread
    rates = {}
    for placement in ("local", "remote"):
        host = make_host()
        machine = host.machine
        ssd = NvmeController(machine,
                             bifurcate(machine, 8, [0], name="ssd"))
        driver = NvmeDriver(machine, ssd)
        node = 0 if placement == "local" else 1
        core = machine.cores_on_node(node)[6]
        reader = FioReader(host, core, driver, DUR, 4_000_000)
        for i in range(6):
            StreamThread(host, machine.cores_on_node(0)[i], target_node=1,
                         kind="write", duration_ns=DUR,
                         warmup_ns=4_000_000)
        machine.env.run(until=DUR + 4_000_000)
        rates[placement] = reader.throughput_gbps()
    assert rates["remote"] < rates["local"]
