"""Tests for the workload models."""

import pytest

from repro.core import Testbed
from repro.nic.packet import Flow
from repro.workloads import (
    MemcachedServer,
    PageRank,
    Pktgen,
    TcpRr,
    TcpStream,
    UdpPingPong,
    spawn_stream_pairs,
)
from repro.workloads.stream_bench import StreamThread

DUR = 8_000_000
WARM = 1_000_000


def test_tcp_stream_validates_args():
    testbed = Testbed("local")
    with pytest.raises(ValueError):
        TcpStream(testbed.server, testbed.server_core(0), Flow.make(0),
                  1448, "sideways", DUR, WARM)
    with pytest.raises(ValueError):
        TcpStream(testbed.server, testbed.server_core(0), Flow.make(0),
                  0, "rx", DUR, WARM)
    with pytest.raises(ValueError):
        TcpStream(testbed.server, testbed.server_core(0), Flow.make(0),
                  1448, "rx", duration_ns=100, warmup_ns=200)


def test_tcp_stream_rx_measures_throughput():
    testbed = Testbed("local")
    workload = TcpStream(testbed.server, testbed.server_core(0),
                         Flow.make(0), 65536, "rx", DUR, WARM)
    testbed.run(DUR + 2_000_000)
    assert 10 < workload.throughput_gbps() < 40


def test_tcp_stream_tx_measures_throughput():
    testbed = Testbed("local")
    workload = TcpStream(testbed.server, testbed.server_core(0),
                         Flow.make(0), 65536, "tx", DUR, WARM)
    testbed.run(DUR + 2_000_000)
    assert 25 < workload.throughput_gbps() < 60


def test_pktgen_rates_match_paper():
    mpps = {}
    for config in ("local", "remote"):
        testbed = Testbed(config)
        workload = Pktgen(testbed.server, testbed.server_core(0), 1500,
                          DUR, WARM)
        testbed.run(DUR + 2_000_000)
        mpps[config] = workload.mpps()
    assert mpps["local"] == pytest.approx(4.1, rel=0.05)
    assert mpps["remote"] == pytest.approx(3.08, rel=0.05)


def test_pktgen_validates_packet_size():
    testbed = Testbed("local")
    with pytest.raises(ValueError):
        Pktgen(testbed.server, testbed.server_core(0), 10, DUR, WARM)


def test_tcp_rr_records_latencies():
    testbed = Testbed("local")
    workload = TcpRr(testbed, 64, DUR, WARM)
    testbed.run(DUR + 2_000_000)
    assert len(workload.latencies) > 50
    assert workload.average_rtt_ns() > 1000
    assert workload.p99_rtt_ns() >= workload.average_rtt_ns() * 0.9


def test_udp_pingpong_latency():
    testbed = Testbed("local")
    workload = UdpPingPong(testbed, 64, DUR, WARM)
    testbed.run(DUR + 2_000_000)
    assert 1 < workload.average_one_way_us() < 50


def test_stream_thread_moves_bytes_across_interconnect():
    testbed = Testbed("local")
    host = testbed.server
    core = host.machine.cores_on_node(0)[5]
    stream = StreamThread(host, core, target_node=1, kind="write",
                          duration_ns=DUR, warmup_ns=WARM)
    testbed.run(DUR + 2_000_000)
    assert stream.bandwidth_gbps() > 5
    assert testbed.server.machine.interconnect.link(
        0, 1).server.bytes_total > 0


def test_stream_thread_validates_kind():
    testbed = Testbed("local")
    with pytest.raises(ValueError):
        StreamThread(testbed.server, testbed.server_core(0), 1, "scan",
                     DUR, WARM)


def test_spawn_stream_pairs_places_and_runs():
    testbed = Testbed("local")
    pairs = spawn_stream_pairs(testbed.server, 3, DUR, WARM,
                               skip_cores=[testbed.server_core(0)])
    assert len(pairs) == 3
    used = {t.core.core_id for p in pairs
            for t in (p.reader.thread, p.writer.thread)}
    assert len(used) == 6
    assert testbed.server_core(0).core_id not in used
    testbed.run(DUR + 2_000_000)
    assert all(p.bandwidth_gbps() > 0 for p in pairs)


def test_spawn_stream_pairs_rejects_overflow():
    testbed = Testbed("local")
    with pytest.raises(RuntimeError):
        spawn_stream_pairs(testbed.server, 100, DUR)


def test_memcached_set_fraction_validated():
    testbed = Testbed("local")
    cores = testbed.server.machine.cores_on_node(0)[:2]
    with pytest.raises(ValueError):
        MemcachedServer(testbed.server, cores, 1.5, DUR)
    with pytest.raises(ValueError):
        MemcachedServer(testbed.server, [], 0.5, DUR)


def test_memcached_counts_transactions():
    testbed = Testbed("local")
    cores = testbed.server.machine.cores_on_node(0)[:2]
    server = MemcachedServer(testbed.server, cores, 0.5, DUR, WARM)
    testbed.run(DUR + 2_000_000)
    assert server.transactions_ktps() > 1


def test_memcached_offered_load_caps_rate():
    testbed = Testbed("local")
    cores = testbed.server.machine.cores_on_node(0)[:2]
    server = MemcachedServer(testbed.server, cores, 0.0, DUR, WARM,
                             offered_ktps=2.0)
    testbed.run(DUR + 2_000_000)
    assert server.transactions_ktps() == pytest.approx(2.0, rel=0.2)


def test_pagerank_runs_to_completion():
    testbed = Testbed("local")
    cores = (testbed.server.machine.cores_on_node(0)[6:10]
             + testbed.server.machine.cores_on_node(1)[:4])
    pagerank = PageRank(testbed.server, cores,
                        work_bytes_per_thread=2_000_000)
    while not pagerank.finished():
        testbed.run(testbed.env.now + 5_000_000)
    assert pagerank.runtime_ns() > 0
    assert len(pagerank.completion_times) == 8


def test_pagerank_needs_cores():
    testbed = Testbed("local")
    with pytest.raises(ValueError):
        PageRank(testbed.server, [], 1000)
