"""Tests for QPI/UPI interconnect links."""

import pytest

from repro.interconnect import Interconnect
from repro.sim import Environment


@pytest.fixture
def qpi():
    return Interconnect(Environment(), num_nodes=2,
                        bytes_per_sec_per_direction=28e9,
                        crossing_latency_ns=30)


def test_same_node_traverse_is_free(qpi):
    assert qpi.traverse(0, 0, 10_000) == 0


def test_crossing_includes_latency_and_service(qpi):
    delay = qpi.traverse(0, 1, 2800)
    # 30 ns crossing + 2800 B / 28 GB/s = 100 ns
    assert delay == 30 + 100


def test_directions_are_independent(qpi):
    qpi.traverse(0, 1, 28_000_000)  # load 0->1 heavily
    # 1->0 unaffected
    assert qpi.traverse(1, 0, 2800) == 130


def test_backlog_accumulates(qpi):
    first = qpi.traverse(0, 1, 28_000)
    second = qpi.traverse(0, 1, 28_000)
    assert second > first


def test_round_trip_charges_both_directions(qpi):
    delay = qpi.round_trip(0, 1, 64, 2800)
    fwd = qpi.link(0, 1).server.bytes_total
    back = qpi.link(1, 0).server.bytes_total
    assert (fwd, back) == (64, 2800)
    assert delay >= 60  # two crossings


def test_round_trip_same_node_free(qpi):
    assert qpi.round_trip(1, 1, 64, 2800) == 0


def test_missing_link_raises(qpi):
    with pytest.raises(KeyError):
        qpi.link(0, 0)
    with pytest.raises(KeyError):
        qpi.link(0, 5)


def test_probe_delay_does_not_charge(qpi):
    before = qpi.link(0, 1).server.bytes_total
    qpi.link(0, 1).probe_delay(64)
    assert qpi.link(0, 1).server.bytes_total == before


def test_num_links_for_n_nodes():
    ic = Interconnect(Environment(), num_nodes=4,
                      bytes_per_sec_per_direction=1e9,
                      crossing_latency_ns=10)
    assert len(ic.links()) == 12  # 4*3 directed pairs


def test_invalid_node_count():
    with pytest.raises(ValueError):
        Interconnect(Environment(), num_nodes=0,
                     bytes_per_sec_per_direction=1e9, crossing_latency_ns=1)


def test_throttle_reduces_rate_and_estimates(qpi):
    link = qpi.link(0, 1)
    base = link.server.bytes_per_sec
    link.throttle(0.5)
    assert link.is_throttled
    assert link.server.bytes_per_sec == pytest.approx(base * 0.5)
    assert link.estimator.bytes_per_sec == pytest.approx(base * 0.5)
    link.unthrottle()
    assert not link.is_throttled
    assert link.server.bytes_per_sec == pytest.approx(base)


def test_throttled_crossing_is_slower(qpi):
    fast = qpi.traverse(0, 1, 28_000)
    qpi.link(0, 1).throttle(0.25)
    slow = qpi.traverse(0, 1, 28_000)
    assert slow > fast


def test_throttle_validates_factor(qpi):
    link = qpi.link(0, 1)
    with pytest.raises(ValueError):
        link.throttle(0.0)
    with pytest.raises(ValueError):
        link.throttle(1.5)
