"""Tests for IOctoSG fragment hints (§3.3)."""

import pytest

from repro.core.sg import (
    SgFragment,
    plan_fragments,
    transmit_with_hints,
    transmit_without_hints,
)
from repro.nic.device import NicDevice
from repro.nic.firmware import OctoFirmware
from repro.pcie.fabric import bifurcate
from repro.topology import dell_r730


@pytest.fixture
def setup():
    machine = dell_r730()
    pfs = bifurcate(machine, 16, [0, 1], name="octo")
    device = NicDevice(machine, pfs, OctoFirmware(2))
    frag0 = SgFragment(machine.alloc_region("page-a", 0, 4096), 4096)
    frag1 = SgFragment(machine.alloc_region("page-b", 1, 4096), 4096)
    return machine, device, [frag0, frag1]


def test_fragment_validates_size():
    from repro.memory.region import Region
    region = Region(name="r", home_node=0, size=64)
    with pytest.raises(ValueError):
        SgFragment(region, 0)


def test_plan_assigns_local_pf_per_fragment(setup):
    machine, device, fragments = setup
    hints = plan_fragments(device, fragments)
    assert [h.pf_id for h in hints] == [0, 1]


def test_plan_falls_back_to_pf0_without_local_pf():
    machine = dell_r730()
    (pf,) = bifurcate(machine, 16, [0])
    device = NicDevice(machine, [pf], OctoFirmware(1))
    fragment = SgFragment(machine.alloc_region("page", 1, 4096), 4096)
    hints = plan_fragments(device, [fragment])
    assert hints[0].pf_id == 0


def test_hinted_transmit_avoids_interconnect(setup):
    machine, device, fragments = setup
    hints = plan_fragments(device, fragments)
    transmit_with_hints(device, hints)
    for link in machine.interconnect.links():
        assert link.server.bytes_total == 0


def test_unhinted_transmit_crosses_interconnect(setup):
    machine, device, fragments = setup
    hints = plan_fragments(device, fragments)
    transmit_without_hints(device, 0, hints)
    # Fragment on node 1 read through PF 0 crosses the interconnect.
    crossed = sum(link.server.bytes_total
                  for link in machine.interconnect.links())
    assert crossed >= 4096


def test_empty_hint_list_rejected(setup):
    machine, device, fragments = setup
    with pytest.raises(ValueError):
        transmit_with_hints(device, [])
    with pytest.raises(ValueError):
        transmit_without_hints(device, 0, [])
