"""Tests for the octoNIC team driver (IOctopus mode)."""

import pytest

from repro.core import Testbed
from repro.core.teaming import OctoTeamDriver
from repro.nic.device import NicDevice
from repro.nic.firmware import OctoFirmware, StandardFirmware
from repro.nic.packet import Flow
from repro.pcie.fabric import bifurcate
from repro.sim.errors import DeviceGoneError
from repro.topology import dell_r730


def test_team_driver_requires_octo_firmware():
    machine = dell_r730()
    pfs = bifurcate(machine, 16, [0, 1])
    device = NicDevice(machine, pfs, StandardFirmware(2))
    with pytest.raises(TypeError):
        OctoTeamDriver(machine, device)


def test_team_driver_requires_pf_on_every_node():
    machine = dell_r730()
    pfs = bifurcate(machine, 16, [0])
    device = NicDevice(machine, pfs, OctoFirmware(1))
    with pytest.raises(ValueError):
        OctoTeamDriver(machine, device)


def test_queues_bound_to_local_pf():
    testbed = Testbed("ioctopus")
    driver = testbed.server.driver
    machine = testbed.server.machine
    for core in machine.cores:
        rxq = driver.rx_queue_for_core(core)
        txq = driver.tx_queue_for_core(core)
        assert rxq.pf.attach_node == core.node_id
        assert txq.pf.attach_node == core.node_id


def test_single_netdev_single_mac():
    testbed = Testbed("ioctopus")
    assert testbed.server.driver.dst_mac() == OctoFirmware.MAC


def test_steer_rx_immediate_updates_both_tables():
    testbed = Testbed("ioctopus")
    driver = testbed.server.driver
    firmware = testbed.server.nic.firmware
    core = testbed.server.machine.cores_on_node(1)[2]
    flow = Flow.make(0)
    driver.steer_rx(flow, core, immediate=True)
    assert firmware.mpfs.steer(flow, OctoFirmware.MAC) == 1
    assert firmware.arfs[1].lookup(flow).core is core


def test_steer_rx_migration_is_deferred_until_drained():
    testbed = Testbed("ioctopus")
    driver = testbed.server.driver
    firmware = testbed.server.nic.firmware
    env = testbed.env
    flow = Flow.make(0)
    old_core = testbed.server.machine.cores_on_node(0)[0]
    new_core = testbed.server.machine.cores_on_node(1)[0]
    driver.steer_rx(flow, old_core, immediate=True)
    # Simulate outstanding packets on the old queue.
    old_queue = driver.rx_queue_for_core(old_core)
    old_queue.outstanding = 100
    driver.steer_rx(flow, new_core)
    # Not yet applied.
    assert firmware.mpfs.steer(flow, OctoFirmware.MAC) == 0
    env.run(until=env.now + 10_000_000)
    assert firmware.mpfs.steer(flow, OctoFirmware.MAC) == 1


def test_steering_update_counter():
    testbed = Testbed("ioctopus")
    driver = testbed.server.driver
    before = driver.steering_updates
    driver.steer_rx(Flow.make(0), testbed.server_core(0), immediate=True)
    assert driver.steering_updates == before + 1


def test_expiry_worker_deletes_idle_rules():
    testbed = Testbed("ioctopus")
    driver = testbed.server.driver
    firmware = testbed.server.nic.firmware
    driver.steer_rx(Flow.make(0), testbed.server_core(0), immediate=True)
    assert firmware.mpfs.flow_rule_count() == 1
    driver.start_expiry_worker(period_ns=50_000_000, idle_ns=100_000_000)
    testbed.run(400_000_000)
    assert firmware.mpfs.flow_rule_count() == 0


def test_expiry_worker_cannot_start_twice():
    testbed = Testbed("ioctopus")
    driver = testbed.server.driver
    driver.start_expiry_worker()
    with pytest.raises(RuntimeError):
        driver.start_expiry_worker()


def test_allow_degraded_runs_missing_node_through_remote_pf():
    machine = dell_r730()
    pfs = bifurcate(machine, 16, [0])
    device = NicDevice(machine, pfs, OctoFirmware(1))
    driver = OctoTeamDriver(machine, device, allow_degraded=True)
    for core in machine.cores_on_node(1):
        assert driver.rx_queue_for_core(core).pf is device.pf(0)


def test_pf_failure_rebinds_queues_to_survivor():
    testbed = Testbed("ioctopus")
    driver = testbed.server.driver
    nic = testbed.server.nic
    nic.surprise_remove(1)
    for queue in driver.queues.rx + driver.queues.tx:
        assert queue.pf is nic.pf(0)
    assert nic.firmware._default_queues[1] == []
    assert len(nic.firmware._default_queues[0]) == len(driver.queues.rx)


def test_pf_failure_resteers_rules_after_drain():
    testbed = Testbed("ioctopus")
    driver = testbed.server.driver
    firmware = testbed.server.nic.firmware
    core = testbed.server.machine.cores_on_node(1)[0]
    flow = Flow.make(0)
    driver.steer_rx(flow, core, immediate=True)
    queue = driver.rx_queue_for_core(core)
    queue.outstanding = 500  # force a visible drain window
    testbed.server.nic.surprise_remove(1)
    # Deferred: the rule still sits in PF1's tables until the drain.
    assert firmware.arfs[1].lookup(flow) is not None
    assert firmware.mpfs.current_pf(flow) == 1
    testbed.run(testbed.env.now + 10_000_000)
    assert firmware.arfs[1].lookup(flow) is None
    assert firmware.arfs[0].lookup(flow) is queue
    assert firmware.mpfs.current_pf(flow) == 0
    assert driver.failovers == 1


def test_mpfs_hardware_failover_covers_drain_window():
    # Until the deferred rule move applies, steer_rx must already fall
    # back to the surviving PF: the dead PF cannot receive anything.
    testbed = Testbed("ioctopus")
    driver = testbed.server.driver
    firmware = testbed.server.nic.firmware
    core = testbed.server.machine.cores_on_node(1)[0]
    driver.steer_rx(Flow.make(0), core, immediate=True)
    driver.rx_queue_for_core(core).outstanding = 500
    testbed.server.nic.surprise_remove(1)
    pf_id, _ = firmware.steer_rx(Flow.make(0), OctoFirmware.MAC)
    assert pf_id == 0


def test_pf_recovery_rehomes_queues_and_rules():
    testbed = Testbed("ioctopus")
    driver = testbed.server.driver
    nic = testbed.server.nic
    firmware = nic.firmware
    core = testbed.server.machine.cores_on_node(1)[0]
    flow = Flow.make(0)
    driver.steer_rx(flow, core, immediate=True)
    nic.surprise_remove(1)
    testbed.run(testbed.env.now + 10_000_000)  # failover settles
    nic.recover_pf(1)
    for queue in driver.queues.rx + driver.queues.tx:
        assert queue.pf.attach_node == queue.core.node_id
    testbed.run(testbed.env.now + 10_000_000)  # recovery re-steer settles
    assert firmware.arfs[0].lookup(flow) is None
    assert firmware.arfs[1].lookup(flow) is driver.rx_queue_for_core(core)
    assert firmware.mpfs.current_pf(flow) == 1
    assert driver.failovers == 1
    assert driver.recoveries == 1


def test_losing_every_pf_downs_the_netdev_without_raising():
    testbed = Testbed("ioctopus")
    driver = testbed.server.driver
    nic = testbed.server.nic
    nic.surprise_remove(1)
    nic.surprise_remove(0)  # last PF: nothing left to fail over to
    testbed.run(testbed.env.now + 10_000_000)
    assert driver.failovers == 1  # the second failure had no fallback
    with pytest.raises(DeviceGoneError):
        nic.firmware.steer_rx(Flow.make(0), OctoFirmware.MAC)


def test_expiry_worker_counts_expired_rules():
    testbed = Testbed("ioctopus")
    driver = testbed.server.driver
    driver.steer_rx(Flow.make(0), testbed.server_core(0), immediate=True)
    driver.steer_rx(Flow.make(1), testbed.server_core(1), immediate=True)
    driver.start_expiry_worker(period_ns=50_000_000, idle_ns=100_000_000)
    testbed.run(400_000_000)
    assert driver.rules_expired == 2
