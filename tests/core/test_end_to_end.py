"""End-to-end invariants across the three configurations.

These tests exercise the full stack (wire -> firmware -> PF -> memory ->
stack -> workload) and pin down the paper's central identity:
``ioctopus`` must be *behaviourally indistinguishable* from ``local`` for
any workload, any message size, any direction — while ``remote`` must
never win.
"""

import pytest

from repro.core import Testbed
from repro.nic.packet import Flow
from repro.workloads import Pktgen, TcpStream

DUR = 12_000_000
WARM = 3_000_000


def stream_rate(config, msg, direction):
    testbed = Testbed(config)
    workload = TcpStream(testbed.server, testbed.server_core(0),
                         Flow.make(0), msg, direction, DUR, WARM)
    testbed.run(DUR + 3_000_000)
    return workload.throughput_gbps()


@pytest.mark.parametrize("msg", [256, 8192, 65536])
@pytest.mark.parametrize("direction", ["rx", "tx"])
def test_ioctopus_identical_to_local(msg, direction):
    local = stream_rate("local", msg, direction)
    ioct = stream_rate("ioctopus", msg, direction)
    assert ioct == pytest.approx(local, rel=0.01)


@pytest.mark.parametrize("msg", [256, 8192, 65536])
def test_remote_never_wins_rx(msg):
    assert stream_rate("remote", msg, "rx") < stream_rate("local", msg,
                                                          "rx")


def test_pktgen_determinism_across_runs():
    def once():
        testbed = Testbed("remote", seed=5)
        workload = Pktgen(testbed.server, testbed.server_core(0), 512,
                          DUR, WARM)
        testbed.run(DUR + 3_000_000)
        return workload.meter.bytes_total

    assert once() == once()


def test_ioctopus_dma_never_crosses_interconnect():
    testbed = Testbed("ioctopus")
    workload = TcpStream(testbed.server, testbed.server_core(0),
                         Flow.make(0), 65536, "rx", DUR, WARM)
    testbed.run(DUR + 3_000_000)
    assert workload.throughput_gbps() > 10
    for link in testbed.server.machine.interconnect.links():
        assert link.server.bytes_total == 0


def test_remote_dma_all_crosses_interconnect():
    testbed = Testbed("remote")
    workload = TcpStream(testbed.server, testbed.server_core(0),
                         Flow.make(0), 65536, "rx", DUR, WARM)
    testbed.run(DUR + 3_000_000)
    crossed = testbed.server.machine.interconnect.link(
        0, 1).server.bytes_total
    # At least the payload itself crossed NIC-socket -> thread-socket.
    assert crossed >= workload.meter.bytes_total
