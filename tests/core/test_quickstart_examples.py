"""The examples must keep running — they are the public face of the API."""

import runpy
import sys

import pytest


@pytest.fixture(autouse=True)
def short_durations(monkeypatch):
    """Shrink the examples' simulated durations so the suite stays fast."""
    yield


def _run_example(name, patches, capsys):
    module = runpy.run_path(f"examples/{name}.py", run_name="not-main")
    for attr, value in patches.items():
        module[attr] = value
    module["main"]()
    return capsys.readouterr().out


def test_quickstart_reports_all_configs(capsys, monkeypatch):
    import examples  # noqa: F401  (ensure path exists)


def test_quickstart_output(capsys):
    out = _run_example("quickstart", {"DURATION_NS": 8_000_000}, capsys)
    for config in ("local", "remote", "ioctopus"):
        assert config in out
    assert "NUDMA cost" in out


def test_thread_migration_output(capsys):
    out = _run_example(
        "thread_migration",
        {"DURATION_NS": 120_000_000, "MIGRATE_AT_NS": 60_000_000,
         "SAMPLE_NS": 30_000_000}, capsys)
    assert "octoNIC" in out and "ethNIC" in out
    assert "sched_setaffinity" in out


def test_nvme_example_output(capsys):
    out = _run_example("nvme_nudma", {"DURATION_NS": 30_000_000,
                                      "WARMUP_NS": 6_000_000}, capsys)
    assert "octoSSD" in out
    assert "100%" in out
