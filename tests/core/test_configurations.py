"""Tests for the testbed configurations (§5 'Evaluated configurations')."""

import pytest

from repro.core import CONFIGS, Testbed
from repro.core.teaming import OctoTeamDriver
from repro.os_model.driver import StandardDriver


def test_all_configs_build():
    for config in CONFIGS:
        testbed = Testbed(config)
        assert testbed.server.machine.spec.num_nodes == 2
        assert len(testbed.server.nic.pfs) == 2


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        Testbed("sideways")
    with pytest.raises(ValueError):
        Testbed("local", client_config="weird")


def test_server_nic_is_bifurcated_across_sockets():
    testbed = Testbed("local")
    nodes = [pf.attach_node for pf in testbed.server.nic.pfs]
    assert nodes == [0, 1]
    assert all(pf.link.lanes == 8 for pf in testbed.server.nic.pfs)


def test_local_config_places_workload_on_nic_node():
    testbed = Testbed("local")
    assert testbed.server_workload_node == 0
    assert testbed.server_core(0).node_id == 0


def test_remote_config_places_workload_on_far_node():
    testbed = Testbed("remote")
    assert testbed.server_workload_node == 1
    assert testbed.server_core(0).node_id == 1


def test_ioctopus_uses_team_driver_with_far_placement():
    testbed = Testbed("ioctopus")
    assert isinstance(testbed.server.driver, OctoTeamDriver)
    # Same placement as `remote` — the point of the paper: placement no
    # longer matters.
    assert testbed.server_workload_node == 1


def test_standard_configs_use_pf0_netdev():
    for config in ("local", "remote"):
        testbed = Testbed(config)
        assert isinstance(testbed.server.driver, StandardDriver)
        assert testbed.server.driver.pf_id == 0


def test_client_is_single_pf_local():
    testbed = Testbed("remote")
    assert len(testbed.client.nic.pfs) == 1
    assert testbed.client.nic.pfs[0].attach_node == 0
    assert testbed.client_core(0).node_id == 0


def test_ddio_flag_disables_both_machines():
    testbed = Testbed("local", ddio=False)
    assert not testbed.server.machine.memory.ddio_enabled
    assert not testbed.client.machine.memory.ddio_enabled


def test_machines_share_one_clock():
    testbed = Testbed("local")
    assert testbed.server.machine.env is testbed.client.machine.env
    testbed.run(1000)
    assert testbed.server.machine.now == 1000
    assert testbed.client.machine.now == 1000
