"""Tests for the testbed configurations (§5 'Evaluated configurations')."""

import pytest

from repro.components import SystemConfig
from repro.core import CONFIGS, Testbed, TestbedBuilder
from repro.core.teaming import OctoTeamDriver
from repro.os_model.driver import StandardDriver


def test_all_configs_build():
    for config in CONFIGS:
        testbed = Testbed(config)
        assert testbed.server.machine.spec.num_nodes == 2
        assert len(testbed.server.nic.pfs) == 2


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        Testbed("sideways")
    with pytest.raises(ValueError):
        Testbed("local", client_config="weird")


def test_server_nic_is_bifurcated_across_sockets():
    testbed = Testbed("local")
    nodes = [pf.attach_node for pf in testbed.server.nic.pfs]
    assert nodes == [0, 1]
    assert all(pf.link.lanes == 8 for pf in testbed.server.nic.pfs)


def test_local_config_places_workload_on_nic_node():
    testbed = Testbed("local")
    assert testbed.server_workload_node == 0
    assert testbed.server_core(0).node_id == 0


def test_remote_config_places_workload_on_far_node():
    testbed = Testbed("remote")
    assert testbed.server_workload_node == 1
    assert testbed.server_core(0).node_id == 1


def test_ioctopus_uses_team_driver_with_far_placement():
    testbed = Testbed("ioctopus")
    assert isinstance(testbed.server.driver, OctoTeamDriver)
    # Same placement as `remote` — the point of the paper: placement no
    # longer matters.
    assert testbed.server_workload_node == 1


def test_standard_configs_use_pf0_netdev():
    for config in ("local", "remote"):
        testbed = Testbed(config)
        assert isinstance(testbed.server.driver, StandardDriver)
        assert testbed.server.driver.pf_id == 0


def test_client_is_single_pf_local():
    testbed = Testbed("remote")
    assert len(testbed.client.nic.pfs) == 1
    assert testbed.client.nic.pfs[0].attach_node == 0
    assert testbed.client_core(0).node_id == 0


def test_ddio_flag_disables_both_machines():
    with pytest.deprecated_call():
        testbed = Testbed("local", ddio=False)
    assert not testbed.server.machine.memory.ddio_enabled
    assert not testbed.client.machine.memory.ddio_enabled


def test_ddio_shim_is_equivalent_to_system_config():
    with pytest.deprecated_call():
        shimmed = Testbed("local", ddio=False)
    explicit = Testbed(system=SystemConfig("local").without("ddio"))
    assert shimmed.system == explicit.system


def test_default_ddio_emits_no_warning(recwarn):
    Testbed("local")
    assert not [w for w in recwarn.list
                if issubclass(w.category, DeprecationWarning)]


def test_testbed_accepts_system_config():
    system = SystemConfig("remote").without("xps")
    testbed = Testbed(system)
    assert testbed.system == system
    assert testbed.config == "remote"
    assert not testbed.server.stack.xps_enabled
    # The keyword spelling is equivalent.
    assert Testbed(system=system).system == system


def test_testbed_rejects_config_and_system_together():
    with pytest.raises(ValueError):
        Testbed("local", system=SystemConfig("remote"))


def test_machines_share_one_clock():
    testbed = Testbed("local")
    assert testbed.server.machine.env is testbed.client.machine.env
    testbed.run(1000)
    assert testbed.server.machine.now == 1000
    assert testbed.client.machine.now == 1000


# ------------------------------------------------------------- builder

def test_builder_build_matches_testbed_ctor():
    built = TestbedBuilder("remote").seed(5).build()
    direct = Testbed("remote", seed=5)
    assert built.system == direct.system
    assert built.config == direct.config
    nodes = [pf.attach_node for pf in built.server.nic.pfs]
    assert nodes == [pf.attach_node for pf in direct.server.nic.pfs]


def test_builder_single_host_octo_defaults():
    host = TestbedBuilder("ioctopus").build_host()
    assert len(host.nic.pfs) == 2
    assert isinstance(host.driver, OctoTeamDriver)
    assert host.wiring == "bifurcation"
    assert host.wiring_lanes == 16
    assert host.wiring_power_w == 0.0


def test_builder_switch_wiring_costs_lanes_and_power():
    host = (TestbedBuilder("ioctopus").wiring("switch")
            .pf_name("octo").build_host())
    assert host.wiring == "switch"
    assert host.wiring_lanes > 16
    assert host.wiring_power_w > 0.0
    assert len(host.nic.pfs) == 2


def test_builder_standard_single_pf_host():
    host = (TestbedBuilder("local").attach_nodes([0]).pf_name("s")
            .build_host())
    assert len(host.nic.pfs) == 1
    assert isinstance(host.driver, StandardDriver)


def test_builder_applies_components_to_single_host():
    host = (TestbedBuilder(SystemConfig("ioctopus").without("ddio"))
            .build_host())
    assert not host.machine.memory.ddio_enabled


def test_builder_validates_knobs():
    with pytest.raises(ValueError):
        TestbedBuilder("ioctopus").wiring("string-and-cans")
    with pytest.raises(ValueError):
        TestbedBuilder("ioctopus").client_config("weird")
