"""Tests for the claim-verification layer."""

import pytest

from repro.analysis import ClaimCheck, claims_for, verify_result
from repro.experiments import get_experiment
from repro.experiments.base import ExperimentResult


def test_every_simulated_experiment_has_claims():
    for name in ("fig06", "fig07", "fig08", "fig09", "fig10", "fig11",
                 "fig12", "fig13", "fig14", "fig15", "sec24", "sec511"):
        assert claims_for(name), f"{name} has no registered claims"


def test_verify_result_checks_all_claims_for_experiment():
    result = get_experiment("fig08").run(fidelity="quick")
    checks = verify_result(result)
    assert len(checks) == len(claims_for("fig08"))
    assert all(isinstance(c, ClaimCheck) for c in checks)
    assert all(c.passed for c in checks)


def test_verify_result_detects_violations():
    # A fabricated fig08 result where remote beats local.
    result = ExperimentResult(
        "fig08", "Figure 8",
        ["pkt_bytes", "ioct_gbps", "remote_gbps", "ratio", "ioct_mpps",
         "remote_mpps", "ioct_membw_gbps", "remote_membw_gbps"])
    result.add(1500, 10.0, 20.0, 0.5, 1.0, 2.0, 0.0, 10.0)
    checks = verify_result(result)
    assert any(not c.passed for c in checks)


def test_claimcheck_str_mentions_outcome():
    check = ClaimCheck("fig08", "a claim", True, "42")
    assert "PASS" in str(check) and "fig08" in str(check)
    assert "FAIL" in str(ClaimCheck("x", "y", False))


def test_verify_result_for_unclaimed_experiment_is_empty():
    result = ExperimentResult("fig02", "Figure 2", ["year"])
    # fig02 has no registered claims (pure data model).
    assert verify_result(result) == []


def test_fig12_claim_passes_on_real_run():
    result = get_experiment("fig12").run(fidelity="quick")
    assert all(c.passed for c in verify_result(result))


def test_render_result_includes_table_and_verdicts():
    from repro.analysis import render_result
    result = get_experiment("fig08").run(fidelity="quick")
    text = render_result(result)
    assert "fig08" in text
    assert "| pkt_bytes |" in text
    assert "✅" in text


def test_run_report_over_subset():
    from repro.analysis import run_report
    text = run_report(names=["fig02", "fig08"], fidelity="quick")
    assert "# IOctopus reproduction report" in text
    assert "2 experiments" in text
    assert "fig02" in text and "fig08" in text
