"""Tests for the PCIe fabric: PFs, bifurcation, DMA/MMIO routing."""

import pytest

from repro.pcie import PhysicalFunction, bifurcate
from repro.topology import dell_r730


@pytest.fixture
def machine():
    return dell_r730()


def test_bifurcate_splits_lanes_evenly(machine):
    pfs = bifurcate(machine, 16, [0, 1], name="octo")
    assert len(pfs) == 2
    assert all(pf.link.lanes == 8 for pf in pfs)
    assert [pf.attach_node for pf in pfs] == [0, 1]


def test_bifurcate_uneven_split_rejected(machine):
    with pytest.raises(ValueError):
        bifurcate(machine, 16, [0, 1, 2])
    with pytest.raises(ValueError):
        bifurcate(machine, 16, [])


def test_single_pf_keeps_all_lanes(machine):
    (pf,) = bifurcate(machine, 16, [0])
    assert pf.link.lanes == 16
    # PCIe gen3 x16 ~ 13.6 GB/s
    assert pf.link.bytes_per_sec == pytest.approx(16 * 0.85e9)


def test_pf_attach_node_validated(machine):
    with pytest.raises(ValueError):
        PhysicalFunction(machine, 0, attach_node=9, lanes=8)


def test_dma_write_local_uses_ddio(machine):
    (pf,) = bifurcate(machine, 16, [0])
    ring = machine.alloc_region("ring", 0, 8192)
    pf.dma_write(ring, 1500)
    assert machine.memory.read_fresh_dma_line(0, ring) == 0


def test_dma_write_remote_costs_more(machine):
    pf_local, pf_remote = bifurcate(machine, 16, [0, 1])
    ring = machine.alloc_region("ring", 0, 8192)
    pf_remote.dma_write(ring, 1500)
    assert machine.memory.read_fresh_dma_line(0, ring) > 0


def test_dma_charges_pcie_bandwidth(machine):
    (pf,) = bifurcate(machine, 16, [0])
    ring = machine.alloc_region("ring", 0, 8192)
    pf.dma_write(ring, 3000)
    pf.dma_read(ring, 1000)
    assert pf.link.upstream.bytes_total == 3000
    assert pf.link.downstream.bytes_total == 1000


def test_mmio_remote_crosses_interconnect(machine):
    pf_local, pf_remote = bifurcate(machine, 16, [0, 1])
    local = pf_local.mmio_latency(from_node=0)
    remote = pf_remote.mmio_latency(from_node=0)
    assert remote > local


def test_interrupt_latency_remote_higher(machine):
    pf_local, pf_remote = bifurcate(machine, 16, [0, 1])
    assert (pf_remote.interrupt_latency(to_node=0)
            > pf_local.interrupt_latency(to_node=0))


def test_is_local_to(machine):
    pf0, pf1 = bifurcate(machine, 16, [0, 1])
    assert pf0.is_local_to(0) and not pf0.is_local_to(1)
    assert pf1.is_local_to(1) and not pf1.is_local_to(0)


def test_zero_lane_link_rejected(machine):
    with pytest.raises(ValueError):
        PhysicalFunction(machine, 0, attach_node=0, lanes=0)


def test_link_degrade_and_restore(machine):
    (pf,) = bifurcate(machine, 16, [0])
    full = pf.link.bytes_per_sec
    pf.link.degrade(active_lanes=4)
    assert pf.link.is_degraded
    assert pf.link.active_lanes == 4
    assert pf.link.bytes_per_sec == pytest.approx(full / 4)
    assert pf.link.upstream.bytes_per_sec == pytest.approx(full / 4)
    pf.link.restore()
    assert not pf.link.is_degraded
    assert pf.link.bytes_per_sec == pytest.approx(full)


def test_link_degrade_validates_lanes(machine):
    (pf,) = bifurcate(machine, 16, [0])
    with pytest.raises(ValueError):
        pf.link.degrade(active_lanes=0)
    with pytest.raises(ValueError):
        pf.link.degrade(active_lanes=17)


def test_dead_pf_rejects_all_operations(machine):
    from repro.sim.errors import DeviceGoneError
    (pf,) = bifurcate(machine, 16, [0])
    ring = machine.alloc_region("ring", 0, 8192)
    pf.fail()
    assert not pf.alive
    assert "dead" in repr(pf)
    with pytest.raises(DeviceGoneError):
        pf.dma_write(ring, 64)
    with pytest.raises(DeviceGoneError):
        pf.dma_read(ring, 64)
    with pytest.raises(DeviceGoneError):
        pf.mmio_latency(0)
    with pytest.raises(DeviceGoneError):
        pf.interrupt_latency(0)
    pf.recover()
    assert pf.alive
    pf.dma_write(ring, 64)  # works again
