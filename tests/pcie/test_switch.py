"""Tests for the programmable PCIe switch (§3.2)."""

import pytest

from repro.pcie import PcieSwitch
from repro.pcie.fabric import bifurcate
from repro.topology import dell_r730


@pytest.fixture
def machine():
    return dell_r730()


def test_attach_per_node_covers_every_socket(machine):
    switch = PcieSwitch(machine)
    pfs = switch.attach_per_node(8, name="octo")
    assert [pf.attach_node for pf in pfs] == [0, 1]
    assert all(pf.link.lanes == 8 for pf in pfs)


def test_switched_dma_pays_hop_latency(machine):
    switch = PcieSwitch(machine, hop_ns=150)
    switched = switch.attach(0, 8)
    (direct,) = bifurcate(machine, 8, [0], name="direct")
    region = machine.alloc_region("buf", 0, 8192)
    d_direct = direct.dma_write(region, 1500)
    d_switched = switched.dma_write(region, 1500)
    assert d_switched >= d_direct + 150


def test_switched_mmio_and_interrupt_pay_hop(machine):
    switch = PcieSwitch(machine, hop_ns=150)
    pf = switch.attach(0, 8)
    (direct,) = bifurcate(machine, 8, [0], name="d2")
    assert pf.mmio_latency(0) == direct.mmio_latency(0) + 150
    assert pf.interrupt_latency(0) == direct.interrupt_latency(0) + 150


def test_reattach_changes_locality(machine):
    switch = PcieSwitch(machine)
    pf = switch.attach(0, 8)
    region = machine.alloc_region("buf", 1, 8192)
    assert machine.memory.read_fresh_dma_line(1, region) > 0 or True
    pf.dma_write(region, 1500)
    remote_cost = machine.memory.read_fresh_dma_line(1, region)
    assert remote_cost > 0  # PF on node 0, memory on node 1
    pf.reattach(1)
    pf.dma_write(region, 1500)
    assert machine.memory.read_fresh_dma_line(1, region) == 0
    assert pf.reattach_count == 1


def test_reattach_validates_node(machine):
    switch = PcieSwitch(machine)
    pf = switch.attach(0, 8)
    with pytest.raises(ValueError):
        pf.reattach(9)
    pf.reattach(0)  # same node: no count
    assert pf.reattach_count == 0


def test_peer_to_peer_avoids_dram_and_interconnect(machine):
    switch = PcieSwitch(machine)
    a = switch.attach(0, 8)
    b = switch.attach(1, 8)
    delay = switch.peer_to_peer(a, b, 64 * 1024)
    assert delay >= 2 * switch.hop_ns
    for dram in machine.memory.drams:
        assert dram.read_bytes == 0 and dram.write_bytes == 0
    for link in machine.interconnect.links():
        assert link.server.bytes_total == 0


def test_peer_to_peer_requires_switch_members(machine):
    switch = PcieSwitch(machine)
    a = switch.attach(0, 8)
    (foreign,) = bifurcate(machine, 8, [0], name="x")
    with pytest.raises(ValueError):
        switch.peer_to_peer(a, foreign, 100)


def test_lanes_required_exceeds_bifurcation(machine):
    # Bifurcation: 16 lanes total.  The switch needs device-side plus
    # host-side lanes — the paper's "requires more lanes" drawback.
    switch = PcieSwitch(machine)
    switch.attach_per_node(8)
    assert switch.lanes_required() > 16
    assert switch.power_watts > 0
